//! Umbrella crate re-exporting the full symbolic-range-analysis toolchain.
pub use sra_baselines as baselines;
pub use sra_core as core;
pub use sra_interp as interp;
pub use sra_ir as ir;
pub use sra_lang as lang;
pub use sra_range as range;
pub use sra_symbolic as symbolic;
pub use sra_workloads as workloads;
