//! Offline, dependency-free shim implementing the slice of the
//! `criterion` 0.5 API this workspace's benches use: `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Throughput`, `Bencher::iter`, and
//! the `criterion_group!`/`criterion_main!` macros.
//!
//! The build environment has no crates.io access (see
//! `vendor/README.md`). Instead of criterion's statistical machinery
//! this shim does a short calibrated warm-up, then times a fixed batch
//! and reports mean ns/iter (and derived throughput) on stdout. Good
//! enough to keep benches compiled, runnable, and comparable run to
//! run; swap in real criterion for publication-quality numbers.

use std::fmt;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Measurement configuration; mirrors the criterion knobs we need.
#[derive(Clone, Debug)]
pub struct Config {
    /// Nominal number of timed batches per benchmark.
    pub sample_size: usize,
    /// Wall-clock budget per benchmark.
    pub measurement_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 20,
            measurement_time: Duration::from_millis(300),
        }
    }
}

#[derive(Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        // CLI filtering/plotting is not supported by the shim; accept
        // and ignore harness arguments like `--bench`.
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.config.measurement_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.config, id, None, |b| f(b));
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            config: Config::default(),
            throughput: None,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    config: Config,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.config.measurement_time = t;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_one(&self.config, &full, self.throughput.clone(), |b| {
            f(b, input)
        });
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&self.config, &full, self.throughput.clone(), |b| f(b));
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: &str, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

#[derive(Clone, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Times closures handed to it by the benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(config: &Config, id: &str, throughput: Option<Throughput>, mut body: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate: find an iteration count that fills the per-sample
    // time slice, starting from one warm-up iteration.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    body(&mut b);
    let per_iter = (b.elapsed.as_nanos().max(1)) as u64;
    let slice_ns =
        (config.measurement_time.as_nanos() as u64 / config.sample_size.max(1) as u64).max(1);
    let iters = (slice_ns / per_iter).clamp(1, 1_000_000);

    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    let mut best = f64::INFINITY;
    for _ in 0..config.sample_size {
        b.iters = iters;
        body(&mut b);
        total += b.elapsed;
        total_iters += iters;
        let per = b.elapsed.as_nanos() as f64 / iters as f64;
        if per < best {
            best = per;
        }
        if total >= config.measurement_time {
            break;
        }
    }
    let mean = total.as_nanos() as f64 / total_iters.max(1) as f64;
    let mut line = format!(
        "{id:<40} mean {:>12} ns/iter  (best {:>12} ns)",
        fmt_f(mean),
        fmt_f(best)
    );
    if let Some(Throughput::Elements(n)) = throughput {
        let eps = n as f64 / (mean * 1e-9);
        line.push_str(&format!("  {:>14} elem/s", fmt_f(eps)));
    }
    if let Some(Throughput::Bytes(n)) = throughput {
        let bps = n as f64 / (mean * 1e-9);
        line.push_str(&format!("  {:>14} B/s", fmt_f(bps)));
    }
    println!("{line}");
}

fn fmt_f(x: f64) -> String {
    if x >= 1e6 {
        format!("{:.3}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.2}k", x / 1e3)
    } else {
        format!("{x:.1}")
    }
}

/// Mirrors criterion's macro: defines a function running each bench.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirrors criterion's macro: the bench harness entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_with_input_and_throughput() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(10));
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter(|| n * 2);
        });
        group.finish();
    }
}
