//! The `Strategy` trait and combinators: maps, unions, boxed
//! strategies, bounded recursion, and range/tuple sources.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use crate::test_runner::TestRng;

/// A generator of random values. Unlike real proptest there is no
/// value tree: strategies produce final values directly (no shrinking).
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Type-erases the strategy so it can be stored and cloned.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }

    /// Builds recursive values: starting from `self` as the leaf
    /// strategy, applies `recurse` up to `depth` times, at each level
    /// choosing between bottoming out and recursing once more. The
    /// `_desired_size`/`_expected_branch_size` tuning knobs of real
    /// proptest are accepted but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(strat).boxed();
            strat = Union::new_weighted(vec![(1, leaf.clone()), (2, branch)]).boxed();
        }
        strat
    }
}

/// Strategy producing a clone of a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// A clonable, type-erased strategy (`Arc`-backed like upstream).
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<Value = T>>);

trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;

    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Chooses one of several strategies per generated value; backs
/// `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T: Debug> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        Union::new_weighted(arms.into_iter().map(|a| (1, a)).collect())
    }

    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Union { arms, total_weight }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (w, arm) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return arm.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                sample_i128(self.start as i128, self.end as i128 - 1, rng) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                sample_i128(*self.start() as i128, *self.end() as i128, rng) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, usize);

/// Uniform sample from `[lo, hi]` inclusive; the wrapping-sub span is
/// correct in two's complement for the full `i128` domain.
fn sample_i128(lo: i128, hi: i128, rng: &mut TestRng) -> i128 {
    let span = hi.wrapping_sub(lo) as u128;
    if span == u128::MAX {
        return rng.next_u128() as i128;
    }
    let r = rng.next_u128() % (span + 1);
    lo.wrapping_add(r as i128)
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);
