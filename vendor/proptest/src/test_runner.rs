//! The case-running machinery: configuration, RNG, and the runner that
//! drives a strategy through a property closure.

use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::strategy::Strategy;

/// Runner configuration; `ProptestConfig` in the prelude, like
/// upstream.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of cases to run per property.
    pub cases: u32,
    /// Proportion of rejected (`prop_assume!`) cases tolerated before
    /// the property fails, times `cases`.
    pub max_global_rejects: u32,
}

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        Config {
            cases,
            max_global_rejects: 1024,
        }
    }
}

impl Config {
    /// Explicit case count; still yields to a `PROPTEST_CASES`
    /// override so one env var caps every suite, like upstream's
    /// fork-on-default behavior.
    pub fn with_cases(cases: u32) -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(cases);
        Config {
            cases,
            ..Config::default()
        }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property is false for this input.
    Fail(String),
    /// The input does not satisfy a `prop_assume!` precondition.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// A property failure, carrying the (non-shrunk) failing input.
#[derive(Debug)]
pub struct TestError {
    message: String,
}

impl fmt::Display for TestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for TestError {}

/// SplitMix64 — deterministic unless reseeded via `PROPTEST_SEED`.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// Uniform draw from `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        (self.next_u128() % n as u128) as u64
    }
}

/// Runs a strategy through a property closure `cases` times.
pub struct TestRunner {
    config: Config,
    rng: TestRng,
}

impl TestRunner {
    pub fn new(config: Config) -> Self {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0x5EED_CAFE_F00D_D00Du64);
        TestRunner {
            config,
            rng: TestRng::new(seed),
        }
    }

    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }

    /// Runs the property; returns the first failure (with its input)
    /// or `Ok` once `cases` inputs pass. Panics inside the property
    /// propagate after the failing input is printed to stderr.
    pub fn run<S, F>(&mut self, strategy: &S, mut test: F) -> Result<(), TestError>
    where
        S: Strategy,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < self.config.cases {
            let input = strategy.generate(&mut self.rng);
            let repr = format!("{input:?}");
            match catch_unwind(AssertUnwindSafe(|| test(input))) {
                Ok(Ok(())) => passed += 1,
                Ok(Err(TestCaseError::Reject(_))) => {
                    rejected += 1;
                    if rejected > self.config.max_global_rejects {
                        return Err(TestError {
                            message: format!(
                                "too many rejected inputs ({rejected}) after {passed} passed cases"
                            ),
                        });
                    }
                }
                Ok(Err(TestCaseError::Fail(msg))) => {
                    return Err(TestError {
                        message: format!(
                            "property failed after {passed} passed cases: {msg}\nfailing input: {repr}"
                        ),
                    });
                }
                Err(panic) => {
                    eprintln!(
                        "property panicked after {passed} passed cases; failing input: {repr}"
                    );
                    resume_unwind(panic);
                }
            }
        }
        Ok(())
    }
}
