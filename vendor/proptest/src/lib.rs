//! Offline, dependency-free shim implementing the slice of the
//! `proptest` 1.x API this workspace uses: the `Strategy` trait with
//! `prop_map`/`prop_recursive`/`boxed`, range and tuple strategies,
//! `collection::vec`, `Union` (behind `prop_oneof!`), `ProptestConfig`,
//! `TestRunner`, and the `proptest!`/`prop_assert!`/`prop_assert_eq!`
//! macros.
//!
//! The build environment has no crates.io access, so this stands in
//! for the real crate (see `vendor/README.md`). Differences from real
//! proptest, by design:
//!
//! - **No shrinking.** A failing case reports the generated input
//!   as-is instead of a minimized counterexample.
//! - **Deterministic seeding.** Cases derive from a fixed seed (or
//!   `PROPTEST_SEED`) so CI runs are reproducible; set a different
//!   seed to widen coverage.
//! - **No failure persistence** (`proptest-regressions` files).
//!
//! `PROPTEST_CASES` overrides the default case count, like upstream.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Builds a [`strategy::Union`] choosing uniformly among the arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fails the current test case with a formatted message unless the
/// condition holds. Must be used inside `proptest!` (or any closure
/// returning `Result<_, TestCaseError>`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `prop_assert!` specialized to equality, printing both operands.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            l, r, format!($($fmt)*)
        );
    }};
}

/// `prop_assert!` specialized to inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
}

/// Rejects (skips) the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Declares property tests. Supports the subset of upstream syntax the
/// workspace uses: an optional `#![proptest_config(..)]` header and
/// `fn name(binding in strategy, ...) { body }` items carrying
/// arbitrary attributes (`#[test]`, doc comments, `#[ignore]`, ...).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            let strat = ($($strat,)+);
            let result = runner.run(&strat, |($($arg,)+)| {
                $body
                ::std::result::Result::Ok(())
            });
            if let ::std::result::Result::Err(e) = result {
                ::std::panic!("{}", e);
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(200));
        let strat = (0u8..3, (-5i64..=5).prop_map(|x| x * 2));
        runner
            .run(&strat, |(a, b)| {
                prop_assert!(a < 3);
                prop_assert!((-10..=10).contains(&b) && b % 2 == 0);
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn vec_respects_size_range() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(200));
        let strat = crate::collection::vec(0i32..10, 2..5);
        runner
            .run(&strat, |v| {
                prop_assert!((2..5).contains(&v.len()));
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(300));
        let strat = prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut seen = [false; 3];
        runner
            .run(&strat, |x| {
                seen[x as usize] = true;
                Ok(())
            })
            .unwrap();
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn recursive_strategies_bottom_out() {
        #[derive(Debug, Clone)]
        #[allow(dead_code)]
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let leaf = (0i64..10).prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(3, 16, 4, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
        });
        let mut runner = TestRunner::new(ProptestConfig::with_cases(300));
        runner
            .run(&strat, |t| {
                prop_assert!(depth(&t) <= 4, "depth {} in {:?}", depth(&t), t);
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn failing_property_reports_input() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(64));
        let err = runner
            .run(&(0i32..100), |x| {
                prop_assert!(x < 10, "x too big");
                Ok(())
            })
            .unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("x too big"), "{msg}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself compiles and runs with multiple bindings.
        #[test]
        fn macro_smoke(a in 0u32..10, b in crate::collection::vec(0i64..5, 1..4)) {
            prop_assert!(a < 10);
            prop_assert!(!b.is_empty());
        }
    }
}
