//! Offline, dependency-free shim implementing the slice of the `rand`
//! 0.8 API this workspace uses: `Rng::{gen_range, gen_bool}`,
//! `SeedableRng::seed_from_u64`, and `rngs::StdRng`.
//!
//! The build environment has no crates.io access, so this stands in
//! for the real crate (see `vendor/README.md`). The generator is a
//! SplitMix64: deterministic for a given seed, which is all the
//! workload generators require. It is NOT cryptographically secure
//! and makes no cross-version reproducibility promise with real
//! `rand`.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction; only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Integer types with uniform range sampling.
pub trait SampleUniform: Sized {
    /// Uniformly samples from `[lo, hi]` (both inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// One less than `self`, for converting exclusive upper bounds.
    fn prev(self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                // Span fits in u128 for every type up to 64 bits.
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let r = (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }

            fn prev(self) -> Self {
                self - 1
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(self.start, self.end.prev(), rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// `RngCore` like in real `rand`.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        // 53 random mantissa bits, exactly like rand's `Bernoulli`.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 standing in for rand's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let y = rng.gen_range(1u32..=4);
            assert!((1..=4).contains(&y));
            let z = rng.gen_range(3usize..4);
            assert_eq!(z, 3);
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.7)).count();
        assert!((6_500..7_500).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
