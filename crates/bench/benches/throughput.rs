//! The batch-driver throughput bench: serial vs parallel analysis and
//! batched+cached vs per-query all-pairs evaluation.
//!
//! This bench backs the acceptance criterion of the driver PR: on the
//! `scaling` workload at 4 threads, the batched+cached all-pairs
//! evaluation ([`sra_core::AliasMatrix`] built on the pool) must beat
//! the seed per-query path ([`sra_core::QueryStats::run_pairs`]) by at
//! least 2×. Besides the per-case timings, the bench prints an explicit
//! `speedup:` summary line comparing the two paths; the `#[ignore]`d
//! test `throughput_speedup` in `crates/bench/tests/` asserts the same
//! ratio.
//!
//! Run with `cargo bench -p sra-bench --bench throughput`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sra_bench::{batched_sweep, build_session, per_query_sweep, scratch_replay, session_replay};
use sra_core::{
    analyze_parallel, AliasService, AnalysisConfig, GrConfig, GrSchedule, RbaaAnalysis,
};
use sra_ir::Module;
use sra_range::RangeAnalysis;
use sra_workloads::{edits, scaling, traffic};

const SCALING_INSTS: usize = 20_000;
const SCALING_SEED: u64 = 42;
/// The many-function workload for the GR wave scheduler: hundreds of
/// interlinked functions (deep chains, recursive cliques, wide fans).
const CALLGRAPH_FUNCS: usize = 600;
/// Single-function edits per replay of the session workload.
const SESSION_EDITS: usize = 8;

fn workload() -> Module {
    scaling::generate_module(SCALING_INSTS, SCALING_SEED)
}

fn callgraph_workload() -> Module {
    scaling::generate_call_graph_module(CALLGRAPH_FUNCS, SCALING_SEED)
}

/// Pipeline analysis (bootstrap + GR + LR): serial vs the batch driver
/// at 1/2/4 workers.
fn analysis_serial_vs_parallel(c: &mut Criterion) {
    let m = workload();
    let insts = m.num_insts();
    let mut group = c.benchmark_group("analysis");
    group.sample_size(10);
    group.throughput(Throughput::Elements(insts as u64));
    group.bench_with_input(BenchmarkId::new("serial", insts), &m, |b, m| {
        b.iter(|| RbaaAnalysis::analyze(std::hint::black_box(m)));
    });
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new(&format!("parallel_t{threads}"), insts),
            &m,
            |b, m| {
                b.iter(|| {
                    analyze_parallel(
                        std::hint::black_box(m),
                        AnalysisConfig::builder().threads(threads).build(),
                    )
                });
            },
        );
    }
    group.finish();
}

/// The interprocedural GR pass alone on the many-function workload:
/// the serial condensation schedule vs SCC waves at 2/4 workers
/// (byte-identical results; only wall time may differ).
fn gr_serial_vs_waves(c: &mut Criterion) {
    let m = callgraph_workload();
    let ranges = RangeAnalysis::analyze(&m);
    let nf = m.num_functions();
    let mut group = c.benchmark_group("gr_schedule");
    group.sample_size(10);
    group.throughput(Throughput::Elements(nf as u64));
    group.bench_with_input(BenchmarkId::new("serial", nf), &m, |b, m| {
        b.iter(|| {
            sra_core::GrAnalysis::analyze_with(
                std::hint::black_box(m),
                &ranges,
                GrConfig {
                    schedule: GrSchedule::Serial,
                    threads: 1,
                    ..GrConfig::default()
                },
            )
        });
    });
    for threads in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new(&format!("waves_t{threads}"), nf),
            &m,
            |b, m| {
                b.iter(|| {
                    sra_core::GrAnalysis::analyze_with(
                        std::hint::black_box(m),
                        &ranges,
                        GrConfig {
                            schedule: GrSchedule::Waves,
                            threads,
                            ..GrConfig::default()
                        },
                    )
                });
            },
        );
    }
    group.finish();
}

/// End-to-end pipeline on the many-function workload, serial-GR
/// baseline vs the wave-scheduled default.
fn callgraph_end_to_end(c: &mut Criterion) {
    let m = callgraph_workload();
    let insts = m.num_insts();
    let mut group = c.benchmark_group("callgraph_pipeline");
    group.sample_size(10);
    group.throughput(Throughput::Elements(insts as u64));
    for (name, schedule) in [
        ("gr_serial", GrSchedule::Serial),
        ("gr_waves", GrSchedule::Waves),
    ] {
        group.bench_with_input(BenchmarkId::new(name, insts), &m, |b, m| {
            b.iter(|| {
                let config = AnalysisConfig::builder().gr_schedule(schedule).build();
                analyze_parallel(std::hint::black_box(m), config)
            });
        });
    }
    group.finish();
}

/// All-pairs evaluation: the seed per-query path vs the cached matrix,
/// unbatched (1 worker) and batched (4 workers).
fn all_pairs_paths(c: &mut Criterion) {
    let m = workload();
    let rbaa = RbaaAnalysis::analyze(&m);
    let queries = per_query_sweep(&m, &rbaa).queries;
    let mut group = c.benchmark_group("all_pairs");
    group.sample_size(10);
    group.throughput(Throughput::Elements(queries as u64));
    group.bench_function(&format!("per_query/{queries}"), |b| {
        b.iter(|| per_query_sweep(std::hint::black_box(&m), &rbaa));
    });
    for threads in [1usize, 4] {
        group.bench_function(&format!("batched_t{threads}/{queries}"), |b| {
            b.iter(|| batched_sweep(std::hint::black_box(&m), &rbaa, threads));
        });
    }
    group.finish();
}

/// Incremental sessions vs scratch re-analysis over a replayed stream
/// of single-function edits: the session pays only for the dirty
/// function's parts, the dirty GR components and the invalidated
/// matrices; the scratch path re-runs `BatchAnalysis` per edit.
fn session_vs_scratch(c: &mut Criterion) {
    let m = workload();
    let stream = edits::generate_replace_stream(&m, SESSION_EDITS, SCALING_SEED);
    let base = build_session(&m);
    let mut group = c.benchmark_group("session");
    group.sample_size(10);
    group.throughput(Throughput::Elements(SESSION_EDITS as u64));
    group.bench_function(&format!("scratch_per_edit/{SESSION_EDITS}"), |b| {
        b.iter(|| scratch_replay(std::hint::black_box(&m), &stream));
    });
    // The clone restores the pre-stream state between iterations; its
    // cost is included here (the trajectory harness excludes it).
    group.bench_function(&format!("session_per_edit/{SESSION_EDITS}"), |b| {
        b.iter(|| session_replay(&mut std::hint::black_box(&base).clone(), &stream));
    });
    group.finish();
}

/// The alias-query service under traffic: a single-threaded query loop
/// against a quiescent service vs the mixed workload (4 readers racing
/// 2 writers replaying per-tenant edit streams). The mixed case pays
/// for tenant re-analysis on every edit; snapshot isolation keeps the
/// readers at their fair CPU share regardless — the ratio the
/// `trajectory` bin gates on.
fn service_traffic(c: &mut Criterion) {
    let cfg = traffic::TrafficConfig {
        tenants: 4,
        insts_per_tenant: 2_000,
        readers: 4,
        writers: 2,
        edits_per_tenant: 4,
        queries_per_reader: 2_000,
        ..traffic::TrafficConfig::default()
    };
    let modules = traffic::build_tenants(&cfg);
    let streams = traffic::edit_streams(&cfg, &modules);

    let mut group = c.benchmark_group("service");
    group.sample_size(10);

    let quiescent = AliasService::new();
    traffic::populate(&quiescent, modules.clone());
    group.throughput(Throughput::Elements(cfg.queries_per_reader as u64));
    group.bench_function(&format!("single_thread/{}", cfg.queries_per_reader), |b| {
        b.iter(|| traffic::single_thread_queries(&quiescent, &cfg, cfg.queries_per_reader));
    });

    // `run_mixed` consumes the edit streams, so every iteration gets a
    // fresh service; the populate cost (initial per-tenant analysis)
    // is part of the measured iteration here — the trajectory harness
    // times only the mixed phase.
    group.throughput(Throughput::Elements(
        (cfg.queries_per_reader * cfg.readers) as u64,
    ));
    group.bench_function(&format!("mixed/{}r{}w", cfg.readers, cfg.writers), |b| {
        b.iter(|| {
            let service = AliasService::new();
            traffic::populate(&service, modules.clone());
            traffic::run_mixed(&service, &cfg, &streams)
        });
    });
    group.finish();
}

/// The acceptance-criterion summary: one timed round of each path and
/// the resulting speedup, printed as a plain line so the number shows
/// up in any bench log.
fn speedup_summary(c: &mut Criterion) {
    let _ = c; // the summary is a direct measurement, not a criterion case
    let m = workload();
    let rbaa = RbaaAnalysis::analyze(&m);
    // Warm-up round for fairness (page-in, allocator).
    std::hint::black_box(per_query_sweep(&m, &rbaa));
    std::hint::black_box(batched_sweep(&m, &rbaa, 4));

    let t0 = std::time::Instant::now();
    let serial_stats = per_query_sweep(&m, &rbaa);
    let per_query = t0.elapsed();
    let t0 = std::time::Instant::now();
    let batched_stats = batched_sweep(&m, &rbaa, 4);
    let batched = t0.elapsed();
    assert_eq!(serial_stats, batched_stats, "paths must agree exactly");

    let speedup = per_query.as_secs_f64() / batched.as_secs_f64();
    println!(
        "speedup: batched+cached all-pairs at 4 threads vs seed per-query path: \
         {speedup:.2}x ({batched:?} vs {per_query:?}, {} queries)",
        serial_stats.queries
    );
}

criterion_group!(
    benches,
    analysis_serial_vs_parallel,
    gr_serial_vs_waves,
    callgraph_end_to_end,
    all_pairs_paths,
    session_vs_scratch,
    service_traffic,
    speedup_summary
);
criterion_main!(benches);
