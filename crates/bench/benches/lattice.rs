//! Criterion microbenches for the `SymbRanges` lattice operations —
//! the inner loop of the abstract interpreter (§3.3/§3.8: constant-size
//! per-variable work is what makes the analysis `O(|V|)`) — plus
//! interned-vs-boxed groups that measure what the arena migration
//! bought: equality, join and widen over ranges whose endpoints are
//! deep `min`/`max` chains, answered as id compares and memo hits
//! instead of tree walks and re-allocation.

use criterion::{criterion_group, criterion_main, Criterion};
use sra_bench::deep_chain_range;
use sra_symbolic::{ExprArena, RangeId, SymExpr, SymRange, Symbol};

fn ranges() -> (SymRange, SymRange) {
    let n = SymExpr::from(Symbol::new(0));
    let m = SymExpr::from(Symbol::new(1));
    let a = SymRange::interval(0.into(), n.clone() - 1.into());
    let b = SymRange::interval(n, n_plus(m));
    (a, b)
}

fn n_plus(m: SymExpr) -> SymExpr {
    SymExpr::from(Symbol::new(0)) + m - 1.into()
}

fn lattice_ops(c: &mut Criterion) {
    let (a, b) = ranges();
    c.bench_function("range_join", |bch| {
        bch.iter(|| std::hint::black_box(&a).join(std::hint::black_box(&b)))
    });
    c.bench_function("range_meet_disjoint", |bch| {
        bch.iter(|| std::hint::black_box(&a).meet(std::hint::black_box(&b)))
    });
    c.bench_function("range_widen", |bch| {
        let grown = a.join(&b);
        bch.iter(|| std::hint::black_box(&a).widen(std::hint::black_box(&grown)))
    });
    c.bench_function("expr_cmp_provable", |bch| {
        let x = SymExpr::from(Symbol::new(0)) + 1.into();
        let y = SymExpr::from(Symbol::new(0)) + 5.into();
        bch.iter(|| std::hint::black_box(&x).try_le(std::hint::black_box(&y)))
    });
    c.bench_function("expr_cmp_unknown", |bch| {
        let x = SymExpr::from(Symbol::new(0));
        let y = SymExpr::from(Symbol::new(1));
        bch.iter(|| std::hint::black_box(&x).try_le(std::hint::black_box(&y)))
    });
}

/// Interned vs boxed on deep min/max chains: the three operations the
/// fixpoint loops and the alias matrices lean on hardest.
fn interning_ops(c: &mut Criterion) {
    const DEPTH: u32 = 12;
    let x = deep_chain_range(DEPTH, 0);
    let y = deep_chain_range(DEPTH, 100);
    // A structurally equal twin of `x` built separately, so boxed
    // equality has to walk the whole tree.
    let x2 = deep_chain_range(DEPTH, 0);

    let mut arena = ExprArena::new();
    let xi = arena.intern_range(&x);
    let yi = arena.intern_range(&y);
    let x2i = arena.intern_range(&x2);
    // Warm the memo tables: the steady state the analyses run in.
    let ji: RangeId = arena.range_join(xi, yi);
    let _ = arena.range_widen(xi, ji);

    c.bench_function("deep_eq/boxed", |bch| {
        bch.iter(|| std::hint::black_box(&x) == std::hint::black_box(&x2))
    });
    c.bench_function("deep_eq/interned", |bch| {
        bch.iter(|| std::hint::black_box(xi) == std::hint::black_box(x2i))
    });
    c.bench_function("deep_join/boxed", |bch| {
        bch.iter(|| std::hint::black_box(&x).join(std::hint::black_box(&y)))
    });
    c.bench_function("deep_join/interned", |bch| {
        bch.iter(|| arena.range_join(std::hint::black_box(xi), std::hint::black_box(yi)))
    });
    c.bench_function("deep_widen/boxed", |bch| {
        let grown = x.join(&y);
        bch.iter(|| std::hint::black_box(&x).widen(std::hint::black_box(&grown)))
    });
    c.bench_function("deep_widen/interned", |bch| {
        bch.iter(|| arena.range_widen(std::hint::black_box(xi), std::hint::black_box(ji)))
    });
}

criterion_group!(benches, lattice_ops, interning_ops);
criterion_main!(benches);
