//! Criterion microbenches for the `SymbRanges` lattice operations —
//! the inner loop of the abstract interpreter (§3.3/§3.8: constant-size
//! per-variable work is what makes the analysis `O(|V|)`).

use criterion::{criterion_group, criterion_main, Criterion};
use sra_symbolic::{SymExpr, SymRange, Symbol};

fn ranges() -> (SymRange, SymRange) {
    let n = SymExpr::from(Symbol::new(0));
    let m = SymExpr::from(Symbol::new(1));
    let a = SymRange::interval(0.into(), n.clone() - 1.into());
    let b = SymRange::interval(n, n_plus(m));
    (a, b)
}

fn n_plus(m: SymExpr) -> SymExpr {
    SymExpr::from(Symbol::new(0)) + m - 1.into()
}

fn lattice_ops(c: &mut Criterion) {
    let (a, b) = ranges();
    c.bench_function("range_join", |bch| {
        bch.iter(|| std::hint::black_box(&a).join(std::hint::black_box(&b)))
    });
    c.bench_function("range_meet_disjoint", |bch| {
        bch.iter(|| std::hint::black_box(&a).meet(std::hint::black_box(&b)))
    });
    c.bench_function("range_widen", |bch| {
        let grown = a.join(&b);
        bch.iter(|| std::hint::black_box(&a).widen(std::hint::black_box(&grown)))
    });
    c.bench_function("expr_cmp_provable", |bch| {
        let x = SymExpr::from(Symbol::new(0)) + 1.into();
        let y = SymExpr::from(Symbol::new(0)) + 5.into();
        bch.iter(|| std::hint::black_box(&x).try_le(std::hint::black_box(&y)))
    });
    c.bench_function("expr_cmp_unknown", |bch| {
        let x = SymExpr::from(Symbol::new(0));
        let y = SymExpr::from(Symbol::new(1));
        bch.iter(|| std::hint::black_box(&x).try_le(std::hint::black_box(&y)))
    });
}

criterion_group!(benches, lattice_ops);
criterion_main!(benches);
