//! Criterion benches for whole-pipeline analysis throughput — the
//! quantitative backbone of Figure 15 ("we can go over one million
//! assembly instructions in ~10 seconds" / "100,000 instructions in
//! about one second").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sra_core::RbaaAnalysis;
use sra_workloads::{scaling, suite};

/// End-to-end analysis (bootstrap ranges + GR + LR) on generated
/// programs of growing size; throughput in instructions/second.
fn analysis_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_scaling");
    group.sample_size(10);
    for &size in &[2_000usize, 8_000, 32_000] {
        let m = scaling::generate_module(size, 42);
        let insts = m.num_insts();
        group.throughput(Throughput::Elements(insts as u64));
        group.bench_with_input(BenchmarkId::from_parameter(insts), &m, |b, m| {
            b.iter(|| RbaaAnalysis::analyze(std::hint::black_box(m)));
        });
    }
    group.finish();
}

/// Analysis time for two representative Figure-13 benchmarks (frontend
/// excluded, matching the paper's measurement).
fn analysis_benchmarks(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_benchmarks");
    group.sample_size(10);
    for name in ["allroots", "anagram"] {
        let m = suite::benchmark(name).unwrap().build().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &m, |b, m| {
            b.iter(|| RbaaAnalysis::analyze(std::hint::black_box(m)));
        });
    }
    group.finish();
}

/// Query throughput: how fast `alias(p, q)` answers once the analysis
/// has run (the paper does not time queries; this documents their cost).
fn query_throughput(c: &mut Criterion) {
    let m = suite::benchmark("allroots").unwrap().build().unwrap();
    let rbaa = RbaaAnalysis::analyze(&m);
    let (f, ptrs) = m
        .func_ids()
        .map(|f| (f, sra_core::pointer_values(&m, f)))
        .max_by_key(|(_, p)| p.len())
        .expect("module has functions");
    assert!(ptrs.len() >= 2);
    c.bench_function("query_pair", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let p = ptrs[i % ptrs.len()];
            let q = ptrs[(i / ptrs.len() + 1) % ptrs.len()];
            i += 1;
            std::hint::black_box(rbaa.alias_with_test(f, p, q))
        });
    });
}

criterion_group!(
    benches,
    analysis_scaling,
    analysis_benchmarks,
    query_throughput
);
criterion_main!(benches);
