//! Regenerates the paper's **Figure 15**: analysis runtime over 50
//! programs of growing size, with the linearity statistics.
//!
//! ```text
//! cargo run -p sra-bench --release --bin fig15 [max_insts]
//! ```
//!
//! The paper analyzes the 50 largest LLVM test-suite programs (800,720
//! instructions and 241,658 pointers in 8.36 s) and reports Pearson
//! correlations R(time, #insts) = 0.982 and R(time, #pointers) = 0.975;
//! the claim to reproduce is the *linear* scaling and the ~100k
//! instructions/second order of magnitude, not the absolute
//! milliseconds of their 2015 testbed.

use sra_bench::{render_table, thousands};
use sra_ir::Ty;
use sra_workloads::{harness, scaling};

fn main() {
    let max: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60_000);
    let sizes = scaling::figure15_sizes(max);
    let mut rows = Vec::new();
    let mut insts_series = Vec::new();
    let mut ptr_series = Vec::new();
    let mut time_series = Vec::new();
    let mut total_insts = 0usize;
    let mut total_ptrs = 0usize;
    let mut total_time = std::time::Duration::ZERO;
    for (i, &size) in sizes.iter().enumerate() {
        let m = scaling::generate_module(size, 0xF15 + i as u64);
        let insts = m.num_insts();
        let pointers: usize = m
            .func_ids()
            .map(|f| {
                let func = m.function(f);
                func.value_ids()
                    .filter(|&v| func.value(v).ty() == Some(Ty::Ptr))
                    .count()
            })
            .sum();
        let t = harness::time_analysis(&m);
        rows.push(vec![
            format!("{}", i + 1),
            thousands(insts),
            thousands(pointers),
            format!("{:.2}", t.as_secs_f64() * 1000.0),
        ]);
        insts_series.push(insts as f64);
        ptr_series.push(pointers as f64);
        time_series.push(t.as_secs_f64() * 1000.0);
        total_insts += insts;
        total_ptrs += pointers;
        total_time += t;
    }
    println!("\nFigure 15: analysis runtime over 50 growing programs\n");
    println!(
        "{}",
        render_table(&["#", "#Instructions", "#Pointers", "Runtime (ms)"], &rows)
    );
    let r_insts = scaling::pearson(&insts_series, &time_series);
    let r_ptrs = scaling::pearson(&ptr_series, &time_series);
    println!(
        "Totals: {} instructions, {} pointers, {:.2} s.",
        thousands(total_insts),
        thousands(total_ptrs),
        total_time.as_secs_f64()
    );
    println!(
        "Throughput: {} instructions/second.",
        thousands((total_insts as f64 / total_time.as_secs_f64()) as usize)
    );
    println!(
        "Linear correlation R(time, #insts) = {:.3} (paper: 0.982).",
        r_insts
    );
    println!(
        "Linear correlation R(time, #pointers) = {:.3} (paper: 0.975).",
        r_ptrs
    );
}
