//! Regenerates the paper's **Figure 14**: how many of rbaa's no-alias
//! answers come from the *global* test of §3.4 (the rest come from
//! distinct-location reasoning and the local test).
//!
//! ```text
//! cargo run -p sra-bench --release --bin fig14
//! ```
//!
//! In the paper the global test contributes 239,008 of 1,290,457
//! no-alias answers (18.52%), and the local test disambiguates 6.55% of
//! addresses; the rest comes from offsets of different locations.

use sra_bench::{pct, render_table, thousands};
use sra_workloads::{harness, suite};

fn main() {
    let mut rows = Vec::new();
    let mut tot_no = 0usize;
    let mut tot_global = 0usize;
    let mut tot_local = 0usize;
    let mut tot_distinct = 0usize;
    for bench in suite::benchmarks() {
        let module = bench
            .build()
            .unwrap_or_else(|e| panic!("benchmark {} failed to build: {e}", bench.name));
        let m = harness::evaluate(&module);
        rows.push(vec![
            bench.name.to_string(),
            thousands(m.rbaa_no),
            thousands(m.rbaa_global),
            thousands(m.rbaa_local),
            thousands(m.rbaa_distinct),
        ]);
        tot_no += m.rbaa_no;
        tot_global += m.rbaa_global;
        tot_local += m.rbaa_local;
        tot_distinct += m.rbaa_distinct;
    }
    rows.push(vec![
        "Total".to_string(),
        thousands(tot_no),
        thousands(tot_global),
        thousands(tot_local),
        thousands(tot_distinct),
    ]);
    println!("\nFigure 14: no-alias answers by test\n");
    println!(
        "{}",
        render_table(
            &["Program", "noalias", "global", "local", "distinct-locs"],
            &rows
        )
    );
    if tot_no > 0 {
        println!(
            "Global test share: {}% of all no-alias answers (paper: 18.52%).",
            pct(100.0 * tot_global as f64 / tot_no as f64)
        );
        println!(
            "Local test share: {}% (paper reports 6.55% of addresses).",
            pct(100.0 * tot_local as f64 / tot_no as f64)
        );
    }
}
