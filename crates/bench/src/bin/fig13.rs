//! Regenerates the paper's **Figure 13**: comparison of `scev`,
//! `basic`, `rbaa` and the combination `r + b` over the 22 benchmarks.
//!
//! ```text
//! cargo run -p sra-bench --release --bin fig13
//! ```
//!
//! Columns are the percentage of pairwise pointer queries answered
//! "no-alias" by each analysis. The expected *shape* (paper values):
//! `%scev` (6.97 total) ≪ `%basic` (30.83) < `%rbaa` (41.73) <
//! `%(r+b)` (46.53), with rbaa and basic complementary on several rows.

use sra_bench::{pct, render_table, thousands};
use sra_workloads::{harness, suite};

fn main() {
    let mut rows = Vec::new();
    let mut total = harness::Metrics::default();
    for bench in suite::benchmarks() {
        let module = bench
            .build()
            .unwrap_or_else(|e| panic!("benchmark {} failed to build: {e}", bench.name));
        let m = harness::evaluate(&module);
        rows.push(vec![
            bench.name.to_string(),
            thousands(m.queries),
            pct(m.scev_pct()),
            pct(m.basic_pct()),
            pct(m.rbaa_pct()),
            pct(m.rb_pct()),
        ]);
        total.merge(&m);
        eprintln!(
            "  analyzed {:<12} {:>9} queries in {:?}",
            bench.name,
            thousands(m.queries),
            m.analysis_time
        );
    }
    rows.push(vec![
        "Total".to_string(),
        thousands(total.queries),
        pct(total.scev_pct()),
        pct(total.basic_pct()),
        pct(total.rbaa_pct()),
        pct(total.rb_pct()),
    ]);
    println!("\nFigure 13: percentage of queries answering \"no-alias\"\n");
    println!(
        "{}",
        render_table(
            &["Program", "#Queries", "%scev", "%basic", "%rbaa", "%(r+b)"],
            &rows
        )
    );
    println!("Paper totals for reference: scev 6.97, basic 30.83, rbaa 41.73, r+b 46.53.");
}
