//! Ablation study over the design choices DESIGN.md calls out:
//!
//! * **descending-sequence length** — the paper uses 2 (§3.9, Figure
//!   12); 0 shows how much precision widening costs, 1 and 2 how much
//!   each descending step recovers;
//! * **local test on/off** — how much of rbaa's power is the §3.6
//!   renaming versus the global abstract interpretation;
//! * **widening off** — only meaningful on loop-light code; quantifies
//!   the cost of the O(|V|) guarantee.
//!
//! ```text
//! cargo run -p sra-bench --release --bin ablation
//! ```

use sra_bench::{pct, render_table};
use sra_core::{pointer_values, AliasResult, GrConfig, RbaaAnalysis, WhichTest};
use sra_workloads::suite;

/// Percentage of no-alias answers under `config`, optionally without
/// the local test.
fn run(config: GrConfig, use_local: bool) -> (f64, usize) {
    let mut queries = 0usize;
    let mut no_alias = 0usize;
    for bench in suite::benchmarks().into_iter().take(8) {
        let module = bench.build().expect("benchmark builds");
        let rbaa = RbaaAnalysis::analyze_with(&module, config);
        for f in module.func_ids() {
            let ptrs = pointer_values(&module, f);
            for (i, &p) in ptrs.iter().enumerate() {
                for &q in &ptrs[i + 1..] {
                    queries += 1;
                    let (r, test) = rbaa.alias_with_test(f, p, q);
                    let counts = match (r, test, use_local) {
                        (AliasResult::NoAlias, Some(WhichTest::Local), false) => false,
                        (AliasResult::NoAlias, _, _) => true,
                        _ => false,
                    };
                    if counts {
                        no_alias += 1;
                    }
                }
            }
        }
    }
    // Guard the division: a benchmark subset with no pointer pairs
    // must report 0.0, not NaN.
    if queries == 0 {
        return (0.0, 0);
    }
    (100.0 * no_alias as f64 / queries as f64, queries)
}

fn main() {
    let base = GrConfig::default();
    let configs: Vec<(&str, GrConfig, bool)> = vec![
        ("full (descend=2, local on)", base, true),
        (
            "descend=0",
            GrConfig {
                descending_steps: 0,
                ..base
            },
            true,
        ),
        (
            "descend=1",
            GrConfig {
                descending_steps: 1,
                ..base
            },
            true,
        ),
        (
            "descend=4",
            GrConfig {
                descending_steps: 4,
                ..base
            },
            true,
        ),
        ("local test off", base, false),
        (
            "no widening (cap-guarded)",
            GrConfig {
                widening: false,
                max_ascending_sweeps: 12,
                ..base
            },
            true,
        ),
    ];
    let mut rows = Vec::new();
    for (name, config, local) in configs {
        let (p, queries) = run(config, local);
        rows.push(vec![name.to_string(), queries.to_string(), pct(p)]);
    }
    println!("\nAblation: rbaa no-alias rate under design variations\n");
    println!("{}", render_table(&["Variant", "#Queries", "%rbaa"], &rows));
    println!(
        "(First 8 Figure-13 benchmarks; expect: descend=0 < descend=1 ≤ \
         descend=2 = full; local-off strictly below full.)"
    );
}
