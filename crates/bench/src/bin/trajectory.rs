//! The CI perf-trajectory harness: times the throughput-critical paths
//! in quick mode, writes a machine-readable `BENCH_10.json`, compares
//! against the previous `BENCH_N.json` at the repo root (printing a
//! per-group delta table — warn, don't gate, on regressions; groups
//! that appear or disappear across trajectories are listed as `new` /
//! `gone`, and a group whose recorded workload size changed is listed
//! as `resized` instead of a spurious ±%), and fails (non-zero exit)
//! when a speedup drops below its acceptance gate — so CI both
//! *publishes* the perf trajectory as an artifact and *gates* on it.
//!
//! ```text
//! cargo run --release -p sra-bench --bin trajectory [out.json]
//! ```
//!
//! Measured groups (medians of 5 runs each, after a warm-up):
//!
//! * `all_pairs/per_query` vs `all_pairs/batched_t4` — the seed
//!   per-query path vs the batched+cached matrices (PR 2's ≥2× floor);
//! * `session/scratch_per_edit` vs `session/session_per_edit` — full
//!   re-analysis per edit vs the incremental session (PR 4's ≥2× floor,
//!   1.5× gate);
//! * `interning/boxed` vs `interning/interned` — the equality/join/
//!   widen-heavy lattice sweep on boxed `SymRange` values vs interned
//!   `RangeId` handles (PR 5's ≥1.5× floor);
//! * `service/single_thread` vs `service/mixed_4r2w` — one reader on a
//!   quiescent `AliasService` vs 4 readers racing 2 writers through
//!   per-tenant edit streams (PR 6). The gated ratio is aggregate
//!   mixed queries/sec over the single-reader baseline: snapshot
//!   isolation means readers keep their fair CPU share even while
//!   every edit re-analyzes its tenant, so the ratio holding near
//!   readers/(readers+writers) on a saturated runner (and above 1×
//!   with spare cores) is the "readers never block" contract in
//!   trajectory form. The mixed p50/p99 query latencies are recorded
//!   alongside (amortised over 32-query timed sub-batches, nearest-rank
//!   percentiles);
//! * `demand/matrix_build_t4` vs `demand/single_query` — building one
//!   giant function's full packed alias matrix (the O(P²) wall) vs one
//!   cold demand-driven query through a fresh [`sra_core::DemandCache`]
//!   (PR 7's ≥10× floor). The giant function's packed-matrix byte
//!   accounting rides along in the JSON;
//! * `source_edit/scratch_per_edit` vs `source_edit/session_per_edit`
//!   — the source-to-verdict frontend (PR 8's ≥3× floor): both sides
//!   replay the same textual tweak stream over a ~20k-instruction
//!   mini-C program; the scratch side recompiles the whole text and
//!   re-analyzes from scratch per edit, the incremental side diffs
//!   the text at function granularity and applies the diff to a
//!   long-lived session. The incremental cost honestly includes
//!   tokenizing the full text to diff it and re-lowering the changed
//!   functions, not just the session update.
//! * `persist/scratch_build` vs `persist/save` + `persist/load` +
//!   `persist/first_query` — the warm-start contract (PR 9's ≥10×
//!   floor) on a million-instruction, >10⁴-function module: building
//!   the session from scratch vs serializing it and reviving it from
//!   bytes through [`sra_core::AnalysisSession::save`] / `load`, first
//!   query included. The load and the first query are timed separately
//!   (PR 10 split the legacy `persist/load_first_query` group) so the
//!   parallel snapshot decode's trajectory is visible on its own. One
//!   load is verified against a scratch re-analysis (outside the timed
//!   region) to prove the revived state byte-identical; the timed
//!   loads skip the verify, as a restart would. The snapshot size,
//!   arena bytes and total packed-matrix bytes ride along in the
//!   JSON's `persist` block.
//! * `pipeline/legacy_scratch_t4` vs `pipeline/fused_scratch_t4` — the
//!   fused scratch pipeline (PR 10's ≥1.25× floor, 1.15× gate) on the
//!   same million-instruction module, both arms in-run at the same
//!   thread count: the legacy arm replays the BENCH_9-era schedule
//!   (one-shot pool per phase, serial canonical-arena assembly,
//!   forced-width GR waves), the fused arm is
//!   [`sra_core::BatchAnalysis::analyze_with`] on one persistent,
//!   hardware-capped [`sra_core::WorkerPool`]. The arms run as two
//!   interleaved rounds (legacy, fused, legacy, fused) and the gated
//!   ratio uses the per-arm minima, so minute-scale drift in the
//!   host's effective memory bandwidth hits both arms alike instead
//!   of whichever arm ran last. The fused arm's
//!   per-phase wall-clock breakdown ([`sra_core::PhaseStats`]) rides
//!   along in the JSON's `pipeline` block, so a regression names the
//!   phase that slowed down.
//!
//! The run also surfaces the analysis' arena statistics (interned
//! nodes, memo hit rate) for the scaling workload. Every group records
//! its workload size under `work`, so the cross-trajectory delta table
//! can tell a generator resize from a genuine regression.

use std::time::{Duration, Instant};

use sra_bench::{
    batched_sweep, build_session, deep_chain_range, legacy_scratch_pipeline, per_query_sweep,
    scratch_replay, session_replay, source_scratch_replay, source_session_replay,
};
use sra_core::{
    pointer_values, AliasMatrix, AliasResult, AliasService, AnalysisConfig, AnalysisSession,
    BatchAnalysis, PhaseStats, RbaaAnalysis,
};
use sra_lang::SourceProgram;
use sra_symbolic::{ExprArena, RangeId, SymRange};
use sra_workloads::{edits, scaling, source_edits, traffic};

const SCALING_INSTS: usize = 20_000;
const SCALING_SEED: u64 = 42;
const SESSION_EDITS: usize = 8;
const SAMPLES: usize = 5;
/// The acceptance floors recorded in the trajectory.
const BATCHED_FLOOR: f64 = 2.0;
const SESSION_FLOOR: f64 = 2.0;
const INTERNING_FLOOR: f64 = 1.5;
/// The CI hard-fail gate for the session ratio sits below its floor:
/// the measured value (~2.4× on a quiet machine, see the committed
/// BENCH_5.json) clears the floor, but shared-runner timing variance
/// would make an exit-code gate at 2.0 flaky. Dropping below the floor
/// prints a loud warning; dropping below the gate (a real regression)
/// fails the job. The batched and interning ratios' headroom needs no
/// such margin.
const SESSION_GATE: f64 = 1.5;
const INTERNING_GATE: f64 = 1.5;
/// The service floor is deliberately conservative because the ratio's
/// healthy value depends on the runner's core count. With snapshot
/// isolation, readers always keep their fair share of CPU: on a
/// single-core runner that is readers/(readers+writers) ≈ 0.67× the
/// quiet single-reader baseline (measured 0.67× here); with spare
/// cores it rises past 1×. If readers instead serialized behind the
/// writers' re-analysis, they would answer little more than their
/// fixed quota (8k queries) over the same edit-phase wall (~0.26 s
/// here) — a ratio around 0.005×, two orders of magnitude below
/// healthy. The floor sits below every healthy machine shape; the
/// gate still catches the collapse with ~40× margin.
const SERVICE_FLOOR: f64 = 0.4;
const SERVICE_GATE: f64 = 0.2;
/// The demand group's contract is structural, not a timing nuance: a
/// single demand query interns two signatures and proves one pair,
/// while the matrix build proves the whole signature triangle and
/// fills millions of packed cells. Anything under 10× means demand
/// mode started doing eager work, so floor and gate coincide.
const DEMAND_FLOOR: f64 = 10.0;
const DEMAND_GATE: f64 = 10.0;
/// The source-edit floor is the PR acceptance bar: a textual tweak
/// must land at least 3× faster than recompiling and re-analyzing the
/// whole program, *including* the diff's full-text tokenization and
/// the changed functions' re-lowering. As with the session group, the
/// exit-code gate sits below the floor to absorb shared-runner timing
/// variance; dropping below the floor warns loudly, dropping below
/// the gate fails.
const SOURCE_FLOOR: f64 = 3.0;
const SOURCE_GATE: f64 = 2.0;
/// The warm-start contract: reviving a saved million-instruction
/// session (save + load + first query) must beat building it from
/// scratch by ≥10×. The gap is structural — a load deserializes and
/// re-indexes already-computed state while the scratch build re-runs
/// the whole fixpoint pipeline and every all-pairs matrix — so, like
/// the demand group, floor and gate coincide.
const PERSIST_FLOOR: f64 = 10.0;
const PERSIST_GATE: f64 = 10.0;
/// The fused-pipeline contract: one persistent, hardware-capped pool
/// carrying every phase of a scratch build must beat the legacy
/// schedule (one-shot pool per phase, serial assembly, forced-width GR
/// waves) by ≥1.25× at the same requested thread count — both arms
/// timed in-run on the same machine. The exit-code gate sits below the
/// floor to absorb runner variance on a leg that runs once (at ~40 s a
/// side, medians are a luxury).
const PIPELINE_FLOOR: f64 = 1.25;
const PIPELINE_GATE: f64 = 1.15;
const PIPELINE_THREADS: usize = 4;
/// Previous-trajectory deltas louder than this warn (never gate — the
/// comparison crosses machines and runner generations).
const DELTA_WARN: f64 = 0.20;

/// Median wall time of `SAMPLES` runs of `f` (one warm-up run first).
fn median_time(mut f: impl FnMut() -> usize) -> Duration {
    std::hint::black_box(f());
    let mut times: Vec<Duration> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

const INTERNING_RANGES: u32 = 12;
const INTERNING_DEPTH: u32 = 8;
const INTERNING_REPS: usize = 5;

/// The boxed side of the interning group: all-pairs equality + join +
/// widen on deep-chain `SymRange` values.
fn boxed_lattice_sweep(ranges: &[SymRange]) -> usize {
    let mut count = 0usize;
    for _ in 0..INTERNING_REPS {
        for a in ranges {
            for b in ranges {
                if std::hint::black_box(a) == std::hint::black_box(b) {
                    count += 1;
                }
                let j = a.join(b);
                let w = a.widen(&j);
                count += usize::from(!w.is_empty());
            }
        }
    }
    count
}

/// The interned side: the same sweep on `RangeId` handles. The arena
/// is built *inside* the measured region — interning the operands,
/// computing each distinct join/widen once and replaying the repeats
/// as memo hits — so the gate watches the full interned-path cost, not
/// just warm-cache lookups.
fn interned_lattice_sweep(ranges: &[SymRange]) -> usize {
    let mut arena = ExprArena::new();
    let ids: Vec<RangeId> = ranges.iter().map(|r| arena.intern_range(r)).collect();
    let mut count = 0usize;
    for _ in 0..INTERNING_REPS {
        for &a in &ids {
            for &b in &ids {
                if std::hint::black_box(a) == std::hint::black_box(b) {
                    count += 1;
                }
                let j = arena.range_join(a, b);
                let w = arena.range_widen(a, j);
                count += usize::from(!arena.range_is_empty(w));
            }
        }
    }
    count
}

/// One prior group entry: name, median, and the recorded workload
/// size (`None` for trajectories predating the `work` field).
struct GroupEntry {
    name: String,
    median_ns: u128,
    work: Option<u128>,
}

/// The first integer after `key` inside `section`, if any.
fn number_after(section: &str, from: usize, key: &str) -> Option<(u128, usize)> {
    let bytes = section.as_bytes();
    let m = section[from..].find(key)? + from;
    let mut j = m + key.len();
    while j < bytes.len() && !bytes[j].is_ascii_digit() {
        j += 1;
    }
    let mut k = j;
    while k < bytes.len() && bytes[k].is_ascii_digit() {
        k += 1;
    }
    section[j..k].parse::<u128>().ok().map(|v| (v, k))
}

/// Extracts `"groups": { "<name>": { "median_ns": <n>, "work": <w> },
/// … }` from a prior trajectory JSON (hand-rolled: the workspace is
/// dependency-free, and the schema is our own). `work` is optional —
/// older trajectories never recorded it.
fn parse_groups(json: &str) -> Vec<GroupEntry> {
    let mut out = Vec::new();
    let Some(start) = json.find("\"groups\"") else {
        return out;
    };
    let rest = &json[start..];
    let end = rest.find("},\n  \"").map(|e| e + 1).unwrap_or(rest.len());
    let section = &rest[..end];
    let mut i = 0;
    while let Some(q) = section[i..].find('"').map(|k| i + k) {
        let Some(q2) = section[q + 1..].find('"').map(|k| q + 1 + k) else {
            break;
        };
        let name = &section[q + 1..q2];
        i = q2 + 1;
        if !name.contains('/') {
            continue;
        }
        // The group object runs to its closing brace; `median_ns` is
        // required, `work` optional.
        let obj_end = section[i..].find('}').map_or(section.len(), |k| i + k);
        let Some((median_ns, after)) = number_after(section, i, "\"median_ns\"") else {
            break;
        };
        let work = (after < obj_end)
            .then(|| number_after(&section[..obj_end], i, "\"work\"").map(|(v, _)| v))
            .flatten();
        out.push(GroupEntry {
            name: name.to_owned(),
            median_ns,
            work,
        });
        i = obj_end;
    }
    out
}

/// The newest `BENCH_N.json` at the repo root other than `out_path`.
fn previous_trajectory(out_path: &str) -> Option<(String, String)> {
    let mut best: Option<(u32, String)> = None;
    for entry in std::fs::read_dir(".").ok()?.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name == out_path {
            continue;
        }
        let Some(num) = name
            .strip_prefix("BENCH_")
            .and_then(|r| r.strip_suffix(".json"))
            .and_then(|n| n.parse::<u32>().ok())
        else {
            continue;
        };
        if best.as_ref().is_none_or(|(b, _)| num > *b) {
            best = Some((num, name));
        }
    }
    let (_, name) = best?;
    let contents = std::fs::read_to_string(&name).ok()?;
    Some((name, contents))
}

/// The demand-group workload: one function with thousands of pointers
/// in a dozen alias cliques — the shape where an eager all-pairs
/// matrix is millions of cells but any one query touches two
/// signatures.
const GIANT_PTRS: usize = 3_000;
const GIANT_CLIQUES: usize = 12;

/// The service traffic shape: smaller tenants than the scaling
/// workload (edits re-analyze a whole tenant per publish, and five
/// samples replay the full mixed phase each).
const SERVICE_TENANTS: usize = 4;
const SERVICE_INSTS: usize = 2_000;
const SERVICE_READERS: usize = 4;
const SERVICE_WRITERS: usize = 2;
const SERVICE_EDITS: usize = 4;
const SERVICE_QUERIES_PER_READER: usize = 2_000;

/// The warm-start workload: a million instructions across >10⁴
/// functions — the scale where re-analysis is minutes and a snapshot
/// load is seconds.
const PERSIST_INSTS: usize = 1_000_000;
/// Save/load samples. The loads are ~8 s each and deterministic, so
/// three samples bound the harness wall clock without losing the
/// median's noise rejection.
const PERSIST_SAMPLES: usize = 3;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_10.json".to_owned());

    let m = scaling::generate_module(SCALING_INSTS, SCALING_SEED);
    eprintln!(
        "workload: {} functions, {} instructions",
        m.num_functions(),
        m.num_insts()
    );

    // Group 1: the all-pairs evaluation paths.
    let rbaa = RbaaAnalysis::analyze(&m);
    let per_query = median_time(|| per_query_sweep(&m, &rbaa).queries);
    let batched = median_time(|| batched_sweep(&m, &rbaa, 4).queries);
    let batched_ratio = per_query.as_secs_f64() / batched.as_secs_f64();
    eprintln!("all_pairs: per_query {per_query:?}, batched_t4 {batched:?} ({batched_ratio:.2}x)");

    // The analysis' interning effectiveness on the scaling workload.
    let arena = rbaa.arena_stats();
    let hit_rate = if arena.hits + arena.misses == 0 {
        0.0
    } else {
        100.0 * arena.hits as f64 / (arena.hits + arena.misses) as f64
    };
    eprintln!(
        "arena: {} exprs, {} ranges, {} hits / {} misses ({hit_rate:.1}% hit rate), ~{} KiB",
        arena.exprs,
        arena.ranges,
        arena.hits,
        arena.misses,
        arena.bytes / 1024
    );

    // Group 2: the edit-stream replay paths. The session is built once
    // (the server's module-load cost) and each sample replays the
    // stream against a clone taken outside the timed region — the same
    // convention the all-pairs group uses by pre-building `rbaa`.
    let stream = edits::generate_replace_stream(&m, SESSION_EDITS, SCALING_SEED);
    let scratch = median_time(|| scratch_replay(&m, &stream));
    let base = build_session(&m);
    let mut replicas: Vec<_> = (0..=SAMPLES).map(|_| base.clone()).collect();
    let session = median_time(move || {
        let mut s = replicas.pop().expect("one replica per sample");
        session_replay(&mut s, &stream)
    });
    let session_ratio = scratch.as_secs_f64() / session.as_secs_f64();
    eprintln!(
        "session ({SESSION_EDITS} edits): scratch {scratch:?}, session {session:?} \
         ({session_ratio:.2}x)"
    );

    // Group 3: interned vs boxed on the equality/join-heavy lattice
    // sweep (deep min/max chains).
    let chains: Vec<SymRange> = (0..INTERNING_RANGES)
        .map(|i| deep_chain_range(INTERNING_DEPTH, i * 50))
        .collect();
    let boxed = median_time(|| boxed_lattice_sweep(&chains));
    let interned = median_time(|| interned_lattice_sweep(&chains));
    let interning_ratio = boxed.as_secs_f64() / interned.as_secs_f64();
    eprintln!(
        "interning ({INTERNING_RANGES} deep ranges): boxed {boxed:?}, interned {interned:?} \
         ({interning_ratio:.2}x)"
    );

    // Group 4: the alias-query service under traffic. The single-
    // threaded baseline queries a quiescent service; the mixed run
    // races SERVICE_READERS readers against SERVICE_WRITERS writers
    // replaying the per-tenant edit streams. `run_mixed` consumes the
    // streams, so each sample repopulates a fresh service outside its
    // timed region (the report's wall clock covers only the mixed
    // phase).
    let cfg = traffic::TrafficConfig {
        tenants: SERVICE_TENANTS,
        insts_per_tenant: SERVICE_INSTS,
        readers: SERVICE_READERS,
        writers: SERVICE_WRITERS,
        edits_per_tenant: SERVICE_EDITS,
        queries_per_reader: SERVICE_QUERIES_PER_READER,
        ..traffic::TrafficConfig::default()
    };
    let modules = traffic::build_tenants(&cfg);
    let streams = traffic::edit_streams(&cfg, &modules);
    let quiescent = AliasService::new();
    traffic::populate(&quiescent, modules.clone());
    let single_qps = {
        // Warm-up, then the median-by-throughput of SAMPLES runs.
        std::hint::black_box(traffic::single_thread_queries(
            &quiescent,
            &cfg,
            SERVICE_QUERIES_PER_READER,
        ));
        let mut runs: Vec<(usize, Duration)> = (0..SAMPLES)
            .map(|_| traffic::single_thread_queries(&quiescent, &cfg, SERVICE_QUERIES_PER_READER))
            .collect();
        runs.sort_by_key(|r| r.1);
        let (queries, wall) = runs[runs.len() / 2];
        (queries as f64 / wall.as_secs_f64().max(1e-9), wall)
    };
    let mixed = {
        let mut reports: Vec<traffic::TrafficReport> = (0..=SAMPLES)
            .map(|_| {
                let service = AliasService::new();
                traffic::populate(&service, modules.clone());
                traffic::run_mixed(&service, &cfg, &streams)
            })
            .collect();
        for r in &reports {
            assert_eq!(r.monotone_violations, 0, "a reader saw an epoch regression");
            assert_eq!(r.lookup_failures, 0, "a reader lost a registered tenant");
        }
        reports.remove(0); // warm-up
        reports.sort_by_key(|r| r.wall);
        reports.swap_remove(reports.len() / 2)
    };
    let service_ratio = mixed.queries_per_sec / single_qps.0;
    eprintln!(
        "service ({SERVICE_TENANTS} tenants, {SERVICE_READERS}r/{SERVICE_WRITERS}w, \
         {SERVICE_EDITS} edits each): single {:.0} q/s, mixed {:.0} q/s \
         ({service_ratio:.2}x), mixed p99 {} ns",
        single_qps.0, mixed.queries_per_sec, mixed.p99_ns
    );

    // Group 5: the O(P²) wall. Building the giant function's full
    // packed matrix vs answering one cold query through a fresh
    // demand cache (fresh per sample, so the measured cost includes
    // signature interning — the cache-miss path, not a warm memo hit).
    let giant = scaling::generate_giant_function(GIANT_PTRS, GIANT_CLIQUES, SCALING_SEED);
    let giant_f = giant.func_ids().next().expect("one giant function");
    let giant_rbaa = RbaaAnalysis::analyze(&giant);
    let giant_ptrs = pointer_values(&giant, giant_f);
    let (p, q) = (
        giant_ptrs[0],
        *giant_ptrs.last().expect("thousands of pointers"),
    );
    let matrix_build = median_time(|| {
        AliasMatrix::build_with(&giant_rbaa, &giant, giant_f, 4)
            .bytes()
            .pairs
    });
    let single_query = median_time(|| {
        let mut cache = giant_rbaa.demand_cache();
        usize::from(cache.query(&giant_rbaa, giant_f, p, q).0 == AliasResult::NoAlias)
    });
    let demand_ratio = matrix_build.as_secs_f64() / single_query.as_secs_f64();
    let giant_bytes = AliasMatrix::build_with(&giant_rbaa, &giant, giant_f, 4).bytes();
    eprintln!(
        "demand ({GIANT_PTRS} ptrs, {GIANT_CLIQUES} cliques): matrix build {matrix_build:?} \
         ({} pairs, {} KiB packed vs {} KiB unpacked), single query {single_query:?} \
         ({demand_ratio:.0}x)",
        giant_bytes.pairs,
        giant_bytes.packed_bytes / 1024,
        giant_bytes.unpacked_bytes / 1024
    );

    // Group 6: the source-to-verdict frontend. Capture the base text
    // *before* generating the stream (each step carries the full text
    // after its edit), then replay the same stream both ways.
    let mut src = source_edits::generate_sized_workload(SCALING_INSTS, SCALING_SEED);
    let src_text = src.text();
    let src_steps = src.tweak_stream(SESSION_EDITS);
    let src_program = SourceProgram::new(&src_text).expect("generated source compiles");
    eprintln!(
        "source workload: {} bytes, {} functions, {} instructions",
        src_text.len(),
        src_program.num_units(),
        src_program.module().num_insts()
    );
    let src_scratch = median_time(|| source_scratch_replay(&src_steps));
    let src_session_base = build_session(src_program.module());
    let mut src_replicas: Vec<_> = (0..=SAMPLES)
        .map(|_| (src_program.clone(), src_session_base.clone()))
        .collect();
    let src_session = median_time(move || {
        let (mut p, mut s) = src_replicas.pop().expect("one replica per sample");
        source_session_replay(&mut p, &mut s, &src_steps)
    });
    let source_ratio = src_scratch.as_secs_f64() / src_session.as_secs_f64();
    eprintln!(
        "source_edit ({SESSION_EDITS} tweaks): recompile+scratch {src_scratch:?}, \
         diff+session {src_session:?} ({source_ratio:.2}x)"
    );

    // Group 7: warm-start persistence at the million-instruction
    // scale. The scratch build is a single run — at minutes of wall
    // clock it dominates the harness, and run-to-run noise is
    // irrelevant next to the 10× gate.
    let big = scaling::generate_module(PERSIST_INSTS, SCALING_SEED);
    let persist_config = AnalysisConfig::builder().threads(PIPELINE_THREADS).build();
    eprintln!(
        "persist workload: {} functions, {} instructions",
        big.num_functions(),
        big.num_insts()
    );

    // Group 8: the fused scratch pipeline vs the legacy schedule, both
    // in-run at the same requested thread count. Each arm is tens of
    // seconds of memory-bound work and the host's effective bandwidth
    // drifts on that timescale, so a single back-to-back shot can skew
    // either way. Interleave two rounds (legacy, fused, legacy, fused)
    // and gate on the per-arm minima: the minimum of each arm is the
    // cleanest sample that arm got, and interleaving ensures both arms
    // saw the same host conditions.
    let mut legacy_build = Duration::MAX;
    let mut fused_build = Duration::MAX;
    let mut fused_phases = PhaseStats::default();
    for round in 0..2 {
        let t = Instant::now();
        let legacy_queries = std::hint::black_box(legacy_scratch_pipeline(&big, PIPELINE_THREADS));
        let legacy = t.elapsed();
        let t = Instant::now();
        let fused_batch = BatchAnalysis::analyze_with(&big, persist_config);
        let fused = t.elapsed();
        assert_eq!(
            fused_batch.total_stats().queries,
            legacy_queries,
            "the fused and legacy pipelines must answer identical sweeps"
        );
        if fused < fused_build {
            fused_phases = *fused_batch.phases();
        }
        drop(fused_batch);
        legacy_build = legacy_build.min(legacy);
        fused_build = fused_build.min(fused);
        eprintln!(
            "pipeline round {round}: legacy {legacy:?}, fused {fused:?} ({:.2}x)",
            legacy.as_secs_f64() / fused.as_secs_f64()
        );
    }
    let pipeline_ratio = legacy_build.as_secs_f64() / fused_build.as_secs_f64();
    eprintln!(
        "pipeline ({} insts, t{PIPELINE_THREADS}, min of 2 interleaved rounds): legacy \
         {legacy_build:?}, fused {fused_build:?} ({pipeline_ratio:.2}x); fused phases: \
         budget {:?}, parts {:?}, assemble {:?}, gr {:?}, matrices {:?}",
        big.num_insts(),
        Duration::from_nanos(fused_phases.budget_ns),
        Duration::from_nanos(fused_phases.parts_ns),
        Duration::from_nanos(fused_phases.assemble_ns),
        Duration::from_nanos(fused_phases.gr_ns),
        Duration::from_nanos(fused_phases.matrices_ns),
    );

    let t = Instant::now();
    let big_session = AnalysisSession::with_config(big.clone(), persist_config)
        .expect("generated modules verify");
    let scratch_build = t.elapsed();
    let snapshot = {
        let mut bytes = Vec::new();
        big_session.save(&mut bytes).expect("in-memory save");
        bytes
    };
    let save = {
        let mut times: Vec<Duration> = (0..PERSIST_SAMPLES)
            .map(|_| {
                let mut bytes = Vec::with_capacity(snapshot.len());
                let t = Instant::now();
                big_session.save(&mut bytes).expect("in-memory save");
                let elapsed = t.elapsed();
                assert_eq!(bytes, snapshot, "saves are byte-deterministic");
                elapsed
            })
            .collect();
        times.sort();
        times[times.len() / 2]
    };
    // One load, verified against a scratch re-analysis outside any
    // timed region, proves the revived state byte-identical; the timed
    // loads below skip the verify, exactly as a restart would.
    AnalysisSession::load(&mut snapshot.as_slice())
        .expect("snapshot loads")
        .verify_against_scratch()
        .expect("loaded state matches scratch re-analysis");
    let (big_f, big_p, big_q) = big
        .func_ids()
        .find_map(|f| {
            let ptrs = pointer_values(&big, f);
            (ptrs.len() >= 2).then(|| (f, ptrs[0], ptrs[1]))
        })
        .expect("the workload has pointer-heavy functions");
    let (load, first_query) = {
        let mut loads: Vec<Duration> = Vec::with_capacity(PERSIST_SAMPLES);
        let mut queries: Vec<Duration> = Vec::with_capacity(PERSIST_SAMPLES);
        for _ in 0..PERSIST_SAMPLES {
            let t = Instant::now();
            let revived = AnalysisSession::load(&mut snapshot.as_slice()).expect("snapshot loads");
            loads.push(t.elapsed());
            let t = Instant::now();
            std::hint::black_box(revived.alias_with_test(big_f, big_p, big_q));
            queries.push(t.elapsed());
        }
        loads.sort();
        queries.sort();
        (loads[loads.len() / 2], queries[queries.len() / 2])
    };
    let load_first_query = load + first_query;
    let persist_ratio =
        scratch_build.as_secs_f64() / (save.as_secs_f64() + load_first_query.as_secs_f64());
    let big_arena = big_session.analysis().arena_stats();
    let (mut big_pairs, mut big_packed, mut big_unpacked) = (0usize, 0usize, 0usize);
    for f in big.func_ids() {
        let mb = big_session.matrix(f).bytes();
        big_pairs += mb.pairs;
        big_packed += mb.packed_bytes;
        big_unpacked += mb.unpacked_bytes;
    }
    eprintln!(
        "persist ({} insts, {} funcs): scratch build {scratch_build:?}, save {save:?}, \
         load {load:?} + first query {first_query:?} ({persist_ratio:.1}x); snapshot {} MiB, \
         arena {} MiB, matrices {} MiB packed ({} MiB unpacked)",
        big.num_insts(),
        big.num_functions(),
        snapshot.len() >> 20,
        big_arena.bytes >> 20,
        big_packed >> 20,
        big_unpacked >> 20
    );
    drop(big_session);

    let json = format!(
        "{{\n  \"schema\": \"sra-bench-trajectory/v1\",\n  \"workload\": {{\n    \
         \"insts\": {SCALING_INSTS},\n    \"seed\": {SCALING_SEED},\n    \
         \"session_edits\": {SESSION_EDITS}\n  }},\n  \"groups\": {{\n    \
         \"all_pairs/per_query\": {{ \"median_ns\": {}, \"work\": {SCALING_INSTS} }},\n    \
         \"all_pairs/batched_t4\": {{ \"median_ns\": {}, \"work\": {SCALING_INSTS} }},\n    \
         \"session/scratch_per_edit\": {{ \"median_ns\": {}, \"work\": {SCALING_INSTS} }},\n    \
         \"session/session_per_edit\": {{ \"median_ns\": {}, \"work\": {SCALING_INSTS} }},\n    \
         \"interning/boxed\": {{ \"median_ns\": {}, \"work\": {INTERNING_RANGES} }},\n    \
         \"interning/interned\": {{ \"median_ns\": {}, \"work\": {INTERNING_RANGES} }},\n    \
         \"service/single_thread\": {{ \"median_ns\": {}, \"work\": {SERVICE_INSTS} }},\n    \
         \"service/mixed_{SERVICE_READERS}r{SERVICE_WRITERS}w\": \
         {{ \"median_ns\": {}, \"work\": {SERVICE_INSTS} }},\n    \
         \"demand/matrix_build_t4\": {{ \"median_ns\": {}, \"work\": {GIANT_PTRS} }},\n    \
         \"demand/single_query\": {{ \"median_ns\": {}, \"work\": {GIANT_PTRS} }},\n    \
         \"source_edit/scratch_per_edit\": {{ \"median_ns\": {}, \"work\": {SCALING_INSTS} }},\n    \
         \"source_edit/session_per_edit\": {{ \"median_ns\": {}, \"work\": {SCALING_INSTS} }},\n    \
         \"persist/scratch_build\": {{ \"median_ns\": {}, \"work\": {PERSIST_INSTS} }},\n    \
         \"persist/save\": {{ \"median_ns\": {}, \"work\": {PERSIST_INSTS} }},\n    \
         \"persist/load\": {{ \"median_ns\": {}, \"work\": {PERSIST_INSTS} }},\n    \
         \"persist/first_query\": {{ \"median_ns\": {}, \"work\": {PERSIST_INSTS} }},\n    \
         \"pipeline/legacy_scratch_t{PIPELINE_THREADS}\": \
         {{ \"median_ns\": {}, \"work\": {PERSIST_INSTS} }},\n    \
         \"pipeline/fused_scratch_t{PIPELINE_THREADS}\": \
         {{ \"median_ns\": {}, \"work\": {PERSIST_INSTS} }}\n  }},\n  \
         \"arena\": {{\n    \"exprs\": {},\n    \"ranges\": {},\n    \
         \"hits\": {},\n    \"misses\": {},\n    \"bytes\": {}\n  }},\n  \
         \"matrix\": {{\n    \"giant_ptrs\": {GIANT_PTRS},\n    \
         \"giant_cliques\": {GIANT_CLIQUES},\n    \
         \"pairs\": {},\n    \
         \"packed_bytes\": {},\n    \
         \"unpacked_bytes\": {},\n    \
         \"saving_ratio\": {:.2}\n  }},\n  \
         \"service\": {{\n    \"tenants\": {SERVICE_TENANTS},\n    \
         \"insts_per_tenant\": {SERVICE_INSTS},\n    \
         \"readers\": {SERVICE_READERS},\n    \
         \"writers\": {SERVICE_WRITERS},\n    \
         \"edits_per_tenant\": {SERVICE_EDITS},\n    \
         \"latency_method\": \"amortised 32-query sub-batches, nearest-rank percentiles\",\n    \
         \"single_thread_qps\": {:.1},\n    \
         \"mixed_qps\": {:.1},\n    \
         \"mixed_p50_ns\": {},\n    \
         \"mixed_p99_ns\": {},\n    \
         \"mixed_queries\": {},\n    \
         \"mixed_edits\": {}\n  }},\n  \
         \"persist\": {{\n    \"insts\": {},\n    \"funcs\": {},\n    \
         \"snapshot_bytes\": {},\n    \"arena_bytes\": {},\n    \
         \"matrix_pairs\": {big_pairs},\n    \
         \"matrix_packed_bytes\": {big_packed},\n    \
         \"matrix_unpacked_bytes\": {big_unpacked},\n    \
         \"load_verified\": true\n  }},\n  \
         \"pipeline\": {{\n    \"threads\": {PIPELINE_THREADS},\n    \
         \"fused_phases_ns\": {{\n      \"budget\": {},\n      \
         \"parts\": {},\n      \"assemble\": {},\n      \"gr\": {},\n      \
         \"matrices\": {}\n    }}\n  }},\n  \
         \"ratios\": {{\n    \"batched_vs_per_query\": {batched_ratio:.3},\n    \
         \"session_vs_scratch\": {session_ratio:.3},\n    \
         \"interning\": {interning_ratio:.3},\n    \
         \"service_vs_single_thread\": {service_ratio:.3},\n    \
         \"demand_vs_matrix_build\": {demand_ratio:.1},\n    \
         \"source_edit_vs_scratch\": {source_ratio:.3},\n    \
         \"persist_warm_vs_scratch\": {persist_ratio:.1},\n    \
         \"pipeline_fused_vs_legacy\": {pipeline_ratio:.3}\n  }},\n  \"floors\": {{\n    \
         \"batched_vs_per_query\": {BATCHED_FLOOR},\n    \
         \"session_vs_scratch\": {SESSION_FLOOR},\n    \
         \"interning\": {INTERNING_FLOOR},\n    \
         \"service_vs_single_thread\": {SERVICE_FLOOR},\n    \
         \"demand_vs_matrix_build\": {DEMAND_FLOOR},\n    \
         \"source_edit_vs_scratch\": {SOURCE_FLOOR},\n    \
         \"persist_warm_vs_scratch\": {PERSIST_FLOOR},\n    \
         \"pipeline_fused_vs_legacy\": {PIPELINE_FLOOR}\n  }},\n  \"gates\": {{\n    \
         \"batched_vs_per_query\": {BATCHED_FLOOR},\n    \
         \"session_vs_scratch\": {SESSION_GATE},\n    \
         \"interning\": {INTERNING_GATE},\n    \
         \"service_vs_single_thread\": {SERVICE_GATE},\n    \
         \"demand_vs_matrix_build\": {DEMAND_GATE},\n    \
         \"source_edit_vs_scratch\": {SOURCE_GATE},\n    \
         \"persist_warm_vs_scratch\": {PERSIST_GATE},\n    \
         \"pipeline_fused_vs_legacy\": {PIPELINE_GATE}\n  }}\n}}\n",
        per_query.as_nanos(),
        batched.as_nanos(),
        scratch.as_nanos(),
        session.as_nanos(),
        boxed.as_nanos(),
        interned.as_nanos(),
        single_qps.1.as_nanos(),
        mixed.wall.as_nanos(),
        matrix_build.as_nanos(),
        single_query.as_nanos(),
        src_scratch.as_nanos(),
        src_session.as_nanos(),
        scratch_build.as_nanos(),
        save.as_nanos(),
        load.as_nanos(),
        first_query.as_nanos(),
        legacy_build.as_nanos(),
        fused_build.as_nanos(),
        arena.exprs,
        arena.ranges,
        arena.hits,
        arena.misses,
        arena.bytes,
        giant_bytes.pairs,
        giant_bytes.packed_bytes,
        giant_bytes.unpacked_bytes,
        giant_bytes.saving_ratio(),
        single_qps.0,
        mixed.queries_per_sec,
        mixed.p50_ns,
        mixed.p99_ns,
        mixed.queries,
        mixed.edits,
        big.num_insts(),
        big.num_functions(),
        snapshot.len(),
        big_arena.bytes,
        fused_phases.budget_ns,
        fused_phases.parts_ns,
        fused_phases.assemble_ns,
        fused_phases.gr_ns,
        fused_phases.matrices_ns,
    );

    // The trajectory, not just the floor: diff against the previous
    // committed BENCH_N.json when one exists. Warnings only — absolute
    // medians are machine-dependent; the ratio gates below are the
    // portable contract.
    if let Some((prev_name, prev_json)) = previous_trajectory(&out_path) {
        let prev = parse_groups(&prev_json);
        let cur = parse_groups(&json);
        if prev.is_empty() {
            eprintln!("note: {prev_name} has no parsable groups; skipping the delta table");
        } else {
            eprintln!("\ntrajectory vs {prev_name}:");
            eprintln!(
                "{:<28} {:>12} {:>12} {:>8}",
                "group", "prev ns", "now ns", "delta"
            );
            for g in &cur {
                match prev.iter().find(|p| p.name == g.name) {
                    // A generator resize makes the medians
                    // incomparable: say so instead of printing a
                    // spurious ±%.
                    Some(p) if p.work.is_some() && g.work.is_some() && p.work != g.work => {
                        eprintln!(
                            "{:<28} {:>12} {:>12}  resized (work {} -> {})",
                            g.name,
                            p.median_ns,
                            g.median_ns,
                            p.work.unwrap_or(0),
                            g.work.unwrap_or(0)
                        );
                    }
                    Some(p) => {
                        let delta = g.median_ns as f64 / p.median_ns as f64 - 1.0;
                        eprintln!(
                            "{:<28} {:>12} {:>12} {:>+7.1}%",
                            g.name,
                            p.median_ns,
                            g.median_ns,
                            delta * 100.0
                        );
                        if delta > DELTA_WARN {
                            eprintln!(
                                "WARN: {} regressed {:.1}% vs {prev_name} (> {:.0}% \
                                 threshold); not gating — medians are machine-dependent",
                                g.name,
                                delta * 100.0,
                                DELTA_WARN * 100.0
                            );
                        }
                    }
                    // A group the previous trajectory never measured:
                    // list it as `new` rather than skipping it, so a
                    // PR adding a group shows up in the table.
                    None => eprintln!("{:<28} {:>12} {:>12}      new", g.name, "-", g.median_ns),
                }
            }
            // And the reverse: groups the previous trajectory had that
            // this run no longer measures.
            for p in &prev {
                if !cur.iter().any(|g| g.name == p.name) {
                    eprintln!("{:<28} {:>12} {:>12}     gone", p.name, p.median_ns, "-");
                }
            }
            eprintln!();
        }
    } else {
        eprintln!("note: no previous BENCH_N.json at the repo root; skipping the delta table");
    }

    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(2);
    });
    println!("wrote {out_path}");

    let mut failed = false;
    if batched_ratio < BATCHED_FLOOR {
        eprintln!(
            "FAIL: batched/per-query speedup {batched_ratio:.2}x is below the \
             {BATCHED_FLOOR}x acceptance floor"
        );
        failed = true;
    }
    if session_ratio < SESSION_GATE {
        eprintln!(
            "FAIL: session/scratch speedup {session_ratio:.2}x is below the \
             {SESSION_GATE}x regression gate"
        );
        failed = true;
    } else if session_ratio < SESSION_FLOOR {
        eprintln!(
            "WARN: session/scratch speedup {session_ratio:.2}x is below the \
             {SESSION_FLOOR}x acceptance floor (within runner-noise margin of the \
             {SESSION_GATE}x gate)"
        );
    }
    if interning_ratio < INTERNING_GATE {
        eprintln!(
            "FAIL: interned/boxed speedup {interning_ratio:.2}x is below the \
             {INTERNING_GATE}x regression gate"
        );
        failed = true;
    }
    if service_ratio < SERVICE_GATE {
        eprintln!(
            "FAIL: service mixed/single-thread throughput ratio {service_ratio:.2}x is \
             below the {SERVICE_GATE}x regression gate — readers are being blocked by \
             concurrent edits"
        );
        failed = true;
    } else if service_ratio < SERVICE_FLOOR {
        eprintln!(
            "WARN: service mixed/single-thread throughput ratio {service_ratio:.2}x is \
             below the {SERVICE_FLOOR}x acceptance floor (within runner-noise margin of \
             the {SERVICE_GATE}x gate)"
        );
    }
    if demand_ratio < DEMAND_GATE {
        eprintln!(
            "FAIL: demand single-query vs matrix-build ratio {demand_ratio:.2}x is below \
             the {DEMAND_GATE}x gate — demand mode is doing eager all-pairs work"
        );
        failed = true;
    }
    if source_ratio < SOURCE_GATE {
        eprintln!(
            "FAIL: source-edit diff+session vs recompile+scratch speedup {source_ratio:.2}x \
             is below the {SOURCE_GATE}x regression gate"
        );
        failed = true;
    } else if source_ratio < SOURCE_FLOOR {
        eprintln!(
            "WARN: source-edit diff+session vs recompile+scratch speedup {source_ratio:.2}x \
             is below the {SOURCE_FLOOR}x acceptance floor (within runner-noise margin of \
             the {SOURCE_GATE}x gate)"
        );
    }
    if persist_ratio < PERSIST_GATE {
        eprintln!(
            "FAIL: persist save+load+first-query vs scratch-build speedup \
             {persist_ratio:.1}x is below the {PERSIST_GATE}x gate — loading a snapshot \
             is doing re-analysis work"
        );
        failed = true;
    }
    if pipeline_ratio < PIPELINE_GATE {
        eprintln!(
            "FAIL: fused vs legacy scratch-pipeline speedup {pipeline_ratio:.2}x is below \
             the {PIPELINE_GATE}x regression gate"
        );
        failed = true;
    } else if pipeline_ratio < PIPELINE_FLOOR {
        eprintln!(
            "WARN: fused vs legacy scratch-pipeline speedup {pipeline_ratio:.2}x is below \
             the {PIPELINE_FLOOR}x acceptance floor (within runner-noise margin of the \
             {PIPELINE_GATE}x gate)"
        );
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "trajectory ok: batched {batched_ratio:.2}x (floor {BATCHED_FLOOR}x), \
         session {session_ratio:.2}x (floor {SESSION_FLOOR}x, gate {SESSION_GATE}x), \
         interning {interning_ratio:.2}x (floor {INTERNING_FLOOR}x), \
         service {:.0} q/s mixed at {SERVICE_READERS}r/{SERVICE_WRITERS}w \
         ({service_ratio:.2}x vs single thread, floor {SERVICE_FLOOR}x, \
         gate {SERVICE_GATE}x; p99 {} ns), \
         demand {demand_ratio:.0}x vs full matrix build (floor {DEMAND_FLOOR}x), \
         source_edit {source_ratio:.2}x vs recompile+scratch (floor {SOURCE_FLOOR}x, \
         gate {SOURCE_GATE}x), \
         persist {persist_ratio:.1}x warm start vs scratch build (floor {PERSIST_FLOOR}x), \
         pipeline {pipeline_ratio:.2}x fused vs legacy at t{PIPELINE_THREADS} \
         (floor {PIPELINE_FLOOR}x, gate {PIPELINE_GATE}x)",
        mixed.queries_per_sec, mixed.p99_ns
    );
}
