//! The CI perf-trajectory harness: times the throughput-critical paths
//! in quick mode, writes a machine-readable `BENCH_4.json`, and fails
//! (non-zero exit) when a speedup drops below its acceptance floor —
//! so CI both *publishes* the perf trajectory as an artifact and
//! *gates* on it.
//!
//! ```text
//! cargo run --release -p sra-bench --bin trajectory [out.json]
//! ```
//!
//! Measured groups (medians of 5 runs each, after a warm-up):
//!
//! * `all_pairs/per_query` vs `all_pairs/batched_t4` — the seed
//!   per-query path vs the batched+cached matrices (PR 2's ≥2× floor);
//! * `session/scratch_per_edit` vs `session/session_per_edit` — full
//!   re-analysis per edit vs the incremental session, over a stream of
//!   single-function edits on the 20k-instruction scaling module
//!   (this PR's ≥2× floor).

use std::time::{Duration, Instant};

use sra_bench::{batched_sweep, build_session, per_query_sweep, scratch_replay, session_replay};
use sra_core::RbaaAnalysis;
use sra_workloads::{edits, scaling};

const SCALING_INSTS: usize = 20_000;
const SCALING_SEED: u64 = 42;
const SESSION_EDITS: usize = 8;
const SAMPLES: usize = 5;
/// The acceptance floors recorded in the trajectory.
const BATCHED_FLOOR: f64 = 2.0;
const SESSION_FLOOR: f64 = 2.0;
/// The CI hard-fail gate for the session ratio sits below its floor:
/// the measured value (~2.4× on a quiet machine, see the committed
/// BENCH_4.json) clears the floor, but shared-runner timing variance
/// would make an exit-code gate at 2.0 flaky. Dropping below the floor
/// prints a loud warning; dropping below the gate (a real regression)
/// fails the job. The batched ratio's ~7× headroom needs no such
/// margin.
const SESSION_GATE: f64 = 1.5;

/// Median wall time of `SAMPLES` runs of `f` (one warm-up run first).
fn median_time(mut f: impl FnMut() -> usize) -> Duration {
    std::hint::black_box(f());
    let mut times: Vec<Duration> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_4.json".to_owned());

    let m = scaling::generate_module(SCALING_INSTS, SCALING_SEED);
    eprintln!(
        "workload: {} functions, {} instructions",
        m.num_functions(),
        m.num_insts()
    );

    // Group 1: the all-pairs evaluation paths.
    let rbaa = RbaaAnalysis::analyze(&m);
    let per_query = median_time(|| per_query_sweep(&m, &rbaa).queries);
    let batched = median_time(|| batched_sweep(&m, &rbaa, 4).queries);
    let batched_ratio = per_query.as_secs_f64() / batched.as_secs_f64();
    eprintln!("all_pairs: per_query {per_query:?}, batched_t4 {batched:?} ({batched_ratio:.2}x)");

    // Group 2: the edit-stream replay paths. The session is built once
    // (the server's module-load cost) and each sample replays the
    // stream against a clone taken outside the timed region — the same
    // convention the all-pairs group uses by pre-building `rbaa`.
    let stream = edits::generate_replace_stream(&m, SESSION_EDITS, SCALING_SEED);
    let scratch = median_time(|| scratch_replay(&m, &stream));
    let base = build_session(&m);
    let mut replicas: Vec<_> = (0..=SAMPLES).map(|_| base.clone()).collect();
    let session = median_time(move || {
        let mut s = replicas.pop().expect("one replica per sample");
        session_replay(&mut s, &stream)
    });
    let session_ratio = scratch.as_secs_f64() / session.as_secs_f64();
    eprintln!(
        "session ({SESSION_EDITS} edits): scratch {scratch:?}, session {session:?} \
         ({session_ratio:.2}x)"
    );

    let json = format!(
        "{{\n  \"schema\": \"sra-bench-trajectory/v1\",\n  \"workload\": {{\n    \
         \"insts\": {SCALING_INSTS},\n    \"seed\": {SCALING_SEED},\n    \
         \"session_edits\": {SESSION_EDITS}\n  }},\n  \"groups\": {{\n    \
         \"all_pairs/per_query\": {{ \"median_ns\": {} }},\n    \
         \"all_pairs/batched_t4\": {{ \"median_ns\": {} }},\n    \
         \"session/scratch_per_edit\": {{ \"median_ns\": {} }},\n    \
         \"session/session_per_edit\": {{ \"median_ns\": {} }}\n  }},\n  \
         \"ratios\": {{\n    \"batched_vs_per_query\": {batched_ratio:.3},\n    \
         \"session_vs_scratch\": {session_ratio:.3}\n  }},\n  \"floors\": {{\n    \
         \"batched_vs_per_query\": {BATCHED_FLOOR},\n    \
         \"session_vs_scratch\": {SESSION_FLOOR}\n  }},\n  \"gates\": {{\n    \
         \"batched_vs_per_query\": {BATCHED_FLOOR},\n    \
         \"session_vs_scratch\": {SESSION_GATE}\n  }}\n}}\n",
        per_query.as_nanos(),
        batched.as_nanos(),
        scratch.as_nanos(),
        session.as_nanos(),
    );
    std::fs::write(&out_path, json).unwrap_or_else(|e| {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(2);
    });
    println!("wrote {out_path}");

    let mut failed = false;
    if batched_ratio < BATCHED_FLOOR {
        eprintln!(
            "FAIL: batched/per-query speedup {batched_ratio:.2}x is below the \
             {BATCHED_FLOOR}x acceptance floor"
        );
        failed = true;
    }
    if session_ratio < SESSION_GATE {
        eprintln!(
            "FAIL: session/scratch speedup {session_ratio:.2}x is below the \
             {SESSION_GATE}x regression gate"
        );
        failed = true;
    } else if session_ratio < SESSION_FLOOR {
        eprintln!(
            "WARN: session/scratch speedup {session_ratio:.2}x is below the \
             {SESSION_FLOOR}x acceptance floor (within runner-noise margin of the \
             {SESSION_GATE}x gate)"
        );
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "trajectory ok: batched {batched_ratio:.2}x (floor {BATCHED_FLOOR}x), \
         session {session_ratio:.2}x (floor {SESSION_FLOOR}x, gate {SESSION_GATE}x)"
    );
}
