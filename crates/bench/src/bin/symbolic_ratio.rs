//! Regenerates the paper's **§5 census**: the share of pointers whose
//! ranges are *exclusively symbolic* — the argument for symbolic (not
//! integer) intervals. The paper measures 20.47% across its three
//! suites, concluding that classic (constant) value-set analyses could
//! not distinguish a fifth of the pointers.
//!
//! ```text
//! cargo run -p sra-bench --release --bin symbolic_ratio
//! ```

use sra_bench::{pct, render_table, thousands};
use sra_workloads::{harness, suite};

fn main() {
    let mut rows = Vec::new();
    let mut total = harness::Metrics::default();
    for bench in suite::benchmarks() {
        let module = bench
            .build()
            .unwrap_or_else(|e| panic!("benchmark {} failed to build: {e}", bench.name));
        let m = harness::evaluate(&module);
        rows.push(vec![
            bench.name.to_string(),
            thousands(m.ranged_ptrs),
            thousands(m.symbolic_range_ptrs),
            pct(m.symbolic_pct()),
        ]);
        total.merge(&m);
    }
    rows.push(vec![
        "Total".to_string(),
        thousands(total.ranged_ptrs),
        thousands(total.symbolic_range_ptrs),
        pct(total.symbolic_pct()),
    ]);
    println!("\n§5 census: pointers with symbolic (non-constant) ranges\n");
    println!(
        "{}",
        render_table(&["Program", "ranged ptrs", "symbolic", "%symbolic"], &rows)
    );
    println!(
        "Paper: 20.47% of pointers have exclusively symbolic ranges; a \
         numeric value-set analysis cannot distinguish them."
    );
}
