//! Shared table-formatting helpers for the experiment binaries.
//!
//! Each binary regenerates one artifact of the paper's evaluation:
//!
//! | binary           | paper artifact |
//! |------------------|----------------|
//! | `fig13`          | Figure 13: per-benchmark `%scev`/`%basic`/`%rbaa`/`%(r+b)` |
//! | `fig14`          | Figure 14: no-alias counts attributed to the global test |
//! | `fig15`          | Figure 15: runtime vs program size, with Pearson R |
//! | `symbolic_ratio` | §5: share of pointers with exclusively symbolic ranges |
//! | `ablation`       | design-choice ablations (descending steps, local test, widening) |
//!
//! Run with `cargo run -p sra-bench --release --bin <name>`.
//!
//! The criterion benches (`cargo bench -p sra-bench`) cover the
//! lattice operations (`lattice`), whole-pipeline analysis
//! (`analysis`), and the batch driver (`throughput`: serial vs
//! parallel analysis, per-query vs batched+cached all-pairs
//! evaluation, with a printed `speedup:` summary).

use std::fmt::Write as _;

use sra_core::{
    lr, pointer_values, pool, AliasMatrix, AnalysisConfig, AnalysisSession, BatchAnalysis,
    GrAnalysis, GrConfig, LrAnalysis, LrPart, QueryStats, RbaaAnalysis,
};
use sra_ir::{FuncId, Module};
use sra_lang::SourceProgram;
use sra_range::{RangeAnalysis, RangePart};
use sra_symbolic::{Bound, SymExpr, SymRange, Symbol};
use sra_workloads::edits::{self, Edit};
use sra_workloads::source_edits::SourceEditStep;

/// A range whose endpoints are `depth`-deep opaque min/max chains over
/// pairwise-incomparable symbols — the worst case for boxed deep
/// equality and for join's `Bound::min`/`max` re-proving. Shared by
/// the `lattice` criterion groups and the `trajectory` interning gate
/// so both always measure the same workload shape.
pub fn deep_chain_range(depth: u32, seed: u32) -> SymRange {
    let mut lo = SymExpr::from(Symbol::new(seed));
    let mut hi = SymExpr::from(Symbol::new(seed + 1));
    for i in 0..depth {
        lo = SymExpr::min(SymExpr::from(Symbol::new(seed + 2 + i)), lo);
        hi = SymExpr::max(SymExpr::from(Symbol::new(seed + 2 + i)), hi);
    }
    SymRange::with_bounds(Bound::Fin(lo), Bound::Fin(hi))
}

/// The seed all-pairs path: every unordered pair answered from scratch
/// through `alias_with_test`, function after function. Shared by the
/// `throughput` bench and the acceptance test so both always measure
/// the same sweep.
pub fn per_query_sweep(m: &Module, rbaa: &RbaaAnalysis) -> QueryStats {
    let mut total = QueryStats::default();
    for f in m.func_ids() {
        let ptrs = pointer_values(m, f);
        total.merge(&QueryStats::run_pairs(rbaa, f, &ptrs));
    }
    total
}

/// The batched all-pairs path: one cached [`AliasMatrix`] per function,
/// built on `threads` workers with hash-consed range comparisons.
pub fn batched_sweep(m: &Module, rbaa: &RbaaAnalysis, threads: usize) -> QueryStats {
    let matrices = pool::run_indexed(m.num_functions(), threads, |i| {
        AliasMatrix::build(rbaa, m, FuncId::new(i))
    });
    let mut total = QueryStats::default();
    for mx in &matrices {
        total.merge(mx.stats());
    }
    total
}

/// The scratch side of the edit-stream workload: apply each edit to a
/// plain module and re-run the full batch analysis (what a server
/// without sessions would do). Returns the summed query count as a
/// keep-alive value.
pub fn scratch_replay(m: &Module, stream: &[Edit]) -> usize {
    let mut shadow = m.clone();
    let mut total = 0usize;
    for edit in stream {
        edits::apply_to_module(&mut shadow, edit).expect("stream edits are valid");
        let batch = BatchAnalysis::analyze_with(&shadow, AnalysisConfig::default());
        total += batch.total_stats().queries;
    }
    total
}

/// Builds the long-lived session a server would keep per module (the
/// one-time load cost, paid outside the per-edit measurements — the
/// same convention the all-pairs measurements use by pre-building
/// `rbaa` once and timing only the sweeps).
pub fn build_session(m: &Module) -> AnalysisSession {
    AnalysisSession::with_config(m.clone(), AnalysisConfig::default()).expect("module verifies")
}

/// The session side of the edit-stream workload: incremental updates
/// against a pre-built session (clone one per replay from
/// [`build_session`]'s result). Verdict-for-verdict identical to
/// [`scratch_replay`] — the `session_equivalence` suite pins that —
/// so only wall time differs.
pub fn session_replay(session: &mut AnalysisSession, stream: &[Edit]) -> usize {
    let mut total = 0usize;
    for edit in stream {
        edits::apply_to_session(session, edit).expect("stream edits are valid");
        total += session
            .module()
            .func_ids()
            .map(|f| session.stats_of(f).queries)
            .sum::<usize>();
    }
    total
}

/// The scratch side of the *textual* edit-stream workload: recompile
/// the whole program text and re-run the full batch analysis after
/// every edit (what a server without the incremental frontend would
/// do). Returns the summed query count as a keep-alive value.
pub fn source_scratch_replay(steps: &[SourceEditStep]) -> usize {
    let mut total = 0usize;
    for step in steps {
        let module = sra_lang::compile(&step.text).expect("stream text compiles");
        let batch = BatchAnalysis::analyze_with(&module, AnalysisConfig::default());
        total += batch.total_stats().queries;
    }
    total
}

/// The incremental side of the textual workload: diff each new text at
/// function granularity, re-lower only changed units, and map the diff
/// onto a pre-built session (clone the program and session per replay
/// — the server's load cost stays outside the timed region). The cost
/// measured here is honest about the incremental pipeline's overheads:
/// it includes tokenizing the whole text to diff it and re-lowering
/// the changed functions, not just the session update.
pub fn source_session_replay(
    program: &mut SourceProgram,
    session: &mut AnalysisSession,
    steps: &[SourceEditStep],
) -> usize {
    let mut total = 0usize;
    for step in steps {
        let diff = program
            .apply_edit(&step.text)
            .expect("stream text compiles");
        session
            .apply_source_edit(diff)
            .expect("session accepts registry diffs");
        total += session
            .module()
            .func_ids()
            .map(|f| session.stats_of(f).queries)
            .sum::<usize>();
    }
    total
}

/// The pre-fusion scratch pipeline, replicated from public building
/// blocks: a one-shot thread pool per phase (budget scan, part
/// analyses, matrix builds), fully serial canonical-arena assembly,
/// and a forced-width pool per GR solve — the exact schedule the
/// BENCH_9-era driver ran. The `trajectory` harness keeps it as the
/// `pipeline` group's legacy arm so the fused persistent-pool driver's
/// speedup is measured in-run on the same machine, not against a stale
/// JSON. Returns the summed query count as a keep-alive value.
pub fn legacy_scratch_pipeline(m: &Module, threads: usize) -> usize {
    let config = AnalysisConfig::builder().threads(threads).build();
    let nf = m.num_functions();
    let budgets: Vec<(usize, usize)> = pool::run_indexed(nf, threads, |i| {
        let fid = FuncId::new(i);
        (
            sra_range::symbol_budget(m.function(fid), config.range),
            lr::symbol_budget(m, fid),
        )
    });
    let mut range_bases = Vec::with_capacity(nf);
    let mut lr_bases = Vec::with_capacity(nf);
    let (mut rb, mut lb) = (0u32, 0u32);
    for &(r, l) in &budgets {
        range_bases.push(rb);
        lr_bases.push(lb);
        rb += r as u32;
        lb += l as u32;
    }
    let parts: Vec<(RangePart, LrPart)> = pool::run_indexed(nf, threads, |i| {
        let fid = FuncId::new(i);
        (
            sra_range::analyze_function_part(m.function(fid), config.range, range_bases[i]),
            lr::analyze_function_part(m, fid, lr_bases[i]),
        )
    });
    let mut range_parts = Vec::with_capacity(nf);
    let mut lr_parts = Vec::with_capacity(nf);
    for (r, l) in parts {
        range_parts.push(r);
        lr_parts.push(l);
    }
    let ranges = RangeAnalysis::from_parts(range_parts);
    let lrs = LrAnalysis::from_parts(lr_parts);
    let gr_config = GrConfig {
        threads: config.threads,
        ..config.gr
    };
    let gr = GrAnalysis::analyze_with(m, &ranges, gr_config);
    let rbaa = RbaaAnalysis::from_pieces(ranges, gr, lrs);
    let matrices = pool::run_indexed(nf, threads, |i| {
        AliasMatrix::build_with(&rbaa, m, FuncId::new(i), 1)
    });
    matrices.iter().map(|mx| mx.stats().queries).sum()
}

/// Renders a plain-text table: a header row plus aligned data rows.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut width = vec![0usize; cols];
    for (i, h) in header.iter().enumerate() {
        width[i] = h.len();
    }
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            width[i] = width[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let mut line = String::new();
    for (i, h) in header.iter().enumerate() {
        let _ = write!(line, "{:<w$}  ", h, w = width[i]);
    }
    out.push_str(line.trim_end());
    out.push('\n');
    let total: usize = width.iter().sum::<usize>() + 2 * cols;
    out.push_str(&"-".repeat(total.saturating_sub(2)));
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        for (i, cell) in row.iter().enumerate() {
            if i == 0 {
                let _ = write!(line, "{:<w$}  ", cell, w = width[i]);
            } else {
                let _ = write!(line, "{:>w$}  ", cell, w = width[i]);
            }
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Formats a percentage like the paper's tables (two decimals).
pub fn pct(x: f64) -> String {
    format!("{:.2}", x)
}

/// Formats a count with thousands separators, e.g. `3,093,541`.
pub fn thousands(mut n: usize) -> String {
    let mut parts = Vec::new();
    loop {
        if n < 1000 {
            parts.push(n.to_string());
            break;
        }
        parts.push(format!("{:03}", n % 1000));
        n /= 1000;
    }
    parts.reverse();
    parts.join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thousands_grouping() {
        assert_eq!(thousands(0), "0");
        assert_eq!(thousands(999), "999");
        assert_eq!(thousands(1000), "1,000");
        assert_eq!(thousands(3093541), "3,093,541");
    }

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["Program", "#Queries"],
            &[
                vec!["cfrac".into(), "89,255".into()],
                vec!["gs".into(), "608,374".into()],
            ],
        );
        assert!(t.contains("Program"));
        assert!(t.lines().count() == 4);
        // Numeric column is right-aligned.
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines[2].ends_with("89,255"));
    }

    #[test]
    fn pct_two_decimals() {
        assert_eq!(pct(41.7341), "41.73");
        assert_eq!(pct(0.0), "0.00");
    }
}
