//! Asserts the batch-driver acceptance criterion: batched+cached
//! all-pairs evaluation at 4 threads beats the seed per-query path by
//! ≥ 2× on the `scaling` workload.
//!
//! Wall-clock assertions are load-sensitive, so this is excluded from
//! tier-1; run it explicitly (release, otherwise constant factors
//! swamp the comparison):
//!
//! ```text
//! cargo test -q --release -p sra-bench --test throughput_speedup -- --ignored
//! ```

use sra_bench::{batched_sweep, per_query_sweep};
use sra_core::RbaaAnalysis;
use sra_workloads::scaling;

#[test]
#[ignore = "wall-clock assertion; run explicitly in --release"]
fn batched_beats_per_query_2x_at_4_threads() {
    let m = scaling::generate_module(20_000, 42);
    let rbaa = RbaaAnalysis::analyze(&m);
    // Warm-up.
    std::hint::black_box(per_query_sweep(&m, &rbaa));
    std::hint::black_box(batched_sweep(&m, &rbaa, 4));

    // Best-of-3 per path damps scheduler noise.
    let per_query = (0..3)
        .map(|_| {
            let t = std::time::Instant::now();
            std::hint::black_box(per_query_sweep(&m, &rbaa));
            t.elapsed()
        })
        .min()
        .unwrap();
    let batched = (0..3)
        .map(|_| {
            let t = std::time::Instant::now();
            std::hint::black_box(batched_sweep(&m, &rbaa, 4));
            t.elapsed()
        })
        .min()
        .unwrap();

    assert_eq!(
        per_query_sweep(&m, &rbaa),
        batched_sweep(&m, &rbaa, 4),
        "both paths must report identical stats"
    );
    let speedup = per_query.as_secs_f64() / batched.as_secs_f64();
    println!("speedup: {speedup:.2}x ({batched:?} vs {per_query:?})");
    assert!(
        speedup >= 2.0,
        "batched+cached all-pairs must be ≥2× the per-query path, got {speedup:.2}x \
         ({batched:?} vs {per_query:?})"
    );
}
