//! Acceptance rails for the SCC-wave-scheduled GR on the
//! many-function call-graph workload:
//!
//! * **byte-identity** (tier-1): the wave schedule returns exactly the
//!   serial schedule's states — here on the big bench workload, with
//!   the property-test rail (`tests/gr_schedule_equivalence.rs`)
//!   covering random modules;
//! * **convergence** (tier-1): the alternating condensation order
//!   converges in O(1) ascending sweeps on call DAGs whose depth far
//!   exceeds the ascending cap — the cap would have tripped (and
//!   flushed every join to ⊤) under any fixed one-directional order;
//! * **speedup** (`--ignored`, wall-clock): waves beat the serial
//!   baseline when the machine actually has cores to spread over.
//!
//! ```text
//! cargo test -q --release -p sra-bench --test gr_waves -- --ignored
//! ```

use sra_core::{GrAnalysis, GrConfig, GrSchedule};
use sra_range::RangeAnalysis;
use sra_workloads::scaling;

const FUNCS: usize = 600;
const SEED: u64 = 42;

fn serial_config() -> GrConfig {
    GrConfig {
        schedule: GrSchedule::Serial,
        threads: 1,
        ..GrConfig::default()
    }
}

fn waves_config(threads: usize) -> GrConfig {
    GrConfig {
        schedule: GrSchedule::Waves,
        threads,
        ..GrConfig::default()
    }
}

#[test]
fn waves_are_byte_identical_to_serial_on_bench_workload() {
    let m = scaling::generate_call_graph_module(FUNCS, SEED);
    let ranges = RangeAnalysis::analyze(&m);
    let serial = GrAnalysis::analyze_with(&m, &ranges, serial_config());
    let waves = GrAnalysis::analyze_with(&m, &ranges, waves_config(4));
    assert_eq!(serial.ascending_sweeps(), waves.ascending_sweeps());
    for f in m.func_ids() {
        for v in m.function(f).value_ids() {
            assert_eq!(serial.state(f, v), waves.state(f, v), "{f} {v}");
        }
    }
}

#[test]
fn deep_call_graph_converges_in_constant_sweeps() {
    let m = scaling::generate_call_graph_module(FUNCS, SEED);
    let cond = sra_ir::callgraph::Condensation::of_module(&m);
    let ranges = RangeAnalysis::analyze(&m);
    let gr = GrAnalysis::analyze_with(&m, &ranges, waves_config(4));
    let depth = cond.levels().len() as u32;
    assert!(
        depth > GrConfig::default().max_ascending_sweeps / 2,
        "workload too shallow to be interesting: {depth} levels"
    );
    assert!(
        gr.ascending_sweeps() <= 8,
        "condensation schedule should converge in O(1) sweeps on a \
         {depth}-level call graph, took {}",
        gr.ascending_sweeps()
    );
}

/// Wall-clock comparison; meaningful only with real cores, so the
/// speedup bar scales with the machine and the test is `--ignored`
/// like the other timing rails.
#[test]
#[ignore = "wall-clock assertion; run explicitly in --release"]
fn waves_beat_serial_gr_given_cores() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let m = scaling::generate_call_graph_module(FUNCS, SEED);
    let ranges = RangeAnalysis::analyze(&m);
    // Warm-up.
    std::hint::black_box(GrAnalysis::analyze_with(&m, &ranges, serial_config()));
    std::hint::black_box(GrAnalysis::analyze_with(&m, &ranges, waves_config(4)));

    let time = |config: GrConfig| {
        (0..3)
            .map(|_| {
                let t = std::time::Instant::now();
                std::hint::black_box(GrAnalysis::analyze_with(&m, &ranges, config));
                t.elapsed()
            })
            .min()
            .unwrap()
    };
    let serial = time(serial_config());
    let waves = time(waves_config(cores.min(4)));
    let speedup = serial.as_secs_f64() / waves.as_secs_f64();
    println!(
        "gr waves speedup at {} threads: {speedup:.2}x ({waves:?} vs {serial:?}, {} cores)",
        cores.min(4),
        cores
    );
    if cores >= 4 {
        assert!(
            speedup >= 1.2,
            "waves must beat serial GR by ≥1.2x on ≥4 cores, got {speedup:.2}x"
        );
    } else if cores >= 2 {
        assert!(
            speedup >= 1.05,
            "waves must beat serial GR on ≥2 cores, got {speedup:.2}x"
        );
    } else {
        // Single core: the schedule cannot win wall-clock; it must at
        // least stay close to serial despite the state hand-off.
        assert!(
            speedup >= 0.7,
            "waves must not collapse on one core, got {speedup:.2}x"
        );
    }
}
