//! Concrete interpreter for the SSA IR — the soundness oracle.
//!
//! Executes modules with a provenance-tracking memory model: every
//! allocation yields a fresh *chunk*, and a pointer is a `(chunk,
//! offset)` pair, so "do these two pointers reference overlapping
//! memory?" has an exact dynamic answer. The interpreter records every
//! address each pointer-typed SSA value takes during execution; property
//! tests compare those observations against the static analyses'
//! `NoAlias` claims:
//!
//! * a **global** `NoAlias` (disjoint abstract address sets) must imply
//!   the observed address sets are disjoint across the *whole*
//!   execution;
//! * a **local** `NoAlias` (same renamed base, disjoint offsets) is the
//!   paper's weaker "not at the same moment" guarantee (§4): the `k`-th
//!   definitions of the two values within one frame must not collide —
//!   see [`Interp::aligned_conflict`].
//!
//! Execution traps on undefined behaviour (out-of-bounds access,
//! use-after-free, division by zero). The paper's analyses are sound
//! only for UB-free programs, so tests discard trapping runs.
//!
//! # Examples
//!
//! ```
//! use sra_interp::{Interp, Value};
//! use sra_ir::{FunctionBuilder, Module, Ty};
//!
//! let mut b = FunctionBuilder::new("main", &[], Some(Ty::Int));
//! let n = b.const_int(3);
//! let p = b.malloc(n);
//! let seven = b.const_int(7);
//! b.store(p, seven);
//! let x = b.load(p, Ty::Int);
//! b.ret(Some(x));
//! let mut m = Module::new();
//! let fid = m.add_function(b.finish());
//!
//! let mut interp = Interp::new(&m);
//! let result = interp.run(fid, &[]).expect("no trap");
//! assert_eq!(result.ret, Some(Value::Int(7)));
//! ```

use std::collections::HashMap;

use sra_ir::{BinOp, BlockId, Callee, FuncId, Inst, Module, Terminator, Ty, ValueId, ValueKind};

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Value {
    /// An integer.
    Int(i128),
    /// A pointer: provenance chunk plus cell offset.
    Ptr(Pointer),
    /// An uninitialized cell.
    Undef,
}

/// A concrete pointer with provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pointer {
    /// Which allocation the pointer derives from.
    pub chunk: u32,
    /// Cell offset within (or out of bounds of) the chunk.
    pub offset: i64,
}

/// Why execution stopped abnormally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trap {
    /// Load or store outside the bounds of a chunk.
    OutOfBounds,
    /// Access through a pointer into a freed chunk.
    UseAfterFree,
    /// Integer division or remainder by zero.
    DivByZero,
    /// The step budget was exhausted (likely an infinite loop).
    OutOfFuel,
    /// Dereference of a non-pointer (e.g. an uninitialized cell).
    BadPointer,
    /// The call stack grew past the limit.
    StackOverflow,
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Trap::OutOfBounds => "out-of-bounds memory access",
            Trap::UseAfterFree => "use after free",
            Trap::DivByZero => "division by zero",
            Trap::OutOfFuel => "step budget exhausted",
            Trap::BadPointer => "dereference of a non-pointer value",
            Trap::StackOverflow => "call stack overflow",
        };
        write!(f, "{}", s)
    }
}

impl std::error::Error for Trap {}

/// Result of a successful run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// The value returned by the entry function.
    pub ret: Option<Value>,
    /// Instructions executed.
    pub steps: u64,
}

/// One recorded definition of a pointer value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefEvent {
    /// Which function invocation (frame) performed the definition.
    pub frame: u64,
    /// The address the value was bound to (`None` when non-address,
    /// e.g. an `Undef` load result).
    pub addr: Option<Pointer>,
}

#[derive(Debug)]
struct Chunk {
    cells: Vec<Value>,
    freed: bool,
}

/// The interpreter. Holds memory, external-call scripts and the
/// observation log; reusable across runs (observations accumulate).
#[derive(Debug)]
pub struct Interp<'a> {
    m: &'a Module,
    chunks: Vec<Chunk>,
    globals: HashMap<usize, u32>,
    externals: HashMap<String, Vec<i128>>,
    ext_cursor: HashMap<String, usize>,
    observations: HashMap<(FuncId, ValueId), Vec<DefEvent>>,
    fuel: u64,
    max_stack: usize,
    next_frame: u64,
    steps: u64,
}

impl<'a> Interp<'a> {
    /// Creates an interpreter for `m` with a default fuel of 1M steps.
    pub fn new(m: &'a Module) -> Self {
        let mut interp = Interp {
            m,
            chunks: Vec::new(),
            globals: HashMap::new(),
            externals: HashMap::new(),
            ext_cursor: HashMap::new(),
            observations: HashMap::new(),
            fuel: 1_000_000,
            max_stack: 256,
            next_frame: 0,
            steps: 0,
        };
        for g in m.global_ids() {
            let size = m.global(g).size().max(0) as usize;
            let chunk = interp.alloc_chunk(size);
            interp.globals.insert(g.index(), chunk);
        }
        interp
    }

    /// Sets the step budget.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Scripts the integer results of an external function: successive
    /// calls consume successive entries (cycling). Unscripted externals
    /// return 0 (or a fresh 64-cell chunk for pointer results).
    pub fn script_external(&mut self, name: &str, results: Vec<i128>) {
        self.externals.insert(name.to_owned(), results);
    }

    /// Runs function `f` with `args`.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] on undefined behaviour or resource
    /// exhaustion.
    pub fn run(&mut self, f: FuncId, args: &[Value]) -> Result<RunResult, Trap> {
        let start = self.steps;
        let ret = self.call(f, args, 0)?;
        Ok(RunResult {
            ret,
            steps: self.steps - start,
        })
    }

    /// Every address value `v` of function `f` was observed to hold, in
    /// definition order, across all recorded runs.
    pub fn defs(&self, f: FuncId, v: ValueId) -> &[DefEvent] {
        self.observations
            .get(&(f, v))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The set of all addresses `v` ever held.
    pub fn address_set(&self, f: FuncId, v: ValueId) -> std::collections::HashSet<Pointer> {
        self.defs(f, v).iter().filter_map(|e| e.addr).collect()
    }

    /// Did the whole-execution address sets of `p` and `q` intersect?
    /// (Oracle for *global* `NoAlias` claims.)
    pub fn global_conflict(&self, f: FuncId, p: ValueId, q: ValueId) -> bool {
        let a = self.address_set(f, p);
        if a.is_empty() {
            return false;
        }
        self.address_set(f, q).iter().any(|x| a.contains(x))
    }

    /// Did the `k`-th definitions of `p` and `q` within any common frame
    /// collide? (Oracle for *local* `NoAlias` claims — the paper's
    /// "same moment" semantics: aligned definitions belong to the same
    /// instance of the enclosing region.)
    pub fn aligned_conflict(&self, f: FuncId, p: ValueId, q: ValueId) -> bool {
        /// Addresses one value took within a frame, in definition order.
        type AddrTrace = Vec<Option<Pointer>>;
        let mut per_frame: HashMap<u64, (AddrTrace, AddrTrace)> = HashMap::new();
        for e in self.defs(f, p) {
            per_frame.entry(e.frame).or_default().0.push(e.addr);
        }
        for e in self.defs(f, q) {
            per_frame.entry(e.frame).or_default().1.push(e.addr);
        }
        for (_, (ps, qs)) in per_frame {
            for (a, b) in ps.iter().zip(qs.iter()) {
                if let (Some(a), Some(b)) = (a, b) {
                    if a == b {
                        return true;
                    }
                }
            }
        }
        false
    }

    // ------------------------------------------------------------------

    fn alloc_chunk(&mut self, size: usize) -> u32 {
        let id = self.chunks.len() as u32;
        self.chunks.push(Chunk {
            cells: vec![Value::Int(0); size],
            freed: false,
        });
        id
    }

    fn ext_int(&mut self, name: &str) -> i128 {
        let Some(script) = self.externals.get(name) else {
            return 0;
        };
        if script.is_empty() {
            return 0;
        }
        let cursor = self.ext_cursor.entry(name.to_owned()).or_insert(0);
        let v = script[*cursor % script.len()];
        *cursor += 1;
        v
    }

    fn call(&mut self, fid: FuncId, args: &[Value], depth: usize) -> Result<Option<Value>, Trap> {
        if depth >= self.max_stack {
            return Err(Trap::StackOverflow);
        }
        let f = self.m.function(fid);
        let frame = self.next_frame;
        self.next_frame += 1;
        let mut regs: Vec<Option<Value>> = vec![None; f.num_values()];
        for (i, &p) in f.params().iter().enumerate() {
            let v = args.get(i).copied().unwrap_or(Value::Undef);
            regs[p.index()] = Some(v);
            self.observe(fid, p, frame, v);
        }
        // Constants and global addresses.
        for v in f.value_ids() {
            match f.value(v).kind() {
                ValueKind::Const(c) => regs[v.index()] = Some(Value::Int(*c as i128)),
                ValueKind::GlobalAddr(g) => {
                    let chunk = self.globals[&g.index()];
                    regs[v.index()] = Some(Value::Ptr(Pointer { chunk, offset: 0 }));
                }
                _ => {}
            }
        }

        let mut block = f.entry();
        let mut prev: Option<BlockId> = None;
        loop {
            // φ-functions evaluate atomically from the incoming edge.
            let insts = f.block(block).insts();
            let mut phi_vals: Vec<(ValueId, Value)> = Vec::new();
            for &v in insts {
                if let Some(Inst::Phi { args, .. }) = f.value(v).as_inst() {
                    let pred = prev.expect("φ in entry block");
                    let (_, av) = args
                        .iter()
                        .find(|(b, _)| *b == pred)
                        .expect("φ covers predecessor");
                    let val = regs[av.index()].unwrap_or(Value::Undef);
                    phi_vals.push((v, val));
                } else {
                    break;
                }
            }
            for (v, val) in phi_vals {
                regs[v.index()] = Some(val);
                self.observe(fid, v, frame, val);
                self.tick()?;
            }

            let insts = f.block(block).insts().to_vec();
            for v in insts {
                let Some(inst) = f.value(v).as_inst() else {
                    continue;
                };
                if inst.is_phi() {
                    continue;
                }
                self.tick()?;
                let inst = inst.clone();
                let val = self.exec_inst(&mut regs, &inst, depth)?;
                if let Some(val) = val {
                    regs[v.index()] = Some(val);
                    self.observe(fid, v, frame, val);
                }
            }

            self.tick()?;
            match f.block(block).terminator() {
                Terminator::Jump(t) => {
                    prev = Some(block);
                    block = *t;
                }
                Terminator::Br {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let c = match regs[cond.index()] {
                        Some(Value::Int(i)) => i != 0,
                        _ => return Err(Trap::BadPointer),
                    };
                    prev = Some(block);
                    block = if c { *then_bb } else { *else_bb };
                }
                Terminator::Ret(v) => {
                    return Ok(v.map(|v| regs[v.index()].unwrap_or(Value::Undef)));
                }
            }
        }
    }

    fn exec_inst(
        &mut self,
        regs: &mut [Option<Value>],
        inst: &Inst,
        depth: usize,
    ) -> Result<Option<Value>, Trap> {
        let get = |regs: &[Option<Value>], x: ValueId| regs[x.index()].unwrap_or(Value::Undef);
        let get_int = |regs: &[Option<Value>], x: ValueId| -> i128 {
            match get(regs, x) {
                Value::Int(i) => i,
                _ => 0, // undef int reads as 0 (deterministic)
            }
        };
        Ok(match inst {
            Inst::Malloc { size } | Inst::Alloca { size } => {
                let n = get_int(regs, *size).clamp(0, 1 << 20) as usize;
                let chunk = self.alloc_chunk(n);
                Some(Value::Ptr(Pointer { chunk, offset: 0 }))
            }
            Inst::Free { ptr } => match get(regs, *ptr) {
                Value::Ptr(p) => {
                    if let Some(c) = self.chunks.get_mut(p.chunk as usize) {
                        c.freed = true;
                    }
                    Some(Value::Ptr(p))
                }
                _ => Some(Value::Undef),
            },
            Inst::PtrAdd { base, offset } => match get(regs, *base) {
                Value::Ptr(p) => {
                    let off = get_int(regs, *offset);
                    let new = p.offset as i128 + off;
                    Some(Value::Ptr(Pointer {
                        chunk: p.chunk,
                        offset: new.clamp(i64::MIN as i128, i64::MAX as i128) as i64,
                    }))
                }
                _ => Some(Value::Undef),
            },
            Inst::IntBin { op, lhs, rhs } => {
                let a = get_int(regs, *lhs);
                let b = get_int(regs, *rhs);
                let r = match op {
                    BinOp::Add => a.saturating_add(b),
                    BinOp::Sub => a.saturating_sub(b),
                    BinOp::Mul => a.saturating_mul(b),
                    BinOp::Div => {
                        if b == 0 {
                            return Err(Trap::DivByZero);
                        }
                        a.checked_div(b).unwrap_or(i128::MAX)
                    }
                    BinOp::Rem => {
                        if b == 0 {
                            return Err(Trap::DivByZero);
                        }
                        a.checked_rem(b).unwrap_or(0)
                    }
                };
                Some(Value::Int(r))
            }
            Inst::Cmp { op, lhs, rhs } => {
                let res = match (get(regs, *lhs), get(regs, *rhs)) {
                    (Value::Ptr(a), Value::Ptr(b)) => {
                        // Pointer comparison: compare (chunk, offset)
                        // lexicographically; same-chunk compares are the
                        // meaningful (defined) case.
                        op.eval(
                            ((a.chunk as i128) << 64) + a.offset as i128,
                            ((b.chunk as i128) << 64) + b.offset as i128,
                        )
                    }
                    (a, b) => {
                        let ai = if let Value::Int(i) = a { i } else { 0 };
                        let bi = if let Value::Int(i) = b { i } else { 0 };
                        op.eval(ai, bi)
                    }
                };
                Some(Value::Int(res as i128))
            }
            Inst::Load { ptr, .. } => {
                let p = match get(regs, *ptr) {
                    Value::Ptr(p) => p,
                    _ => return Err(Trap::BadPointer),
                };
                Some(self.mem_read(p)?)
            }
            Inst::Store { ptr, val } => {
                let p = match get(regs, *ptr) {
                    Value::Ptr(p) => p,
                    _ => return Err(Trap::BadPointer),
                };
                let v = get(regs, *val);
                self.mem_write(p, v)?;
                None
            }
            Inst::Phi { .. } => unreachable!("φ handled at block entry"),
            Inst::Sigma { input, .. } => Some(get(regs, *input)),
            Inst::Call {
                callee,
                args,
                ret_ty,
            } => {
                let argv: Vec<Value> = args.iter().map(|&a| get(regs, a)).collect();
                match callee {
                    Callee::Internal(target) => self.call(*target, &argv, depth + 1)?,
                    Callee::External(name) => match ret_ty {
                        Some(Ty::Int) => Some(Value::Int(self.ext_int(name))),
                        Some(Ty::Ptr) => {
                            let chunk = self.alloc_chunk(64);
                            Some(Value::Ptr(Pointer { chunk, offset: 0 }))
                        }
                        None => None,
                    },
                }
            }
        })
    }

    fn mem_read(&mut self, p: Pointer) -> Result<Value, Trap> {
        let chunk = self.chunks.get(p.chunk as usize).ok_or(Trap::BadPointer)?;
        if chunk.freed {
            return Err(Trap::UseAfterFree);
        }
        if p.offset < 0 || p.offset as usize >= chunk.cells.len() {
            return Err(Trap::OutOfBounds);
        }
        Ok(chunk.cells[p.offset as usize])
    }

    fn mem_write(&mut self, p: Pointer, v: Value) -> Result<(), Trap> {
        let chunk = self
            .chunks
            .get_mut(p.chunk as usize)
            .ok_or(Trap::BadPointer)?;
        if chunk.freed {
            return Err(Trap::UseAfterFree);
        }
        if p.offset < 0 || p.offset as usize >= chunk.cells.len() {
            return Err(Trap::OutOfBounds);
        }
        chunk.cells[p.offset as usize] = v;
        Ok(())
    }

    fn observe(&mut self, fid: FuncId, v: ValueId, frame: u64, val: Value) {
        if self.m.function(fid).value(v).ty() != Some(Ty::Ptr) {
            return;
        }
        let addr = match val {
            Value::Ptr(p) => Some(p),
            _ => None,
        };
        self.observations
            .entry((fid, v))
            .or_default()
            .push(DefEvent { frame, addr });
    }

    fn tick(&mut self) -> Result<(), Trap> {
        self.steps += 1;
        if self.steps > self.fuel {
            Err(Trap::OutOfFuel)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sra_ir::{CmpOp, FunctionBuilder};

    #[test]
    fn arithmetic_and_memory() {
        let mut b = FunctionBuilder::new("main", &[], Some(Ty::Int));
        let four = b.const_int(4);
        let p = b.malloc(four);
        let two = b.const_int(2);
        let q = b.ptr_add(p, two);
        let x = b.const_int(41);
        b.store(q, x);
        let y = b.load(q, Ty::Int);
        let one = b.const_int(1);
        let z = b.binop(BinOp::Add, y, one);
        b.ret(Some(z));
        let mut m = Module::new();
        let fid = m.add_function(b.finish());
        let mut i = Interp::new(&m);
        let r = i.run(fid, &[]).unwrap();
        assert_eq!(r.ret, Some(Value::Int(42)));
    }

    #[test]
    fn loop_executes_and_observes() {
        // for (i = 0; i < 5; i++) *(p+i) = i
        let mut b = FunctionBuilder::new("main", &[], None);
        let five = b.const_int(5);
        let p = b.malloc(five);
        let head = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        let zero = b.const_int(0);
        let entry = b.entry_block();
        b.jump(head);
        b.switch_to(head);
        let i = b.phi(Ty::Int, &[(entry, zero)]);
        let c = b.cmp(CmpOp::Lt, i, five);
        b.br(c, body, exit);
        b.switch_to(body);
        let addr = b.ptr_add(p, i);
        b.store(addr, i);
        let one = b.const_int(1);
        let i2 = b.binop(BinOp::Add, i, one);
        b.add_phi_arg(i, body, i2);
        b.jump(head);
        b.switch_to(exit);
        b.ret(None);
        let mut m = Module::new();
        let fid = m.add_function(b.finish());
        let mut interp = Interp::new(&m);
        interp.run(fid, &[]).unwrap();
        // addr took offsets 0..5 of the malloc chunk.
        let addrs = interp.address_set(fid, addr);
        assert_eq!(addrs.len(), 5);
        let offsets: std::collections::HashSet<i64> = addrs.iter().map(|p| p.offset).collect();
        assert_eq!(offsets, (0..5).collect());
    }

    #[test]
    fn out_of_bounds_traps() {
        let mut b = FunctionBuilder::new("main", &[], None);
        let one = b.const_int(1);
        let p = b.malloc(one);
        let five = b.const_int(5);
        let q = b.ptr_add(p, five);
        let z = b.const_int(0);
        b.store(q, z);
        b.ret(None);
        let mut m = Module::new();
        let fid = m.add_function(b.finish());
        let mut i = Interp::new(&m);
        assert_eq!(i.run(fid, &[]), Err(Trap::OutOfBounds));
    }

    #[test]
    fn use_after_free_traps() {
        let mut b = FunctionBuilder::new("main", &[], None);
        let one = b.const_int(1);
        let p = b.malloc(one);
        b.free(p);
        let z = b.const_int(0);
        b.store(p, z);
        b.ret(None);
        let mut m = Module::new();
        let fid = m.add_function(b.finish());
        let mut i = Interp::new(&m);
        assert_eq!(i.run(fid, &[]), Err(Trap::UseAfterFree));
    }

    #[test]
    fn div_by_zero_and_fuel() {
        let mut b = FunctionBuilder::new("main", &[], Some(Ty::Int));
        let one = b.const_int(1);
        let zero = b.const_int(0);
        let d = b.binop(BinOp::Div, one, zero);
        b.ret(Some(d));
        let mut m = Module::new();
        let fid = m.add_function(b.finish());
        let mut i = Interp::new(&m);
        assert_eq!(i.run(fid, &[]), Err(Trap::DivByZero));

        // Infinite loop exhausts fuel.
        let mut b = FunctionBuilder::new("spin", &[], None);
        let lp = b.create_block();
        b.jump(lp);
        b.switch_to(lp);
        b.jump(lp);
        let fid = m.add_function(b.finish());
        let mut i = Interp::new(&m);
        i.set_fuel(1000);
        assert_eq!(i.run(fid, &[]), Err(Trap::OutOfFuel));
    }

    #[test]
    fn internal_calls_and_externals() {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("double", &[Ty::Int], Some(Ty::Int));
        let x = b.param(0);
        let two = b.const_int(2);
        let r = b.binop(BinOp::Mul, x, two);
        b.ret(Some(r));
        let dbl = m.add_function(b.finish());
        let mut b = FunctionBuilder::new("main", &[], Some(Ty::Int));
        let n = b.call(Callee::External("atoi".into()), &[], Some(Ty::Int));
        let d = b.call(Callee::Internal(dbl), &[n], Some(Ty::Int));
        b.ret(Some(d));
        let fid = m.add_function(b.finish());
        let mut i = Interp::new(&m);
        i.script_external("atoi", vec![21]);
        let r = i.run(fid, &[]).unwrap();
        assert_eq!(r.ret, Some(Value::Int(42)));
    }

    #[test]
    fn globals_are_memory() {
        let mut m = Module::new();
        let g = m.add_global("cell", 2);
        let mut b = FunctionBuilder::new("main", &[], Some(Ty::Int));
        let a = b.global_addr(g, Ty::Ptr);
        let nine = b.const_int(9);
        b.store(a, nine);
        let x = b.load(a, Ty::Int);
        b.ret(Some(x));
        let fid = m.add_function(b.finish());
        let mut i = Interp::new(&m);
        assert_eq!(i.run(fid, &[]).unwrap().ret, Some(Value::Int(9)));
    }

    #[test]
    fn aligned_conflict_detection() {
        // p+i and p+i+1 with i += 1: whole-run sets overlap but aligned
        // (same-iteration) defs never collide.
        let mut b = FunctionBuilder::new("main", &[], None);
        let ten = b.const_int(10);
        let p = b.malloc(ten);
        let head = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        let zero = b.const_int(0);
        let entry = b.entry_block();
        b.jump(head);
        b.switch_to(head);
        let i = b.phi(Ty::Int, &[(entry, zero)]);
        let eight = b.const_int(8);
        let c = b.cmp(CmpOp::Lt, i, eight);
        b.br(c, body, exit);
        b.switch_to(body);
        let t0 = b.ptr_add(p, i);
        let one = b.const_int(1);
        let i1 = b.binop(BinOp::Add, i, one);
        let t1 = b.ptr_add(p, i1);
        let x = b.load(t0, Ty::Int);
        b.store(t1, x);
        b.add_phi_arg(i, body, i1);
        b.jump(head);
        b.switch_to(exit);
        b.ret(None);
        let mut m = Module::new();
        let fid = m.add_function(b.finish());
        let mut interp = Interp::new(&m);
        interp.run(fid, &[]).unwrap();
        assert!(
            interp.global_conflict(fid, t0, t1),
            "whole-run sets overlap"
        );
        assert!(
            !interp.aligned_conflict(fid, t0, t1),
            "never collide in-iteration"
        );
    }
}
