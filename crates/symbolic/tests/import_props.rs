//! Property rail for the cross-arena import: `ExprArena::import_*`
//! under a strictly monotone renaming must commute with value-level
//! `map_symbols`, with canonical arithmetic, and with concrete
//! evaluation ([`Valuation::eval`]) — the contract that lets per-part
//! arenas assemble into module arenas and lets incremental sessions
//! rebase cached parts by import instead of re-analysis.

use proptest::prelude::*;
use sra_symbolic::{
    Bound, ExprArena, ImportMap, SymExpr, SymRange, Symbol, TryImportMap, Valuation,
};

const NUM_SYMBOLS: u32 = 4;
/// The monotone renaming under test: a blockwise shift, exactly what
/// per-function symbol-budget renumbering produces.
const SHIFT: u32 = 13;

fn shift(s: Symbol) -> Symbol {
    Symbol::new(s.index() + SHIFT)
}

/// A small random symbolic expression (mirrors the algebra suite's).
fn arb_expr() -> impl Strategy<Value = SymExpr> {
    let leaf = prop_oneof![
        (-20i64..=20).prop_map(SymExpr::from),
        (0u32..NUM_SYMBOLS).prop_map(|i| SymExpr::from(Symbol::new(i))),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
            (inner.clone(), -3i64..=3).prop_map(|(a, c)| a * SymExpr::from(c)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| SymExpr::min(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| SymExpr::max(a, b)),
            (inner.clone(), 1i64..=5).prop_map(|(a, d)| SymExpr::div(a, d.into())),
            (inner, 1i64..=5).prop_map(|(a, d)| SymExpr::rem(a, d.into())),
        ]
    })
}

fn arb_range() -> impl Strategy<Value = SymRange> {
    (arb_expr(), arb_expr(), 0u8..4).prop_map(|(a, b, inf)| {
        let lo = if inf & 1 != 0 {
            Bound::NegInf
        } else {
            Bound::Fin(a)
        };
        let hi = if inf & 2 != 0 {
            Bound::PosInf
        } else {
            Bound::Fin(b)
        };
        SymRange::with_bounds(lo, hi)
    })
}

fn arb_valuation() -> impl Strategy<Value = Valuation> {
    proptest::collection::vec(-100i128..=100, NUM_SYMBOLS as usize).prop_map(|vals| {
        let mut v = Valuation::new();
        for (i, x) in vals.into_iter().enumerate() {
            v.set(Symbol::new(i as u32), x);
        }
        v
    })
}

/// The core commutation check on one `(a, b, range, valuation)` case.
fn check_import_commutes(
    a: &SymExpr,
    b: &SymExpr,
    r: &SymRange,
    v: &Valuation,
) -> Result<(), TestCaseError> {
    let mut src = ExprArena::new();
    let mut dst = ExprArena::new();
    let mut map = ImportMap::default();
    let ai = src.intern(a);
    let bi = src.intern(b);

    // import ∘ intern ≡ map_symbols (structure-level commutation).
    let ad = dst.import_expr(&src, ai, &shift, &mut map);
    let bd = dst.import_expr(&src, bi, &shift, &mut map);
    prop_assert_eq!(dst.expr_value(ad), a.map_symbols(&shift), "import of {}", a);

    // Import commutes with canonical arithmetic: importing the result
    // of an arena op equals applying the op to the imported operands —
    // as *ids* in the destination (interning makes this an integer
    // compare).
    type ArenaBinOp =
        fn(&mut ExprArena, sra_symbolic::ExprId, sra_symbolic::ExprId) -> sra_symbolic::ExprId;
    let ops: [(&str, ArenaBinOp); 7] = [
        ("add", ExprArena::add),
        ("sub", ExprArena::sub),
        ("mul", ExprArena::mul),
        ("min", ExprArena::min),
        ("max", ExprArena::max),
        ("div", ExprArena::div),
        ("rem", ExprArena::rem),
    ];
    for (name, op) in ops {
        let in_src = op(&mut src, ai, bi);
        let imported = dst.import_expr(&src, in_src, &shift, &mut map);
        let in_dst = op(&mut dst, ad, bd);
        prop_assert_eq!(imported, in_dst, "{} vs import for {} / {}", name, a, b);
    }

    // Import commutes with concrete evaluation: shifting the valuation
    // the same way the symbols were shifted evaluates identically.
    let mut shifted_v = Valuation::new();
    for i in 0..NUM_SYMBOLS {
        shifted_v.set(shift(Symbol::new(i)), v.get(Symbol::new(i)));
    }
    prop_assert_eq!(
        shifted_v.eval(&dst.expr_value(ad)),
        v.eval(a),
        "eval commutation for {}",
        a
    );

    // Ranges: import preserves the exact shape, and the order proofs
    // (emptiness, membership) are invariant under the renaming.
    let ri = src.intern_range(r);
    let rd = dst.import_range(&src, ri, &shift, &mut map);
    prop_assert_eq!(dst.range_value(rd), r.map_symbols(&shift), "range {}", r);
    prop_assert_eq!(
        dst.range_is_empty(rd),
        r.is_empty(),
        "emptiness invariant for {}",
        r
    );

    // The fallible import with a total renaming agrees with the
    // infallible one.
    let mut tmap = TryImportMap::default();
    let try_rd = dst.try_import_range(&src, ri, &|s| Some(shift(s)), &mut tmap);
    prop_assert_eq!(try_rd, Some(rd));

    // And the lockstep comparison recognises exactly the import.
    prop_assert!(src.range_eq_mapped(ri, &dst, rd, &shift));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tier-1 capped sweep of the import commutation laws.
    #[test]
    fn import_commutes_with_arithmetic_and_eval(
        a in arb_expr(), b in arb_expr(), r in arb_range(), v in arb_valuation()
    ) {
        check_import_commutes(&a, &b, &r, &v)?;
    }
}

/// 512-case sweep of the same property. Excluded from tier-1; run with
/// `cargo test -q --release -p sra-symbolic --test import_props -- --ignored`.
#[test]
#[ignore = "deep fuzz (minutes); tier-1 runs the 64-case variant"]
fn deep_fuzz_import_commutation() {
    let mut runner = TestRunner::new(ProptestConfig::with_cases(512));
    runner
        .run(
            &(arb_expr(), arb_expr(), arb_range(), arb_valuation()),
            |(a, b, r, v)| check_import_commutes(&a, &b, &r, &v),
        )
        .unwrap();
}

/// Builds an expression with more than `MAX_EXPR_ATOMS` (64) atoms: a
/// right fold of opaque `min`s over pairwise-incomparable symbols.
fn oversized_expr() -> SymExpr {
    let mut e = SymExpr::from(Symbol::new(100));
    for i in 101..140 {
        e = SymExpr::min(SymExpr::from(Symbol::new(i)), e);
    }
    assert!(e.is_oversized(), "the chain exceeds the atom budget");
    e
}

/// Regression: oversized-expression collapse (`MAX_EXPR_ATOMS` → ±∞ at
/// the `SymRange` layer) behaves identically under interning — and the
/// collapse survives an arena import unchanged (import preserves exact
/// shapes; normalization decisions were made before the import and are
/// invariant under the monotone renaming because atom counts are).
#[test]
fn oversized_collapse_is_identical_under_interning_and_import() {
    let big = oversized_expr();
    let small = SymExpr::from(Symbol::new(100));

    // Value-level collapse: the oversized endpoint goes to its
    // infinity, the other endpoint survives.
    let hi_collapsed = SymRange::interval(small.clone(), big.clone());
    assert_eq!(
        hi_collapsed,
        SymRange::with_bounds(Bound::Fin(small.clone()), Bound::PosInf)
    );
    let lo_collapsed = SymRange::with_bounds(Bound::Fin(big.clone()), Bound::PosInf);
    assert_eq!(lo_collapsed, SymRange::top());

    // Arena-level construction makes the same decisions: sizes are
    // precomputed per node, so `is_oversized` answers identically.
    let mut arena = ExprArena::new();
    let big_id = arena.intern(&big);
    let small_id = arena.intern(&small);
    assert!(arena.is_oversized(big_id));
    assert_eq!(arena.expr_size(big_id), big.size());
    assert!(!arena.is_oversized(small_id));
    let r = arena.range_interval(small_id, big_id);
    assert_eq!(arena.range_value(r), hi_collapsed);
    let r2 = arena.range_with_bounds(
        sra_symbolic::BoundId::Fin(big_id),
        sra_symbolic::BoundId::PosInf,
    );
    assert_eq!(r2, ExprArena::TOP_RANGE);

    // Across an import: the already-collapsed range imports verbatim…
    let mut dst = ExprArena::new();
    let mut map = ImportMap::default();
    let rd = dst.import_range(&arena, r, &shift, &mut map);
    assert_eq!(dst.range_value(rd), hi_collapsed.map_symbols(&shift));
    // …and re-deriving the range from imported endpoints collapses the
    // same way (sizes are invariant under renaming).
    let big_d = dst.import_expr(&arena, big_id, &shift, &mut map);
    let small_d = dst.import_expr(&arena, small_id, &shift, &mut map);
    assert!(dst.is_oversized(big_d));
    let rederived = dst.range_interval(small_d, big_d);
    assert_eq!(rederived, rd, "collapse commutes with import");
}
