//! Property-based tests for the symbolic algebra and the `SymbRanges`
//! lattice: every algebraic law the analyses rely on is checked against
//! concrete evaluation under random valuations.

use proptest::prelude::*;
use sra_symbolic::{Bound, SymExpr, SymRange, Symbol, Valuation};

const NUM_SYMBOLS: u32 = 4;

/// A small random symbolic expression.
fn arb_expr() -> impl Strategy<Value = SymExpr> {
    let leaf = prop_oneof![
        (-20i64..=20).prop_map(SymExpr::from),
        (0u32..NUM_SYMBOLS).prop_map(|i| SymExpr::from(Symbol::new(i))),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
            (inner.clone(), -3i64..=3).prop_map(|(a, c)| a * SymExpr::from(c)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| SymExpr::min(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| SymExpr::max(a, b)),
            (inner.clone(), 1i64..=5).prop_map(|(a, d)| SymExpr::div(a, d.into())),
            (inner, 1i64..=5).prop_map(|(a, d)| SymExpr::rem(a, d.into())),
        ]
    })
}

fn arb_valuation() -> impl Strategy<Value = Valuation> {
    proptest::collection::vec(-100i128..=100, NUM_SYMBOLS as usize).prop_map(|vals| {
        let mut v = Valuation::new();
        for (i, x) in vals.into_iter().enumerate() {
            v.set(Symbol::new(i as u32), x);
        }
        v
    })
}

/// A random range built from two expressions (possibly with infinities).
fn arb_range() -> impl Strategy<Value = SymRange> {
    (arb_expr(), arb_expr(), 0u8..4).prop_map(|(a, b, inf)| {
        let lo = if inf & 1 != 0 {
            Bound::NegInf
        } else {
            Bound::Fin(a)
        };
        let hi = if inf & 2 != 0 {
            Bound::PosInf
        } else {
            Bound::Fin(b)
        };
        SymRange::with_bounds(lo, hi)
    })
}

// Tier-1 budget: 64 cases per property keeps the suite fast; override
// with `PROPTEST_CASES`, or run `deep_fuzz_algebra -- --ignored` for a
// 4096-case sweep of the load-bearing soundness laws.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `+` on canonical forms agrees with concrete addition.
    #[test]
    fn eval_respects_add(a in arb_expr(), b in arb_expr(), v in arb_valuation()) {
        let sum = a.clone() + b.clone();
        if let (Some(x), Some(y), Some(s)) = (v.eval(&a), v.eval(&b), v.eval(&sum)) {
            prop_assert_eq!(s, x.saturating_add(y));
        }
    }

    /// `−` on canonical forms agrees with concrete subtraction.
    #[test]
    fn eval_respects_sub(a in arb_expr(), b in arb_expr(), v in arb_valuation()) {
        let diff = a.clone() - b.clone();
        if let (Some(x), Some(y), Some(d)) = (v.eval(&a), v.eval(&b), v.eval(&diff)) {
            prop_assert_eq!(d, x.saturating_sub(y));
        }
    }

    /// Smart `min`/`max` constructors agree with concrete min/max.
    #[test]
    fn eval_respects_min_max(a in arb_expr(), b in arb_expr(), v in arb_valuation()) {
        let mn = SymExpr::min(a.clone(), b.clone());
        let mx = SymExpr::max(a.clone(), b.clone());
        if let (Some(x), Some(y)) = (v.eval(&a), v.eval(&b)) {
            if let Some(m) = v.eval(&mn) {
                prop_assert_eq!(m, x.min(y));
            }
            if let Some(m) = v.eval(&mx) {
                prop_assert_eq!(m, x.max(y));
            }
        }
    }

    /// The partial order is sound: a proven `a ≤ b` holds concretely.
    #[test]
    fn try_le_is_sound(a in arb_expr(), b in arb_expr(), v in arb_valuation()) {
        if let Some(verdict) = a.try_le(&b) {
            if let (Some(x), Some(y)) = (v.eval(&a), v.eval(&b)) {
                prop_assert_eq!(verdict, x <= y, "claimed {:?} for {} ≤ {}", verdict, a, b);
            }
        }
    }

    /// Strict order soundness.
    #[test]
    fn try_lt_is_sound(a in arb_expr(), b in arb_expr(), v in arb_valuation()) {
        if let Some(verdict) = a.try_lt(&b) {
            if let (Some(x), Some(y)) = (v.eval(&a), v.eval(&b)) {
                prop_assert_eq!(verdict, x < y);
            }
        }
    }

    /// Join over-approximates both operands (membership-wise).
    #[test]
    fn join_is_upper_bound(
        a in arb_range(), b in arb_range(), v in arb_valuation(), x in -200i128..=200
    ) {
        let j = a.join(&b);
        for r in [&a, &b] {
            if v.range_contains(r, x) == Some(true) {
                prop_assert_eq!(
                    v.range_contains(&j, x), Some(true),
                    "x={} in {} but not in join {}", x, r, j
                );
            }
        }
    }

    /// Meet over-approximates the intersection; in particular a meet that
    /// is ∅ proves the concretizations are disjoint.
    #[test]
    fn meet_is_sound(
        a in arb_range(), b in arb_range(), v in arb_valuation(), x in -200i128..=200
    ) {
        let m = a.meet(&b);
        if v.range_contains(&a, x) == Some(true) && v.range_contains(&b, x) == Some(true) {
            prop_assert_eq!(
                v.range_contains(&m, x), Some(true),
                "x={} in both {} and {} but not in meet {}", x, a, b, m
            );
        }
    }

    /// Interval addition is sound: x∈a ∧ y∈b ⇒ x+y ∈ a+b.
    #[test]
    fn add_is_sound(
        a in arb_range(), b in arb_range(), v in arb_valuation(),
        x in -150i128..=150, y in -150i128..=150
    ) {
        if v.range_contains(&a, x) == Some(true) && v.range_contains(&b, y) == Some(true) {
            let sum = a.add(&b);
            prop_assert_eq!(v.range_contains(&sum, x + y), Some(true));
        }
    }

    /// Negation is sound and involutive on membership.
    #[test]
    fn negate_is_sound(a in arb_range(), v in arb_valuation(), x in -200i128..=200) {
        if v.range_contains(&a, x) == Some(true) {
            prop_assert_eq!(v.range_contains(&a.negate(), -x), Some(true));
        }
    }

    /// Multiplication is sound.
    #[test]
    fn mul_is_sound(
        a in arb_range(), b in arb_range(), v in arb_valuation(),
        x in -40i128..=40, y in -40i128..=40
    ) {
        if v.range_contains(&a, x) == Some(true) && v.range_contains(&b, y) == Some(true) {
            prop_assert_eq!(v.range_contains(&a.mul(&b), x * y), Some(true));
        }
    }

    /// Division by a positive-constant singleton is sound.
    #[test]
    fn div_by_const_is_sound(
        a in arb_range(), d in 1i64..=7, v in arb_valuation(), x in -200i128..=200
    ) {
        if v.range_contains(&a, x) == Some(true) {
            let q = a.div(&SymRange::constant(d));
            prop_assert_eq!(
                v.range_contains(&q, x / d as i128), Some(true),
                "{} / {} = {} not in {}", x, d, x / d as i128, q
            );
        }
    }

    /// Remainder by a positive-constant singleton is sound.
    #[test]
    fn rem_by_const_is_sound(
        a in arb_range(), d in 1i64..=7, v in arb_valuation(), x in -200i128..=200
    ) {
        if v.range_contains(&a, x) == Some(true) {
            let r = a.rem(&SymRange::constant(d));
            prop_assert_eq!(v.range_contains(&r, x % d as i128), Some(true));
        }
    }

    /// Widening over-approximates its second argument (the growing one)
    /// and, when fed `prev ⊑ next` as in the fixpoint loop, `prev` too.
    #[test]
    fn widen_is_upper_bound(
        a in arb_range(), b in arb_range(), v in arb_valuation(), x in -200i128..=200
    ) {
        let next = a.join(&b); // ensures a ⊑ next as in the analysis loop
        let w = a.widen(&next);
        for r in [&a, &next] {
            if v.range_contains(r, x) == Some(true) {
                prop_assert_eq!(v.range_contains(&w, x), Some(true));
            }
        }
    }

    /// Widening terminates: iterating `w := w ∇ (w ⊔ g)` stabilizes in at
    /// most three steps from any starting point (each bound can only move
    /// to its infinity once; §3.8's complexity argument).
    #[test]
    fn widen_terminates_quickly(a in arb_range(), gs in proptest::collection::vec(arb_range(), 1..4)) {
        let mut w = a;
        let mut changes = 0;
        for _ in 0..4 {
            let mut next = w.clone();
            for g in &gs {
                next = next.join(g);
            }
            let widened = w.widen(&next);
            if widened != w {
                changes += 1;
                w = widened;
            } else {
                break;
            }
        }
        // After the bounds have been pushed to ±∞ nothing can change.
        let mut next = w.clone();
        for g in &gs {
            next = next.join(g);
        }
        prop_assert_eq!(w.widen(&next), w.clone(), "unstable after {} changes", changes);
    }

    /// `le` (⊑) is sound with respect to membership.
    #[test]
    fn le_is_sound(
        a in arb_range(), b in arb_range(), v in arb_valuation(), x in -200i128..=200
    ) {
        if a.le(&b) && v.range_contains(&a, x) == Some(true) {
            prop_assert_eq!(v.range_contains(&b, x), Some(true));
        }
    }

    /// Join is commutative and idempotent (canonical forms make this
    /// syntactic).
    #[test]
    fn join_commutative_idempotent(a in arb_range(), b in arb_range()) {
        prop_assert_eq!(a.join(&b), b.join(&a));
        prop_assert_eq!(a.join(&a), a.clone());
    }

    /// Meet is commutative.
    #[test]
    fn meet_commutative(a in arb_range(), b in arb_range()) {
        prop_assert_eq!(a.meet(&b), b.meet(&a));
    }

    /// The arena's memoised disjointness (two endpoint comparisons)
    /// agrees with full meet-emptiness on every normalized range pair —
    /// the equivalence the cached alias matrix is built on.
    #[test]
    fn disjoint_in_matches_meet(a in arb_range(), b in arb_range()) {
        let mut arena = sra_symbolic::ExprArena::new();
        let expect = a.meet(&b).is_empty();
        prop_assert_eq!(a.disjoint_in(&b, &mut arena), expect, "{} vs {}", &a, &b);
        // Repeat queries (memo hits) answer identically.
        prop_assert_eq!(a.disjoint_in(&b, &mut arena), expect);
        prop_assert_eq!(b.disjoint_in(&a, &mut arena), expect);
    }

    /// Interned bound comparisons agree with the direct ones.
    #[test]
    fn bound_cmp_in_matches_direct(a in arb_range(), b in arb_range()) {
        let mut arena = sra_symbolic::ExprArena::new();
        let bounds = |r: &SymRange| match r {
            SymRange::Empty => vec![],
            SymRange::Interval { lo, hi } => vec![lo.clone(), hi.clone()],
        };
        for x in bounds(&a) {
            for y in bounds(&b) {
                prop_assert_eq!(x.try_le_in(&y, &mut arena), x.try_le(&y));
                prop_assert_eq!(x.try_lt_in(&y, &mut arena), x.try_lt(&y));
            }
        }
    }
}

/// 4096-case sweep over the soundness laws the alias tests lean on:
/// order claims (`try_le`/`try_lt`) and join/meet membership. Excluded
/// from tier-1; run with `cargo test -p sra-symbolic -- --ignored`.
#[test]
#[ignore = "deep fuzz (minutes); tier-1 runs the 64-case variants"]
fn deep_fuzz_algebra() {
    let mut runner = TestRunner::new(ProptestConfig::with_cases(4096));
    runner
        .run(
            &(
                arb_expr(),
                arb_expr(),
                arb_range(),
                arb_range(),
                arb_valuation(),
                -200i128..=200,
            ),
            |(ea, eb, ra, rb, v, x)| {
                if let (Some(ca), Some(cb)) = (v.eval(&ea), v.eval(&eb)) {
                    if let Some(verdict) = ea.try_le(&eb) {
                        prop_assert_eq!(verdict, ca <= cb, "try_le on {} vs {}", ea, eb);
                    }
                    if let Some(verdict) = ea.try_lt(&eb) {
                        prop_assert_eq!(verdict, ca < cb, "try_lt on {} vs {}", ea, eb);
                    }
                }
                let j = ra.join(&rb);
                let m = ra.meet(&rb);
                let in_a = v.range_contains(&ra, x) == Some(true);
                let in_b = v.range_contains(&rb, x) == Some(true);
                if in_a || in_b {
                    prop_assert_eq!(v.range_contains(&j, x), Some(true), "join misses member");
                }
                if in_a && in_b {
                    prop_assert_eq!(v.range_contains(&m, x), Some(true), "meet misses member");
                }
                Ok(())
            },
        )
        .unwrap();
}
