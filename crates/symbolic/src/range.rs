//! The `SymbRanges` semi-lattice of symbolic intervals.

use std::fmt;

use crate::arena::ExprArena;
use crate::bound::Bound;
use crate::expr::SymExpr;
use crate::symbol::SymbolNames;

/// A symbolic interval `R = [l, u]` over [`Bound`]s, or the empty range.
///
/// This is the paper's semi-lattice `SymbRanges = (S², ⊑, ⊔, ∅,
/// [−∞,+∞])` (§3.3) with:
///
/// * join `[a₁,a₂] ⊔ [b₁,b₂] = [min(a₁,b₁), max(a₂,b₂)]`,
/// * meet `⊓` that returns [`SymRange::Empty`] when the intervals are
///   *provably* disjoint and the (possibly symbolic) intersection
///   otherwise,
/// * the widening `∇` of §3.3, which pins a bound that stayed equal and
///   pushes a changed bound to its infinity.
///
/// # Examples
///
/// ```
/// use sra_symbolic::{SymExpr, SymRange, Symbol};
/// let n = SymExpr::from(Symbol::new(0));
/// let a = SymRange::interval(0.into(), n.clone() - 1.into());
/// let b = SymRange::interval(n.clone(), n * 2.into());
/// assert!(a.meet(&b).is_empty());        // [0,N-1] ⊓ [N,2N] = ∅
/// assert!(!a.meet(&a.join(&b)).is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SymRange {
    /// The least element `∅`.
    Empty,
    /// A (non-provably-empty) interval `[lo, hi]`.
    Interval {
        /// Lower bound (never `+∞` in a well-formed range).
        lo: Bound,
        /// Upper bound (never `−∞` in a well-formed range).
        hi: Bound,
    },
}

impl SymRange {
    /// The empty range `∅` (the lattice's least element).
    pub fn empty() -> Self {
        SymRange::Empty
    }

    /// The full range `[−∞, +∞]` (the lattice's greatest element).
    pub fn top() -> Self {
        SymRange::Interval {
            lo: Bound::NegInf,
            hi: Bound::PosInf,
        }
    }

    /// An interval with two finite symbolic endpoints.
    pub fn interval(lo: SymExpr, hi: SymExpr) -> Self {
        SymRange::Interval {
            lo: Bound::Fin(lo),
            hi: Bound::Fin(hi),
        }
        .normalized()
    }

    /// An interval from arbitrary bounds.
    pub fn with_bounds(lo: Bound, hi: Bound) -> Self {
        SymRange::Interval { lo, hi }.normalized()
    }

    /// The singleton range `[e, e]`.
    pub fn singleton(e: SymExpr) -> Self {
        SymRange::Interval {
            lo: Bound::Fin(e.clone()),
            hi: Bound::Fin(e),
        }
    }

    /// The singleton constant range `[c, c]`.
    pub fn constant(c: i64) -> Self {
        SymRange::singleton(SymExpr::from(c))
    }

    /// Rewrites every kernel symbol of both endpoints through `f`; see
    /// [`SymExpr::map_symbols`] for the monotonicity contract that makes
    /// the result identical to re-deriving the range with renamed
    /// symbols (no re-normalization is needed — emptiness and size are
    /// invariant under a monotone renaming).
    pub fn map_symbols(&self, f: &impl Fn(crate::Symbol) -> crate::Symbol) -> SymRange {
        match self {
            SymRange::Empty => SymRange::Empty,
            SymRange::Interval { lo, hi } => SymRange::Interval {
                lo: lo.map_symbols(f),
                hi: hi.map_symbols(f),
            },
        }
    }

    /// Allocation-free equivalent of `self.map_symbols(f) == *other`
    /// for strictly monotone `f`; see [`SymExpr::eq_mapped`].
    pub fn eq_mapped(&self, other: &SymRange, f: &impl Fn(crate::Symbol) -> crate::Symbol) -> bool {
        match (self, other) {
            (SymRange::Empty, SymRange::Empty) => true,
            (SymRange::Interval { lo: l1, hi: h1 }, SymRange::Interval { lo: l2, hi: h2 }) => {
                l1.eq_mapped(l2, f) && h1.eq_mapped(h2, f)
            }
            _ => false,
        }
    }

    /// Collapses provably empty intervals to `∅` and oversized symbolic
    /// endpoints to their infinity (sound, coarser).
    fn normalized(self) -> Self {
        match self {
            SymRange::Empty => SymRange::Empty,
            SymRange::Interval { lo, hi } => {
                if hi.try_lt(&lo) == Some(true) {
                    return SymRange::Empty;
                }
                let lo = match lo {
                    Bound::Fin(e) if e.is_oversized() => Bound::NegInf,
                    other => other,
                };
                let hi = match hi {
                    Bound::Fin(e) if e.is_oversized() => Bound::PosInf,
                    other => other,
                };
                SymRange::Interval { lo, hi }
            }
        }
    }

    /// Returns `true` for `∅`.
    pub fn is_empty(&self) -> bool {
        matches!(self, SymRange::Empty)
    }

    /// Returns `true` for `[−∞, +∞]`.
    pub fn is_top(&self) -> bool {
        matches!(
            self,
            SymRange::Interval {
                lo: Bound::NegInf,
                hi: Bound::PosInf
            }
        )
    }

    /// Lower bound (paper notation `R↓`), if the range is non-empty.
    pub fn lo(&self) -> Option<&Bound> {
        match self {
            SymRange::Empty => None,
            SymRange::Interval { lo, .. } => Some(lo),
        }
    }

    /// Upper bound (paper notation `R↑`), if the range is non-empty.
    pub fn hi(&self) -> Option<&Bound> {
        match self {
            SymRange::Empty => None,
            SymRange::Interval { hi, .. } => Some(hi),
        }
    }

    /// Returns the single expression `e` when the range is `[e, e]`.
    pub fn as_singleton(&self) -> Option<&SymExpr> {
        match self {
            SymRange::Interval {
                lo: Bound::Fin(a),
                hi: Bound::Fin(b),
            } if a == b => Some(a),
            _ => None,
        }
    }

    /// Returns `true` when any bound mentions a kernel symbol — the
    /// "exclusively symbolic range" census of the paper's §5 counts
    /// pointers for which this holds.
    pub fn is_symbolic(&self) -> bool {
        let expr_symbolic = |b: &Bound| matches!(b, Bound::Fin(e) if e.is_symbolic());
        match self {
            SymRange::Empty => false,
            SymRange::Interval { lo, hi } => expr_symbolic(lo) || expr_symbolic(hi),
        }
    }

    /// The join `⊔`: smallest interval containing both operands. `∅` is
    /// neutral and `[−∞,+∞]` absorbing, per §3.3.
    pub fn join(&self, other: &SymRange) -> SymRange {
        match (self, other) {
            (SymRange::Empty, r) | (r, SymRange::Empty) => r.clone(),
            (SymRange::Interval { lo: l1, hi: h1 }, SymRange::Interval { lo: l2, hi: h2 }) => {
                SymRange::Interval {
                    lo: Bound::min(l1.clone(), l2.clone()),
                    hi: Bound::max(h1.clone(), h2.clone()),
                }
                .normalized()
            }
        }
    }

    /// The meet `⊓`: `∅` when the intervals are provably disjoint
    /// (`a₂ < b₁` or `b₂ < a₁`), otherwise
    /// `[max(a₁,b₁), min(a₂,b₂)]`. When disjointness cannot be proven the
    /// result soundly over-approximates the intersection.
    pub fn meet(&self, other: &SymRange) -> SymRange {
        match (self, other) {
            (SymRange::Empty, _) | (_, SymRange::Empty) => SymRange::Empty,
            (SymRange::Interval { lo: l1, hi: h1 }, SymRange::Interval { lo: l2, hi: h2 }) => {
                if h1.try_lt(l2) == Some(true) || h2.try_lt(l1) == Some(true) {
                    return SymRange::Empty;
                }
                SymRange::Interval {
                    lo: Bound::max(l1.clone(), l2.clone()),
                    hi: Bound::min(h1.clone(), h2.clone()),
                }
                .normalized()
            }
        }
    }

    /// Inclusion test `self ⊑ other`, provable fragment only: returns
    /// `false` whenever inclusion cannot be *proven*, which is the sound
    /// direction for fixpoint subsumption checks.
    pub fn le(&self, other: &SymRange) -> bool {
        match (self, other) {
            (SymRange::Empty, _) => true,
            (_, SymRange::Empty) => false,
            (SymRange::Interval { lo: l1, hi: h1 }, SymRange::Interval { lo: l2, hi: h2 }) => {
                l2.try_le(l1) == Some(true) && h1.try_le(h2) == Some(true)
            }
        }
    }

    /// The paper's widening `∇` (§3.3): a bound that changed jumps to its
    /// infinity; a bound that stayed (syntactically) equal is kept.
    /// `∅` behaves as the bottom element.
    pub fn widen(&self, next: &SymRange) -> SymRange {
        match (self, next) {
            (SymRange::Empty, r) | (r, SymRange::Empty) => r.clone(),
            (SymRange::Interval { lo: l, hi: h }, SymRange::Interval { lo: l2, hi: h2 }) => {
                let lo = if l == l2 { l.clone() } else { Bound::NegInf };
                let hi = if h == h2 { h.clone() } else { Bound::PosInf };
                SymRange::Interval { lo, hi }
            }
        }
    }

    /// Interval addition `[l₁+l₂, u₁+u₂]`; `∅` is absorbing.
    pub fn add(&self, other: &SymRange) -> SymRange {
        match (self, other) {
            (SymRange::Empty, _) | (_, SymRange::Empty) => SymRange::Empty,
            (SymRange::Interval { lo: l1, hi: h1 }, SymRange::Interval { lo: l2, hi: h2 }) => {
                SymRange::Interval {
                    lo: l1.add(l2),
                    hi: h1.add(h2),
                }
                .normalized()
            }
        }
    }

    /// Shifts both bounds by a finite expression.
    pub fn add_expr(&self, e: &SymExpr) -> SymRange {
        match self {
            SymRange::Empty => SymRange::Empty,
            SymRange::Interval { lo, hi } => SymRange::Interval {
                lo: lo.add_expr(e),
                hi: hi.add_expr(e),
            }
            .normalized(),
        }
    }

    /// Interval negation `[-u, -l]`.
    pub fn negate(&self) -> SymRange {
        match self {
            SymRange::Empty => SymRange::Empty,
            SymRange::Interval { lo, hi } => SymRange::Interval {
                lo: hi.negate(),
                hi: lo.negate(),
            },
        }
    }

    /// Interval subtraction `self − other`.
    pub fn sub(&self, other: &SymRange) -> SymRange {
        self.add(&other.negate())
    }

    /// Interval multiplication.
    ///
    /// Exact for: a constant-singleton factor (scales and possibly flips
    /// the interval), two symbolic singletons (exact product), and two
    /// all-constant intervals (min/max of the four corner products).
    /// Falls back to `[−∞, +∞]` otherwise — sound, if coarse.
    pub fn mul(&self, other: &SymRange) -> SymRange {
        match (self, other) {
            (SymRange::Empty, _) | (_, SymRange::Empty) => return SymRange::Empty,
            _ => {}
        }
        if let Some(c) = other.as_singleton().and_then(SymExpr::as_constant) {
            return self.mul_const(c);
        }
        if let Some(c) = self.as_singleton().and_then(SymExpr::as_constant) {
            return other.mul_const(c);
        }
        if let (Some(a), Some(b)) = (self.as_singleton(), other.as_singleton()) {
            return SymRange::singleton(a.clone() * b.clone());
        }
        if let (Some((a, b)), Some((c, d))) = (self.const_bounds(), other.const_bounds()) {
            let products = [
                a.saturating_mul(c),
                a.saturating_mul(d),
                b.saturating_mul(c),
                b.saturating_mul(d),
            ];
            let lo = *products.iter().min().expect("non-empty");
            let hi = *products.iter().max().expect("non-empty");
            return SymRange::Interval {
                lo: Bound::Fin(SymExpr::from(lo)),
                hi: Bound::Fin(SymExpr::from(hi)),
            };
        }
        SymRange::top()
    }

    /// Multiplies by an integer constant (flipping for negatives).
    pub fn mul_const(&self, c: i128) -> SymRange {
        match self {
            SymRange::Empty => SymRange::Empty,
            SymRange::Interval { lo, hi } => if c >= 0 {
                SymRange::Interval {
                    lo: lo.mul_const(c),
                    hi: hi.mul_const(c),
                }
            } else {
                SymRange::Interval {
                    lo: hi.mul_const(c),
                    hi: lo.mul_const(c),
                }
            }
            .normalized(),
        }
    }

    /// Interval truncating division.
    ///
    /// Exact when the divisor is a singleton positive constant (trunc
    /// division is monotone in the dividend); singleton ÷ singleton
    /// produces a symbolic quotient; everything else returns top.
    pub fn div(&self, other: &SymRange) -> SymRange {
        match (self, other) {
            (SymRange::Empty, _) | (_, SymRange::Empty) => return SymRange::Empty,
            _ => {}
        }
        if let (Some(a), Some(b)) = (self.as_singleton(), other.as_singleton()) {
            return SymRange::singleton(SymExpr::div(a.clone(), b.clone()));
        }
        if let Some(d) = other.as_singleton().and_then(SymExpr::as_constant) {
            if d > 0 {
                if let SymRange::Interval { lo, hi } = self {
                    let div_bound = |b: &Bound| match b {
                        Bound::Fin(e) => Bound::Fin(SymExpr::div(e.clone(), SymExpr::from(d))),
                        inf => inf.clone(),
                    };
                    return SymRange::Interval {
                        lo: div_bound(lo),
                        hi: div_bound(hi),
                    }
                    .normalized();
                }
            }
        }
        SymRange::top()
    }

    /// Interval truncating remainder.
    ///
    /// With a singleton positive-constant divisor `m` the result lies in
    /// `[-(m-1), m-1]`, tightened to `[0, m-1]` when the dividend is
    /// provably non-negative. Otherwise top.
    pub fn rem(&self, other: &SymRange) -> SymRange {
        match (self, other) {
            (SymRange::Empty, _) | (_, SymRange::Empty) => return SymRange::Empty,
            _ => {}
        }
        if let (Some(a), Some(b)) = (self.as_singleton(), other.as_singleton()) {
            return SymRange::singleton(SymExpr::rem(a.clone(), b.clone()));
        }
        if let Some(m) = other.as_singleton().and_then(SymExpr::as_constant) {
            if m > 0 {
                let nonneg = self
                    .lo()
                    .map(|lo| Bound::from(0).try_le(lo) == Some(true))
                    .unwrap_or(false);
                let lo = if nonneg { 0 } else { -(m - 1) };
                return SymRange::Interval {
                    lo: Bound::Fin(SymExpr::from(lo)),
                    hi: Bound::Fin(SymExpr::from(m - 1)),
                };
            }
        }
        SymRange::top()
    }

    /// Returns `true` unless the two ranges are *provably* disjoint —
    /// the alias queries' "may overlap" check.
    pub fn may_overlap(&self, other: &SymRange) -> bool {
        !self.meet(other).is_empty()
    }

    /// Memoised provable-disjointness: `self ⊓ other = ∅`, computed
    /// through `arena` so repeated comparisons of the same interval
    /// pair (the all-pairs alias workload) are `O(1)` after the first.
    /// Identical answers to `self.meet(other).is_empty()`.
    pub fn disjoint_in(&self, other: &SymRange, arena: &mut ExprArena) -> bool {
        let a = arena.intern_range(self);
        let b = arena.intern_range(other);
        arena.ranges_disjoint(a, b)
    }

    /// Memoised variant of [`SymRange::may_overlap`]; see
    /// [`SymRange::disjoint_in`].
    pub fn may_overlap_in(&self, other: &SymRange, arena: &mut ExprArena) -> bool {
        !self.disjoint_in(other, arena)
    }

    /// Restricts to `[−∞, b]` (the paper's `p₁ ∩ [−∞, p₂]` σ-node).
    pub fn clamp_above(&self, b: Bound) -> SymRange {
        self.meet(&SymRange::Interval {
            lo: Bound::NegInf,
            hi: b,
        })
    }

    /// Restricts to `[b, +∞]` (the paper's `p₁ ∩ [p₂, +∞]` σ-node).
    pub fn clamp_below(&self, b: Bound) -> SymRange {
        self.meet(&SymRange::Interval {
            lo: b,
            hi: Bound::PosInf,
        })
    }

    fn const_bounds(&self) -> Option<(i128, i128)> {
        match self {
            SymRange::Interval {
                lo: Bound::Fin(a),
                hi: Bound::Fin(b),
            } => Some((a.as_constant()?, b.as_constant()?)),
            _ => None,
        }
    }

    /// Renders the range using `names` for symbols.
    pub fn display<'a>(&'a self, names: &'a dyn SymbolNames) -> impl fmt::Display + 'a {
        DisplayRange { range: self, names }
    }
}

struct DisplayRange<'a> {
    range: &'a SymRange,
    names: &'a dyn SymbolNames,
}

impl fmt::Display for DisplayRange<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.range {
            SymRange::Empty => write!(f, "empty"),
            SymRange::Interval { lo, hi } => write!(
                f,
                "[{}, {}]",
                lo.display(self.names),
                hi.display(self.names)
            ),
        }
    }
}

impl fmt::Display for SymRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymRange::Empty => write!(f, "empty"),
            SymRange::Interval { lo, hi } => write!(f, "[{}, {}]", lo, hi),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Symbol;

    fn n() -> SymExpr {
        SymExpr::from(Symbol::new(0))
    }

    fn m() -> SymExpr {
        SymExpr::from(Symbol::new(1))
    }

    #[test]
    fn join_neutral_and_absorbing() {
        let r = SymRange::interval(0.into(), n());
        assert_eq!(SymRange::empty().join(&r), r);
        assert_eq!(r.join(&SymRange::empty()), r);
        assert!(r.join(&SymRange::top()).is_top());
    }

    #[test]
    fn meet_neutral_and_absorbing() {
        let r = SymRange::interval(0.into(), n());
        assert!(SymRange::empty().meet(&r).is_empty());
        assert_eq!(SymRange::top().meet(&r), r);
    }

    #[test]
    fn provably_disjoint_meet_is_empty() {
        // [0, N-1] vs [N, N+strlen-1]: the paper's Figure 1 criterion.
        let a = SymRange::interval(0.into(), n() - 1.into());
        let b = SymRange::interval(n(), n() + m() - 1.into());
        assert!(a.meet(&b).is_empty());
        assert!(!a.may_overlap(&b));
    }

    #[test]
    fn unknown_overlap_is_conservative() {
        // [0, N+1] vs [1, N+2]: overlapping for N ≥ 1 (paper Figure 3).
        let a = SymRange::interval(0.into(), n() + 1.into());
        let b = SymRange::interval(1.into(), n() + 2.into());
        assert!(a.may_overlap(&b));
        // Distinct symbols: cannot prove disjointness either way.
        let c = SymRange::interval(m(), m() + 1.into());
        assert!(a.may_overlap(&c));
    }

    #[test]
    fn join_is_upper_bound() {
        let a = SymRange::interval(0.into(), n());
        let b = SymRange::interval(5.into(), n() + 5.into());
        let j = a.join(&b);
        assert!(a.le(&j));
        assert!(b.le(&j));
    }

    #[test]
    fn widen_pins_stable_bounds() {
        let a = SymRange::interval(0.into(), 1.into());
        let grown_hi = SymRange::interval(0.into(), 2.into());
        let w = a.widen(&grown_hi);
        assert_eq!(w, SymRange::with_bounds(Bound::from(0), Bound::PosInf));
        let grown_lo = SymRange::interval((-1).into(), 1.into());
        let w = a.widen(&grown_lo);
        assert_eq!(w, SymRange::with_bounds(Bound::NegInf, Bound::from(1)));
        assert_eq!(a.widen(&a), a);
        let w = a.widen(&SymRange::interval((-1).into(), 2.into()));
        assert!(w.is_top());
    }

    #[test]
    fn widen_from_empty_is_identity() {
        let a = SymRange::interval(0.into(), n());
        assert_eq!(SymRange::empty().widen(&a), a);
    }

    #[test]
    fn arithmetic_add_sub() {
        let a = SymRange::interval(0.into(), n());
        let b = SymRange::constant(3);
        assert_eq!(a.add(&b), SymRange::interval(3.into(), n() + 3.into()));
        assert_eq!(a.sub(&b), SymRange::interval((-3).into(), n() - 3.into()));
        assert!(a.add(&SymRange::empty()).is_empty());
    }

    #[test]
    fn add_expr_shifts() {
        let a = SymRange::interval(0.into(), n());
        assert_eq!(a.add_expr(&m()), SymRange::interval(m(), n() + m()));
        assert_eq!(SymRange::top().add_expr(&m()), SymRange::top());
    }

    #[test]
    fn negate_flips() {
        let a = SymRange::interval(1.into(), n());
        assert_eq!(a.negate(), SymRange::interval(-n(), (-1).into()));
        assert_eq!(
            SymRange::with_bounds(Bound::from(0), Bound::PosInf).negate(),
            SymRange::with_bounds(Bound::NegInf, Bound::from(0))
        );
    }

    #[test]
    fn mul_const_interval() {
        let a = SymRange::interval(1.into(), n());
        assert_eq!(a.mul_const(2), SymRange::interval(2.into(), n() * 2.into()));
        assert_eq!(a.mul_const(-1), SymRange::interval(-n(), (-1).into()));
    }

    #[test]
    fn mul_constant_corners() {
        let a = SymRange::interval((-2).into(), 3.into());
        let b = SymRange::interval((-5).into(), 7.into());
        assert_eq!(a.mul(&b), SymRange::interval((-15).into(), 21.into()));
    }

    #[test]
    fn mul_unknown_is_top() {
        let a = SymRange::interval(0.into(), n());
        let b = SymRange::interval(0.into(), m());
        assert!(a.mul(&b).is_top());
    }

    #[test]
    fn div_positive_const() {
        let a = SymRange::interval(0.into(), 7.into());
        assert_eq!(
            a.div(&SymRange::constant(2)),
            SymRange::interval(0.into(), 3.into())
        );
        let s = SymRange::interval(0.into(), n());
        let d = s.div(&SymRange::constant(2));
        assert_eq!(d.lo().and_then(Bound::as_constant), Some(0));
    }

    #[test]
    fn rem_positive_const() {
        let a = SymRange::interval(0.into(), n());
        assert_eq!(
            a.rem(&SymRange::constant(4)),
            SymRange::interval(0.into(), 3.into())
        );
        let b = SymRange::interval((-5).into(), n());
        assert_eq!(
            b.rem(&SymRange::constant(4)),
            SymRange::interval((-3).into(), 3.into())
        );
    }

    #[test]
    fn clamp_above_below() {
        let a = SymRange::with_bounds(Bound::from(0), Bound::PosInf);
        let c = a.clamp_above(Bound::Fin(n() - 1.into()));
        assert_eq!(c, SymRange::interval(0.into(), n() - 1.into()));
        let c = SymRange::top().clamp_below(Bound::Fin(n()));
        assert_eq!(c, SymRange::with_bounds(Bound::Fin(n()), Bound::PosInf));
    }

    #[test]
    fn normalization_detects_constant_empty() {
        assert!(SymRange::interval(3.into(), 2.into()).is_empty());
        assert!(!SymRange::interval(2.into(), 2.into()).is_empty());
    }

    #[test]
    fn le_inclusion() {
        let inner = SymRange::interval(1.into(), n());
        let outer = SymRange::interval(0.into(), n() + 1.into());
        assert!(inner.le(&outer));
        assert!(!outer.le(&inner));
        assert!(SymRange::empty().le(&inner));
        assert!(inner.le(&SymRange::top()));
    }

    #[test]
    fn singleton_accessors() {
        let s = SymRange::singleton(n());
        assert_eq!(s.as_singleton(), Some(&n()));
        assert!(s.is_symbolic());
        assert!(!SymRange::constant(4).is_symbolic());
        assert!(SymRange::interval(0.into(), n()).is_symbolic());
    }

    #[test]
    fn display() {
        assert_eq!(SymRange::constant(3).to_string(), "[3, 3]");
        assert_eq!(SymRange::top().to_string(), "[-inf, +inf]");
        assert_eq!(SymRange::empty().to_string(), "empty");
    }
}
