//! Hash-consing of symbolic expressions: the [`ExprArena`].
//!
//! The canonical [`SymExpr`] representation makes *syntactic* equality
//! decide semantic equality for the affine fragment — but deciding it
//! still walks two trees, and the order queries (`try_le`) clone and
//! re-canonicalize their operands on every call. That is invisible in a
//! single fixpoint sweep and dominant in all-pairs alias evaluation,
//! where the same handful of bounds (`[0, 0]`, `[0, N−1]`, `[i, i]`, …)
//! is compared against every other pointer's bounds thousands of times.
//!
//! The arena interns expressions once, handing out dense [`ExprId`]
//! handles:
//!
//! * structural equality becomes an integer compare (`O(1)`),
//! * order queries and min/max/± simplifications are memoised by id
//!   pair, so each distinct comparison is computed exactly once,
//! * interval disjointness — the single hottest operation of the alias
//!   tests — reduces to two memoised endpoint comparisons
//!   ([`ExprArena::ranges_disjoint`]), skipping the `min`/`max` bound
//!   construction the full `meet` performs.
//!
//! Every memoised operation answers exactly like the corresponding
//! `SymExpr` / [`SymRange`] operation (delegation on a miss, or a
//! proven-equivalent short-cut); the equivalence property tests in the
//! workspace pin this.
//!
//! # Examples
//!
//! ```
//! use sra_symbolic::{ExprArena, SymExpr, Symbol};
//!
//! let mut arena = ExprArena::new();
//! let n = SymExpr::from(Symbol::new(0));
//! let a = arena.intern(&(n.clone() + 1.into()));
//! let b = arena.intern(&(SymExpr::from(1) + n.clone()));
//! assert_eq!(a, b); // structural equality is id equality
//! let z = arena.intern(&n);
//! assert_eq!(arena.try_le(z, a), Some(true)); // memoised after this
//! ```

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::bound::Bound;
use crate::expr::SymExpr;
use crate::range::SymRange;

/// A fast, non-cryptographic hasher (the `rustc-hash`/Firefox "fx"
/// multiply-rotate scheme). The interning maps hash whole expression
/// trees on every lookup; SipHash's per-byte cost dominates small
/// functions' matrix builds, while fx is a handful of cycles per word.
/// Not DoS-resistant — fine for analysis-internal keys.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add(i as u64);
    }

    #[inline]
    fn write_i128(&mut self, i: i128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A dense handle to an interned [`SymExpr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExprId(u32);

impl ExprId {
    /// The raw index into the arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An interned interval endpoint: [`Bound`] with the finite expression
/// replaced by its [`ExprId`]. `Copy`, hashable, `O(1)` to compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BoundRef {
    /// `−∞`.
    NegInf,
    /// A finite interned expression.
    Fin(ExprId),
    /// `+∞`.
    PosInf,
}

/// An interned symbolic interval: [`SymRange`] by handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RangeRef {
    /// The empty range `∅`.
    Empty,
    /// `[lo, hi]`.
    Interval(BoundRef, BoundRef),
}

/// Cache-effectiveness counters (exposed for benches and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Distinct expressions interned.
    pub exprs: usize,
    /// Memo hits across all memoised operations.
    pub hits: u64,
    /// Memo misses (first-time computations).
    pub misses: u64,
}

/// A hash-consing arena for [`SymExpr`]s with memoised comparison and
/// simplification.
///
/// Not shared between threads: the batch driver gives each worker its
/// own arena, which keeps the results deterministic (caches only skip
/// recomputation, they never change an answer) without any locking on
/// the hot path.
#[derive(Debug, Default)]
pub struct ExprArena {
    exprs: Vec<SymExpr>,
    index: FxHashMap<SymExpr, ExprId>,
    le_memo: FxHashMap<(ExprId, ExprId), Option<bool>>,
    lt_memo: FxHashMap<(ExprId, ExprId), Option<bool>>,
    min_memo: FxHashMap<(ExprId, ExprId), ExprId>,
    max_memo: FxHashMap<(ExprId, ExprId), ExprId>,
    add_memo: FxHashMap<(ExprId, ExprId), ExprId>,
    sub_memo: FxHashMap<(ExprId, ExprId), ExprId>,
    hits: u64,
    misses: u64,
}

impl ExprArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `e`, returning the id of the canonical copy. Equal
    /// expressions always receive equal ids.
    pub fn intern(&mut self, e: &SymExpr) -> ExprId {
        if let Some(&id) = self.index.get(e) {
            return id;
        }
        let id = ExprId(self.exprs.len() as u32);
        self.exprs.push(e.clone());
        self.index.insert(e.clone(), id);
        id
    }

    /// The expression behind a handle.
    pub fn expr(&self, id: ExprId) -> &SymExpr {
        &self.exprs[id.index()]
    }

    /// Number of distinct expressions interned.
    pub fn len(&self) -> usize {
        self.exprs.len()
    }

    /// `true` when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.exprs.is_empty()
    }

    /// Cache counters.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            exprs: self.exprs.len(),
            hits: self.hits,
            misses: self.misses,
        }
    }

    /// Interns both endpoints of a bound.
    pub fn intern_bound(&mut self, b: &Bound) -> BoundRef {
        match b {
            Bound::NegInf => BoundRef::NegInf,
            Bound::PosInf => BoundRef::PosInf,
            Bound::Fin(e) => BoundRef::Fin(self.intern(e)),
        }
    }

    /// Interns a range endpoint-wise.
    pub fn intern_range(&mut self, r: &SymRange) -> RangeRef {
        match r {
            SymRange::Empty => RangeRef::Empty,
            SymRange::Interval { lo, hi } => {
                RangeRef::Interval(self.intern_bound(lo), self.intern_bound(hi))
            }
        }
    }

    /// Reconstructs the [`Bound`] behind a handle (clones the
    /// expression).
    pub fn bound(&self, b: BoundRef) -> Bound {
        match b {
            BoundRef::NegInf => Bound::NegInf,
            BoundRef::PosInf => Bound::PosInf,
            BoundRef::Fin(e) => Bound::Fin(self.expr(e).clone()),
        }
    }

    /// Reconstructs the [`SymRange`] behind a handle.
    pub fn range(&self, r: RangeRef) -> SymRange {
        match r {
            RangeRef::Empty => SymRange::Empty,
            RangeRef::Interval(lo, hi) => SymRange::Interval {
                lo: self.bound(lo),
                hi: self.bound(hi),
            },
        }
    }

    /// Memoised [`SymExpr::try_le`].
    pub fn try_le(&mut self, a: ExprId, b: ExprId) -> Option<bool> {
        if let Some(&r) = self.le_memo.get(&(a, b)) {
            self.hits += 1;
            return r;
        }
        self.misses += 1;
        let r = self.exprs[a.index()].try_le(&self.exprs[b.index()]);
        self.le_memo.insert((a, b), r);
        r
    }

    /// Memoised [`SymExpr::try_lt`].
    pub fn try_lt(&mut self, a: ExprId, b: ExprId) -> Option<bool> {
        if let Some(&r) = self.lt_memo.get(&(a, b)) {
            self.hits += 1;
            return r;
        }
        self.misses += 1;
        let r = self.exprs[a.index()].try_lt(&self.exprs[b.index()]);
        self.lt_memo.insert((a, b), r);
        r
    }

    /// Memoised [`SymExpr::min`] (the simplifying smart constructor).
    pub fn min(&mut self, a: ExprId, b: ExprId) -> ExprId {
        if let Some(&r) = self.min_memo.get(&(a, b)) {
            self.hits += 1;
            return r;
        }
        self.misses += 1;
        let e = SymExpr::min(self.exprs[a.index()].clone(), self.exprs[b.index()].clone());
        let id = self.intern(&e);
        self.min_memo.insert((a, b), id);
        id
    }

    /// Memoised [`SymExpr::max`].
    pub fn max(&mut self, a: ExprId, b: ExprId) -> ExprId {
        if let Some(&r) = self.max_memo.get(&(a, b)) {
            self.hits += 1;
            return r;
        }
        self.misses += 1;
        let e = SymExpr::max(self.exprs[a.index()].clone(), self.exprs[b.index()].clone());
        let id = self.intern(&e);
        self.max_memo.insert((a, b), id);
        id
    }

    /// Memoised addition.
    pub fn add(&mut self, a: ExprId, b: ExprId) -> ExprId {
        if let Some(&r) = self.add_memo.get(&(a, b)) {
            self.hits += 1;
            return r;
        }
        self.misses += 1;
        let e = self.exprs[a.index()].clone() + self.exprs[b.index()].clone();
        let id = self.intern(&e);
        self.add_memo.insert((a, b), id);
        id
    }

    /// Memoised subtraction.
    pub fn sub(&mut self, a: ExprId, b: ExprId) -> ExprId {
        if let Some(&r) = self.sub_memo.get(&(a, b)) {
            self.hits += 1;
            return r;
        }
        self.misses += 1;
        let e = self.exprs[a.index()].clone() - self.exprs[b.index()].clone();
        let id = self.intern(&e);
        self.sub_memo.insert((a, b), id);
        id
    }

    /// Memoised [`Bound::try_le`] on interned bounds.
    pub fn bound_try_le(&mut self, a: BoundRef, b: BoundRef) -> Option<bool> {
        match (a, b) {
            (BoundRef::NegInf, _) | (_, BoundRef::PosInf) => Some(true),
            (BoundRef::PosInf, _) | (_, BoundRef::NegInf) => Some(false),
            (BoundRef::Fin(x), BoundRef::Fin(y)) => self.try_le(x, y),
        }
    }

    /// Memoised [`Bound::try_lt`] on interned bounds.
    pub fn bound_try_lt(&mut self, a: BoundRef, b: BoundRef) -> Option<bool> {
        match (a, b) {
            (BoundRef::NegInf, BoundRef::NegInf) | (BoundRef::PosInf, BoundRef::PosInf) => {
                Some(false)
            }
            (BoundRef::NegInf, _) | (_, BoundRef::PosInf) => Some(true),
            (BoundRef::PosInf, _) | (_, BoundRef::NegInf) => Some(false),
            (BoundRef::Fin(x), BoundRef::Fin(y)) => self.try_lt(x, y),
        }
    }

    /// Memoised provable-disjointness test, equal to
    /// `range(a).meet(&range(b)).is_empty()`.
    ///
    /// This is the workhorse of the alias queries (`QGR`'s
    /// `may_overlap` and `QLR`'s offset comparison). Two endpoint
    /// comparisons decide it: `[l₁,h₁] ⊓ [l₂,h₂] = ∅ ⟺ h₁ < l₂ ∨
    /// h₂ < l₁` — for *normalized* operands (every range the analyses
    /// store) the `meet` construction's third chance to detect
    /// emptiness, `min(h₁,h₂) < max(l₁,l₂)` on the freshly built
    /// bounds, proves strictly less than the direct checks: its proof
    /// must case-split away the outer `min`/`max` first, reaching the
    /// same `hᵢ < lⱼ` obligations with *less* depth budget, and the
    /// within-range branches `hᵢ < lᵢ` are unprovable or the input
    /// would have normalized to `∅`. The debug assertion and the
    /// `disjoint_in_matches_meet` property test keep the two paths
    /// pinned together.
    pub fn ranges_disjoint(&mut self, a: RangeRef, b: RangeRef) -> bool {
        let r = match (a, b) {
            (RangeRef::Empty, _) | (_, RangeRef::Empty) => true,
            (RangeRef::Interval(l1, h1), RangeRef::Interval(l2, h2)) => {
                self.bound_try_lt(h1, l2) == Some(true) || self.bound_try_lt(h2, l1) == Some(true)
            }
        };
        debug_assert_eq!(
            r,
            self.range(a).meet(&self.range(b)).is_empty(),
            "endpoint disjointness must agree with meet-emptiness for {} and {}",
            self.range(a),
            self.range(b),
        );
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Symbol;

    fn n() -> SymExpr {
        SymExpr::from(Symbol::new(0))
    }

    fn m() -> SymExpr {
        SymExpr::from(Symbol::new(1))
    }

    #[test]
    fn interning_is_canonical() {
        let mut a = ExprArena::new();
        let x = a.intern(&(n() + 2.into()));
        let y = a.intern(&(SymExpr::from(2) + n()));
        let z = a.intern(&(n() + 3.into()));
        assert_eq!(x, y);
        assert_ne!(x, z);
        assert_eq!(a.len(), 2);
        assert_eq!(a.expr(x), &(n() + 2.into()));
    }

    #[test]
    fn try_le_matches_uncached_and_memoises() {
        let mut a = ExprArena::new();
        let pairs = [
            (n(), n() + 1.into()),
            (n() + 1.into(), n()),
            (n(), m()),
            (SymExpr::min(n(), m()), n()),
            (SymExpr::from(3), SymExpr::from(7)),
        ];
        for (x, y) in &pairs {
            let xi = a.intern(x);
            let yi = a.intern(y);
            assert_eq!(a.try_le(xi, yi), x.try_le(y));
        }
        let before = a.stats();
        for (x, y) in &pairs {
            let xi = a.intern(x);
            let yi = a.intern(y);
            let _ = a.try_le(xi, yi);
        }
        let after = a.stats();
        assert_eq!(after.misses, before.misses, "second round is all hits");
        assert!(after.hits > before.hits);
    }

    #[test]
    fn min_max_match_smart_constructors() {
        let mut a = ExprArena::new();
        let x = a.intern(&n());
        let y = a.intern(&(n() + 1.into()));
        let z = a.intern(&m());
        let mn = a.min(x, y);
        assert_eq!(a.expr(mn), &SymExpr::min(n(), n() + 1.into()));
        let mx = a.max(x, y);
        assert_eq!(a.expr(mx), &SymExpr::max(n(), n() + 1.into()));
        let opaque = a.min(x, z);
        assert_eq!(a.expr(opaque), &SymExpr::min(n(), m()));
        // add/sub round-trip.
        let sum = a.add(x, z);
        assert_eq!(a.expr(sum), &(n() + m()));
        let diff = a.sub(x, z);
        assert_eq!(a.expr(diff), &(n() - m()));
    }

    #[test]
    fn bound_comparisons_with_infinities() {
        let mut a = ExprArena::new();
        let f = {
            let id = a.intern(&n());
            BoundRef::Fin(id)
        };
        assert_eq!(a.bound_try_le(BoundRef::NegInf, f), Some(true));
        assert_eq!(a.bound_try_lt(f, BoundRef::PosInf), Some(true));
        assert_eq!(a.bound_try_le(BoundRef::PosInf, f), Some(false));
        assert_eq!(
            a.bound_try_lt(BoundRef::PosInf, BoundRef::PosInf),
            Some(false)
        );
    }

    #[test]
    fn ranges_disjoint_matches_meet() {
        let mut a = ExprArena::new();
        let cases = [
            // The Figure 1 criterion.
            (
                SymRange::interval(0.into(), n() - 1.into()),
                SymRange::interval(n(), n() + m() - 1.into()),
            ),
            // Overlapping for some valuation.
            (
                SymRange::interval(0.into(), n() + 1.into()),
                SymRange::interval(1.into(), n() + 2.into()),
            ),
            // Distinct symbols: unknown, conservatively not disjoint.
            (
                SymRange::interval(0.into(), n()),
                SymRange::interval(m(), m() + 1.into()),
            ),
            (SymRange::empty(), SymRange::top()),
            (SymRange::constant(3), SymRange::constant(4)),
        ];
        for (x, y) in &cases {
            let xi = a.intern_range(x);
            let yi = a.intern_range(y);
            let expect = x.meet(y).is_empty();
            assert_eq!(a.ranges_disjoint(xi, yi), expect, "{x} vs {y}");
            // Symmetric.
            assert_eq!(a.ranges_disjoint(yi, xi), expect);
        }
        // Repeating every query is all memo hits (or infinity
        // fast-paths that never touch the memo).
        let misses = a.stats().misses;
        for (x, y) in &cases {
            let xi = a.intern_range(x);
            let yi = a.intern_range(y);
            let _ = a.ranges_disjoint(xi, yi);
        }
        assert_eq!(a.stats().misses, misses);
    }

    #[test]
    fn range_roundtrip() {
        let mut a = ExprArena::new();
        for r in [
            SymRange::empty(),
            SymRange::top(),
            SymRange::interval(0.into(), n()),
            SymRange::with_bounds(Bound::from(0), Bound::PosInf),
        ] {
            let id = a.intern_range(&r);
            assert_eq!(a.range(id), r);
        }
    }
}
