//! Hash-consing of symbolic expressions: the [`ExprArena`].
//!
//! The arena is the canonical representation of the analysis stack:
//! every expression, interval endpoint and interval the analyses build
//! lives here as an interned node, addressed by a dense, `Copy` handle
//! ([`ExprId`], [`BoundId`], [`RangeId`]). Node storage is arena-owned:
//! an unresolved `min`/`max`/`div`/`mod` atom stores the *ids* of its
//! child expressions, never a `Box<SymExpr>`, so
//!
//! * structural equality is an integer compare (`O(1)`),
//! * every lattice operation (`add`/`sub`/`mul`/`min`/`max`/`div`/
//!   `rem`, order queries, and range `join`/`meet`/`widen`) is memoised
//!   by id pair — each distinct computation happens exactly once,
//! * interval disjointness — the single hottest operation of the alias
//!   tests — reduces to two memoised endpoint comparisons
//!   ([`ExprArena::ranges_disjoint`]),
//! * moving analysis state between arenas (per-function part arenas →
//!   one module arena, or an incremental session rebasing a cached part
//!   onto a shifted symbol block) is a structure-driven *import*
//!   ([`ExprArena::import_range`]) with a per-source translation table:
//!   each distinct expression crosses the boundary once.
//!
//! The boxed [`SymExpr`] value type remains the boundary representation
//! (construction from the front end, the concrete-evaluation oracle,
//! display); [`ExprArena::intern`] and [`ExprArena::expr_value`] convert
//! both ways. Every memoised operation answers exactly like the
//! corresponding `SymExpr`/[`SymRange`] operation — on a memo miss the
//! arena delegates to the value-level algorithm and interns the result,
//! so behavioural identity is by construction, and the equivalence
//! property tests in the workspace pin it.
//!
//! # Overlays
//!
//! Parallel phases (GR wave levels, per-function alias-matrix builds)
//! need to intern while sharing one arena. An *overlay*
//! ([`ExprArena::with_base`]) layers a private, mutable arena over a
//! frozen shared base: reads fall through to the base, new nodes and
//! memo entries land in the overlay. A worker's overlay either dies
//! with the task (matrix builds: verdict bytes carry no ids) or is
//! merged back deterministically ([`ExprArena::adopt`]) after the
//! parallel region, translating overlay ids onto freshly interned base
//! ids — which is what keeps the wave schedule byte-identical to the
//! serial one.
//!
//! # Examples
//!
//! ```
//! use sra_symbolic::{ExprArena, SymExpr, Symbol};
//!
//! let mut arena = ExprArena::new();
//! let n = SymExpr::from(Symbol::new(0));
//! let a = arena.intern(&(n.clone() + 1.into()));
//! let b = arena.intern(&(SymExpr::from(1) + n.clone()));
//! assert_eq!(a, b); // structural equality is id equality
//! let z = arena.intern(&n);
//! assert_eq!(arena.try_le(z, a), Some(true)); // memoised after this
//! ```

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

use crate::bound::Bound;
use crate::expr::{Atom, SymExpr, MAX_EXPR_ATOMS};
use crate::range::SymRange;
use crate::symbol::{Symbol, SymbolNames};

/// A fast, non-cryptographic hasher (the `rustc-hash`/Firefox "fx"
/// multiply-rotate scheme). The interning maps hash node keys on every
/// lookup; SipHash's per-byte cost dominates small functions' matrix
/// builds, while fx is a handful of cycles per word. Not DoS-resistant
/// — fine for analysis-internal keys.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add(i as u64);
    }

    #[inline]
    fn write_i128(&mut self, i: i128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A dense handle to an interned [`SymExpr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExprId(u32);

impl ExprId {
    /// The raw index into the arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An interned interval endpoint: [`Bound`] with the finite expression
/// replaced by its [`ExprId`]. `Copy`, hashable, `O(1)` to compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BoundId {
    /// `−∞`.
    NegInf,
    /// A finite interned expression.
    Fin(ExprId),
    /// `+∞`.
    PosInf,
}

/// Former name of [`BoundId`], kept so call sites migrate gradually.
pub type BoundRef = BoundId;

/// A dense handle to an interned [`SymRange`]. `Copy`, hashable,
/// `O(1)` to compare; [`ExprArena::EMPTY_RANGE`] and
/// [`ExprArena::TOP_RANGE`] are pre-interned with the same id in every
/// arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RangeId(u32);

impl RangeId {
    /// The raw index into the arena's range table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Arena-owned atom storage: like [`Atom`], but children are ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum NodeAtom {
    Sym(Symbol),
    Min(ExprId, ExprId),
    Max(ExprId, ExprId),
    Div(ExprId, ExprId),
    Mod(ExprId, ExprId),
}

/// One interned expression in canonical affine form: `constant +
/// Σ coeffᵢ·termᵢ`, terms in the value type's canonical order, each
/// term a sorted atom product. Children of `min`/`max`/`div`/`mod`
/// atoms are ids into the same arena (interned bottom-up, so equal
/// sub-expressions share one node).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ExprNode {
    constant: i128,
    terms: Box<[(Box<[NodeAtom]>, i128)]>,
}

/// One interned range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum RangeNode {
    Empty,
    Interval(BoundId, BoundId),
}

/// Hit/miss counters of one memoised operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Answers served from the memo table.
    pub hits: u64,
    /// First-time computations.
    pub misses: u64,
}

impl OpStats {
    fn merge(&mut self, o: &OpStats) {
        self.hits += o.hits;
        self.misses += o.misses;
    }
}

/// Cache-effectiveness counters (exposed for benches, the evaluation
/// harness and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaStats {
    /// Distinct expressions interned.
    pub exprs: usize,
    /// Distinct ranges interned.
    pub ranges: usize,
    /// Memo hits summed across all memoised operations.
    pub hits: u64,
    /// Memo misses summed across all memoised operations.
    pub misses: u64,
    /// Approximate heap bytes held by nodes, tables and memos.
    pub bytes: usize,
    /// Per-operation hit/miss breakdown, in a fixed order:
    /// `le, lt, min, max, add, sub, neg, mul, div, rem, join, meet,
    /// widen, range_le`.
    pub per_op: [(&'static str, OpStats); 14],
}

impl ArenaStats {
    /// Adds another arena's counters into this one (the harness sums
    /// the per-analysis module arenas).
    pub fn merge(&mut self, other: &ArenaStats) {
        self.exprs += other.exprs;
        self.ranges += other.ranges;
        self.hits += other.hits;
        self.misses += other.misses;
        self.bytes += other.bytes;
        for (mine, theirs) in self.per_op.iter_mut().zip(other.per_op.iter()) {
            debug_assert_eq!(mine.0, theirs.0);
            mine.1.merge(&theirs.1);
        }
    }
}

/// The default carries the canonical per-op name table (so merging
/// into a default-initialized accumulator lines the counters up).
impl Default for ArenaStats {
    fn default() -> Self {
        let mut per_op = [("", OpStats::default()); 14];
        for (i, name) in OP_NAMES.iter().enumerate() {
            per_op[i] = (*name, OpStats::default());
        }
        ArenaStats {
            exprs: 0,
            ranges: 0,
            hits: 0,
            misses: 0,
            bytes: 0,
            per_op,
        }
    }
}

/// A per-source-arena translation table for [`ExprArena::import_expr`]
/// and friends: each distinct source id is imported once, repeats are
/// table hits.
#[derive(Debug, Default)]
pub struct ImportMap {
    exprs: FxHashMap<ExprId, ExprId>,
    ranges: FxHashMap<RangeId, RangeId>,
}

/// Like [`ImportMap`], for the fallible import used by incremental
/// sessions (a cached state may mention a re-minted symbol block with
/// no counterpart; such imports answer `None`).
#[derive(Debug, Default)]
pub struct TryImportMap {
    exprs: FxHashMap<ExprId, Option<ExprId>>,
    ranges: FxHashMap<RangeId, Option<RangeId>>,
}

/// One atom of a dumped expression node (see
/// [`ExprArena::export_raw`]): like the internal atom storage, but with
/// raw `u32` indices instead of typed ids so a snapshot codec can write
/// it without reaching into arena internals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RawAtom {
    /// A kernel symbol, by index.
    Sym(u32),
    /// `min(e, e)` over two earlier dump positions.
    Min(u32, u32),
    /// `max(e, e)` over two earlier dump positions.
    Max(u32, u32),
    /// Opaque division over two earlier dump positions.
    Div(u32, u32),
    /// Opaque remainder over two earlier dump positions.
    Mod(u32, u32),
}

/// One dumped expression node in canonical affine form: `constant +
/// Σ coeffᵢ·termᵢ`, in the arena's stored order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawExprNode {
    /// The constant part of the affine form.
    pub constant: i128,
    /// The terms: each a sorted atom product with its coefficient.
    pub terms: Vec<(Vec<RawAtom>, i128)>,
}

/// One dumped interval endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RawBound {
    /// `−∞`.
    NegInf,
    /// A finite expression, by dump position.
    Fin(u32),
    /// `+∞`.
    PosInf,
}

/// One dumped range node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RawRangeNode {
    /// The empty range `∅`.
    Empty,
    /// An interval with interned endpoints.
    Interval(RawBound, RawBound),
}

/// Validation failure rebuilding an arena from a dump
/// ([`ExprArena::from_raw`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RawArenaError {
    /// A node referenced a child at or beyond its own dump position
    /// (the dump must be topological, children first).
    ForwardReference,
    /// Re-interning a dumped node produced a different id than its
    /// stored position — the dump held duplicate or non-canonical
    /// nodes and cannot come from [`ExprArena::export_raw`].
    NonCanonical,
    /// The pre-interned `∅`/`⊤` range slots were missing or wrong.
    BadPrelude,
}

impl std::fmt::Display for RawArenaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RawArenaError::ForwardReference => "arena dump references a later node",
            RawArenaError::NonCanonical => "arena dump holds duplicate or non-canonical nodes",
            RawArenaError::BadPrelude => "arena dump is missing the pre-interned range slots",
        };
        write!(f, "{}", s)
    }
}

impl std::error::Error for RawArenaError {}

/// The detachable local half of an overlay arena (see
/// [`ExprArena::with_base`]): the nodes and ranges the overlay added on
/// top of its base, in topological (children-first) intern order.
#[derive(Debug)]
pub struct OverlayPart {
    base_exprs: u32,
    base_ranges: u32,
    nodes: Vec<ExprNode>,
    range_nodes: Vec<RangeNode>,
}

/// The id translation produced by [`ExprArena::adopt`]: maps an
/// overlay's ids onto the adopting arena's ids (base ids are identity).
#[derive(Debug)]
pub struct OverlayXlate {
    base_exprs: u32,
    base_ranges: u32,
    exprs: Vec<ExprId>,
    ranges: Vec<RangeId>,
}

impl OverlayXlate {
    /// Translates an overlay-space expression id.
    pub fn expr(&self, id: ExprId) -> ExprId {
        if id.0 < self.base_exprs {
            id
        } else {
            self.exprs[(id.0 - self.base_exprs) as usize]
        }
    }

    /// Translates an overlay-space range id.
    pub fn range(&self, id: RangeId) -> RangeId {
        if id.0 < self.base_ranges {
            id
        } else {
            self.ranges[(id.0 - self.base_ranges) as usize]
        }
    }
}

/// A hash-consing arena for symbolic expressions, interval endpoints
/// and intervals, with memoised comparison, arithmetic and lattice
/// operations.
///
/// Not shared mutably between threads: parallel phases give each worker
/// an overlay ([`ExprArena::with_base`]) over a frozen shared arena,
/// which keeps the results deterministic (caches only skip
/// recomputation, they never change an answer) without any locking on
/// the hot path.
#[derive(Debug, Clone)]
pub struct ExprArena {
    /// The frozen base of an overlay (`None` for a root arena; a base
    /// is always itself baseless).
    base: Option<Arc<ExprArena>>,
    /// Expression ids below this belong to the base.
    base_exprs: u32,
    /// Range ids below this belong to the base.
    base_ranges: u32,
    nodes: Vec<ExprNode>,
    /// Total atom count per node (the value type's `size()` measure),
    /// aligned with `nodes`.
    sizes: Vec<u32>,
    index: FxHashMap<ExprNode, ExprId>,
    range_nodes: Vec<RangeNode>,
    range_index: FxHashMap<RangeNode, RangeId>,
    le_memo: FxHashMap<(ExprId, ExprId), Option<bool>>,
    lt_memo: FxHashMap<(ExprId, ExprId), Option<bool>>,
    min_memo: FxHashMap<(ExprId, ExprId), ExprId>,
    max_memo: FxHashMap<(ExprId, ExprId), ExprId>,
    add_memo: FxHashMap<(ExprId, ExprId), ExprId>,
    sub_memo: FxHashMap<(ExprId, ExprId), ExprId>,
    neg_memo: FxHashMap<ExprId, ExprId>,
    mul_memo: FxHashMap<(ExprId, ExprId), ExprId>,
    div_memo: FxHashMap<(ExprId, ExprId), ExprId>,
    rem_memo: FxHashMap<(ExprId, ExprId), ExprId>,
    join_memo: FxHashMap<(RangeId, RangeId), RangeId>,
    meet_memo: FxHashMap<(RangeId, RangeId), RangeId>,
    widen_memo: FxHashMap<(RangeId, RangeId), RangeId>,
    range_le_memo: FxHashMap<(RangeId, RangeId), bool>,
    ops: [OpStats; 14],
}

/// Indices into the per-op counter array.
const OP_LE: usize = 0;
const OP_LT: usize = 1;
const OP_MIN: usize = 2;
const OP_MAX: usize = 3;
const OP_ADD: usize = 4;
const OP_SUB: usize = 5;
const OP_NEG: usize = 6;
const OP_MUL: usize = 7;
const OP_DIV: usize = 8;
const OP_REM: usize = 9;
const OP_JOIN: usize = 10;
const OP_MEET: usize = 11;
const OP_WIDEN: usize = 12;
const OP_RANGE_LE: usize = 13;
const OP_NAMES: [&str; 14] = [
    "le", "lt", "min", "max", "add", "sub", "neg", "mul", "div", "rem", "join", "meet", "widen",
    "range_le",
];

impl Default for ExprArena {
    fn default() -> Self {
        Self::new()
    }
}

impl ExprArena {
    /// The pre-interned empty range `∅` — the same id in every arena.
    pub const EMPTY_RANGE: RangeId = RangeId(0);
    /// The pre-interned full range `[−∞, +∞]` — the same id in every
    /// arena.
    pub const TOP_RANGE: RangeId = RangeId(1);

    /// Creates an empty arena (with `∅` and `[−∞, +∞]` pre-interned).
    pub fn new() -> Self {
        let mut a = Self::new_empty_tables();
        let empty = a.intern_range_node(RangeNode::Empty);
        debug_assert_eq!(empty, Self::EMPTY_RANGE);
        let top = a.intern_range_node(RangeNode::Interval(BoundId::NegInf, BoundId::PosInf));
        debug_assert_eq!(top, Self::TOP_RANGE);
        a
    }

    /// Creates an overlay over a frozen `base` arena: reads (nodes,
    /// memo entries, intern lookups) fall through to the base, writes
    /// land privately. Merge the additions back with
    /// [`ExprArena::adopt`], or drop the overlay when no id escapes
    /// (per-matrix comparison caches).
    ///
    /// # Panics
    ///
    /// Panics when `base` is itself an overlay (bases are one level
    /// deep by construction).
    pub fn with_base(base: Arc<ExprArena>) -> Self {
        assert!(base.base.is_none(), "overlay bases must be root arenas");
        let base_exprs = base.nodes.len() as u32;
        let base_ranges = base.range_nodes.len() as u32;
        ExprArena {
            base: Some(base),
            base_exprs,
            base_ranges,
            ..ExprArena::new_empty_tables()
        }
    }

    fn new_empty_tables() -> Self {
        ExprArena {
            base: None,
            base_exprs: 0,
            base_ranges: 0,
            nodes: Vec::new(),
            sizes: Vec::new(),
            index: FxHashMap::default(),
            range_nodes: Vec::new(),
            range_index: FxHashMap::default(),
            le_memo: FxHashMap::default(),
            lt_memo: FxHashMap::default(),
            min_memo: FxHashMap::default(),
            max_memo: FxHashMap::default(),
            add_memo: FxHashMap::default(),
            sub_memo: FxHashMap::default(),
            neg_memo: FxHashMap::default(),
            mul_memo: FxHashMap::default(),
            div_memo: FxHashMap::default(),
            rem_memo: FxHashMap::default(),
            join_memo: FxHashMap::default(),
            meet_memo: FxHashMap::default(),
            widen_memo: FxHashMap::default(),
            range_le_memo: FxHashMap::default(),
            ops: [OpStats::default(); 14],
        }
    }

    /// Detaches an overlay's local additions (releasing its handle on
    /// the base, so the base `Arc` can be unwrapped for the merge).
    pub fn into_overlay_part(self) -> OverlayPart {
        OverlayPart {
            base_exprs: self.base_exprs,
            base_ranges: self.base_ranges,
            nodes: self.nodes,
            range_nodes: self.range_nodes,
        }
    }

    /// Merges an overlay's additions into this arena (which must be the
    /// overlay's base), returning the id translation for any state that
    /// captured overlay ids. Deterministic: nodes are adopted in the
    /// overlay's intern order, so merging overlays in a fixed order
    /// produces a schedule-independent arena.
    ///
    /// # Panics
    ///
    /// Panics when the overlay was not layered over this arena's
    /// current contents.
    pub fn adopt(&mut self, part: OverlayPart) -> OverlayXlate {
        assert!(self.base.is_none(), "adopt into a root arena");
        assert!(
            part.base_exprs as usize <= self.nodes.len()
                && part.base_ranges as usize <= self.range_nodes.len(),
            "overlay base does not match the adopting arena"
        );
        let mut xlate = OverlayXlate {
            base_exprs: part.base_exprs,
            base_ranges: part.base_ranges,
            exprs: Vec::with_capacity(part.nodes.len()),
            ranges: Vec::with_capacity(part.range_nodes.len()),
        };
        // Local nodes are topologically ordered (children interned
        // before parents), so one linear pass suffices.
        for node in part.nodes {
            let remap = |id: ExprId, xl: &OverlayXlate| xl.expr(id);
            let terms = node
                .terms
                .iter()
                .map(|(atoms, c)| {
                    let atoms = atoms
                        .iter()
                        .map(|a| match *a {
                            NodeAtom::Sym(s) => NodeAtom::Sym(s),
                            NodeAtom::Min(x, y) => {
                                NodeAtom::Min(remap(x, &xlate), remap(y, &xlate))
                            }
                            NodeAtom::Max(x, y) => {
                                NodeAtom::Max(remap(x, &xlate), remap(y, &xlate))
                            }
                            NodeAtom::Div(x, y) => {
                                NodeAtom::Div(remap(x, &xlate), remap(y, &xlate))
                            }
                            NodeAtom::Mod(x, y) => {
                                NodeAtom::Mod(remap(x, &xlate), remap(y, &xlate))
                            }
                        })
                        .collect();
                    (atoms, *c)
                })
                .collect();
            let id = self.intern_node(ExprNode {
                constant: node.constant,
                terms,
            });
            xlate.exprs.push(id);
        }
        for rn in part.range_nodes {
            let remap_bound = |b: BoundId, xl: &OverlayXlate| match b {
                BoundId::Fin(e) => BoundId::Fin(xl.expr(e)),
                inf => inf,
            };
            let rn = match rn {
                RangeNode::Empty => RangeNode::Empty,
                RangeNode::Interval(lo, hi) => {
                    RangeNode::Interval(remap_bound(lo, &xlate), remap_bound(hi, &xlate))
                }
            };
            let id = self.intern_range_node(rn);
            xlate.ranges.push(id);
        }
        xlate
    }

    // ------------------------------------------------------------------
    // Node access (base-aware).
    // ------------------------------------------------------------------

    fn node(&self, id: ExprId) -> &ExprNode {
        if id.0 < self.base_exprs {
            &self.base.as_ref().expect("overlay has base").nodes[id.index()]
        } else {
            &self.nodes[(id.0 - self.base_exprs) as usize]
        }
    }

    fn size_of(&self, id: ExprId) -> u32 {
        if id.0 < self.base_exprs {
            self.base.as_ref().expect("overlay has base").sizes[id.index()]
        } else {
            self.sizes[(id.0 - self.base_exprs) as usize]
        }
    }

    fn range_node(&self, id: RangeId) -> RangeNode {
        if id.0 < self.base_ranges {
            self.base.as_ref().expect("overlay has base").range_nodes[id.index()]
        } else {
            self.range_nodes[(id.0 - self.base_ranges) as usize]
        }
    }

    fn intern_node(&mut self, node: ExprNode) -> ExprId {
        if let Some(base) = &self.base {
            if let Some(&id) = base.index.get(&node) {
                return id;
            }
        }
        if let Some(&id) = self.index.get(&node) {
            return id;
        }
        let size: u32 = node
            .terms
            .iter()
            .map(|(atoms, _)| {
                atoms
                    .iter()
                    .map(|a| match *a {
                        NodeAtom::Sym(_) => 1u32,
                        NodeAtom::Min(x, y)
                        | NodeAtom::Max(x, y)
                        | NodeAtom::Div(x, y)
                        | NodeAtom::Mod(x, y) => 1u32
                            .saturating_add(self.size_of(x))
                            .saturating_add(self.size_of(y)),
                    })
                    .fold(0u32, u32::saturating_add)
            })
            .fold(0u32, u32::saturating_add);
        let id = ExprId(self.base_exprs + self.nodes.len() as u32);
        self.nodes.push(node.clone());
        self.sizes.push(size);
        self.index.insert(node, id);
        id
    }

    fn intern_range_node(&mut self, node: RangeNode) -> RangeId {
        if let Some(base) = &self.base {
            if let Some(&id) = base.range_index.get(&node) {
                return id;
            }
        }
        if let Some(&id) = self.range_index.get(&node) {
            return id;
        }
        let id = RangeId(self.base_ranges + self.range_nodes.len() as u32);
        self.range_nodes.push(node);
        self.range_index.insert(node, id);
        id
    }

    // ------------------------------------------------------------------
    // Value ↔ id conversion.
    // ------------------------------------------------------------------

    /// Interns `e`, returning the id of the canonical copy. Equal
    /// expressions always receive equal ids.
    pub fn intern(&mut self, e: &SymExpr) -> ExprId {
        let terms: Box<[(Box<[NodeAtom]>, i128)]> = e
            .terms_view()
            .map(|(atoms, c)| {
                let atoms: Box<[NodeAtom]> = atoms.iter().map(|a| self.intern_atom(a)).collect();
                (atoms, c)
            })
            .collect();
        self.intern_node(ExprNode {
            constant: e.as_constant_part(),
            terms,
        })
    }

    fn intern_atom(&mut self, a: &Atom) -> NodeAtom {
        match a {
            Atom::Sym(s) => NodeAtom::Sym(*s),
            Atom::Min(x, y) => NodeAtom::Min(self.intern(x), self.intern(y)),
            Atom::Max(x, y) => NodeAtom::Max(self.intern(x), self.intern(y)),
            Atom::Div(x, y) => NodeAtom::Div(self.intern(x), self.intern(y)),
            Atom::Mod(x, y) => NodeAtom::Mod(self.intern(x), self.intern(y)),
        }
    }

    /// Reconstructs the [`SymExpr`] behind a handle. The result is
    /// exactly the expression that was interned (node storage preserves
    /// the canonical term and argument order), so round-tripping is the
    /// identity.
    pub fn expr_value(&self, id: ExprId) -> SymExpr {
        let node = self.node(id);
        SymExpr::from_raw_parts(
            node.constant,
            node.terms.iter().map(|(atoms, c)| {
                (
                    atoms
                        .iter()
                        .map(|a| self.atom_value(*a))
                        .collect::<Vec<_>>(),
                    *c,
                )
            }),
        )
    }

    fn atom_value(&self, a: NodeAtom) -> Atom {
        match a {
            NodeAtom::Sym(s) => Atom::Sym(s),
            NodeAtom::Min(x, y) => {
                Atom::Min(Box::new(self.expr_value(x)), Box::new(self.expr_value(y)))
            }
            NodeAtom::Max(x, y) => {
                Atom::Max(Box::new(self.expr_value(x)), Box::new(self.expr_value(y)))
            }
            NodeAtom::Div(x, y) => {
                Atom::Div(Box::new(self.expr_value(x)), Box::new(self.expr_value(y)))
            }
            NodeAtom::Mod(x, y) => {
                Atom::Mod(Box::new(self.expr_value(x)), Box::new(self.expr_value(y)))
            }
        }
    }

    /// Interns both endpoints of a bound.
    pub fn intern_bound(&mut self, b: &Bound) -> BoundId {
        match b {
            Bound::NegInf => BoundId::NegInf,
            Bound::PosInf => BoundId::PosInf,
            Bound::Fin(e) => BoundId::Fin(self.intern(e)),
        }
    }

    /// Reconstructs the [`Bound`] behind a handle.
    pub fn bound_value(&self, b: BoundId) -> Bound {
        match b {
            BoundId::NegInf => Bound::NegInf,
            BoundId::PosInf => Bound::PosInf,
            BoundId::Fin(e) => Bound::Fin(self.expr_value(e)),
        }
    }

    /// Interns a range endpoint-wise (preserving its exact shape: no
    /// normalization is applied here).
    pub fn intern_range(&mut self, r: &SymRange) -> RangeId {
        match r {
            SymRange::Empty => Self::EMPTY_RANGE,
            SymRange::Interval { lo, hi } => {
                let lo = self.intern_bound(lo);
                let hi = self.intern_bound(hi);
                self.intern_range_node(RangeNode::Interval(lo, hi))
            }
        }
    }

    /// Reconstructs the [`SymRange`] behind a handle.
    pub fn range_value(&self, r: RangeId) -> SymRange {
        match self.range_node(r) {
            RangeNode::Empty => SymRange::Empty,
            RangeNode::Interval(lo, hi) => SymRange::Interval {
                lo: self.bound_value(lo),
                hi: self.bound_value(hi),
            },
        }
    }

    // ------------------------------------------------------------------
    // Raw snapshot export / import (persistence).
    // ------------------------------------------------------------------

    /// Dumps the node tables in stored (topological, children-first)
    /// order for snapshot serialization. Child references are raw
    /// indices into the same dump; [`ExprArena::from_raw`] re-interns
    /// the dump in order and reproduces every id verbatim, so analysis
    /// state that captured [`ExprId`]/[`RangeId`] handles stays valid
    /// across a save/load round trip. Memo tables are not exported —
    /// they are pure caches and restart empty.
    ///
    /// # Panics
    ///
    /// Panics on an overlay arena — only root arenas are persisted.
    pub fn export_raw(&self) -> (Vec<RawExprNode>, Vec<RawRangeNode>) {
        assert!(self.base.is_none(), "export_raw requires a root arena");
        let raw_bound = |b: BoundId| match b {
            BoundId::NegInf => RawBound::NegInf,
            BoundId::PosInf => RawBound::PosInf,
            BoundId::Fin(e) => RawBound::Fin(e.0),
        };
        let exprs = self
            .nodes
            .iter()
            .map(|node| RawExprNode {
                constant: node.constant,
                terms: node
                    .terms
                    .iter()
                    .map(|(atoms, c)| {
                        let atoms = atoms
                            .iter()
                            .map(|a| match *a {
                                NodeAtom::Sym(s) => RawAtom::Sym(s.index()),
                                NodeAtom::Min(x, y) => RawAtom::Min(x.0, y.0),
                                NodeAtom::Max(x, y) => RawAtom::Max(x.0, y.0),
                                NodeAtom::Div(x, y) => RawAtom::Div(x.0, y.0),
                                NodeAtom::Mod(x, y) => RawAtom::Mod(x.0, y.0),
                            })
                            .collect();
                        (atoms, *c)
                    })
                    .collect(),
            })
            .collect();
        let ranges = self
            .range_nodes
            .iter()
            .map(|rn| match *rn {
                RangeNode::Empty => RawRangeNode::Empty,
                RangeNode::Interval(lo, hi) => RawRangeNode::Interval(raw_bound(lo), raw_bound(hi)),
            })
            .collect();
        (exprs, ranges)
    }

    /// Rebuilds a root arena from a dump produced by
    /// [`ExprArena::export_raw`], re-interning every node in stored
    /// order so every id matches the original arena verbatim.
    ///
    /// The dump is validated, never trusted: children must precede
    /// parents, finite bounds must reference dumped expressions, the
    /// pre-interned `∅`/`⊤` range slots must be intact, and
    /// re-interning must reproduce each stored position (duplicates or
    /// non-canonical nodes cannot). A corrupted dump yields a
    /// [`RawArenaError`], never a panic or a silently different arena.
    pub fn from_raw(
        exprs: &[RawExprNode],
        ranges: &[RawRangeNode],
    ) -> Result<ExprArena, RawArenaError> {
        let mut a = ExprArena::new();
        for (i, raw) in exprs.iter().enumerate() {
            let child = |c: u32| {
                if (c as usize) < i {
                    Ok(ExprId(c))
                } else {
                    Err(RawArenaError::ForwardReference)
                }
            };
            let mut terms = Vec::with_capacity(raw.terms.len());
            for (atoms, coeff) in &raw.terms {
                let mut node_atoms = Vec::with_capacity(atoms.len());
                for atom in atoms {
                    node_atoms.push(match *atom {
                        RawAtom::Sym(s) => NodeAtom::Sym(Symbol::new(s)),
                        RawAtom::Min(x, y) => NodeAtom::Min(child(x)?, child(y)?),
                        RawAtom::Max(x, y) => NodeAtom::Max(child(x)?, child(y)?),
                        RawAtom::Div(x, y) => NodeAtom::Div(child(x)?, child(y)?),
                        RawAtom::Mod(x, y) => NodeAtom::Mod(child(x)?, child(y)?),
                    });
                }
                terms.push((node_atoms.into_boxed_slice(), *coeff));
            }
            let id = a.intern_node(ExprNode {
                constant: raw.constant,
                terms: terms.into_boxed_slice(),
            });
            if id.index() != i {
                return Err(RawArenaError::NonCanonical);
            }
        }
        if ranges.len() < 2
            || ranges[0] != RawRangeNode::Empty
            || ranges[1] != RawRangeNode::Interval(RawBound::NegInf, RawBound::PosInf)
        {
            return Err(RawArenaError::BadPrelude);
        }
        for (i, raw) in ranges.iter().enumerate().skip(2) {
            let bound = |b: RawBound| match b {
                RawBound::NegInf => Ok(BoundId::NegInf),
                RawBound::PosInf => Ok(BoundId::PosInf),
                RawBound::Fin(e) => {
                    if (e as usize) < exprs.len() {
                        Ok(BoundId::Fin(ExprId(e)))
                    } else {
                        Err(RawArenaError::ForwardReference)
                    }
                }
            };
            let node = match *raw {
                RawRangeNode::Empty => RangeNode::Empty,
                RawRangeNode::Interval(lo, hi) => RangeNode::Interval(bound(lo)?, bound(hi)?),
            };
            let id = a.intern_range_node(node);
            if id.index() != i {
                return Err(RawArenaError::NonCanonical);
            }
        }
        Ok(a)
    }

    // ------------------------------------------------------------------
    // Cheap node queries.
    // ------------------------------------------------------------------

    /// Number of distinct expressions interned (including any base).
    pub fn len(&self) -> usize {
        self.base_exprs as usize + self.nodes.len()
    }

    /// `true` when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct ranges interned (including any base).
    pub fn num_ranges(&self) -> usize {
        self.base_ranges as usize + self.range_nodes.len()
    }

    /// The interned expression at `index`, or `None` when out of range
    /// — the checked inverse of [`ExprId::index`], for codecs
    /// rebuilding ids from untrusted input.
    pub fn expr_id(&self, index: usize) -> Option<ExprId> {
        (index < self.len()).then_some(ExprId(index as u32))
    }

    /// The interned range at `index`, or `None` when out of range —
    /// the checked inverse of [`RangeId::index`].
    pub fn range_id(&self, index: usize) -> Option<RangeId> {
        (index < self.num_ranges()).then_some(RangeId(index as u32))
    }

    /// Returns `Some(c)` when the expression is the constant `c`.
    pub fn as_constant(&self, id: ExprId) -> Option<i128> {
        let node = self.node(id);
        if node.terms.is_empty() {
            Some(node.constant)
        } else {
            None
        }
    }

    /// Returns `true` when the expression mentions at least one symbol
    /// or opaque operator.
    pub fn is_symbolic(&self, id: ExprId) -> bool {
        !self.node(id).terms.is_empty()
    }

    /// Returns `Some(s)` when the expression is exactly the symbol `s`.
    pub fn as_symbol(&self, id: ExprId) -> Option<Symbol> {
        let node = self.node(id);
        if node.constant != 0 || node.terms.len() != 1 {
            return None;
        }
        let (atoms, coeff) = &node.terms[0];
        if *coeff != 1 || atoms.len() != 1 {
            return None;
        }
        match atoms[0] {
            NodeAtom::Sym(s) => Some(s),
            _ => None,
        }
    }

    /// Total number of atoms in the expression (precomputed at intern
    /// time, so this is `O(1)` where the value type walks the tree).
    pub fn expr_size(&self, id: ExprId) -> usize {
        self.size_of(id) as usize
    }

    /// Returns `true` when the expression exceeds the internal size
    /// budget ([`SymRange`] collapses such endpoints to ±∞).
    pub fn is_oversized(&self, id: ExprId) -> bool {
        self.size_of(id) as usize > MAX_EXPR_ATOMS
    }

    /// Calls `f` with every kernel symbol mentioned in the expression
    /// (including inside `min`/`max`/`div`/`mod`), possibly repeatedly.
    pub fn for_each_symbol(&self, id: ExprId, f: &mut impl FnMut(Symbol)) {
        for (atoms, _) in self.node(id).terms.iter() {
            for a in atoms.iter() {
                match *a {
                    NodeAtom::Sym(s) => f(s),
                    NodeAtom::Min(x, y)
                    | NodeAtom::Max(x, y)
                    | NodeAtom::Div(x, y)
                    | NodeAtom::Mod(x, y) => {
                        self.for_each_symbol(x, f);
                        self.for_each_symbol(y, f);
                    }
                }
            }
        }
    }

    /// Calls `f` with every kernel symbol mentioned in either endpoint.
    pub fn range_for_each_symbol(&self, r: RangeId, f: &mut impl FnMut(Symbol)) {
        if let RangeNode::Interval(lo, hi) = self.range_node(r) {
            for b in [lo, hi] {
                if let BoundId::Fin(e) = b {
                    self.for_each_symbol(e, f);
                }
            }
        }
    }

    /// Interns the constant expression `c`.
    pub fn constant(&mut self, c: i128) -> ExprId {
        self.intern_node(ExprNode {
            constant: c,
            terms: Box::new([]),
        })
    }

    /// Interns the single-symbol expression `s`.
    pub fn symbol(&mut self, s: Symbol) -> ExprId {
        self.intern_node(ExprNode {
            constant: 0,
            terms: Box::new([(Box::new([NodeAtom::Sym(s)]), 1)]),
        })
    }

    // ------------------------------------------------------------------
    // Memoised expression operations. On a miss the arena delegates to
    // the value-level algorithm (reconstructing the operands) and
    // interns the canonical result — behavioural identity with the
    // boxed path is by construction; the memo table makes each distinct
    // computation happen exactly once.
    // ------------------------------------------------------------------

    /// Memoised [`SymExpr::try_le`].
    pub fn try_le(&mut self, a: ExprId, b: ExprId) -> Option<bool> {
        if let Some(&r) = self.le_memo.get(&(a, b)) {
            self.ops[OP_LE].hits += 1;
            return r;
        }
        if let Some(base) = &self.base {
            if let Some(&r) = base.le_memo.get(&(a, b)) {
                self.ops[OP_LE].hits += 1;
                return r;
            }
        }
        self.ops[OP_LE].misses += 1;
        let r = self.expr_value(a).try_le(&self.expr_value(b));
        self.le_memo.insert((a, b), r);
        r
    }

    /// Memoised [`SymExpr::try_lt`].
    pub fn try_lt(&mut self, a: ExprId, b: ExprId) -> Option<bool> {
        if let Some(&r) = self.lt_memo.get(&(a, b)) {
            self.ops[OP_LT].hits += 1;
            return r;
        }
        if let Some(base) = &self.base {
            if let Some(&r) = base.lt_memo.get(&(a, b)) {
                self.ops[OP_LT].hits += 1;
                return r;
            }
        }
        self.ops[OP_LT].misses += 1;
        let r = self.expr_value(a).try_lt(&self.expr_value(b));
        self.lt_memo.insert((a, b), r);
        r
    }
}

/// Generates the body of a memoised binary expression op.
macro_rules! memo_binop {
    ($self:ident, $memo:ident, $op:expr, $a:ident, $b:ident, $compute:expr) => {{
        if let Some(&r) = $self.$memo.get(&($a, $b)) {
            $self.ops[$op].hits += 1;
            return r;
        }
        if let Some(base) = &$self.base {
            if let Some(&r) = base.$memo.get(&($a, $b)) {
                $self.ops[$op].hits += 1;
                return r;
            }
        }
        $self.ops[$op].misses += 1;
        let r = $compute;
        $self.$memo.insert(($a, $b), r);
        r
    }};
}

impl ExprArena {
    /// Memoised [`SymExpr::min`] (the simplifying smart constructor).
    pub fn min(&mut self, a: ExprId, b: ExprId) -> ExprId {
        memo_binop!(self, min_memo, OP_MIN, a, b, {
            let e = SymExpr::min(self.expr_value(a), self.expr_value(b));
            self.intern(&e)
        })
    }

    /// Memoised [`SymExpr::max`].
    pub fn max(&mut self, a: ExprId, b: ExprId) -> ExprId {
        memo_binop!(self, max_memo, OP_MAX, a, b, {
            let e = SymExpr::max(self.expr_value(a), self.expr_value(b));
            self.intern(&e)
        })
    }

    /// Memoised addition.
    pub fn add(&mut self, a: ExprId, b: ExprId) -> ExprId {
        memo_binop!(self, add_memo, OP_ADD, a, b, {
            let e = self.expr_value(a) + self.expr_value(b);
            self.intern(&e)
        })
    }

    /// Memoised subtraction.
    pub fn sub(&mut self, a: ExprId, b: ExprId) -> ExprId {
        memo_binop!(self, sub_memo, OP_SUB, a, b, {
            let e = self.expr_value(a) - self.expr_value(b);
            self.intern(&e)
        })
    }

    /// Memoised negation.
    pub fn neg(&mut self, a: ExprId) -> ExprId {
        if let Some(&r) = self.neg_memo.get(&a) {
            self.ops[OP_NEG].hits += 1;
            return r;
        }
        if let Some(base) = &self.base {
            if let Some(&r) = base.neg_memo.get(&a) {
                self.ops[OP_NEG].hits += 1;
                return r;
            }
        }
        self.ops[OP_NEG].misses += 1;
        let e = -self.expr_value(a);
        let r = self.intern(&e);
        self.neg_memo.insert(a, r);
        r
    }

    /// Memoised multiplication.
    pub fn mul(&mut self, a: ExprId, b: ExprId) -> ExprId {
        memo_binop!(self, mul_memo, OP_MUL, a, b, {
            let e = self.expr_value(a) * self.expr_value(b);
            self.intern(&e)
        })
    }

    /// Memoised [`SymExpr::div`].
    pub fn div(&mut self, a: ExprId, b: ExprId) -> ExprId {
        memo_binop!(self, div_memo, OP_DIV, a, b, {
            let e = SymExpr::div(self.expr_value(a), self.expr_value(b));
            self.intern(&e)
        })
    }

    /// Memoised [`SymExpr::rem`].
    pub fn rem(&mut self, a: ExprId, b: ExprId) -> ExprId {
        memo_binop!(self, rem_memo, OP_REM, a, b, {
            let e = SymExpr::rem(self.expr_value(a), self.expr_value(b));
            self.intern(&e)
        })
    }

    // ------------------------------------------------------------------
    // Bound operations (thin over the expression ops; infinity cases
    // mirror `Bound` exactly).
    // ------------------------------------------------------------------

    /// Memoised [`Bound::try_le`] on interned bounds.
    pub fn bound_try_le(&mut self, a: BoundId, b: BoundId) -> Option<bool> {
        match (a, b) {
            (BoundId::NegInf, _) | (_, BoundId::PosInf) => Some(true),
            (BoundId::PosInf, _) | (_, BoundId::NegInf) => Some(false),
            (BoundId::Fin(x), BoundId::Fin(y)) => self.try_le(x, y),
        }
    }

    /// Memoised [`Bound::try_lt`] on interned bounds.
    pub fn bound_try_lt(&mut self, a: BoundId, b: BoundId) -> Option<bool> {
        match (a, b) {
            (BoundId::NegInf, BoundId::NegInf) | (BoundId::PosInf, BoundId::PosInf) => Some(false),
            (BoundId::NegInf, _) | (_, BoundId::PosInf) => Some(true),
            (BoundId::PosInf, _) | (_, BoundId::NegInf) => Some(false),
            (BoundId::Fin(x), BoundId::Fin(y)) => self.try_lt(x, y),
        }
    }

    /// [`Bound::min`] on handles.
    pub fn bound_min(&mut self, a: BoundId, b: BoundId) -> BoundId {
        match (a, b) {
            (BoundId::NegInf, _) | (_, BoundId::NegInf) => BoundId::NegInf,
            (BoundId::PosInf, x) | (x, BoundId::PosInf) => x,
            (BoundId::Fin(x), BoundId::Fin(y)) => BoundId::Fin(self.min(x, y)),
        }
    }

    /// [`Bound::max`] on handles.
    pub fn bound_max(&mut self, a: BoundId, b: BoundId) -> BoundId {
        match (a, b) {
            (BoundId::PosInf, _) | (_, BoundId::PosInf) => BoundId::PosInf,
            (BoundId::NegInf, x) | (x, BoundId::NegInf) => x,
            (BoundId::Fin(x), BoundId::Fin(y)) => BoundId::Fin(self.max(x, y)),
        }
    }

    /// [`Bound::add`] on handles.
    ///
    /// # Panics
    ///
    /// Panics when adding `−∞` to `+∞` (interval arithmetic never adds
    /// endpoints of opposite polarity).
    pub fn bound_add(&mut self, a: BoundId, b: BoundId) -> BoundId {
        match (a, b) {
            (BoundId::NegInf, BoundId::PosInf) | (BoundId::PosInf, BoundId::NegInf) => {
                panic!("Bound::add: −∞ + +∞ is undefined")
            }
            (BoundId::NegInf, _) | (_, BoundId::NegInf) => BoundId::NegInf,
            (BoundId::PosInf, _) | (_, BoundId::PosInf) => BoundId::PosInf,
            (BoundId::Fin(x), BoundId::Fin(y)) => BoundId::Fin(self.add(x, y)),
        }
    }

    /// [`Bound::add_expr`] on handles.
    pub fn bound_add_expr(&mut self, b: BoundId, e: ExprId) -> BoundId {
        match b {
            BoundId::Fin(a) => BoundId::Fin(self.add(a, e)),
            inf => inf,
        }
    }

    /// [`Bound::negate`] on handles.
    pub fn bound_negate(&mut self, b: BoundId) -> BoundId {
        match b {
            BoundId::NegInf => BoundId::PosInf,
            BoundId::PosInf => BoundId::NegInf,
            BoundId::Fin(e) => BoundId::Fin(self.neg(e)),
        }
    }

    /// [`Bound::mul_const`] on handles.
    pub fn bound_mul_const(&mut self, b: BoundId, c: i128) -> BoundId {
        if c == 0 {
            let zero = self.constant(0);
            return BoundId::Fin(zero);
        }
        match b {
            BoundId::Fin(e) => {
                let k = self.constant(c);
                BoundId::Fin(self.mul(e, k))
            }
            BoundId::NegInf => {
                if c > 0 {
                    BoundId::NegInf
                } else {
                    BoundId::PosInf
                }
            }
            BoundId::PosInf => {
                if c > 0 {
                    BoundId::PosInf
                } else {
                    BoundId::NegInf
                }
            }
        }
    }
}

impl ExprArena {
    // ------------------------------------------------------------------
    // Range constructors — each mirrors its `SymRange` counterpart
    // exactly, including which constructors normalize and which keep
    // the raw interval (`singleton`, `widen` and the clamp operands are
    // deliberately un-normalized in the value type).
    // ------------------------------------------------------------------

    /// Interns a raw, **un-normalized** interval `[lo, hi]` (the shape
    /// `SymRange::Interval { .. }` literals have in the value code).
    pub fn range_raw(&mut self, lo: BoundId, hi: BoundId) -> RangeId {
        self.intern_range_node(RangeNode::Interval(lo, hi))
    }

    /// Collapses provably empty intervals to `∅` and oversized symbolic
    /// endpoints to their infinity — [`SymRange::with_bounds`].
    pub fn range_with_bounds(&mut self, lo: BoundId, hi: BoundId) -> RangeId {
        if self.bound_try_lt(hi, lo) == Some(true) {
            return Self::EMPTY_RANGE;
        }
        let lo = match lo {
            BoundId::Fin(e) if self.is_oversized(e) => BoundId::NegInf,
            other => other,
        };
        let hi = match hi {
            BoundId::Fin(e) if self.is_oversized(e) => BoundId::PosInf,
            other => other,
        };
        self.range_raw(lo, hi)
    }

    /// [`SymRange::interval`] on handles (normalized).
    pub fn range_interval(&mut self, lo: ExprId, hi: ExprId) -> RangeId {
        self.range_with_bounds(BoundId::Fin(lo), BoundId::Fin(hi))
    }

    /// [`SymRange::singleton`] on handles (raw, like the value type).
    pub fn range_singleton(&mut self, e: ExprId) -> RangeId {
        self.range_raw(BoundId::Fin(e), BoundId::Fin(e))
    }

    /// [`SymRange::constant`] on handles.
    pub fn range_constant(&mut self, c: i64) -> RangeId {
        let e = self.constant(c as i128);
        self.range_singleton(e)
    }

    /// `true` for `∅`.
    pub fn range_is_empty(&self, r: RangeId) -> bool {
        matches!(self.range_node(r), RangeNode::Empty)
    }

    /// `true` for `[−∞, +∞]`.
    pub fn range_is_top(&self, r: RangeId) -> bool {
        matches!(
            self.range_node(r),
            RangeNode::Interval(BoundId::NegInf, BoundId::PosInf)
        )
    }

    /// Lower bound, if the range is non-empty.
    pub fn range_lo(&self, r: RangeId) -> Option<BoundId> {
        match self.range_node(r) {
            RangeNode::Empty => None,
            RangeNode::Interval(lo, _) => Some(lo),
        }
    }

    /// Upper bound, if the range is non-empty.
    pub fn range_hi(&self, r: RangeId) -> Option<BoundId> {
        match self.range_node(r) {
            RangeNode::Empty => None,
            RangeNode::Interval(_, hi) => Some(hi),
        }
    }

    /// Returns the single expression `e` when the range is `[e, e]`.
    pub fn range_as_singleton(&self, r: RangeId) -> Option<ExprId> {
        match self.range_node(r) {
            RangeNode::Interval(BoundId::Fin(a), BoundId::Fin(b)) if a == b => Some(a),
            _ => None,
        }
    }

    /// Returns `true` when any bound mentions a kernel symbol (the §5
    /// symbolic-range census predicate).
    pub fn range_is_symbolic(&self, r: RangeId) -> bool {
        match self.range_node(r) {
            RangeNode::Empty => false,
            RangeNode::Interval(lo, hi) => [lo, hi]
                .into_iter()
                .any(|b| matches!(b, BoundId::Fin(e) if self.is_symbolic(e))),
        }
    }

    // ------------------------------------------------------------------
    // Memoised lattice operations.
    // ------------------------------------------------------------------

    /// Memoised [`SymRange::join`].
    pub fn range_join(&mut self, a: RangeId, b: RangeId) -> RangeId {
        memo_binop!(self, join_memo, OP_JOIN, a, b, {
            match (self.range_node(a), self.range_node(b)) {
                (RangeNode::Empty, _) => b,
                (_, RangeNode::Empty) => a,
                (RangeNode::Interval(l1, h1), RangeNode::Interval(l2, h2)) => {
                    let lo = self.bound_min(l1, l2);
                    let hi = self.bound_max(h1, h2);
                    self.range_with_bounds(lo, hi)
                }
            }
        })
    }

    /// Memoised [`SymRange::meet`].
    pub fn range_meet(&mut self, a: RangeId, b: RangeId) -> RangeId {
        memo_binop!(self, meet_memo, OP_MEET, a, b, {
            match (self.range_node(a), self.range_node(b)) {
                (RangeNode::Empty, _) | (_, RangeNode::Empty) => Self::EMPTY_RANGE,
                (RangeNode::Interval(l1, h1), RangeNode::Interval(l2, h2)) => {
                    if self.bound_try_lt(h1, l2) == Some(true)
                        || self.bound_try_lt(h2, l1) == Some(true)
                    {
                        Self::EMPTY_RANGE
                    } else {
                        let lo = self.bound_max(l1, l2);
                        let hi = self.bound_min(h1, h2);
                        self.range_with_bounds(lo, hi)
                    }
                }
            }
        })
    }

    /// Memoised [`SymRange::widen`]. Bound stability is id equality —
    /// the `O(1)` compare interning buys the fixpoint loops.
    pub fn range_widen(&mut self, a: RangeId, b: RangeId) -> RangeId {
        memo_binop!(self, widen_memo, OP_WIDEN, a, b, {
            match (self.range_node(a), self.range_node(b)) {
                (RangeNode::Empty, _) => b,
                (_, RangeNode::Empty) => a,
                (RangeNode::Interval(l, h), RangeNode::Interval(l2, h2)) => {
                    let lo = if l == l2 { l } else { BoundId::NegInf };
                    let hi = if h == h2 { h } else { BoundId::PosInf };
                    self.range_raw(lo, hi)
                }
            }
        })
    }

    /// Memoised [`SymRange::le`] (provable inclusion).
    pub fn range_le(&mut self, a: RangeId, b: RangeId) -> bool {
        if let Some(&r) = self.range_le_memo.get(&(a, b)) {
            self.ops[OP_RANGE_LE].hits += 1;
            return r;
        }
        if let Some(base) = &self.base {
            if let Some(&r) = base.range_le_memo.get(&(a, b)) {
                self.ops[OP_RANGE_LE].hits += 1;
                return r;
            }
        }
        self.ops[OP_RANGE_LE].misses += 1;
        let r = match (self.range_node(a), self.range_node(b)) {
            (RangeNode::Empty, _) => true,
            (_, RangeNode::Empty) => false,
            (RangeNode::Interval(l1, h1), RangeNode::Interval(l2, h2)) => {
                self.bound_try_le(l2, l1) == Some(true) && self.bound_try_le(h1, h2) == Some(true)
            }
        };
        self.range_le_memo.insert((a, b), r);
        r
    }

    /// [`SymRange::add`] on handles.
    pub fn range_add(&mut self, a: RangeId, b: RangeId) -> RangeId {
        match (self.range_node(a), self.range_node(b)) {
            (RangeNode::Empty, _) | (_, RangeNode::Empty) => Self::EMPTY_RANGE,
            (RangeNode::Interval(l1, h1), RangeNode::Interval(l2, h2)) => {
                let lo = self.bound_add(l1, l2);
                let hi = self.bound_add(h1, h2);
                self.range_with_bounds(lo, hi)
            }
        }
    }

    /// [`SymRange::add_expr`] on handles.
    pub fn range_add_expr(&mut self, r: RangeId, e: ExprId) -> RangeId {
        match self.range_node(r) {
            RangeNode::Empty => Self::EMPTY_RANGE,
            RangeNode::Interval(lo, hi) => {
                let lo = self.bound_add_expr(lo, e);
                let hi = self.bound_add_expr(hi, e);
                self.range_with_bounds(lo, hi)
            }
        }
    }

    /// [`SymRange::negate`] on handles (raw, like the value type).
    pub fn range_negate(&mut self, r: RangeId) -> RangeId {
        match self.range_node(r) {
            RangeNode::Empty => Self::EMPTY_RANGE,
            RangeNode::Interval(lo, hi) => {
                let nlo = self.bound_negate(hi);
                let nhi = self.bound_negate(lo);
                self.range_raw(nlo, nhi)
            }
        }
    }

    /// [`SymRange::sub`] on handles.
    pub fn range_sub(&mut self, a: RangeId, b: RangeId) -> RangeId {
        let nb = self.range_negate(b);
        self.range_add(a, nb)
    }

    /// [`SymRange::mul_const`] on handles.
    pub fn range_mul_const(&mut self, r: RangeId, c: i128) -> RangeId {
        match self.range_node(r) {
            RangeNode::Empty => Self::EMPTY_RANGE,
            RangeNode::Interval(lo, hi) => {
                let (lo, hi) = if c >= 0 {
                    (self.bound_mul_const(lo, c), self.bound_mul_const(hi, c))
                } else {
                    (self.bound_mul_const(hi, c), self.bound_mul_const(lo, c))
                };
                self.range_with_bounds(lo, hi)
            }
        }
    }

    fn range_const_bounds(&self, r: RangeId) -> Option<(i128, i128)> {
        match self.range_node(r) {
            RangeNode::Interval(BoundId::Fin(a), BoundId::Fin(b)) => {
                Some((self.as_constant(a)?, self.as_constant(b)?))
            }
            _ => None,
        }
    }

    /// [`SymRange::mul`] on handles.
    pub fn range_mul(&mut self, a: RangeId, b: RangeId) -> RangeId {
        if self.range_is_empty(a) || self.range_is_empty(b) {
            return Self::EMPTY_RANGE;
        }
        if let Some(c) = self.range_as_singleton(b).and_then(|e| self.as_constant(e)) {
            return self.range_mul_const(a, c);
        }
        if let Some(c) = self.range_as_singleton(a).and_then(|e| self.as_constant(e)) {
            return self.range_mul_const(b, c);
        }
        if let (Some(x), Some(y)) = (self.range_as_singleton(a), self.range_as_singleton(b)) {
            let p = self.mul(x, y);
            return self.range_singleton(p);
        }
        if let (Some((x1, x2)), Some((y1, y2))) =
            (self.range_const_bounds(a), self.range_const_bounds(b))
        {
            let products = [
                x1.saturating_mul(y1),
                x1.saturating_mul(y2),
                x2.saturating_mul(y1),
                x2.saturating_mul(y2),
            ];
            let lo = *products.iter().min().expect("non-empty");
            let hi = *products.iter().max().expect("non-empty");
            let lo = self.constant(lo);
            let hi = self.constant(hi);
            return self.range_raw(BoundId::Fin(lo), BoundId::Fin(hi));
        }
        Self::TOP_RANGE
    }

    /// [`SymRange::div`] on handles.
    pub fn range_div(&mut self, a: RangeId, b: RangeId) -> RangeId {
        if self.range_is_empty(a) || self.range_is_empty(b) {
            return Self::EMPTY_RANGE;
        }
        if let (Some(x), Some(y)) = (self.range_as_singleton(a), self.range_as_singleton(b)) {
            let q = self.div(x, y);
            return self.range_singleton(q);
        }
        if let Some(d) = self.range_as_singleton(b).and_then(|e| self.as_constant(e)) {
            if d > 0 {
                if let RangeNode::Interval(lo, hi) = self.range_node(a) {
                    let dc = self.constant(d);
                    let div_bound = |arena: &mut ExprArena, b: BoundId| match b {
                        BoundId::Fin(e) => BoundId::Fin(arena.div(e, dc)),
                        inf => inf,
                    };
                    let lo = div_bound(self, lo);
                    let hi = div_bound(self, hi);
                    return self.range_with_bounds(lo, hi);
                }
            }
        }
        Self::TOP_RANGE
    }

    /// [`SymRange::rem`] on handles.
    pub fn range_rem(&mut self, a: RangeId, b: RangeId) -> RangeId {
        if self.range_is_empty(a) || self.range_is_empty(b) {
            return Self::EMPTY_RANGE;
        }
        if let (Some(x), Some(y)) = (self.range_as_singleton(a), self.range_as_singleton(b)) {
            let q = self.rem(x, y);
            return self.range_singleton(q);
        }
        if let Some(m) = self.range_as_singleton(b).and_then(|e| self.as_constant(e)) {
            if m > 0 {
                let zero = self.constant(0);
                let nonneg = match self.range_lo(a) {
                    Some(lo) => self.bound_try_le(BoundId::Fin(zero), lo) == Some(true),
                    None => false,
                };
                let lo = if nonneg { 0 } else { -(m - 1) };
                let lo = self.constant(lo);
                let hi = self.constant(m - 1);
                return self.range_raw(BoundId::Fin(lo), BoundId::Fin(hi));
            }
        }
        Self::TOP_RANGE
    }

    /// [`SymRange::clamp_above`] on handles: `r ⊓ [−∞, b]`.
    pub fn range_clamp_above(&mut self, r: RangeId, b: BoundId) -> RangeId {
        let clamp = self.range_raw(BoundId::NegInf, b);
        self.range_meet(r, clamp)
    }

    /// [`SymRange::clamp_below`] on handles: `r ⊓ [b, +∞]`.
    pub fn range_clamp_below(&mut self, r: RangeId, b: BoundId) -> RangeId {
        let clamp = self.range_raw(b, BoundId::PosInf);
        self.range_meet(r, clamp)
    }

    /// Memoised provable-disjointness test, equal to
    /// `range_value(a).meet(&range_value(b)).is_empty()`.
    ///
    /// This is the workhorse of the alias queries (`QGR`'s
    /// `may_overlap` and `QLR`'s offset comparison). Two endpoint
    /// comparisons decide it: `[l₁,h₁] ⊓ [l₂,h₂] = ∅ ⟺ h₁ < l₂ ∨
    /// h₂ < l₁` — for *normalized* operands (every range the analyses
    /// store) the `meet` construction's third chance to detect
    /// emptiness, `min(h₁,h₂) < max(l₁,l₂)` on the freshly built
    /// bounds, proves strictly less than the direct checks: its proof
    /// must case-split away the outer `min`/`max` first, reaching the
    /// same `hᵢ < lⱼ` obligations with *less* depth budget, and the
    /// within-range branches `hᵢ < lᵢ` are unprovable or the input
    /// would have normalized to `∅`. The debug assertion and the
    /// `disjoint_in_matches_meet` property test keep the two paths
    /// pinned together.
    pub fn ranges_disjoint(&mut self, a: RangeId, b: RangeId) -> bool {
        let r = match (self.range_node(a), self.range_node(b)) {
            (RangeNode::Empty, _) | (_, RangeNode::Empty) => true,
            (RangeNode::Interval(l1, h1), RangeNode::Interval(l2, h2)) => {
                self.bound_try_lt(h1, l2) == Some(true) || self.bound_try_lt(h2, l1) == Some(true)
            }
        };
        debug_assert_eq!(
            r,
            self.range_value(a).meet(&self.range_value(b)).is_empty(),
            "endpoint disjointness must agree with meet-emptiness for {} and {}",
            self.range_value(a),
            self.range_value(b),
        );
        r
    }

    /// `!ranges_disjoint(a, b)` — the alias queries' "may overlap".
    pub fn range_may_overlap(&mut self, a: RangeId, b: RangeId) -> bool {
        !self.ranges_disjoint(a, b)
    }

    // ------------------------------------------------------------------
    // Cross-arena import. The traversal is structure-driven, so the
    // destination arena's contents depend only on the *values* imported
    // (and their order), never on the source arena's id numbering —
    // which is what makes module arenas canonical and lets byte-
    // identity rails compare ids across separately assembled analyses.
    // ------------------------------------------------------------------

    /// Imports `e` from `src`, rewriting every kernel symbol through
    /// `rename`, memoised in `map` (one translation per distinct source
    /// id). `rename` must be *strictly monotone* on the symbols that
    /// occur — the [`SymExpr::map_symbols`] contract — which every
    /// blockwise renumbering of per-function symbol budgets is;
    /// monotonicity preserves the canonical term and `min`/`max`
    /// argument orders, so the node structure can be copied verbatim
    /// and the result is exactly the expression the analysis would have
    /// built with the renamed symbols.
    pub fn import_expr(
        &mut self,
        src: &ExprArena,
        e: ExprId,
        rename: &impl Fn(Symbol) -> Symbol,
        map: &mut ImportMap,
    ) -> ExprId {
        if let Some(&d) = map.exprs.get(&e) {
            return d;
        }
        let node = src.node(e).clone();
        let terms = node
            .terms
            .iter()
            .map(|(atoms, c)| {
                let atoms: Box<[NodeAtom]> = atoms
                    .iter()
                    .map(|a| match *a {
                        NodeAtom::Sym(s) => NodeAtom::Sym(rename(s)),
                        NodeAtom::Min(x, y) => NodeAtom::Min(
                            self.import_expr(src, x, rename, map),
                            self.import_expr(src, y, rename, map),
                        ),
                        NodeAtom::Max(x, y) => NodeAtom::Max(
                            self.import_expr(src, x, rename, map),
                            self.import_expr(src, y, rename, map),
                        ),
                        NodeAtom::Div(x, y) => NodeAtom::Div(
                            self.import_expr(src, x, rename, map),
                            self.import_expr(src, y, rename, map),
                        ),
                        NodeAtom::Mod(x, y) => NodeAtom::Mod(
                            self.import_expr(src, x, rename, map),
                            self.import_expr(src, y, rename, map),
                        ),
                    })
                    .collect();
                (atoms, *c)
            })
            .collect();
        let id = self.intern_node(ExprNode {
            constant: node.constant,
            terms,
        });
        map.exprs.insert(e, id);
        id
    }

    /// Imports a bound; see [`ExprArena::import_expr`].
    pub fn import_bound(
        &mut self,
        src: &ExprArena,
        b: BoundId,
        rename: &impl Fn(Symbol) -> Symbol,
        map: &mut ImportMap,
    ) -> BoundId {
        match b {
            BoundId::Fin(e) => BoundId::Fin(self.import_expr(src, e, rename, map)),
            inf => inf,
        }
    }

    /// Imports a range; see [`ExprArena::import_expr`]. The range's
    /// exact shape is preserved (no re-normalization — emptiness and
    /// size are invariant under a monotone renaming).
    pub fn import_range(
        &mut self,
        src: &ExprArena,
        r: RangeId,
        rename: &impl Fn(Symbol) -> Symbol,
        map: &mut ImportMap,
    ) -> RangeId {
        if let Some(&d) = map.ranges.get(&r) {
            return d;
        }
        let id = match src.range_node(r) {
            RangeNode::Empty => Self::EMPTY_RANGE,
            RangeNode::Interval(lo, hi) => {
                let lo = self.import_bound(src, lo, rename, map);
                let hi = self.import_bound(src, hi, rename, map);
                self.range_raw(lo, hi)
            }
        };
        map.ranges.insert(r, id);
        id
    }

    /// Fallible import: answers `None` when `rename` reports a symbol
    /// with no counterpart (an incremental session probing whether a
    /// cached state survives a re-minted block). Verdicts are memoised
    /// either way.
    pub fn try_import_expr(
        &mut self,
        src: &ExprArena,
        e: ExprId,
        rename: &impl Fn(Symbol) -> Option<Symbol>,
        map: &mut TryImportMap,
    ) -> Option<ExprId> {
        if let Some(&d) = map.exprs.get(&e) {
            return d;
        }
        let node = src.node(e).clone();
        let mut out = Some(());
        let mut terms: Vec<(Box<[NodeAtom]>, i128)> = Vec::with_capacity(node.terms.len());
        'terms: for (atoms, c) in node.terms.iter() {
            let mut new_atoms = Vec::with_capacity(atoms.len());
            for a in atoms.iter() {
                let na = match *a {
                    NodeAtom::Sym(s) => match rename(s) {
                        Some(s) => NodeAtom::Sym(s),
                        None => {
                            out = None;
                            break 'terms;
                        }
                    },
                    NodeAtom::Min(x, y) => {
                        match (
                            self.try_import_expr(src, x, rename, map),
                            self.try_import_expr(src, y, rename, map),
                        ) {
                            (Some(x), Some(y)) => NodeAtom::Min(x, y),
                            _ => {
                                out = None;
                                break 'terms;
                            }
                        }
                    }
                    NodeAtom::Max(x, y) => {
                        match (
                            self.try_import_expr(src, x, rename, map),
                            self.try_import_expr(src, y, rename, map),
                        ) {
                            (Some(x), Some(y)) => NodeAtom::Max(x, y),
                            _ => {
                                out = None;
                                break 'terms;
                            }
                        }
                    }
                    NodeAtom::Div(x, y) => {
                        match (
                            self.try_import_expr(src, x, rename, map),
                            self.try_import_expr(src, y, rename, map),
                        ) {
                            (Some(x), Some(y)) => NodeAtom::Div(x, y),
                            _ => {
                                out = None;
                                break 'terms;
                            }
                        }
                    }
                    NodeAtom::Mod(x, y) => {
                        match (
                            self.try_import_expr(src, x, rename, map),
                            self.try_import_expr(src, y, rename, map),
                        ) {
                            (Some(x), Some(y)) => NodeAtom::Mod(x, y),
                            _ => {
                                out = None;
                                break 'terms;
                            }
                        }
                    }
                };
                new_atoms.push(na);
            }
            terms.push((new_atoms.into_boxed_slice(), *c));
        }
        let id = out.map(|()| {
            self.intern_node(ExprNode {
                constant: node.constant,
                terms: terms.into_boxed_slice(),
            })
        });
        map.exprs.insert(e, id);
        id
    }

    /// Fallible range import; see [`ExprArena::try_import_expr`].
    pub fn try_import_range(
        &mut self,
        src: &ExprArena,
        r: RangeId,
        rename: &impl Fn(Symbol) -> Option<Symbol>,
        map: &mut TryImportMap,
    ) -> Option<RangeId> {
        if let Some(&d) = map.ranges.get(&r) {
            return d;
        }
        let id = match src.range_node(r) {
            RangeNode::Empty => Some(Self::EMPTY_RANGE),
            RangeNode::Interval(lo, hi) => {
                let imp = |arena: &mut ExprArena, b: BoundId, map: &mut TryImportMap| match b {
                    BoundId::Fin(e) => arena.try_import_expr(src, e, rename, map).map(BoundId::Fin),
                    inf => Some(inf),
                };
                match (imp(self, lo, map), imp(self, hi, map)) {
                    (Some(lo), Some(hi)) => Some(self.range_raw(lo, hi)),
                    _ => None,
                }
            }
        };
        map.ranges.insert(r, id);
        id
    }

    // ------------------------------------------------------------------
    // Cross-arena structural comparison (allocation-free lockstep
    // walks; the incremental session's matrix-reuse check).
    // ------------------------------------------------------------------

    /// Allocation-free equivalent of
    /// `other.expr_value(b) == self.expr_value(a).map_symbols(f)` for
    /// *strictly monotone* `f` (which preserves the canonical orders,
    /// so the two nodes can be walked in lockstep). A non-monotone `f`
    /// may produce false negatives, never false positives.
    pub fn expr_eq_mapped(
        &self,
        a: ExprId,
        other: &ExprArena,
        b: ExprId,
        f: &impl Fn(Symbol) -> Symbol,
    ) -> bool {
        let na = self.node(a);
        let nb = other.node(b);
        na.constant == nb.constant
            && na.terms.len() == nb.terms.len()
            && na.terms.iter().zip(nb.terms.iter()).all(|(ta, tb)| {
                ta.1 == tb.1
                    && ta.0.len() == tb.0.len()
                    && ta.0.iter().zip(tb.0.iter()).all(|(x, y)| match (*x, *y) {
                        (NodeAtom::Sym(s), NodeAtom::Sym(t)) => f(s) == t,
                        (NodeAtom::Min(x1, y1), NodeAtom::Min(x2, y2))
                        | (NodeAtom::Max(x1, y1), NodeAtom::Max(x2, y2))
                        | (NodeAtom::Div(x1, y1), NodeAtom::Div(x2, y2))
                        | (NodeAtom::Mod(x1, y1), NodeAtom::Mod(x2, y2)) => {
                            self.expr_eq_mapped(x1, other, x2, f)
                                && self.expr_eq_mapped(y1, other, y2, f)
                        }
                        _ => false,
                    })
            })
    }

    /// Lockstep bound comparison; see [`ExprArena::expr_eq_mapped`].
    pub fn bound_eq_mapped(
        &self,
        a: BoundId,
        other: &ExprArena,
        b: BoundId,
        f: &impl Fn(Symbol) -> Symbol,
    ) -> bool {
        match (a, b) {
            (BoundId::NegInf, BoundId::NegInf) | (BoundId::PosInf, BoundId::PosInf) => true,
            (BoundId::Fin(x), BoundId::Fin(y)) => self.expr_eq_mapped(x, other, y, f),
            _ => false,
        }
    }

    /// Lockstep range comparison; see [`ExprArena::expr_eq_mapped`].
    pub fn range_eq_mapped(
        &self,
        a: RangeId,
        other: &ExprArena,
        b: RangeId,
        f: &impl Fn(Symbol) -> Symbol,
    ) -> bool {
        match (self.range_node(a), other.range_node(b)) {
            (RangeNode::Empty, RangeNode::Empty) => true,
            (RangeNode::Interval(l1, h1), RangeNode::Interval(l2, h2)) => {
                self.bound_eq_mapped(l1, other, l2, f) && self.bound_eq_mapped(h1, other, h2, f)
            }
            _ => false,
        }
    }

    /// Structural equality of two ranges across arenas (identity
    /// renaming, with an id fast path when both handles live in the
    /// same arena).
    pub fn range_structural_eq(&self, a: RangeId, other: &ExprArena, b: RangeId) -> bool {
        if std::ptr::eq(self, other) {
            return a == b;
        }
        self.range_eq_mapped(a, other, b, &|s| s)
    }

    // ------------------------------------------------------------------
    // Display & stats.
    // ------------------------------------------------------------------

    /// Renders an expression using `names` for symbol display.
    pub fn display_expr(&self, id: ExprId, names: &dyn SymbolNames) -> String {
        format!("{}", self.expr_value(id).display(names))
    }

    /// Renders a bound using `names` for symbol display.
    pub fn display_bound(&self, b: BoundId, names: &dyn SymbolNames) -> String {
        format!("{}", self.bound_value(b).display(names))
    }

    /// Renders a range using `names` for symbol display.
    pub fn display_range(&self, r: RangeId, names: &dyn SymbolNames) -> String {
        format!("{}", self.range_value(r).display(names))
    }

    /// Resets the per-op memo counters (a solver arena cloned from a
    /// module arena starts counting its *own* work, so assembly-time
    /// [`ExprArena::absorb_op_stats`] never double-counts the source
    /// arena's activity).
    pub fn clear_op_stats(&mut self) {
        self.ops = [OpStats::default(); 14];
    }

    /// Folds another arena's per-op memo counters into this one's.
    /// Assembly points use this so a module arena's [`ExprArena::stats`]
    /// reflect the work done in the per-part / solver arenas it was
    /// imported from (the arenas themselves are discarded).
    pub fn absorb_op_stats(&mut self, src: &ExprArena) {
        for (mine, theirs) in self.ops.iter_mut().zip(src.ops.iter()) {
            mine.merge(theirs);
        }
    }

    /// Cache counters (nodes, per-op memo hits/misses, approximate
    /// bytes). Totals include the overlay base when present.
    pub fn stats(&self) -> ArenaStats {
        use std::mem::size_of;
        let node_bytes: usize = self
            .nodes
            .iter()
            .map(|n| {
                size_of::<ExprNode>()
                    + n.terms.len() * size_of::<(Box<[NodeAtom]>, i128)>()
                    + n.terms
                        .iter()
                        .map(|(a, _)| a.len() * size_of::<NodeAtom>())
                        .sum::<usize>()
            })
            .sum();
        let bytes = node_bytes
            + self.sizes.len() * size_of::<u32>()
            + self.range_nodes.len() * size_of::<RangeNode>()
            + self.index.capacity() * (size_of::<ExprNode>() + size_of::<ExprId>())
            + self.range_index.capacity() * (size_of::<RangeNode>() + size_of::<RangeId>())
            + (self.le_memo.capacity() + self.lt_memo.capacity())
                * size_of::<((ExprId, ExprId), Option<bool>)>()
            + (self.min_memo.capacity()
                + self.max_memo.capacity()
                + self.add_memo.capacity()
                + self.sub_memo.capacity()
                + self.mul_memo.capacity()
                + self.div_memo.capacity()
                + self.rem_memo.capacity())
                * size_of::<((ExprId, ExprId), ExprId)>()
            + self.neg_memo.capacity() * size_of::<(ExprId, ExprId)>()
            + (self.join_memo.capacity() + self.meet_memo.capacity() + self.widen_memo.capacity())
                * size_of::<((RangeId, RangeId), RangeId)>()
            + self.range_le_memo.capacity() * size_of::<((RangeId, RangeId), bool)>();
        let mut per_op = [("", OpStats::default()); 14];
        for (i, name) in OP_NAMES.iter().enumerate() {
            per_op[i] = (*name, self.ops[i]);
        }
        let mut stats = ArenaStats {
            exprs: self.len(),
            ranges: self.num_ranges(),
            hits: self.ops.iter().map(|o| o.hits).sum(),
            misses: self.ops.iter().map(|o| o.misses).sum(),
            bytes,
            per_op,
        };
        if let Some(base) = &self.base {
            let b = base.stats();
            // The base's nodes are already counted via len(); only add
            // its counters and bytes.
            stats.hits += b.hits;
            stats.misses += b.misses;
            stats.bytes += b.bytes;
            for (mine, theirs) in stats.per_op.iter_mut().zip(b.per_op.iter()) {
                mine.1.merge(&theirs.1);
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Symbol;

    fn n() -> SymExpr {
        SymExpr::from(Symbol::new(0))
    }

    fn m() -> SymExpr {
        SymExpr::from(Symbol::new(1))
    }

    #[test]
    fn interning_is_canonical() {
        let mut a = ExprArena::new();
        let x = a.intern(&(n() + 2.into()));
        let y = a.intern(&(SymExpr::from(2) + n()));
        let z = a.intern(&(n() + 3.into()));
        assert_eq!(x, y);
        assert_ne!(x, z);
        assert_eq!(a.expr_value(x), n() + 2.into());
    }

    #[test]
    fn value_roundtrip_preserves_structure() {
        let exprs = [
            SymExpr::from(0),
            n() * m() + 7.into(),
            SymExpr::min(n(), m() + 1.into()) * 3.into() - m(),
            SymExpr::div(n(), 2.into()) + SymExpr::rem(m(), 3.into()),
            SymExpr::max(SymExpr::min(n(), m()), n() - 4.into()),
        ];
        let mut a = ExprArena::new();
        for e in &exprs {
            let id = a.intern(e);
            assert_eq!(&a.expr_value(id), e, "round-trip of {e}");
            // Size agrees with the value measure.
            assert_eq!(a.expr_size(id), e.size());
            // Re-interning the reconstruction is the same id.
            assert_eq!(a.intern(&a.expr_value(id)), id);
        }
    }

    #[test]
    fn try_le_matches_uncached_and_memoises() {
        let mut a = ExprArena::new();
        let pairs = [
            (n(), n() + 1.into()),
            (n() + 1.into(), n()),
            (n(), m()),
            (SymExpr::min(n(), m()), n()),
            (SymExpr::from(3), SymExpr::from(7)),
        ];
        for (x, y) in &pairs {
            let xi = a.intern(x);
            let yi = a.intern(y);
            assert_eq!(a.try_le(xi, yi), x.try_le(y));
        }
        let before = a.stats();
        for (x, y) in &pairs {
            let xi = a.intern(x);
            let yi = a.intern(y);
            let _ = a.try_le(xi, yi);
        }
        let after = a.stats();
        assert_eq!(after.misses, before.misses, "second round is all hits");
        assert!(after.hits > before.hits);
    }

    /// Pins the per-op hit accounting: one miss then one hit per
    /// distinct (op, operand-pair), reported under the op's own name.
    #[test]
    fn per_op_stats_pin_hit_counting() {
        let mut a = ExprArena::new();
        let x = a.intern(&n());
        let y = a.intern(&m());
        let j1 = {
            let ra = a.intern_range(&SymRange::interval(0.into(), n()));
            let rb = a.intern_range(&SymRange::interval(1.into(), m()));
            (ra, rb)
        };
        let op = |stats: &ArenaStats, name: &str| -> OpStats {
            stats
                .per_op
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, s)| *s)
                .expect("op name present")
        };
        let s0 = a.stats();
        let _ = a.add(x, y);
        let _ = a.add(x, y);
        let s1 = a.stats();
        assert_eq!(op(&s1, "add").misses, op(&s0, "add").misses + 1);
        assert_eq!(op(&s1, "add").hits, op(&s0, "add").hits + 1);
        let _ = a.range_join(j1.0, j1.1);
        let _ = a.range_join(j1.0, j1.1);
        let _ = a.range_join(j1.0, j1.1);
        let s2 = a.stats();
        assert_eq!(op(&s2, "join").misses, op(&s1, "join").misses + 1);
        assert_eq!(op(&s2, "join").hits, op(&s1, "join").hits + 2);
        // Totals aggregate the per-op counters, and the byte estimate
        // is non-trivial once nodes exist.
        assert_eq!(s2.hits, s2.per_op.iter().map(|(_, o)| o.hits).sum::<u64>());
        assert_eq!(
            s2.misses,
            s2.per_op.iter().map(|(_, o)| o.misses).sum::<u64>()
        );
        assert!(s2.bytes > 0);
        assert!(s2.exprs >= 2 && s2.ranges >= 4);
    }

    #[test]
    fn ops_match_value_algorithms() {
        let mut a = ExprArena::new();
        let cases = [
            (n(), m()),
            (n() + 1.into(), n()),
            (SymExpr::from(6) * n(), SymExpr::from(3)),
            (SymExpr::min(n(), m()), SymExpr::max(n(), m())),
            (SymExpr::from(7), SymExpr::from(0)),
        ];
        for (x, y) in &cases {
            let xi = a.intern(x);
            let yi = a.intern(y);
            assert_eq!(
                {
                    let id = a.add(xi, yi);
                    a.expr_value(id)
                },
                x.clone() + y.clone()
            );
            assert_eq!(
                {
                    let id = a.sub(xi, yi);
                    a.expr_value(id)
                },
                x.clone() - y.clone()
            );
            assert_eq!(
                {
                    let id = a.mul(xi, yi);
                    a.expr_value(id)
                },
                x.clone() * y.clone()
            );
            assert_eq!(
                {
                    let id = a.min(xi, yi);
                    a.expr_value(id)
                },
                SymExpr::min(x.clone(), y.clone())
            );
            assert_eq!(
                {
                    let id = a.max(xi, yi);
                    a.expr_value(id)
                },
                SymExpr::max(x.clone(), y.clone())
            );
            assert_eq!(
                {
                    let id = a.div(xi, yi);
                    a.expr_value(id)
                },
                SymExpr::div(x.clone(), y.clone())
            );
            assert_eq!(
                {
                    let id = a.rem(xi, yi);
                    a.expr_value(id)
                },
                SymExpr::rem(x.clone(), y.clone())
            );
            assert_eq!(
                {
                    let id = a.neg(xi);
                    a.expr_value(id)
                },
                -x.clone()
            );
        }
    }

    #[test]
    fn bound_comparisons_with_infinities() {
        let mut a = ExprArena::new();
        let f = {
            let id = a.intern(&n());
            BoundId::Fin(id)
        };
        assert_eq!(a.bound_try_le(BoundId::NegInf, f), Some(true));
        assert_eq!(a.bound_try_lt(f, BoundId::PosInf), Some(true));
        assert_eq!(a.bound_try_le(BoundId::PosInf, f), Some(false));
        assert_eq!(
            a.bound_try_lt(BoundId::PosInf, BoundId::PosInf),
            Some(false)
        );
    }

    #[test]
    fn ranges_disjoint_matches_meet() {
        let mut a = ExprArena::new();
        let cases = [
            // The Figure 1 criterion.
            (
                SymRange::interval(0.into(), n() - 1.into()),
                SymRange::interval(n(), n() + m() - 1.into()),
            ),
            // Overlapping for some valuation.
            (
                SymRange::interval(0.into(), n() + 1.into()),
                SymRange::interval(1.into(), n() + 2.into()),
            ),
            // Distinct symbols: unknown, conservatively not disjoint.
            (
                SymRange::interval(0.into(), n()),
                SymRange::interval(m(), m() + 1.into()),
            ),
            (SymRange::empty(), SymRange::top()),
            (SymRange::constant(3), SymRange::constant(4)),
        ];
        for (x, y) in &cases {
            let xi = a.intern_range(x);
            let yi = a.intern_range(y);
            let expect = x.meet(y).is_empty();
            assert_eq!(a.ranges_disjoint(xi, yi), expect, "{x} vs {y}");
            // Symmetric.
            assert_eq!(a.ranges_disjoint(yi, xi), expect);
        }
        // Repeating every query is all memo hits (or infinity
        // fast-paths that never touch the memo).
        let misses = a.stats().misses;
        for (x, y) in &cases {
            let xi = a.intern_range(x);
            let yi = a.intern_range(y);
            let _ = a.ranges_disjoint(xi, yi);
        }
        assert_eq!(a.stats().misses, misses);
    }

    #[test]
    fn range_lattice_ops_match_value_algorithms() {
        let mut a = ExprArena::new();
        let ranges = [
            SymRange::empty(),
            SymRange::top(),
            SymRange::constant(3),
            SymRange::interval(0.into(), n()),
            SymRange::interval(n(), n() + m()),
            SymRange::with_bounds(Bound::from(0), Bound::PosInf),
            SymRange::with_bounds(Bound::NegInf, Bound::Fin(m() - 1.into())),
            SymRange::singleton(n() * 2.into()),
        ];
        for x in &ranges {
            for y in &ranges {
                let xi = a.intern_range(x);
                let yi = a.intern_range(y);
                assert_eq!(
                    {
                        let id = a.range_join(xi, yi);
                        a.range_value(id)
                    },
                    x.join(y),
                    "{x} ⊔ {y}"
                );
                assert_eq!(
                    {
                        let id = a.range_meet(xi, yi);
                        a.range_value(id)
                    },
                    x.meet(y),
                    "{x} ⊓ {y}"
                );
                assert_eq!(
                    {
                        let id = a.range_widen(xi, yi);
                        a.range_value(id)
                    },
                    x.widen(y),
                    "{x} ∇ {y}"
                );
                assert_eq!(a.range_le(xi, yi), x.le(y), "{x} ⊑ {y}");
                assert_eq!(
                    {
                        let id = a.range_add(xi, yi);
                        a.range_value(id)
                    },
                    x.add(y),
                    "{x} + {y}"
                );
                assert_eq!(
                    {
                        let id = a.range_sub(xi, yi);
                        a.range_value(id)
                    },
                    x.sub(y),
                    "{x} − {y}"
                );
                assert_eq!(
                    {
                        let id = a.range_mul(xi, yi);
                        a.range_value(id)
                    },
                    x.mul(y),
                    "{x} × {y}"
                );
                assert_eq!(
                    {
                        let id = a.range_div(xi, yi);
                        a.range_value(id)
                    },
                    x.div(y),
                    "{x} ÷ {y}"
                );
                assert_eq!(
                    {
                        let id = a.range_rem(xi, yi);
                        a.range_value(id)
                    },
                    x.rem(y),
                    "{x} % {y}"
                );
            }
            let xi = a.intern_range(x);
            assert_eq!(
                {
                    let id = a.range_negate(xi);
                    a.range_value(id)
                },
                x.negate()
            );
            assert_eq!(
                {
                    let id = a.range_mul_const(xi, -3);
                    a.range_value(id)
                },
                x.mul_const(-3)
            );
            let e = a.intern(&m());
            assert_eq!(
                {
                    let id = a.range_add_expr(xi, e);
                    a.range_value(id)
                },
                x.add_expr(&m())
            );
            let b = a.intern_bound(&Bound::Fin(n() - 1.into()));
            assert_eq!(
                {
                    let id = a.range_clamp_above(xi, b);
                    a.range_value(id)
                },
                x.clamp_above(Bound::Fin(n() - 1.into()))
            );
            assert_eq!(
                {
                    let id = a.range_clamp_below(xi, b);
                    a.range_value(id)
                },
                x.clamp_below(Bound::Fin(n() - 1.into()))
            );
            assert_eq!(a.range_is_empty(xi), x.is_empty());
            assert_eq!(a.range_is_top(xi), x.is_top());
            assert_eq!(a.range_is_symbolic(xi), x.is_symbolic());
        }
    }

    #[test]
    fn preinterned_constants_are_stable() {
        let a = ExprArena::new();
        let b = ExprArena::new();
        assert_eq!(a.range_value(ExprArena::EMPTY_RANGE), SymRange::empty());
        assert_eq!(b.range_value(ExprArena::TOP_RANGE), SymRange::top());
        assert!(a.range_is_empty(ExprArena::EMPTY_RANGE));
        assert!(a.range_is_top(ExprArena::TOP_RANGE));
    }

    #[test]
    fn import_translates_between_arenas() {
        let mut src = ExprArena::new();
        let e = SymExpr::min(n() * m(), m() + 3.into()) + SymExpr::max(n(), 2.into()) * 5.into();
        let id = src.intern(&e);
        let r = src.intern_range(&SymRange::interval(0.into(), n() + m()));

        let mut dst = ExprArena::new();
        let shift = |s: Symbol| Symbol::new(s.index() + 10);
        let mut map = ImportMap::default();
        let did = dst.import_expr(&src, id, &shift, &mut map);
        assert_eq!(dst.expr_value(did), e.map_symbols(&shift));
        // Memoised: importing again is a table hit returning the same id.
        assert_eq!(dst.import_expr(&src, id, &shift, &mut map), did);
        let dr = dst.import_range(&src, r, &shift, &mut map);
        assert_eq!(dst.range_value(dr), src.range_value(r).map_symbols(&shift));
        // The lockstep comparison agrees.
        assert!(src.expr_eq_mapped(id, &dst, did, &shift));
        assert!(src.range_eq_mapped(r, &dst, dr, &shift));
        assert!(!src.expr_eq_mapped(id, &dst, did, &|s| s));
    }

    #[test]
    fn try_import_reports_unmappable_symbols() {
        let mut src = ExprArena::new();
        let ok = src.intern_range(&SymRange::interval(0.into(), n()));
        let bad = src.intern_range(&SymRange::interval(0.into(), m()));
        let mut dst = ExprArena::new();
        let rename = |s: Symbol| (s.index() == 0).then(|| Symbol::new(5));
        let mut map = TryImportMap::default();
        let got = dst.try_import_range(&src, ok, &rename, &mut map);
        assert!(got.is_some());
        assert_eq!(
            dst.range_value(got.unwrap()),
            SymRange::interval(0.into(), SymExpr::from(Symbol::new(5)))
        );
        assert_eq!(dst.try_import_range(&src, bad, &rename, &mut map), None);
        // Memoised verdicts either way.
        assert_eq!(dst.try_import_range(&src, bad, &rename, &mut map), None);
    }

    #[test]
    fn overlay_reads_base_and_adopts_deterministically() {
        let mut root = ExprArena::new();
        let x = root.intern(&n());
        let base_range = root.intern_range(&SymRange::interval(0.into(), n()));
        let root_len = root.len();

        let base = Arc::new(root);
        let mut ov1 = ExprArena::with_base(Arc::clone(&base));
        let mut ov2 = ExprArena::with_base(Arc::clone(&base));
        // Base content resolves through the overlay with base ids.
        assert_eq!(ov1.intern(&n()), x);
        assert_eq!(
            ov1.range_value(base_range),
            SymRange::interval(0.into(), n())
        );
        // New content gets overlay-space ids past the base.
        let y1 = ov1.intern(&(n() + 41.into()));
        assert!(y1.index() >= root_len);
        let r1 = ov1.range_interval(x, y1);
        let y2 = ov2.intern(&(n() + 43.into()));
        // Memoised ops work against mixed base/local ids.
        assert_eq!(ov1.try_le(x, y1), Some(true));
        let p1 = ov1.into_overlay_part();
        let p2 = ov2.into_overlay_part();
        let mut root = Arc::try_unwrap(base).expect("overlays released");
        let xl1 = root.adopt(p1);
        let xl2 = root.adopt(p2);
        // Base ids are identity; local ids translate onto fresh ids.
        assert_eq!(xl1.expr(x), x);
        assert_eq!(root.expr_value(xl1.expr(y1)), n() + 41.into());
        assert_eq!(root.expr_value(xl2.expr(y2)), n() + 43.into());
        assert_eq!(
            root.range_value(xl1.range(r1)),
            SymRange::interval(n(), n() + 41.into())
        );
        assert_eq!(xl1.range(base_range), base_range);
        // Adoption dedupes against existing content: re-adopting the
        // same value finds the existing node.
        assert_eq!(root.intern(&(n() + 41.into())), xl1.expr(y1));
    }

    #[test]
    fn range_roundtrip() {
        let mut a = ExprArena::new();
        for r in [
            SymRange::empty(),
            SymRange::top(),
            SymRange::interval(0.into(), n()),
            SymRange::with_bounds(Bound::from(0), Bound::PosInf),
        ] {
            let id = a.intern_range(&r);
            assert_eq!(a.range_value(id), r);
        }
    }

    #[test]
    fn display_matches_value_display() {
        let mut a = ExprArena::new();
        let e = n() * 2.into() + 3.into();
        let id = a.intern(&e);
        struct NoNames;
        impl SymbolNames for NoNames {
            fn symbol_name(&self, _s: Symbol) -> Option<&str> {
                None
            }
        }
        assert_eq!(a.display_expr(id, &NoNames), "2*s0 + 3");
        let r = a.intern_range(&SymRange::interval(0.into(), n()));
        assert_eq!(a.display_range(r, &NoNames), "[0, s0]");
        assert_eq!(a.display_bound(BoundId::NegInf, &NoNames), "-inf");
    }
}
