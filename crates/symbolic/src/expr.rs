//! Canonical symbolic expressions.
//!
//! A [`SymExpr`] is kept in the canonical affine form `c₀ + Σ cᵢ·tᵢ`
//! where each *term* `tᵢ` is a (sorted) product of [`Atom`]s and the
//! coefficients `cᵢ` are non-zero integers. Purely affine arithmetic
//! (`+`, `−`, `×` by constants, and distribution of general `×`) is
//! exact; `min`, `max`, `/` and `mod` fold when enough is known and
//! otherwise become opaque atoms, as in the CGO'16 paper's expression
//! grammar (§3.3).
//!
//! All constant arithmetic saturates at the `i128` boundaries; the
//! analyses that sit on top only ever feed bounded program constants, and
//! the concrete-evaluation oracle in [`crate::Valuation`] uses the same
//! saturation so property tests compare like with like.
//!
//! **Semantics contract.** Canonicalization applies *mathematical*
//! identities (commuting sums, merging like terms, exact division).
//! Saturating arithmetic is neither associative nor stable under such
//! rewriting, so exact agreement with an op-by-op saturating evaluator
//! (the interpreter) is guaranteed for single operations and whenever no
//! intermediate value saturates — which covers every UB-free pointer
//! workload, where offsets are bounded by allocation sizes. Past the
//! saturation boundary the canonical form evaluates the *rewritten*
//! expression; `tests/arith_crosscheck.rs` pins both the agreement
//! regime and the known boundary divergences.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

use crate::symbol::{Symbol, SymbolNames};

/// Maximum number of atoms before expressions are considered oversized.
///
/// The paper (§3.8) notes that the widening discipline prevents "very
/// long chains of min and max expressions"; this limit is the safety net
/// that bounds the size of any single expression. Oversized expressions
/// are collapsed to ±∞ by the [`crate::SymRange`] layer, never silently
/// truncated here.
pub(crate) const MAX_EXPR_ATOMS: usize = 64;

/// An indivisible factor of a term.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Atom {
    /// A kernel symbol.
    Sym(Symbol),
    /// `min(a, b)` that could not be resolved statically.
    Min(Box<SymExpr>, Box<SymExpr>),
    /// `max(a, b)` that could not be resolved statically.
    Max(Box<SymExpr>, Box<SymExpr>),
    /// Truncating division `a / b` that could not be folded.
    Div(Box<SymExpr>, Box<SymExpr>),
    /// Truncating remainder `a mod b` that could not be folded.
    Mod(Box<SymExpr>, Box<SymExpr>),
}

impl Atom {
    fn size(&self) -> usize {
        match self {
            Atom::Sym(_) => 1,
            Atom::Min(a, b) | Atom::Max(a, b) | Atom::Div(a, b) | Atom::Mod(a, b) => {
                1 + a.size() + b.size()
            }
        }
    }

    fn for_each_symbol(&self, f: &mut impl FnMut(Symbol)) {
        match self {
            Atom::Sym(s) => f(*s),
            Atom::Min(a, b) | Atom::Max(a, b) | Atom::Div(a, b) | Atom::Mod(a, b) => {
                a.for_each_symbol_inner(f);
                b.for_each_symbol_inner(f);
            }
        }
    }

    fn map_symbols(&self, f: &impl Fn(Symbol) -> Symbol) -> Atom {
        match self {
            Atom::Sym(s) => Atom::Sym(f(*s)),
            Atom::Min(a, b) => Atom::Min(Box::new(a.map_symbols(f)), Box::new(b.map_symbols(f))),
            Atom::Max(a, b) => Atom::Max(Box::new(a.map_symbols(f)), Box::new(b.map_symbols(f))),
            Atom::Div(a, b) => Atom::Div(Box::new(a.map_symbols(f)), Box::new(b.map_symbols(f))),
            Atom::Mod(a, b) => Atom::Mod(Box::new(a.map_symbols(f)), Box::new(b.map_symbols(f))),
        }
    }

    fn eq_mapped(&self, other: &Atom, f: &impl Fn(Symbol) -> Symbol) -> bool {
        match (self, other) {
            (Atom::Sym(a), Atom::Sym(b)) => f(*a) == *b,
            (Atom::Min(a1, b1), Atom::Min(a2, b2))
            | (Atom::Max(a1, b1), Atom::Max(a2, b2))
            | (Atom::Div(a1, b1), Atom::Div(a2, b2))
            | (Atom::Mod(a1, b1), Atom::Mod(a2, b2)) => a1.eq_mapped(a2, f) && b1.eq_mapped(b2, f),
            _ => false,
        }
    }
}

/// A product of atoms, kept sorted so equal products compare equal.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct Term(Vec<Atom>);

impl Term {
    fn product(&self, other: &Term) -> Term {
        let mut atoms = self.0.clone();
        atoms.extend(other.0.iter().cloned());
        atoms.sort();
        Term(atoms)
    }

    fn size(&self) -> usize {
        self.0.iter().map(Atom::size).sum()
    }
}

fn sat_add(a: i128, b: i128) -> i128 {
    a.saturating_add(b)
}

fn sat_mul(a: i128, b: i128) -> i128 {
    a.saturating_mul(b)
}

/// Truncating division with the same saturation as the concrete
/// evaluator ([`crate::Valuation`]) and the interpreter oracle:
/// `i128::MIN / -1` saturates to `i128::MAX` instead of overflowing.
/// Callers must rule out `b == 0` first.
pub(crate) fn sat_div(a: i128, b: i128) -> i128 {
    a.checked_div(b).unwrap_or(i128::MAX)
}

/// Truncating remainder matching the concrete evaluator:
/// `i128::MIN % -1` is 0 (the mathematical result `checked_rem` refuses
/// to produce). Callers must rule out `b == 0` first.
pub(crate) fn sat_rem(a: i128, b: i128) -> i128 {
    a.checked_rem(b).unwrap_or(0)
}

/// A symbolic expression in canonical affine form.
///
/// Construct expressions with [`From`] conversions and the standard
/// arithmetic operators, or with the smart constructors [`SymExpr::min`],
/// [`SymExpr::max`], [`SymExpr::div`] and [`SymExpr::rem`].
///
/// # Examples
///
/// ```
/// use sra_symbolic::{Symbol, SymExpr};
/// let n = SymExpr::from(Symbol::new(0));
/// let e = n.clone() + n.clone() - 2.into(); // 2N - 2
/// assert_eq!(e, n.clone() * 2.into() - 2.into());
/// assert_eq!(e.try_lt(&(n * 2.into())), Some(true));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymExpr {
    constant: i128,
    terms: BTreeMap<Term, i128>,
}

impl SymExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        SymExpr {
            constant: 0,
            terms: BTreeMap::new(),
        }
    }

    /// Returns `Some(c)` when the expression is the constant `c`.
    pub fn as_constant(&self) -> Option<i128> {
        if self.terms.is_empty() {
            Some(self.constant)
        } else {
            None
        }
    }

    /// Returns `true` when the expression mentions at least one symbol or
    /// opaque operator (i.e. it is not a plain integer).
    pub fn is_symbolic(&self) -> bool {
        !self.terms.is_empty()
    }

    /// Returns `Some(s)` when the expression is exactly the symbol `s`.
    pub fn as_symbol(&self) -> Option<Symbol> {
        if self.constant != 0 || self.terms.len() != 1 {
            return None;
        }
        let (term, &coeff) = self.terms.iter().next()?;
        if coeff != 1 || term.0.len() != 1 {
            return None;
        }
        match &term.0[0] {
            Atom::Sym(s) => Some(*s),
            _ => None,
        }
    }

    /// Total number of atoms in the expression (a size measure used to
    /// bound expression growth; see [`SymRange`](crate::SymRange)).
    pub fn size(&self) -> usize {
        self.terms.keys().map(Term::size).sum()
    }

    /// Returns `true` when this expression exceeds the internal size
    /// budget and should be treated as unknown by clients that must stay
    /// cheap.
    pub fn is_oversized(&self) -> bool {
        self.size() > MAX_EXPR_ATOMS
    }

    /// Calls `f` with every kernel symbol mentioned in the expression
    /// (including inside `min`/`max`/`div`/`mod`), possibly repeatedly.
    pub fn for_each_symbol(&self, mut f: impl FnMut(Symbol)) {
        self.for_each_symbol_inner(&mut f);
    }

    fn for_each_symbol_inner(&self, f: &mut impl FnMut(Symbol)) {
        for term in self.terms.keys() {
            for atom in &term.0 {
                atom.for_each_symbol(f);
            }
        }
    }

    /// Rewrites every kernel symbol through `f`, preserving the
    /// canonical form.
    ///
    /// `f` must be *strictly monotone* on the symbols that occur
    /// (`a < b ⇒ f(a) < f(b)`), which every block-wise renumbering of
    /// per-function symbol budgets is. Monotonicity guarantees that the
    /// canonical orderings baked into the representation — sorted term
    /// products, and the argument order of unresolved `min`/`max` — are
    /// preserved, so the result is exactly the expression the analysis
    /// would have built had it minted the renamed symbols in the first
    /// place. That is what lets an incremental session *rebase* cached
    /// per-function analysis parts onto shifted symbol-id blocks instead
    /// of re-running the analysis.
    pub fn map_symbols(&self, f: &impl Fn(Symbol) -> Symbol) -> SymExpr {
        let mut out = SymExpr {
            constant: self.constant,
            terms: BTreeMap::new(),
        };
        for (term, &coeff) in &self.terms {
            let mut atoms: Vec<Atom> = term.0.iter().map(|a| a.map_symbols(f)).collect();
            atoms.sort();
            out.add_term(Term(atoms), coeff);
        }
        out
    }

    /// Allocation-free equivalent of `self.map_symbols(f) == *other`
    /// for *strictly monotone* `f` (which preserves the canonical term
    /// order, so the two expressions can be walked in lockstep). A
    /// non-monotone `f` may produce false negatives, never false
    /// positives.
    pub fn eq_mapped(&self, other: &SymExpr, f: &impl Fn(Symbol) -> Symbol) -> bool {
        self.constant == other.constant
            && self.terms.len() == other.terms.len()
            && self
                .terms
                .iter()
                .zip(&other.terms)
                .all(|((ta, ca), (tb, cb))| {
                    ca == cb
                        && ta.0.len() == tb.0.len()
                        && ta.0.iter().zip(&tb.0).all(|(a, b)| a.eq_mapped(b, f))
                })
    }

    /// Crate-internal: the constant part of the affine form.
    pub(crate) fn as_constant_part(&self) -> i128 {
        self.constant
    }

    /// Crate-internal: reassembles an expression from already-canonical
    /// parts (the [`crate::ExprArena`] reconstructing a node). `terms`
    /// must be distinct canonical terms with non-zero coefficients —
    /// exactly what a prior [`SymExpr::terms_view`] produced — so the
    /// `BTreeMap` insert reproduces the original map verbatim.
    pub(crate) fn from_raw_parts(
        constant: i128,
        terms: impl Iterator<Item = (Vec<Atom>, i128)>,
    ) -> SymExpr {
        let mut map = BTreeMap::new();
        for (atoms, coeff) in terms {
            debug_assert_ne!(coeff, 0, "canonical terms have non-zero coefficients");
            let prev = map.insert(Term(atoms), coeff);
            debug_assert!(prev.is_none(), "canonical terms are distinct");
        }
        SymExpr {
            constant,
            terms: map,
        }
    }

    /// Crate-internal: iterates `(atoms-of-term, coefficient)` pairs.
    pub(crate) fn terms_view(&self) -> impl Iterator<Item = (&[Atom], i128)> + '_ {
        self.terms.iter().map(|(t, &c)| (t.0.as_slice(), c))
    }

    fn from_atom(atom: Atom) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(Term(vec![atom]), 1);
        SymExpr { constant: 0, terms }
    }

    fn add_term(&mut self, term: Term, coeff: i128) {
        use std::collections::btree_map::Entry;
        if coeff == 0 {
            return;
        }
        match self.terms.entry(term) {
            Entry::Occupied(mut o) => {
                let v = sat_add(*o.get(), coeff);
                if v == 0 {
                    o.remove();
                } else {
                    *o.get_mut() = v;
                }
            }
            Entry::Vacant(v) => {
                v.insert(coeff);
            }
        }
    }

    /// Symbolic minimum with constant folding and comparison-based
    /// simplification: if one operand is provably ≤ the other it wins.
    pub fn min(a: SymExpr, b: SymExpr) -> SymExpr {
        // Check both directions: try_le is not symmetric in what it can
        // prove (a ≤ b may be provable while b ≤ a is merely unknown).
        match (a.try_le(&b), b.try_le(&a)) {
            (Some(true), _) | (_, Some(false)) => a,
            (Some(false), _) | (_, Some(true)) => b,
            (None, None) => {
                // Canonical argument order keeps min(x,y) == min(y,x).
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                SymExpr::from_atom(Atom::Min(Box::new(lo), Box::new(hi)))
            }
        }
    }

    /// Symbolic maximum; dual of [`SymExpr::min`].
    pub fn max(a: SymExpr, b: SymExpr) -> SymExpr {
        match (a.try_le(&b), b.try_le(&a)) {
            (Some(true), _) | (_, Some(false)) => b,
            (Some(false), _) | (_, Some(true)) => a,
            (None, None) => {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                SymExpr::from_atom(Atom::Max(Box::new(lo), Box::new(hi)))
            }
        }
    }

    /// Truncating division. Folds constants and exact divisions by a
    /// constant; otherwise produces an opaque `Div` atom. Division by the
    /// constant zero yields an opaque atom as well (the program would be
    /// undefined; any value is a sound abstraction).
    ///
    /// Like every canonicalization here, the exact-division fold is a
    /// *mathematical* identity (`6x/3 = 2x` over ℤ); in a program whose
    /// intermediate values saturate, the folded form can evaluate
    /// differently from the op-by-op original (saturation does not
    /// commute with rewriting). See the crate docs and the
    /// `arith_crosscheck` suite for the exact agreement contract.
    #[allow(clippy::should_implement_trait)] // associated constructor, not `Div::div`
    pub fn div(a: SymExpr, b: SymExpr) -> SymExpr {
        if let (Some(x), Some(y)) = (a.as_constant(), b.as_constant()) {
            if y != 0 {
                return SymExpr::from(sat_div(x, y));
            }
        }
        if let Some(d) = b.as_constant() {
            if d != 0
                && sat_rem(a.constant, d) == 0
                && a.terms.values().all(|&c| sat_rem(c, d) == 0)
            {
                let mut out = SymExpr::zero();
                out.constant = sat_div(a.constant, d);
                for (t, &c) in &a.terms {
                    out.add_term(t.clone(), sat_div(c, d));
                }
                return out;
            }
        }
        SymExpr::from_atom(Atom::Div(Box::new(a), Box::new(b)))
    }

    /// Truncating remainder (`%` with C semantics). Folds constants;
    /// otherwise produces an opaque `Mod` atom.
    #[allow(clippy::should_implement_trait)] // associated constructor, not `Rem::rem`
    pub fn rem(a: SymExpr, b: SymExpr) -> SymExpr {
        if let (Some(x), Some(y)) = (a.as_constant(), b.as_constant()) {
            if y != 0 {
                return SymExpr::from(sat_rem(x, y));
            }
        }
        SymExpr::from_atom(Atom::Mod(Box::new(a), Box::new(b)))
    }

    /// Tries to prove `self ≤ other` (for every valuation of the
    /// symbols).
    ///
    /// Returns `Some(true)` when provably ≤, `Some(false)` when
    /// provably greater, and `None` when the order cannot be decided —
    /// e.g. between expressions over distinct kernel symbols, which the
    /// paper leaves unordered.
    pub fn try_le(&self, other: &SymExpr) -> Option<bool> {
        let diff = other.clone() - self.clone();
        if prove_nonneg(&diff, 4) {
            return Some(true);
        }
        // self > other  ⟺  self − other − 1 ≥ 0 (integers).
        let strict = self.clone() - other.clone() - SymExpr::from(1);
        if prove_nonneg(&strict, 4) {
            return Some(false);
        }
        None
    }

    /// Tries to prove `self < other`; see [`SymExpr::try_le`].
    pub fn try_lt(&self, other: &SymExpr) -> Option<bool> {
        (self.clone() + SymExpr::from(1)).try_le(other)
    }
}

/// Attempts a proof that `e ≥ 0` for all valuations.
///
/// Decides the affine-constant case exactly and recurses structurally
/// through single `min`/`max` atoms with coefficient ±1:
///
/// * `c + min(x, y) ≥ 0` ⟸ `c + x ≥ 0 ∧ c + y ≥ 0`
/// * `c + max(x, y) ≥ 0` ⟸ `c + x ≥ 0 ∨ c + y ≥ 0`
/// * `c − min(x, y) = max(c−x, c−y)`, and dually for `max`.
fn prove_nonneg(e: &SymExpr, depth: u32) -> bool {
    if let Some(c) = e.as_constant() {
        return c >= 0;
    }
    if depth == 0 {
        return false;
    }
    // Strip one min/max term (coefficient ±1) and case-split on it:
    //   rest + min(x,y) ≥ 0 ⟸ rest+x ≥ 0 ∧ rest+y ≥ 0
    //   rest + max(x,y) ≥ 0 ⟸ rest+x ≥ 0 ∨ rest+y ≥ 0
    //   rest − min(x,y) ≥ 0 ⟸ rest−x ≥ 0 ∨ rest−y ≥ 0
    //   rest − max(x,y) ≥ 0 ⟸ rest−x ≥ 0 ∧ rest−y ≥ 0
    for (term, &coeff) in &e.terms {
        if term.0.len() != 1 || (coeff != 1 && coeff != -1) {
            continue;
        }
        let (is_min, x, y) = match &term.0[0] {
            Atom::Min(x, y) => (true, x, y),
            Atom::Max(x, y) => (false, x, y),
            _ => continue,
        };
        let mut rest = e.clone();
        rest.add_term(term.clone(), -coeff);
        let with_x;
        let with_y;
        if coeff == 1 {
            with_x = rest.clone() + (**x).clone();
            with_y = rest + (**y).clone();
        } else {
            with_x = rest.clone() - (**x).clone();
            with_y = rest - (**y).clone();
        }
        // `+min`/`−max` require both branches; `+max`/`−min` need one.
        let needs_both = is_min == (coeff == 1);
        let proved = if needs_both {
            prove_nonneg(&with_x, depth - 1) && prove_nonneg(&with_y, depth - 1)
        } else {
            prove_nonneg(&with_x, depth - 1) || prove_nonneg(&with_y, depth - 1)
        };
        if proved {
            return true;
        }
    }
    false
}

impl From<i128> for SymExpr {
    fn from(c: i128) -> Self {
        SymExpr {
            constant: c,
            terms: BTreeMap::new(),
        }
    }
}

impl From<i64> for SymExpr {
    fn from(c: i64) -> Self {
        SymExpr::from(c as i128)
    }
}

impl From<i32> for SymExpr {
    fn from(c: i32) -> Self {
        SymExpr::from(c as i128)
    }
}

impl From<Symbol> for SymExpr {
    fn from(s: Symbol) -> Self {
        SymExpr::from_atom(Atom::Sym(s))
    }
}

impl Add for SymExpr {
    type Output = SymExpr;

    fn add(self, rhs: SymExpr) -> SymExpr {
        let mut out = self;
        out.constant = sat_add(out.constant, rhs.constant);
        for (t, c) in rhs.terms {
            out.add_term(t, c);
        }
        out
    }
}

impl Sub for SymExpr {
    type Output = SymExpr;

    fn sub(self, rhs: SymExpr) -> SymExpr {
        self + (-rhs)
    }
}

impl Neg for SymExpr {
    type Output = SymExpr;

    fn neg(self) -> SymExpr {
        let mut out = SymExpr::zero();
        out.constant = self.constant.checked_neg().unwrap_or(i128::MAX);
        for (t, c) in self.terms {
            out.add_term(t, c.checked_neg().unwrap_or(i128::MAX));
        }
        out
    }
}

impl Mul for SymExpr {
    type Output = SymExpr;

    fn mul(self, rhs: SymExpr) -> SymExpr {
        let mut out = SymExpr::from(sat_mul(self.constant, rhs.constant));
        for (t, &c) in &self.terms {
            let scaled = sat_mul(c, rhs.constant);
            out.add_term(t.clone(), scaled);
        }
        for (t, &c) in &rhs.terms {
            let scaled = sat_mul(c, self.constant);
            out.add_term(t.clone(), scaled);
        }
        for (ta, &ca) in &self.terms {
            for (tb, &cb) in &rhs.terms {
                out.add_term(ta.product(tb), sat_mul(ca, cb));
            }
        }
        out
    }
}

impl fmt::Display for SymExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display(&NoNames))
    }
}

struct NoNames;

impl SymbolNames for NoNames {
    fn symbol_name(&self, _sym: Symbol) -> Option<&str> {
        None
    }
}

impl SymExpr {
    /// Renders the expression using `names` for symbol display.
    pub fn display<'a>(&'a self, names: &'a dyn SymbolNames) -> impl fmt::Display + 'a {
        DisplayExpr { expr: self, names }
    }
}

struct DisplayExpr<'a> {
    expr: &'a SymExpr,
    names: &'a dyn SymbolNames,
}

impl fmt::Display for DisplayExpr<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let e = self.expr;
        let mut first = true;
        for (term, &coeff) in &e.terms {
            let (sign, mag) = if coeff < 0 {
                ("-", -coeff)
            } else {
                ("+", coeff)
            };
            if first {
                if sign == "-" {
                    write!(f, "-")?;
                }
            } else {
                write!(f, " {} ", sign)?;
            }
            first = false;
            if mag != 1 {
                write!(f, "{}*", mag)?;
            }
            let mut first_atom = true;
            for atom in &term.0 {
                if !first_atom {
                    write!(f, "*")?;
                }
                first_atom = false;
                fmt_atom(atom, self.names, f)?;
            }
        }
        if first {
            write!(f, "{}", e.constant)?;
        } else if e.constant != 0 {
            let (sign, mag) = if e.constant < 0 {
                ("-", -e.constant)
            } else {
                ("+", e.constant)
            };
            write!(f, " {} {}", sign, mag)?;
        }
        Ok(())
    }
}

fn fmt_atom(atom: &Atom, names: &dyn SymbolNames, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match atom {
        Atom::Sym(s) => match names.symbol_name(*s) {
            Some(n) => write!(f, "{}", n),
            None => write!(f, "{}", s),
        },
        Atom::Min(a, b) => write!(f, "min({}, {})", a.display(names), b.display(names)),
        Atom::Max(a, b) => write!(f, "max({}, {})", a.display(names), b.display(names)),
        Atom::Div(a, b) => write!(f, "({} / {})", a.display(names), b.display(names)),
        Atom::Mod(a, b) => write!(f, "({} mod {})", a.display(names), b.display(names)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(i: u32) -> SymExpr {
        SymExpr::from(Symbol::new(i))
    }

    #[test]
    fn constant_folding() {
        let e = SymExpr::from(2) + SymExpr::from(3);
        assert_eq!(e.as_constant(), Some(5));
        let e = SymExpr::from(2) * SymExpr::from(3) - SymExpr::from(1);
        assert_eq!(e.as_constant(), Some(5));
    }

    #[test]
    fn affine_cancellation() {
        let n = sym(0);
        let e = n.clone() + SymExpr::from(4) - n.clone() - SymExpr::from(4);
        assert_eq!(e, SymExpr::zero());
        assert_eq!(e.as_constant(), Some(0));
    }

    #[test]
    fn like_terms_combine() {
        let n = sym(0);
        let e = n.clone() + n.clone() + n.clone();
        assert_eq!(e, n.clone() * SymExpr::from(3));
    }

    #[test]
    fn multiplication_distributes() {
        let n = sym(0);
        let m = sym(1);
        let lhs = (n.clone() + SymExpr::from(1)) * (m.clone() + SymExpr::from(2));
        let rhs = n.clone() * m.clone() + n * SymExpr::from(2) + m + SymExpr::from(2);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn product_terms_commute() {
        let n = sym(0);
        let m = sym(1);
        assert_eq!(n.clone() * m.clone(), m * n);
    }

    #[test]
    fn ordering_same_symbol() {
        let n = sym(0);
        assert_eq!(n.try_lt(&(n.clone() + SymExpr::from(1))), Some(true));
        assert_eq!(n.try_le(&n), Some(true));
        assert_eq!((n.clone() + SymExpr::from(1)).try_le(&n), Some(false));
    }

    #[test]
    fn ordering_distinct_symbols_unknown() {
        let n = sym(0);
        let m = sym(1);
        assert_eq!(n.try_le(&m), None);
        assert_eq!(m.try_le(&n), None);
    }

    #[test]
    fn min_max_fold_when_comparable() {
        let n = sym(0);
        let n1 = n.clone() + SymExpr::from(1);
        assert_eq!(SymExpr::min(n.clone(), n1.clone()), n);
        assert_eq!(SymExpr::max(n.clone(), n1.clone()), n1);
        assert_eq!(SymExpr::min(n.clone(), n.clone()), n);
    }

    #[test]
    fn min_max_opaque_and_commutative() {
        let n = sym(0);
        let m = sym(1);
        let a = SymExpr::min(n.clone(), m.clone());
        let b = SymExpr::min(m, n);
        assert_eq!(a, b);
        assert!(a.is_symbolic());
    }

    #[test]
    fn min_le_both_arguments() {
        let n = sym(0);
        let m = sym(1);
        let mn = SymExpr::min(n.clone(), m.clone());
        assert_eq!(mn.try_le(&n), Some(true));
        assert_eq!(mn.try_le(&m), Some(true));
        let mx = SymExpr::max(n.clone(), m.clone());
        assert_eq!(n.try_le(&mx), Some(true));
        assert_eq!(m.try_le(&mx), Some(true));
    }

    #[test]
    fn min_plus_const_comparisons() {
        let n = sym(0);
        let m = sym(1);
        let mn = SymExpr::min(n.clone(), m.clone());
        // min(n, m) - 1 < max(n, m) + 1
        let mx = SymExpr::max(n, m);
        let lhs = mn - SymExpr::from(1);
        let rhs = mx + SymExpr::from(1);
        assert_eq!(lhs.try_lt(&rhs), Some(true));
    }

    #[test]
    fn div_folding() {
        assert_eq!(SymExpr::div(7.into(), 2.into()).as_constant(), Some(3));
        assert_eq!(SymExpr::div((-7).into(), 2.into()).as_constant(), Some(-3));
        let n = sym(0);
        let e = SymExpr::div(n.clone() * SymExpr::from(4) + SymExpr::from(8), 4.into());
        assert_eq!(e, n + SymExpr::from(2));
    }

    #[test]
    fn div_opaque_when_inexact() {
        let n = sym(0);
        let e = SymExpr::div(n.clone(), 2.into());
        assert!(e.is_symbolic());
        assert_eq!(e.as_constant(), None);
        // Same expression twice is syntactically equal.
        assert_eq!(e, SymExpr::div(n, 2.into()));
    }

    #[test]
    fn rem_folding() {
        assert_eq!(SymExpr::rem(7.into(), 3.into()).as_constant(), Some(1));
        assert_eq!(SymExpr::rem((-7).into(), 3.into()).as_constant(), Some(-1));
    }

    #[test]
    fn div_by_zero_is_opaque() {
        let e = SymExpr::div(7.into(), 0.into());
        assert!(e.is_symbolic());
        let e = SymExpr::rem(7.into(), 0.into());
        assert!(e.is_symbolic());
    }

    #[test]
    fn as_symbol_roundtrip() {
        let s = Symbol::new(5);
        assert_eq!(SymExpr::from(s).as_symbol(), Some(s));
        assert_eq!((SymExpr::from(s) + SymExpr::from(1)).as_symbol(), None);
        assert_eq!(SymExpr::from(3).as_symbol(), None);
    }

    #[test]
    fn display_renders_affine() {
        let n = sym(0);
        let e = n.clone() * SymExpr::from(2) + SymExpr::from(3);
        assert_eq!(e.to_string(), "2*s0 + 3");
        let e = SymExpr::zero() - n;
        assert_eq!(e.to_string(), "-s0");
        assert_eq!(SymExpr::from(0).to_string(), "0");
    }

    #[test]
    fn for_each_symbol_sees_nested() {
        let n = Symbol::new(0);
        let m = Symbol::new(1);
        let e = SymExpr::min(SymExpr::from(n), SymExpr::from(m)) + SymExpr::from(7);
        let mut seen = Vec::new();
        e.for_each_symbol(|s| seen.push(s));
        seen.sort();
        assert_eq!(seen, vec![n, m]);
    }

    #[test]
    fn size_counts_atoms() {
        let n = sym(0);
        let m = sym(1);
        assert_eq!(n.size(), 1);
        assert_eq!((n.clone() * m.clone()).size(), 2);
        assert_eq!(SymExpr::min(n, m).size(), 3);
        assert_eq!(SymExpr::from(9).size(), 0);
    }

    #[test]
    fn saturation_does_not_panic() {
        let big = SymExpr::from(i128::MAX) + SymExpr::from(i128::MAX);
        assert_eq!(big.as_constant(), Some(i128::MAX));
        let neg = -SymExpr::from(i128::MIN);
        assert_eq!(neg.as_constant(), Some(i128::MAX));
    }

    /// A monotone renaming commutes with construction: mapping a built
    /// expression equals building from mapped symbols, down to nested
    /// min/max canonical argument order.
    #[test]
    fn map_symbols_commutes_with_construction() {
        let shift = |s: Symbol| Symbol::new(s.index() + 10);
        let build = |a: Symbol, b: Symbol| {
            SymExpr::min(
                SymExpr::from(a) * SymExpr::from(b),
                SymExpr::from(b) + 3.into(),
            ) + SymExpr::max(SymExpr::from(a), SymExpr::from(2)) * 5.into()
                - 7.into()
        };
        let e = build(Symbol::new(0), Symbol::new(1));
        let mapped = e.map_symbols(&shift);
        let rebuilt = build(Symbol::new(10), Symbol::new(11));
        assert_eq!(mapped, rebuilt);
        // Identity map is a no-op.
        assert_eq!(e.map_symbols(&|s| s), e);
    }
}
