//! Symbolic expression algebra and the `SymbRanges` interval lattice.
//!
//! This crate implements the arithmetic substrate of *Symbolic Range
//! Analysis of Pointers* (Paisante et al., CGO 2016, §3.3): symbolic
//! expressions over a program's *symbolic kernel*, the partially ordered
//! set `S = SE ∪ {−∞, +∞}`, and the semi-lattice of symbolic intervals
//! with join `⊔`, meet `⊓`, inclusion `⊑` and the paper's widening `∇`.
//!
//! A symbolic expression follows the paper's grammar
//!
//! ```text
//! E ::= n | s | min(E,E) | max(E,E) | E − E | E + E | E/E | E mod E | E × E
//! ```
//!
//! where `n` is an integer and `s` a *symbol* — a name that cannot be
//! expressed as a function of other names (function parameters, values
//! returned by library functions, globals).
//!
//! Expressions are kept in a canonical affine form (`c₀ + Σ cᵢ·tᵢ` with
//! each term `tᵢ` a product of [`Atom`]s), which makes syntactic equality
//! decide semantic equality for the affine fragment and gives a cheap,
//! sound partial order: `e₁ ≤ e₂` is *provable* when `e₂ − e₁`
//! canonicalizes to a non-negative constant, and structural rules handle
//! `min`/`max`. Distinct kernel symbols are incomparable, exactly as the
//! paper prescribes (`N < N+1` holds; `N` vs `M` is unknown).
//!
//! # Examples
//!
//! ```
//! use sra_symbolic::{Symbol, SymExpr, SymRange};
//!
//! let n = Symbol::new(0); // e.g. the parameter `N`
//! let lo = SymExpr::from(n);             // N
//! let hi = SymExpr::from(n) + 10.into(); // N + 10
//! assert_eq!(lo.try_lt(&hi), Some(true));
//!
//! // [0, N-1] and [N, N+9] never overlap:
//! let a = SymRange::interval(SymExpr::from(0), SymExpr::from(n) - 1.into());
//! let b = SymRange::interval(SymExpr::from(n), hi);
//! assert!(a.meet(&b).is_empty());
//! ```

mod arena;
mod bound;
mod eval;
mod expr;
pub mod pool;
mod range;
mod symbol;

pub use arena::{
    ArenaStats, BoundId, BoundRef, ExprArena, ExprId, FxBuildHasher, FxHashMap, FxHasher,
    ImportMap, OpStats, OverlayPart, OverlayXlate, RangeId, RawArenaError, RawAtom, RawBound,
    RawExprNode, RawRangeNode, TryImportMap,
};
pub use bound::Bound;
pub use eval::Valuation;
pub use expr::{Atom, SymExpr};
pub use range::SymRange;
pub use symbol::{Symbol, SymbolNames, SymbolTable};
