//! Interval endpoints: symbolic expressions extended with ±∞.

use std::fmt;

use crate::arena::ExprArena;
use crate::expr::SymExpr;
use crate::symbol::SymbolNames;

/// One endpoint of a symbolic interval: an element of the paper's poset
/// `S = SE ∪ {−∞, +∞}` (§3.3).
///
/// # Examples
///
/// ```
/// use sra_symbolic::{Bound, SymExpr};
/// let b = Bound::from(SymExpr::from(3));
/// assert_eq!(b.try_le(&Bound::PosInf), Some(true));
/// assert_eq!(Bound::NegInf.try_le(&b), Some(true));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Bound {
    /// `−∞`.
    NegInf,
    /// A finite symbolic expression.
    Fin(SymExpr),
    /// `+∞`.
    PosInf,
}

impl Bound {
    /// Returns the finite expression, if any.
    pub fn as_expr(&self) -> Option<&SymExpr> {
        match self {
            Bound::Fin(e) => Some(e),
            _ => None,
        }
    }

    /// Returns `true` for a finite bound.
    pub fn is_finite(&self) -> bool {
        matches!(self, Bound::Fin(_))
    }

    /// Returns `Some(c)` when the bound is the finite constant `c`.
    pub fn as_constant(&self) -> Option<i128> {
        self.as_expr().and_then(SymExpr::as_constant)
    }

    /// Rewrites every kernel symbol through `f`; see
    /// [`SymExpr::map_symbols`] for the monotonicity contract.
    pub fn map_symbols(&self, f: &impl Fn(crate::Symbol) -> crate::Symbol) -> Bound {
        match self {
            Bound::Fin(e) => Bound::Fin(e.map_symbols(f)),
            other => other.clone(),
        }
    }

    /// Allocation-free equivalent of `self.map_symbols(f) == *other`
    /// for strictly monotone `f`; see [`SymExpr::eq_mapped`].
    pub fn eq_mapped(&self, other: &Bound, f: &impl Fn(crate::Symbol) -> crate::Symbol) -> bool {
        match (self, other) {
            (Bound::NegInf, Bound::NegInf) | (Bound::PosInf, Bound::PosInf) => true,
            (Bound::Fin(a), Bound::Fin(b)) => a.eq_mapped(b, f),
            _ => false,
        }
    }

    /// Sound three-valued order test between bounds.
    pub fn try_le(&self, other: &Bound) -> Option<bool> {
        match (self, other) {
            (Bound::NegInf, _) | (_, Bound::PosInf) => Some(true),
            (Bound::PosInf, _) | (_, Bound::NegInf) => Some(false),
            (Bound::Fin(a), Bound::Fin(b)) => a.try_le(b),
        }
    }

    /// Sound three-valued strict order test.
    pub fn try_lt(&self, other: &Bound) -> Option<bool> {
        match (self, other) {
            (Bound::NegInf, Bound::NegInf) | (Bound::PosInf, Bound::PosInf) => Some(false),
            (Bound::NegInf, _) | (_, Bound::PosInf) => Some(true),
            (Bound::PosInf, _) | (_, Bound::NegInf) => Some(false),
            (Bound::Fin(a), Bound::Fin(b)) => a.try_lt(b),
        }
    }

    /// Memoised variant of [`Bound::try_le`]: interns both endpoints in
    /// `arena` so the underlying expression comparison is computed at
    /// most once per distinct pair. Answers are identical to the
    /// uncached path.
    pub fn try_le_in(&self, other: &Bound, arena: &mut ExprArena) -> Option<bool> {
        let a = arena.intern_bound(self);
        let b = arena.intern_bound(other);
        arena.bound_try_le(a, b)
    }

    /// Memoised variant of [`Bound::try_lt`]; see [`Bound::try_le_in`].
    pub fn try_lt_in(&self, other: &Bound, arena: &mut ExprArena) -> Option<bool> {
        let a = arena.intern_bound(self);
        let b = arena.intern_bound(other);
        arena.bound_try_lt(a, b)
    }

    /// The smaller of two bounds, building a symbolic `min` when the
    /// order is unknown.
    pub fn min(a: Bound, b: Bound) -> Bound {
        match (a, b) {
            (Bound::NegInf, _) | (_, Bound::NegInf) => Bound::NegInf,
            (Bound::PosInf, x) | (x, Bound::PosInf) => x,
            (Bound::Fin(x), Bound::Fin(y)) => Bound::Fin(SymExpr::min(x, y)),
        }
    }

    /// The larger of two bounds; dual of [`Bound::min`].
    pub fn max(a: Bound, b: Bound) -> Bound {
        match (a, b) {
            (Bound::PosInf, _) | (_, Bound::PosInf) => Bound::PosInf,
            (Bound::NegInf, x) | (x, Bound::NegInf) => x,
            (Bound::Fin(x), Bound::Fin(y)) => Bound::Fin(SymExpr::max(x, y)),
        }
    }

    /// Adds two bounds.
    ///
    /// # Panics
    ///
    /// Panics when adding `−∞` to `+∞`; interval arithmetic never adds
    /// endpoints of opposite polarity, so this indicates a bug in the
    /// caller.
    pub fn add(&self, other: &Bound) -> Bound {
        match (self, other) {
            (Bound::NegInf, Bound::PosInf) | (Bound::PosInf, Bound::NegInf) => {
                panic!("Bound::add: −∞ + +∞ is undefined")
            }
            (Bound::NegInf, _) | (_, Bound::NegInf) => Bound::NegInf,
            (Bound::PosInf, _) | (_, Bound::PosInf) => Bound::PosInf,
            (Bound::Fin(a), Bound::Fin(b)) => Bound::Fin(a.clone() + b.clone()),
        }
    }

    /// Adds a finite symbolic expression to this bound.
    pub fn add_expr(&self, e: &SymExpr) -> Bound {
        match self {
            Bound::Fin(a) => Bound::Fin(a.clone() + e.clone()),
            inf => inf.clone(),
        }
    }

    /// Negates the bound (flipping infinities).
    pub fn negate(&self) -> Bound {
        match self {
            Bound::NegInf => Bound::PosInf,
            Bound::PosInf => Bound::NegInf,
            Bound::Fin(e) => Bound::Fin(-e.clone()),
        }
    }

    /// Multiplies by an integer constant. Zero collapses infinities to 0;
    /// negative constants flip polarity.
    pub fn mul_const(&self, c: i128) -> Bound {
        if c == 0 {
            return Bound::Fin(SymExpr::zero());
        }
        match self {
            Bound::Fin(e) => Bound::Fin(e.clone() * SymExpr::from(c)),
            Bound::NegInf => {
                if c > 0 {
                    Bound::NegInf
                } else {
                    Bound::PosInf
                }
            }
            Bound::PosInf => {
                if c > 0 {
                    Bound::PosInf
                } else {
                    Bound::NegInf
                }
            }
        }
    }

    /// Renders the bound using `names` for symbols.
    pub fn display<'a>(&'a self, names: &'a dyn SymbolNames) -> impl fmt::Display + 'a {
        DisplayBound { bound: self, names }
    }
}

impl From<SymExpr> for Bound {
    fn from(e: SymExpr) -> Self {
        Bound::Fin(e)
    }
}

impl From<i64> for Bound {
    fn from(c: i64) -> Self {
        Bound::Fin(SymExpr::from(c))
    }
}

struct DisplayBound<'a> {
    bound: &'a Bound,
    names: &'a dyn SymbolNames,
}

impl fmt::Display for DisplayBound<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.bound {
            Bound::NegInf => write!(f, "-inf"),
            Bound::PosInf => write!(f, "+inf"),
            Bound::Fin(e) => write!(f, "{}", e.display(self.names)),
        }
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bound::NegInf => write!(f, "-inf"),
            Bound::PosInf => write!(f, "+inf"),
            Bound::Fin(e) => write!(f, "{}", e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Symbol;

    fn n() -> SymExpr {
        SymExpr::from(Symbol::new(0))
    }

    #[test]
    fn order_with_infinities() {
        let f = Bound::Fin(n());
        assert_eq!(Bound::NegInf.try_le(&f), Some(true));
        assert_eq!(f.try_le(&Bound::PosInf), Some(true));
        assert_eq!(Bound::PosInf.try_le(&f), Some(false));
        assert_eq!(Bound::PosInf.try_le(&Bound::PosInf), Some(true));
        assert_eq!(Bound::PosInf.try_lt(&Bound::PosInf), Some(false));
        assert_eq!(Bound::NegInf.try_lt(&Bound::PosInf), Some(true));
    }

    #[test]
    fn min_max_infinities() {
        let f = Bound::Fin(n());
        assert_eq!(Bound::min(Bound::NegInf, f.clone()), Bound::NegInf);
        assert_eq!(Bound::min(Bound::PosInf, f.clone()), f);
        assert_eq!(Bound::max(Bound::PosInf, f.clone()), Bound::PosInf);
        assert_eq!(Bound::max(Bound::NegInf, f.clone()), f);
    }

    #[test]
    fn min_of_incomparable_is_symbolic() {
        let a = Bound::Fin(SymExpr::from(Symbol::new(0)));
        let b = Bound::Fin(SymExpr::from(Symbol::new(1)));
        let m = Bound::min(a.clone(), b.clone());
        assert!(m.is_finite());
        assert_eq!(m.try_le(&a), Some(true));
        assert_eq!(m.try_le(&b), Some(true));
    }

    #[test]
    fn add_and_negate() {
        let f = Bound::Fin(n());
        assert_eq!(f.add(&Bound::from(2)), Bound::Fin(n() + SymExpr::from(2)));
        assert_eq!(Bound::NegInf.add(&f), Bound::NegInf);
        assert_eq!(Bound::NegInf.negate(), Bound::PosInf);
        assert_eq!(f.negate().negate(), f);
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn add_opposite_infinities_panics() {
        let _ = Bound::NegInf.add(&Bound::PosInf);
    }

    #[test]
    fn mul_const_polarity() {
        assert_eq!(Bound::NegInf.mul_const(-2), Bound::PosInf);
        assert_eq!(Bound::PosInf.mul_const(3), Bound::PosInf);
        assert_eq!(Bound::PosInf.mul_const(0).as_constant(), Some(0));
        let f = Bound::Fin(n());
        assert_eq!(f.mul_const(2), Bound::Fin(n() * SymExpr::from(2)));
    }

    #[test]
    fn display() {
        assert_eq!(Bound::NegInf.to_string(), "-inf");
        assert_eq!(Bound::from(4).to_string(), "4");
    }
}
