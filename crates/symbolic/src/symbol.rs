//! Symbols: the atoms of the symbolic kernel.

use std::fmt;

/// An opaque symbol of the program's *symbolic kernel*.
///
/// A symbol stands for a value that the analysis cannot express as a
/// function of other program names: a function parameter, the result of a
/// library call (`strlen`, `atoi`, …), or a global. Symbols are plain
/// numeric identifiers; pretty names live in a [`SymbolTable`] owned by
/// whoever mints the symbols.
///
/// # Examples
///
/// ```
/// use sra_symbolic::Symbol;
/// let n = Symbol::new(7);
/// assert_eq!(n.index(), 7);
/// assert_eq!(n.to_string(), "s7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// Creates a symbol with the given raw index.
    pub fn new(index: u32) -> Self {
        Symbol(index)
    }

    /// Returns the raw index of this symbol.
    pub fn index(self) -> u32 {
        self.0 as usize as u32
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Maps [`Symbol`]s to human-readable names.
///
/// Implemented by [`SymbolTable`]; analyses that mint their own symbols
/// can implement it to get readable analysis dumps.
pub trait SymbolNames {
    /// Returns the display name for `sym`, or `None` to fall back to the
    /// default `s<index>` rendering.
    fn symbol_name(&self, sym: Symbol) -> Option<&str>;
}

/// An interning table assigning dense indices and names to symbols.
///
/// # Examples
///
/// ```
/// use sra_symbolic::{SymbolNames, SymbolTable};
/// let mut table = SymbolTable::new();
/// let n = table.intern("N");
/// assert_eq!(table.intern("N"), n); // interning is idempotent
/// assert_eq!(table.symbol_name(n), Some("N"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymbolTable {
    names: Vec<String>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning the existing symbol if already present.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(pos) = self.names.iter().position(|n| n == name) {
            return Symbol::new(pos as u32);
        }
        self.fresh(name)
    }

    /// Mints a fresh symbol named `name` without checking for duplicates.
    ///
    /// Useful when distinct program points must stay distinct even if
    /// they happen to share a name (e.g. two calls to `strlen`).
    pub fn fresh(&mut self, name: &str) -> Symbol {
        let sym = Symbol::new(self.names.len() as u32);
        self.names.push(name.to_owned());
        sym
    }

    /// Number of symbols interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if no symbol has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(symbol, name)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> + '_ {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Symbol::new(i as u32), n.as_str()))
    }
}

impl SymbolNames for SymbolTable {
    fn symbol_name(&self, sym: Symbol) -> Option<&str> {
        self.names.get(sym.index() as usize).map(|s| s.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("N");
        let b = t.intern("M");
        assert_ne!(a, b);
        assert_eq!(t.intern("N"), a);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn fresh_always_new() {
        let mut t = SymbolTable::new();
        let a = t.fresh("strlen");
        let b = t.fresh("strlen");
        assert_ne!(a, b);
        assert_eq!(t.symbol_name(a), Some("strlen"));
        assert_eq!(t.symbol_name(b), Some("strlen"));
    }

    #[test]
    fn display_fallback() {
        assert_eq!(Symbol::new(3).to_string(), "s3");
    }

    #[test]
    fn iter_in_order() {
        let mut t = SymbolTable::new();
        t.intern("a");
        t.intern("b");
        let names: Vec<&str> = t.iter().map(|(_, n)| n).collect();
        assert_eq!(names, ["a", "b"]);
    }
}
