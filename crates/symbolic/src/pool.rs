//! A hand-rolled thread pool for every parallel phase of the pipeline.
//!
//! The workspace is dependency-free (no rayon), so fan-out is built
//! directly on [`std::thread`]. Two layers:
//!
//! * [`WorkerPool`] — a **persistent** pool: workers are spawned once
//!   (per driver run / session / service tenant) and reused across the
//!   budget scan, the per-function part analyses, every GR wave level,
//!   the matrix tiles and the snapshot load. Dispatching a batch onto
//!   live workers is a condvar wake, not `threads` thread spawns — the
//!   difference is the dominant constant factor on deep wave schedules,
//!   which dispatch thousands of tiny batches.
//! * [`run_indexed`]/[`run_map`] — free-function shims with the
//!   pre-pool signature. Each call builds a short-lived
//!   [`WorkerPool::forced`] with exactly the requested width, so
//!   one-shot callers and the claiming-discipline tests keep working
//!   unchanged (including on machines with fewer cores than the
//!   requested width). Hot paths should hold a [`WorkerPool`] instead.
//!
//! Jobs are indices `0..n`; workers claim them from a shared atomic
//! counter and results are reassembled in index order, so the output is
//! a plain `Vec<T>` whose contents are independent of thread
//! scheduling.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A reasonable worker count for this machine: the available
/// parallelism, capped so tiny machines and CI runners stay responsive.
/// The OS query runs once; hot paths that consult the default per call
/// hit a cached value.
pub fn default_threads() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(1, 16)
    })
}

/// The dispatch protocol shared between the owning thread and the
/// workers. A batch is published as a generation bump plus a job
/// pointer; every worker runs the job exactly once per generation and
/// decrements `active` when done.
struct Shared {
    state: Mutex<Dispatch>,
    /// Workers wait here for the next generation (or shutdown).
    work: Condvar,
    /// Dispatchers wait here for `active == 0` (and for the slot).
    done: Condvar,
}

struct Dispatch {
    /// Bumped once per published batch.
    generation: u64,
    /// The current batch's entry point. `None` between batches. The
    /// `'static` is a lie told by [`WorkerPool::run_batch`]; see the
    /// safety argument there.
    job: Option<&'static (dyn Fn() + Sync)>,
    /// Workers still inside the current batch.
    active: usize,
    /// A worker's half of the batch panicked.
    panicked: bool,
    shutdown: bool,
}

/// A persistent worker pool.
///
/// `run_indexed`/`run_map` have the same claiming discipline as the
/// free functions — dynamic claiming from an atomic counter, results
/// reassembled in index order — so results never depend on thread
/// timing or on the pool's width. Dropping the pool signals shutdown
/// and joins every worker.
///
/// The pool's width is fixed at construction: [`WorkerPool::new`] caps
/// it at the hardware's available parallelism (oversubscribing a small
/// machine only adds scheduling overhead — the claiming discipline
/// guarantees the results are identical at any width), while
/// [`WorkerPool::forced`] takes the width literally (for equivalence
/// rails that must exercise the concurrent paths on any machine).
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads())
            .finish()
    }
}

impl WorkerPool {
    /// A pool of width `min(threads, available parallelism)`: the
    /// caller thread plus that many minus one spawned workers.
    /// `threads <= 1` (or a single-core machine) spawns nothing —
    /// every batch then runs inline, the deterministic reference path.
    pub fn new(threads: usize) -> Self {
        Self::with_width(threads.max(1).min(default_threads()))
    }

    /// A pool of exactly `threads` width regardless of the hardware —
    /// the equivalence rails and the legacy-baseline bench arm use this
    /// to exercise the concurrent claiming paths even on one core.
    pub fn forced(threads: usize) -> Self {
        Self::with_width(threads.max(1))
    }

    fn with_width(width: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(Dispatch {
                generation: 0,
                job: None,
                active: 0,
                panicked: false,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (1..width)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// The pool's width: the caller thread plus the spawned workers.
    pub fn threads(&self) -> usize {
        self.workers.len() + 1
    }

    /// Runs `f(0), f(1), …, f(n-1)` across the pool and returns the
    /// results in index order.
    ///
    /// Work is claimed dynamically (an atomic next-index counter), so
    /// uneven job sizes balance automatically. A width-1 pool (or a
    /// single job) runs everything inline on the caller thread.
    pub fn run_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        if self.workers.is_empty() || n == 1 {
            return (0..n).map(f).collect();
        }

        let next = AtomicUsize::new(0);
        let collected: Mutex<Vec<Vec<(usize, T)>>> = Mutex::new(Vec::new());
        self.run_batch(&|| {
            let mut local = Vec::new();
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                local.push((i, f(i)));
            }
            if !local.is_empty() {
                collected.lock().expect("pool results lock").push(local);
            }
        });

        // Reassemble in index order.
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for batch in collected.into_inner().expect("pool results lock") {
            for (i, v) in batch {
                debug_assert!(slots[i].is_none(), "job {i} ran twice");
                slots[i] = Some(v);
            }
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(i, v)| v.unwrap_or_else(|| panic!("job {i} never ran")))
            .collect()
    }

    /// Like [`WorkerPool::run_indexed`], but each job consumes an owned
    /// input item: `f(items[0]), f(items[1]), …`, results in item
    /// order.
    ///
    /// Owned inputs let jobs *move* heavyweight state (the GR wave
    /// scheduler hands each SCC its state vectors without cloning).
    /// Items are parked in per-slot mutexes so workers can take them;
    /// the lock is uncontended — every slot is taken exactly once.
    pub fn run_map<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(I) -> T + Sync,
    {
        if self.workers.is_empty() || items.len() <= 1 {
            return items.into_iter().map(f).collect();
        }
        let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
        self.run_indexed(slots.len(), |i| {
            let item = slots[i]
                .lock()
                .expect("pool item lock")
                .take()
                .expect("pool item taken once");
            f(item)
        })
    }

    /// Publishes `job` to every worker, runs it on the caller thread
    /// too, and returns once all of them are done with it.
    fn run_batch(&self, job: &(dyn Fn() + Sync)) {
        // SAFETY (the only `unsafe` in the workspace): the workers need
        // a `'static` view of `job` because they outlive this call, but
        // they only ever *dereference* it between the generation bump
        // below and their matching `active` decrement — and this
        // function does not return (or unwind) until `active == 0` and
        // the slot is cleared, so the borrow is live across every use.
        let job: &'static (dyn Fn() + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn() + Sync), _>(job) };
        {
            let mut st = self.shared.state.lock().expect("pool state lock");
            // Serialize dispatchers: wait for the slot (concurrent
            // callers sharing one pool simply take turns).
            while st.job.is_some() {
                st = self.shared.done.wait(st).expect("pool state lock");
            }
            st.job = Some(job);
            st.active = self.workers.len();
            st.generation += 1;
            self.shared.work.notify_all();
        }

        // The caller participates in its own batch. Catch a panic so
        // the workers — still borrowing `job` — are always drained
        // before the stack frame unwinds away.
        let mine = catch_unwind(AssertUnwindSafe(&job));

        let worker_panicked = {
            let mut st = self.shared.state.lock().expect("pool state lock");
            while st.active > 0 {
                st = self.shared.done.wait(st).expect("pool state lock");
            }
            st.job = None;
            std::mem::replace(&mut st.panicked, false)
        };
        self.shared.done.notify_all();
        match mine {
            Err(payload) => resume_unwind(payload),
            Ok(()) if worker_panicked => panic!("pool worker panicked"),
            Ok(()) => {}
        }
    }

    /// The shared dispatch state, weakly — lets the drop-joins test
    /// observe that every worker released its handle.
    #[cfg(test)]
    fn shared_probe(&self) -> std::sync::Weak<Shared> {
        Arc::downgrade(&self.shared)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool state lock");
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for h in self.workers.drain(..) {
            // A worker only terminates abnormally if a job panicked;
            // that panic was already surfaced by `run_batch`.
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().expect("pool state lock");
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != seen {
                    seen = st.generation;
                    break st.job.expect("generation advanced without a job");
                }
                st = shared.work.wait(st).expect("pool state lock");
            }
        };
        let result = catch_unwind(AssertUnwindSafe(job));
        let mut st = shared.state.lock().expect("pool state lock");
        st.active -= 1;
        if result.is_err() {
            st.panicked = true;
        }
        if st.active == 0 {
            shared.done.notify_all();
        }
    }
}

/// Runs `f(0), f(1), …, f(n-1)` across `threads` workers and returns
/// the results in index order — a one-shot [`WorkerPool::forced`] of
/// exactly that width. Hot paths should hold a [`WorkerPool`] and call
/// [`WorkerPool::run_indexed`] instead.
pub fn run_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n <= 1 || threads <= 1 {
        return (0..n).map(f).collect();
    }
    WorkerPool::forced(threads.min(n)).run_indexed(n, f)
}

/// Like [`run_indexed`], but each job consumes an owned input item —
/// the one-shot counterpart of [`WorkerPool::run_map`].
pub fn run_map<I, T, F>(items: Vec<I>, threads: usize, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    WorkerPool::forced(threads.min(items.len())).run_map(items, f)
}

/// Splits `0..total` into at most `pieces` contiguous, non-empty
/// `(start, end)` ranges of near-equal length, in order.
///
/// The matrix build tiles its signature triangle with this: the tile
/// list is deterministic (it depends only on `total` and `pieces`), so
/// concatenating per-tile results reproduces the serial sweep exactly.
pub fn chunk_bounds(total: usize, pieces: usize) -> Vec<(usize, usize)> {
    if total == 0 {
        return Vec::new();
    }
    let pieces = pieces.clamp(1, total);
    let base = total / pieces;
    let extra = total % pieces;
    let mut out = Vec::with_capacity(pieces);
    let mut start = 0;
    for k in 0..pieces {
        let len = base + usize::from(k < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_index_order() {
        for threads in [1, 2, 4, 7] {
            let out = run_indexed(23, threads, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 4, |i| i + 1), vec![1]);
    }

    #[test]
    fn uneven_jobs_balance() {
        // Jobs of very different sizes still all complete and land in
        // order.
        let out = run_indexed(16, 4, |i| {
            let mut acc = 0u64;
            for k in 0..(i as u64 * 10_000) {
                acc = acc.wrapping_add(k);
            }
            (i, acc)
        });
        for (i, (j, _)) in out.iter().enumerate() {
            assert_eq!(i, *j);
        }
    }

    #[test]
    fn run_map_moves_items_in_order() {
        for threads in [1, 2, 4] {
            let items: Vec<String> = (0..17).map(|i| format!("job{i}")).collect();
            let out = run_map(items, threads, |s| s + "!");
            assert_eq!(out.len(), 17);
            for (i, s) in out.iter().enumerate() {
                assert_eq!(s, &format!("job{i}!"));
            }
        }
        assert_eq!(run_map(Vec::<u8>::new(), 4, |x| x), Vec::<u8>::new());
    }

    #[test]
    fn default_threads_sane_and_cached() {
        let t = default_threads();
        assert!((1..=16).contains(&t));
        // The OnceLock makes repeat queries free and stable.
        assert_eq!(default_threads(), t);
    }

    #[test]
    fn pool_reuse_is_deterministic() {
        // One pool dispatching many heterogeneous batches back to back
        // keeps producing schedule-independent results — reuse leaks no
        // state from batch to batch.
        let pool = WorkerPool::forced(4);
        for round in 0..50usize {
            let n = (round * 7) % 23;
            let out = pool.run_indexed(n, |i| i * round);
            assert_eq!(out, (0..n).map(|i| i * round).collect::<Vec<_>>());
            let mapped = pool.run_map((0..n).collect::<Vec<_>>(), |i| i + round);
            assert_eq!(mapped, (0..n).map(|i| i + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pool_matches_free_functions() {
        for width in [1, 2, 4, 9] {
            let pool = WorkerPool::forced(width);
            assert_eq!(pool.threads(), width);
            assert_eq!(
                pool.run_indexed(31, |i| 3 * i),
                run_indexed(31, width, |i| 3 * i)
            );
        }
    }

    #[test]
    fn new_caps_at_hardware() {
        let pool = WorkerPool::new(usize::MAX);
        assert!(pool.threads() <= default_threads());
        assert!(WorkerPool::new(0).threads() == 1);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = WorkerPool::forced(4);
        let probe = pool.shared_probe();
        assert_eq!(pool.run_indexed(100, |i| i).len(), 100);
        drop(pool);
        // Every worker held an Arc to the shared state; joined workers
        // have released theirs, so only our weak probe remains.
        assert!(probe.upgrade().is_none(), "workers still alive after drop");
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives_drop() {
        let pool = WorkerPool::forced(4);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run_indexed(64, |i| {
                if i == 33 {
                    panic!("boom");
                }
                i
            })
        }));
        assert!(caught.is_err());
        drop(pool); // must not hang or double-panic
    }

    #[test]
    fn chunk_bounds_cover_exactly_once() {
        for total in [0usize, 1, 2, 7, 16, 100, 101] {
            for pieces in [1usize, 2, 3, 8, 200] {
                let bounds = chunk_bounds(total, pieces);
                if total == 0 {
                    assert!(bounds.is_empty());
                    continue;
                }
                assert!(bounds.len() <= pieces.max(1));
                let mut at = 0;
                for &(lo, hi) in &bounds {
                    assert_eq!(lo, at, "contiguous");
                    assert!(hi > lo, "non-empty");
                    at = hi;
                }
                assert_eq!(at, total, "covers 0..total");
                // Near-equal: lengths differ by at most one.
                let lens: Vec<usize> = bounds.iter().map(|&(lo, hi)| hi - lo).collect();
                let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                assert!(max - min <= 1, "balanced: {lens:?}");
            }
        }
    }
}
