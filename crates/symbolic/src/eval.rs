//! Concrete evaluation of symbolic expressions — the testing oracle.
//!
//! A [`Valuation`] assigns concrete integers to kernel symbols so that
//! expressions, bounds and ranges can be evaluated and the algebraic
//! laws of the lattice checked against ground truth. Arithmetic
//! saturates exactly like the canonicalizer in [`crate::SymExpr`], so a
//! property test comparing `eval(a op b)` with `eval(a) op eval(b)` is
//! exact.

use std::collections::HashMap;

use crate::bound::Bound;
use crate::expr::{Atom, SymExpr};
use crate::range::SymRange;
use crate::symbol::Symbol;

/// A concrete assignment of integers to symbols.
///
/// # Examples
///
/// ```
/// use sra_symbolic::{SymExpr, Symbol, Valuation};
/// let n = Symbol::new(0);
/// let mut v = Valuation::new();
/// v.set(n, 41);
/// let e = SymExpr::from(n) + 1.into();
/// assert_eq!(v.eval(&e), Some(42));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Valuation {
    values: HashMap<Symbol, i128>,
}

impl Valuation {
    /// Creates an empty valuation (unset symbols evaluate as 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns `value` to `sym`, returning the previous value if any.
    pub fn set(&mut self, sym: Symbol, value: i128) -> Option<i128> {
        self.values.insert(sym, value)
    }

    /// Reads the value of `sym` (0 when unset).
    pub fn get(&self, sym: Symbol) -> i128 {
        self.values.get(&sym).copied().unwrap_or(0)
    }

    /// Evaluates an expression; `None` when the expression divides by a
    /// zero denominator (undefined program behaviour).
    pub fn eval(&self, e: &SymExpr) -> Option<i128> {
        let mut acc = e.eval_constant_part();
        for (atoms, coeff) in e.eval_terms() {
            let mut prod: i128 = 1;
            for atom in atoms {
                prod = prod.saturating_mul(self.eval_atom(atom)?);
            }
            acc = acc.saturating_add(prod.saturating_mul(coeff));
        }
        Some(acc)
    }

    fn eval_atom(&self, atom: &Atom) -> Option<i128> {
        match atom {
            Atom::Sym(s) => Some(self.get(*s)),
            Atom::Min(a, b) => Some(self.eval(a)?.min(self.eval(b)?)),
            Atom::Max(a, b) => Some(self.eval(a)?.max(self.eval(b)?)),
            Atom::Div(a, b) => {
                let d = self.eval(b)?;
                if d == 0 {
                    None
                } else {
                    Some(self.eval(a)?.checked_div(d).unwrap_or(i128::MAX))
                }
            }
            Atom::Mod(a, b) => {
                let d = self.eval(b)?;
                if d == 0 {
                    None
                } else {
                    Some(self.eval(a)?.checked_rem(d).unwrap_or(0))
                }
            }
        }
    }

    /// Evaluates a bound to a value on the extended number line:
    /// `(sign, value)` where `sign < 0` is `−∞`, `sign > 0` is `+∞`.
    pub fn eval_bound(&self, b: &Bound) -> Option<EvalBound> {
        Some(match b {
            Bound::NegInf => EvalBound::NegInf,
            Bound::PosInf => EvalBound::PosInf,
            Bound::Fin(e) => EvalBound::Fin(self.eval(e)?),
        })
    }

    /// Checks whether the concrete integer `x` lies inside the range
    /// under this valuation. `None` when evaluation is undefined.
    pub fn range_contains(&self, r: &SymRange, x: i128) -> Option<bool> {
        match r {
            SymRange::Empty => Some(false),
            SymRange::Interval { lo, hi } => {
                let lo_ok = match self.eval_bound(lo)? {
                    EvalBound::NegInf => true,
                    EvalBound::Fin(l) => l <= x,
                    EvalBound::PosInf => false,
                };
                let hi_ok = match self.eval_bound(hi)? {
                    EvalBound::PosInf => true,
                    EvalBound::Fin(u) => x <= u,
                    EvalBound::NegInf => false,
                };
                Some(lo_ok && hi_ok)
            }
        }
    }
}

/// A bound evaluated to the extended integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EvalBound {
    /// `−∞`.
    NegInf,
    /// A finite value.
    Fin(i128),
    /// `+∞`.
    PosInf,
}

impl SymExpr {
    /// Internal access for the evaluator: the constant part.
    fn eval_constant_part(&self) -> i128 {
        self.as_constant_part()
    }

    /// Internal access for the evaluator: `(atoms, coeff)` pairs.
    fn eval_terms(&self) -> impl Iterator<Item = (&[Atom], i128)> + '_ {
        self.terms_view()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(i: u32) -> SymExpr {
        SymExpr::from(Symbol::new(i))
    }

    #[test]
    fn eval_affine() {
        let mut v = Valuation::new();
        v.set(Symbol::new(0), 10);
        v.set(Symbol::new(1), -3);
        let e = sym(0) * SymExpr::from(2) + sym(1) - SymExpr::from(4);
        assert_eq!(v.eval(&e), Some(13));
    }

    #[test]
    fn eval_unset_symbol_is_zero() {
        let v = Valuation::new();
        assert_eq!(v.eval(&(sym(7) + SymExpr::from(5))), Some(5));
    }

    #[test]
    fn eval_min_max() {
        let mut v = Valuation::new();
        v.set(Symbol::new(0), 10);
        v.set(Symbol::new(1), 3);
        let e = SymExpr::min(sym(0), sym(1));
        assert_eq!(v.eval(&e), Some(3));
        let e = SymExpr::max(sym(0), sym(1));
        assert_eq!(v.eval(&e), Some(10));
    }

    #[test]
    fn eval_div_mod() {
        let mut v = Valuation::new();
        v.set(Symbol::new(0), 7);
        assert_eq!(v.eval(&SymExpr::div(sym(0), 2.into())), Some(3));
        assert_eq!(v.eval(&SymExpr::rem(sym(0), 2.into())), Some(1));
        // Division by a symbol that is 0 is undefined.
        assert_eq!(v.eval(&SymExpr::div(sym(0), sym(1))), None);
    }

    #[test]
    fn range_membership() {
        let mut v = Valuation::new();
        v.set(Symbol::new(0), 10);
        let r = SymRange::interval(0.into(), sym(0));
        assert_eq!(v.range_contains(&r, 0), Some(true));
        assert_eq!(v.range_contains(&r, 10), Some(true));
        assert_eq!(v.range_contains(&r, 11), Some(false));
        assert_eq!(v.range_contains(&SymRange::top(), i128::MAX), Some(true));
        assert_eq!(v.range_contains(&SymRange::Empty, 0), Some(false));
    }
}
