//! Concrete evaluation of symbolic expressions — the testing oracle.
//!
//! A [`Valuation`] assigns concrete integers to kernel symbols so that
//! expressions, bounds and ranges can be evaluated and the algebraic
//! laws of the lattice checked against ground truth.
//!
//! Saturation semantics match the interpreter oracle's: a saturating
//! binary op is "the mathematical result, clamped once". The affine
//! combination `c₀ + Σ cᵢ·tᵢ` is therefore accumulated **exactly** in
//! 256-bit arithmetic and clamped at the end — clamping intermediate
//! products would mis-evaluate e.g. `x − y` at `y = i128::MIN`, where
//! the canonical form's `(−1)·y` overflows `i128` while the
//! mathematical sum `x + 2¹²⁷` may still clamp differently (the
//! `arith_crosscheck` suite caught exactly that divergence). Products
//! *within* a term and the opaque `min`/`max`/`div`/`mod` atoms
//! saturate pairwise, like the interpreter evaluating one op at a time
//! — but in the term's canonical (sorted) atom order, which for 3+-atom
//! products can differ from program order once an intermediate product
//! saturates. That residual divergence is inherent to canonicalization
//! (see the contract note in [`crate::SymExpr`]'s module docs) and
//! pinned in `tests/arith_crosscheck.rs`.

use std::collections::HashMap;

use crate::bound::Bound;
use crate::expr::{sat_div, sat_rem, Atom, SymExpr};
use crate::range::SymRange;
use crate::symbol::Symbol;

/// A concrete assignment of integers to symbols.
///
/// # Examples
///
/// ```
/// use sra_symbolic::{SymExpr, Symbol, Valuation};
/// let n = Symbol::new(0);
/// let mut v = Valuation::new();
/// v.set(n, 41);
/// let e = SymExpr::from(n) + 1.into();
/// assert_eq!(v.eval(&e), Some(42));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Valuation {
    values: HashMap<Symbol, i128>,
}

impl Valuation {
    /// Creates an empty valuation (unset symbols evaluate as 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns `value` to `sym`, returning the previous value if any.
    pub fn set(&mut self, sym: Symbol, value: i128) -> Option<i128> {
        self.values.insert(sym, value)
    }

    /// Reads the value of `sym` (0 when unset).
    pub fn get(&self, sym: Symbol) -> i128 {
        self.values.get(&sym).copied().unwrap_or(0)
    }

    /// Evaluates an expression; `None` when the expression divides by a
    /// zero denominator (undefined program behaviour).
    pub fn eval(&self, e: &SymExpr) -> Option<i128> {
        let mut acc = I256::from_i128(e.eval_constant_part());
        for (atoms, coeff) in e.eval_terms() {
            let mut prod: i128 = 1;
            for atom in atoms {
                prod = prod.saturating_mul(self.eval_atom(atom)?);
            }
            acc = acc.add(I256::mul_i128(prod, coeff));
        }
        Some(acc.clamp_i128())
    }

    fn eval_atom(&self, atom: &Atom) -> Option<i128> {
        match atom {
            Atom::Sym(s) => Some(self.get(*s)),
            Atom::Min(a, b) => Some(self.eval(a)?.min(self.eval(b)?)),
            Atom::Max(a, b) => Some(self.eval(a)?.max(self.eval(b)?)),
            Atom::Div(a, b) => {
                let d = self.eval(b)?;
                if d == 0 {
                    None
                } else {
                    Some(sat_div(self.eval(a)?, d))
                }
            }
            Atom::Mod(a, b) => {
                let d = self.eval(b)?;
                if d == 0 {
                    None
                } else {
                    Some(sat_rem(self.eval(a)?, d))
                }
            }
        }
    }

    /// Evaluates a bound to a value on the extended number line:
    /// `(sign, value)` where `sign < 0` is `−∞`, `sign > 0` is `+∞`.
    pub fn eval_bound(&self, b: &Bound) -> Option<EvalBound> {
        Some(match b {
            Bound::NegInf => EvalBound::NegInf,
            Bound::PosInf => EvalBound::PosInf,
            Bound::Fin(e) => EvalBound::Fin(self.eval(e)?),
        })
    }

    /// Checks whether the concrete integer `x` lies inside the range
    /// under this valuation. `None` when evaluation is undefined.
    pub fn range_contains(&self, r: &SymRange, x: i128) -> Option<bool> {
        match r {
            SymRange::Empty => Some(false),
            SymRange::Interval { lo, hi } => {
                let lo_ok = match self.eval_bound(lo)? {
                    EvalBound::NegInf => true,
                    EvalBound::Fin(l) => l <= x,
                    EvalBound::PosInf => false,
                };
                let hi_ok = match self.eval_bound(hi)? {
                    EvalBound::PosInf => true,
                    EvalBound::Fin(u) => x <= u,
                    EvalBound::NegInf => false,
                };
                Some(lo_ok && hi_ok)
            }
        }
    }
}

/// A signed 256-bit accumulator for the affine combination, with a
/// wrap counter that keeps the sum exact past ±(2²⁵⁵−1): a single
/// `c·t` product of two `i128`s is bounded by 2²⁵⁴, but *two* such
/// terms can already exceed the 256-bit range, and sums of up to
/// `MAX_EXPR_ATOMS` of them reach ~2²⁶⁰. Every 256-bit wrap is counted
/// (`wraps` holds the missing multiples of 2²⁵⁶), so intermediate
/// overflow — including later cancellation back into range — never
/// distorts the final, single clamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct I256 {
    /// High 128 bits (two's complement).
    hi: i128,
    /// Low 128 bits.
    lo: u128,
    /// Signed count of 2²⁵⁶ wraps the accumulated value owes.
    wraps: i32,
}

impl I256 {
    fn from_i128(x: i128) -> I256 {
        I256 {
            hi: if x < 0 { -1 } else { 0 },
            lo: x as u128,
            wraps: 0,
        }
    }

    fn add(self, o: I256) -> I256 {
        let (lo, carry) = self.lo.overflowing_add(o.lo);
        let hi = self.hi.wrapping_add(o.hi).wrapping_add(carry as i128);
        // Signed-overflow rule on the 256-bit value (sign = `hi`'s):
        // like signs in, opposite sign out ⇒ one wrap in that
        // direction.
        let mut wraps = self.wraps + o.wraps;
        if self.hi < 0 && o.hi < 0 && hi >= 0 {
            wraps -= 1;
        } else if self.hi >= 0 && o.hi >= 0 && hi < 0 {
            wraps += 1;
        }
        I256 { hi, lo, wraps }
    }

    fn neg(self) -> I256 {
        let lo = (!self.lo).wrapping_add(1);
        let hi = (!self.hi).wrapping_add((lo == 0) as i128);
        // −(−2²⁵⁵) wraps back onto itself and owes one 2²⁵⁶.
        let boundary = self.hi == i128::MIN && self.lo == 0;
        I256 {
            hi,
            lo,
            wraps: -self.wraps + boundary as i32,
        }
    }

    /// Exact `a × b` as a 256-bit value.
    fn mul_i128(a: i128, b: i128) -> I256 {
        let negate = (a < 0) != (b < 0);
        let (hi, lo) = umul128(a.unsigned_abs(), b.unsigned_abs());
        // |a|·|b| ≤ 2²⁵⁴, so `hi ≤ 2¹²⁶` fits i128 as a non-negative.
        let r = I256 {
            hi: hi as i128,
            lo,
            wraps: 0,
        };
        if negate {
            r.neg()
        } else {
            r
        }
    }

    /// Clamps to the `i128` range (the single, final saturation).
    fn clamp_i128(self) -> i128 {
        if self.wraps != 0 {
            // True value = stored ± wraps·2²⁵⁶; with |stored| < 2²⁵⁵
            // the wrap term dominates, fixing the sign.
            return if self.wraps > 0 { i128::MAX } else { i128::MIN };
        }
        let lo = self.lo as i128;
        let ext = if lo < 0 { -1 } else { 0 };
        if self.hi == ext {
            lo
        } else if self.hi < ext {
            i128::MIN
        } else {
            i128::MAX
        }
    }
}

/// Full 128×128→256 unsigned multiplication (schoolbook on 64-bit
/// limbs).
fn umul128(a: u128, b: u128) -> (u128, u128) {
    const LO: u128 = u64::MAX as u128;
    let (a0, a1) = (a & LO, a >> 64);
    let (b0, b1) = (b & LO, b >> 64);
    let ll = a0 * b0;
    let lh = a0 * b1;
    let hl = a1 * b0;
    let hh = a1 * b1;
    // `mid` can carry past 64 bits (it sums three 64-bit values).
    let mid = (ll >> 64) + (lh & LO) + (hl & LO);
    let lo = (ll & LO) | ((mid & LO) << 64);
    let hi = hh + (lh >> 64) + (hl >> 64) + (mid >> 64);
    (hi, lo)
}

/// A bound evaluated to the extended integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EvalBound {
    /// `−∞`.
    NegInf,
    /// A finite value.
    Fin(i128),
    /// `+∞`.
    PosInf,
}

impl SymExpr {
    /// Internal access for the evaluator: the constant part.
    fn eval_constant_part(&self) -> i128 {
        self.as_constant_part()
    }

    /// Internal access for the evaluator: `(atoms, coeff)` pairs.
    fn eval_terms(&self) -> impl Iterator<Item = (&[Atom], i128)> + '_ {
        self.terms_view()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(i: u32) -> SymExpr {
        SymExpr::from(Symbol::new(i))
    }

    #[test]
    fn eval_affine() {
        let mut v = Valuation::new();
        v.set(Symbol::new(0), 10);
        v.set(Symbol::new(1), -3);
        let e = sym(0) * SymExpr::from(2) + sym(1) - SymExpr::from(4);
        assert_eq!(v.eval(&e), Some(13));
    }

    #[test]
    fn eval_unset_symbol_is_zero() {
        let v = Valuation::new();
        assert_eq!(v.eval(&(sym(7) + SymExpr::from(5))), Some(5));
    }

    #[test]
    fn eval_min_max() {
        let mut v = Valuation::new();
        v.set(Symbol::new(0), 10);
        v.set(Symbol::new(1), 3);
        let e = SymExpr::min(sym(0), sym(1));
        assert_eq!(v.eval(&e), Some(3));
        let e = SymExpr::max(sym(0), sym(1));
        assert_eq!(v.eval(&e), Some(10));
    }

    #[test]
    fn eval_div_mod() {
        let mut v = Valuation::new();
        v.set(Symbol::new(0), 7);
        assert_eq!(v.eval(&SymExpr::div(sym(0), 2.into())), Some(3));
        assert_eq!(v.eval(&SymExpr::rem(sym(0), 2.into())), Some(1));
        // Division by a symbol that is 0 is undefined.
        assert_eq!(v.eval(&SymExpr::div(sym(0), sym(1))), None);
    }

    #[test]
    fn wide_accumulator_is_exact() {
        // 2¹²⁷ · 1 clamps to MAX only at the end.
        let p = I256::mul_i128(i128::MIN, -1);
        assert_eq!(p.clamp_i128(), i128::MAX);
        // … and cancels exactly before clamping: 2¹²⁷ − 2¹²⁷ = 0.
        assert_eq!(p.add(I256::mul_i128(i128::MIN, 1)).clamp_i128(), 0);
        // Largest product magnitude round-trips.
        let big = I256::mul_i128(i128::MIN, i128::MIN);
        assert_eq!(big.neg().neg(), big);
        assert_eq!(big.clamp_i128(), i128::MAX);
        assert_eq!(big.neg().clamp_i128(), i128::MIN);
        // umul128 against a known identity: (2⁶⁴+3)² = 2¹²⁸ + 6·2⁶⁴ + 9.
        let x = (1u128 << 64) + 3;
        assert_eq!(umul128(x, x), (1, 6 * (1u128 << 64) + 9));
    }

    #[test]
    fn wide_accumulator_survives_256bit_overflow() {
        // Two +2²⁵⁴ terms exceed the plain 256-bit range; the wrap
        // counter keeps the sign.
        let big = I256::mul_i128(i128::MIN, i128::MIN); // +2²⁵⁴
        let two = big.add(big); // +2²⁵⁵: wrapped, counted
        assert_eq!(two.clamp_i128(), i128::MAX);
        assert_eq!(two.neg().clamp_i128(), i128::MIN);
        let four = two.add(two); // +2²⁵⁶
        assert_eq!(four.clamp_i128(), i128::MAX);
        // …and cancellation back into range stays exact:
        // 2²⁵⁵ − 2²⁵⁴ − 2²⁵⁴ + 7 = 7.
        let back = two.add(big.neg()).add(big.neg()).add(I256::from_i128(7));
        assert_eq!(back.clamp_i128(), 7);
        // Through the public evaluator: MIN·x + MIN·y at x = y = MIN is
        // two +2²⁵⁴ terms; the sum +2²⁵⁵ must clamp to MAX, not wrap
        // negative.
        let x = Symbol::new(0);
        let y = Symbol::new(1);
        let e = SymExpr::from(i128::MIN) * SymExpr::from(x)
            + SymExpr::from(i128::MIN) * SymExpr::from(y);
        let mut v = Valuation::new();
        v.set(x, i128::MIN);
        v.set(y, i128::MIN);
        assert_eq!(v.eval(&e), Some(i128::MAX));
    }

    #[test]
    fn eval_matches_single_op_saturation() {
        // x − y at the corner that exposes intermediate-clamp bugs:
        // MIN − MIN = 0, and −1 − MIN = MAX exactly.
        let x = Symbol::new(0);
        let y = Symbol::new(1);
        let diff = SymExpr::from(x) - SymExpr::from(y);
        let mut v = Valuation::new();
        v.set(x, i128::MIN);
        v.set(y, i128::MIN);
        assert_eq!(v.eval(&diff), Some(0));
        v.set(x, -1);
        assert_eq!(v.eval(&diff), Some(i128::MAX));
        v.set(x, i128::MAX);
        v.set(y, 1);
        assert_eq!(
            v.eval(&(SymExpr::from(x) + SymExpr::from(y))),
            Some(i128::MAX)
        );
    }

    #[test]
    fn range_membership() {
        let mut v = Valuation::new();
        v.set(Symbol::new(0), 10);
        let r = SymRange::interval(0.into(), sym(0));
        assert_eq!(v.range_contains(&r, 0), Some(true));
        assert_eq!(v.range_contains(&r, 10), Some(true));
        assert_eq!(v.range_contains(&r, 11), Some(false));
        assert_eq!(v.range_contains(&SymRange::top(), i128::MAX), Some(true));
        assert_eq!(v.range_contains(&SymRange::Empty, 0), Some(false));
    }
}
