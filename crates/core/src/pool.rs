//! A hand-rolled scoped thread pool for the batch driver.
//!
//! The workspace is dependency-free (no rayon), so fan-out is built on
//! `std::thread::scope`: jobs are indices `0..n`, workers claim them
//! from a shared atomic counter, and results are reassembled in index
//! order — the output is a plain `Vec<T>` whose contents are
//! independent of thread scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A reasonable worker count for this machine: the available
/// parallelism, capped so tiny machines and CI runners stay responsive.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 16)
}

/// Runs `f(0), f(1), …, f(n-1)` across `threads` workers and returns
/// the results in index order.
///
/// Work is claimed dynamically (an atomic next-index counter), so
/// uneven job sizes balance automatically. With `threads <= 1` (or a
/// single job) everything runs inline on the caller thread — the
/// deterministic reference path the equivalence tests compare against.
pub fn run_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return (0..n).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut collected: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panicked"))
            .collect()
    });

    // Reassemble in index order.
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for batch in collected.drain(..) {
        for (i, v) in batch {
            debug_assert!(slots[i].is_none(), "job {i} ran twice");
            slots[i] = Some(v);
        }
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, v)| v.unwrap_or_else(|| panic!("job {i} never ran")))
        .collect()
}

/// Like [`run_indexed`], but each job consumes an owned input item:
/// `f(items[0]), f(items[1]), …`, results in item order.
///
/// Owned inputs let jobs *move* heavyweight state (the GR wave
/// scheduler hands each SCC its state vectors without cloning). Items
/// are parked in per-slot mutexes so workers can take them across the
/// scope boundary; the lock is uncontended — every slot is taken
/// exactly once.
pub fn run_map<I, T, F>(items: Vec<I>, threads: usize, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    run_indexed(slots.len(), threads, |i| {
        let item = slots[i]
            .lock()
            .expect("pool item lock")
            .take()
            .expect("pool item taken once");
        f(item)
    })
}

/// Splits `0..total` into at most `pieces` contiguous, non-empty
/// `(start, end)` ranges of near-equal length, in order.
///
/// The matrix build tiles its signature triangle with this: the tile
/// list is deterministic (it depends only on `total` and `pieces`), so
/// concatenating per-tile results reproduces the serial sweep exactly.
pub fn chunk_bounds(total: usize, pieces: usize) -> Vec<(usize, usize)> {
    if total == 0 {
        return Vec::new();
    }
    let pieces = pieces.clamp(1, total);
    let base = total / pieces;
    let extra = total % pieces;
    let mut out = Vec::with_capacity(pieces);
    let mut start = 0;
    for k in 0..pieces {
        let len = base + usize::from(k < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_index_order() {
        for threads in [1, 2, 4, 7] {
            let out = run_indexed(23, threads, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 4, |i| i + 1), vec![1]);
    }

    #[test]
    fn uneven_jobs_balance() {
        // Jobs of very different sizes still all complete and land in
        // order.
        let out = run_indexed(16, 4, |i| {
            let mut acc = 0u64;
            for k in 0..(i as u64 * 10_000) {
                acc = acc.wrapping_add(k);
            }
            (i, acc)
        });
        for (i, (j, _)) in out.iter().enumerate() {
            assert_eq!(i, *j);
        }
    }

    #[test]
    fn run_map_moves_items_in_order() {
        for threads in [1, 2, 4] {
            let items: Vec<String> = (0..17).map(|i| format!("job{i}")).collect();
            let out = run_map(items, threads, |s| s + "!");
            assert_eq!(out.len(), 17);
            for (i, s) in out.iter().enumerate() {
                assert_eq!(s, &format!("job{i}!"));
            }
        }
        assert_eq!(run_map(Vec::<u8>::new(), 4, |x| x), Vec::<u8>::new());
    }

    #[test]
    fn default_threads_sane() {
        let t = default_threads();
        assert!((1..=16).contains(&t));
    }

    #[test]
    fn chunk_bounds_cover_exactly_once() {
        for total in [0usize, 1, 2, 7, 16, 100, 101] {
            for pieces in [1usize, 2, 3, 8, 200] {
                let bounds = chunk_bounds(total, pieces);
                if total == 0 {
                    assert!(bounds.is_empty());
                    continue;
                }
                assert!(bounds.len() <= pieces.max(1));
                let mut at = 0;
                for &(lo, hi) in &bounds {
                    assert_eq!(lo, at, "contiguous");
                    assert!(hi > lo, "non-empty");
                    at = hi;
                }
                assert_eq!(at, total, "covers 0..total");
                // Near-equal: lengths differ by at most one.
                let lens: Vec<usize> = bounds.iter().map(|&(lo, hi)| hi - lo).collect();
                let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                assert!(max - min <= 1, "balanced: {lens:?}");
            }
        }
    }
}
