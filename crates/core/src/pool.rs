//! The pipeline's thread pool — re-exported from
//! [`sra_symbolic::pool`], where it lives so the range crate's
//! parallel arena assembly can share it. See that module for the
//! [`WorkerPool`] dispatch protocol and the one-shot shims.

pub use sra_symbolic::pool::{chunk_bounds, default_threads, run_indexed, run_map, WorkerPool};
