//! Incremental re-analysis sessions: function-granularity updates with
//! dirty-component invalidation over the call-graph condensation.
//!
//! [`AnalysisSession`] is the long-lived handle a server keeps per
//! module: it owns the parsed [`Module`] plus *all* cached analysis
//! state — the per-function bootstrap-range and LR parts with their
//! pre-budgeted symbol-id blocks, the per-function CFGs, the
//! [`CallGraph`], the GR fixpoint split per weakly connected component,
//! and one cached [`AliasMatrix`] per function — and accepts
//! function-granularity updates ([`AnalysisSession::replace_function`],
//! [`AnalysisSession::add_function`],
//! [`AnalysisSession::remove_function`]).
//!
//! # The invalidation contract
//!
//! The specification is *byte-identity*: after every update, the
//! session's verdicts, `WhichTest` attributions, displayed GR states
//! and symbol tables are exactly those of a from-scratch
//! [`analyze_parallel`](crate::analyze_parallel) +
//! [`AliasMatrix`] build over the updated module. Anything less would
//! let incrementality silently change precision or soundness, so
//! "equal to scratch" is the spec the `session_equivalence` property
//! rail pins. Reuse happens at three granularities:
//!
//! * **function parts** — the bootstrap ranges and LR states of a
//!   function depend only on its own body, so an edit invalidates
//!   exactly the edited function's parts. Parts whose pre-budgeted
//!   symbol-id *block* moved (an earlier function's budget changed)
//!   are **rebased**: their arenas are re-imported under a monotone
//!   symbol renaming ([`sra_symbolic::ExprArena::import_range`]), which
//!   commutes with the analysis, instead of re-analyzed.
//! * **GR components** — interprocedural dataflow zig-zags along call
//!   edges in both directions (returns up, actuals down), so the
//!   region an edit can reach is the edited function's SCC plus every
//!   SCC connected to it in either direction: its *weakly connected
//!   component* of the call graph. The session re-seeds and re-solves
//!   dirty components only (in the same alternating bottom-up/top-down
//!   condensation order the scratch solver specs), re-verifying
//!   convergence; components untouched by the edit keep their cached
//!   fixpoint — their states are *imported* into the rebuild's fresh
//!   canonical arena under the (monotone) symbol/location renaming the
//!   edit induced, never re-solved. The one module-wide coupling is the
//!   ascending cap: its trip flag is OR-ed across components, and a
//!   cached component whose post phase ran under a different flag is
//!   re-solved.
//! * **alias matrices** — a matrix caches verdicts only (no symbols,
//!   no location ids), and verdicts are invariant under the monotone
//!   renamings above; the matrix of an unedited function is reused
//!   whenever its GR states are unchanged up to renaming, and rebuilt
//!   otherwise.
//!
//! [`SessionStats`] counts what was reused vs recomputed, so tests can
//! assert e.g. that a no-op replace dirties nothing.
//!
//! # Examples
//!
//! ```
//! use sra_core::{AliasResult, AnalysisConfig, AnalysisSession};
//! use sra_ir::{FunctionBuilder, Module};
//!
//! let mut b = FunctionBuilder::new("f", &[], None);
//! let ten = b.const_int(10);
//! let p = b.malloc(ten);
//! let q = b.malloc(ten);
//! b.ret(None);
//! let mut m = Module::new();
//! let fid = m.add_function(b.finish());
//!
//! let mut session = AnalysisSession::with_config(m, AnalysisConfig::default()).unwrap();
//! assert_eq!(session.alias_with_test(fid, p, q).0, AliasResult::NoAlias);
//!
//! // A no-op replace dirties nothing: every cache is carried over.
//! let body = session.module().function(fid).clone();
//! session.replace_function(fid, body).unwrap();
//! assert_eq!(session.stats().noop_edits, 1);
//! assert!(session.stats().parts_reused > 0);
//! ```

use std::fmt;
use std::sync::Mutex;

use sra_ir::callgraph::{CallGraph, Condensation};
use sra_ir::cfg::Cfg;
use sra_ir::verify::{verify_function, verify_module, VerifyError};
use sra_ir::{FuncId, Function, Module, ValueId};
use sra_range::{RangeAnalysis, RangePart};
use sra_symbolic::{ExprArena, ImportMap, Symbol, TryImportMap};

use crate::config::AnalysisConfig;
use crate::driver::{ns_since, DriverConfig, PhaseStats};
use crate::gr::{self, GrAnalysis, GrConfig, GrSolver};
use crate::locs::{LocId, LocTable};
use crate::lr::{self, LrAnalysis, LrPart};
use crate::persist::{self, PersistError};
use crate::pool;
use crate::query::{
    AliasAnalysis, AliasMatrix, AliasResult, DemandCache, DemandStats, QueryMode, QueryStats,
    RbaaAnalysis, WhichTest,
};
use crate::state::PtrState;

/// Why a session update was rejected. Rejected updates leave the
/// session (and its module) exactly as they were.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The update would break IR well-formedness — a structurally
    /// invalid body, a call-arity mismatch, or a removed function that
    /// other functions still call (the verifier reports the dangling
    /// call site).
    Verify(VerifyError),
    /// The named function does not exist.
    NoSuchFunction(FuncId),
    /// A batch ([`AnalysisSession::apply_edits`]) targeted the same
    /// function with more than one replace/remove.
    DuplicateTarget(FuncId),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Verify(e) => write!(f, "rejected update: {e}"),
            SessionError::NoSuchFunction(id) => write!(f, "no function {id} in the session module"),
            SessionError::DuplicateTarget(id) => {
                write!(
                    f,
                    "function {id} is targeted by more than one edit in the batch"
                )
            }
        }
    }
}

impl std::error::Error for SessionError {}

impl From<VerifyError> for SessionError {
    fn from(e: VerifyError) -> Self {
        SessionError::Verify(e)
    }
}

/// One edit of an atomic batch ([`AnalysisSession::apply_edits`]).
/// Every id is interpreted in the session's pre-batch id space.
#[derive(Debug, Clone)]
pub enum SessionEdit {
    /// Replace the body of `func`.
    Replace {
        /// The function to replace (pre-batch id).
        func: FuncId,
        /// Its new body.
        body: Function,
    },
    /// Append a new function. Within the batch it is addressable at
    /// `pre_batch_count + k` for the `k`-th add.
    Add {
        /// The new body.
        body: Function,
    },
    /// Remove `func`; later ids compact down.
    Remove {
        /// The function to remove (pre-batch id).
        func: FuncId,
    },
}

/// Reuse/recompute counters, accumulated across every update since the
/// session was created (the initial build is not counted).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Updates applied (including rejected-free no-ops).
    pub edits: usize,
    /// Replacements whose body was identical to the current one:
    /// nothing was dirtied, every cache carried over.
    pub noop_edits: usize,
    /// Function parts (range + LR) re-analyzed from the body.
    pub parts_reanalyzed: usize,
    /// Cached parts carried over (as-is or rebased).
    pub parts_reused: usize,
    /// Subset of [`SessionStats::parts_reused`] whose symbol-id block
    /// moved and was rebased by a monotone renaming.
    pub parts_rebased: usize,
    /// Weak components whose GR fixpoint was re-solved from seeds.
    pub gr_components_solved: usize,
    /// Weak components whose cached GR fixpoint was fully reused.
    pub gr_components_reused: usize,
    /// Weak components re-solved not because they were edited but
    /// because the module-wide cap-trip flag changed (their cached
    /// fixpoint was finished under the other flag).
    pub gr_components_refinished: usize,
    /// Alias matrices rebuilt.
    pub matrices_rebuilt: usize,
    /// Alias matrices reused from cache.
    pub matrices_reused: usize,
}

/// The cached GR fixpoint metadata of one weakly connected component.
/// The fixpoint *states* themselves live in the assembled
/// [`GrAnalysis`] behind per-function [`std::sync::Arc`]s, so reusing a
/// clean component is a reference bump, not a copy.
#[derive(Debug, Clone)]
struct CompCache {
    /// Member functions, sorted ascending (current id space).
    members: Vec<FuncId>,
    /// Ascending sweeps the component's solo fixpoint took.
    sweeps: u32,
    /// Whether the component's own ascending loop hit the cap.
    tripped: bool,
    /// The module-wide trip flag the final states were finished under
    /// (a later edit that flips it forces a re-solve of this
    /// component, because the post phase ran under the other flag).
    final_trip: bool,
}

/// A long-lived analysis handle over one module; see the module docs.
/// Cloning is supported (and cheap relative to a rebuild — state
/// vectors are shared) so servers can fork a session per speculative
/// edit stream.
pub struct AnalysisSession {
    module: Module,
    config: AnalysisConfig,
    /// Per-function caches, aligned with the module's function ids.
    range_parts: Vec<RangePart>,
    lr_parts: Vec<LrPart>,
    cfgs: Vec<Cfg>,
    callgraph: CallGraph,
    /// GR fixpoints per weak component.
    components: Vec<CompCache>,
    /// The assembled whole-module analysis (byte-identical to scratch).
    rbaa: RbaaAnalysis,
    /// Per-function matrices behind [`std::sync::Arc`]s so a
    /// [`AnalysisSession::freeze`] snapshot shares them zero-copy: a
    /// rebuild allocates fresh `Arc`s only for invalidated matrices,
    /// and a published snapshot keeps superseded ones alive until its
    /// last reader drops it. Stays empty in [`QueryMode::Demand`].
    matrices: Vec<std::sync::Arc<AliasMatrix>>,
    /// The lazily started demand cache ([`QueryMode::Demand`] only);
    /// dropped on every rebuild — it indexes the superseded analysis.
    demand: Mutex<Option<DemandCache>>,
    /// The session's persistent worker pool — spawned once at
    /// construction (or load) and reused by every rebuild for part
    /// recomputation, arena assembly, GR wave levels and matrix tiles.
    pool: pool::WorkerPool,
    /// Wall-clock attribution of the most recent rebuild (or load).
    phases: PhaseStats,
    stats: SessionStats,
}

impl Clone for AnalysisSession {
    fn clone(&self) -> Self {
        AnalysisSession {
            module: self.module.clone(),
            config: self.config,
            range_parts: self.range_parts.clone(),
            lr_parts: self.lr_parts.clone(),
            cfgs: self.cfgs.clone(),
            callgraph: self.callgraph.clone(),
            components: self.components.clone(),
            rbaa: self.rbaa.clone(),
            matrices: self.matrices.clone(),
            // The demand cache is pure memoisation — the fork regrows
            // its own on first query.
            demand: Mutex::new(None),
            // Worker pools are not shareable state — the fork spawns
            // its own so both sessions can rebuild concurrently.
            pool: pool::WorkerPool::new(self.config.threads),
            phases: self.phases,
            stats: self.stats,
        }
    }
}

/// An immutable, self-contained snapshot of a session's analysis
/// state, produced by [`AnalysisSession::freeze`]: the module at freeze
/// time plus the assembled [`RbaaAnalysis`] and every per-function
/// [`AliasMatrix`]. Freezing is cheap — the analysis' state vectors,
/// arenas and matrices are `Arc`-shared with the session, so a freeze
/// is reference bumps plus one module clone — and the result borrows
/// nothing: it can be sent to (and queried from) any number of threads
/// while the session keeps applying edits.
///
/// A snapshot frozen from a [`QueryMode::Demand`] session carries no
/// matrices; queries grow a private [`DemandCache`] instead (under a
/// mutex — concurrent readers of one snapshot serialize on it).
pub struct FrozenAnalysis {
    module: std::sync::Arc<Module>,
    rbaa: RbaaAnalysis,
    matrices: std::sync::Arc<[std::sync::Arc<AliasMatrix>]>,
    mode: QueryMode,
    demand: Mutex<Option<DemandCache>>,
}

impl Clone for FrozenAnalysis {
    fn clone(&self) -> Self {
        FrozenAnalysis {
            module: self.module.clone(),
            rbaa: self.rbaa.clone(),
            matrices: self.matrices.clone(),
            mode: self.mode,
            demand: Mutex::new(None),
        }
    }
}

impl fmt::Debug for FrozenAnalysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FrozenAnalysis")
            .field("functions", &self.module.num_functions())
            .field("mode", &self.mode)
            .field("matrices", &self.matrices.len())
            .finish()
    }
}

impl FrozenAnalysis {
    /// The module exactly as it was at freeze time.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The assembled analysis at freeze time.
    pub fn analysis(&self) -> &RbaaAnalysis {
        &self.rbaa
    }

    /// The query mode the snapshot answers with.
    pub fn query_mode(&self) -> QueryMode {
        self.mode
    }

    /// The cached all-pairs matrix of `f`.
    ///
    /// # Panics
    ///
    /// In [`QueryMode::Demand`] no matrices exist.
    pub fn matrix(&self, f: FuncId) -> &AliasMatrix {
        &self.matrices[f.index()]
    }

    /// The Figure 13/14 statistics of `f`'s all-pairs sweep.
    ///
    /// # Panics
    ///
    /// In [`QueryMode::Demand`] no matrices exist.
    pub fn stats_of(&self, f: FuncId) -> &QueryStats {
        self.matrices[f.index()].stats()
    }

    /// Answers one alias query from the frozen state — `O(1)` from the
    /// cached matrix (or memoised on demand in [`QueryMode::Demand`]),
    /// falling back to the direct computation for values outside the
    /// pointer universe. Byte-identical to
    /// [`AnalysisSession::alias_with_test`] at the freeze point.
    pub fn alias_with_test(
        &self,
        f: FuncId,
        p: ValueId,
        q: ValueId,
    ) -> (AliasResult, Option<WhichTest>) {
        if self.mode == QueryMode::Demand {
            let mut guard = self.demand.lock().expect("demand cache lock");
            let cache = guard.get_or_insert_with(|| self.rbaa.demand_cache());
            return cache.query(&self.rbaa, f, p, q);
        }
        match self.matrices[f.index()].lookup(p, q) {
            Some(v) => v,
            None => self.rbaa.alias_with_test(f, p, q),
        }
    }
}

impl AliasAnalysis for FrozenAnalysis {
    fn name(&self) -> &'static str {
        "rbaa"
    }

    fn alias(&self, f: FuncId, p: ValueId, q: ValueId) -> AliasResult {
        self.alias_with_test(f, p, q).0
    }
}

impl AnalysisSession {
    /// Builds a session over `module` with default configuration.
    #[deprecated(note = "use `AnalysisSession::with_config` with `AnalysisConfig::default()`")]
    pub fn new(module: Module) -> Result<Self, SessionError> {
        Self::with_config(module, AnalysisConfig::default())
    }

    /// Builds a session with an explicit configuration — the canonical
    /// constructor. Accepts anything convertible into
    /// [`AnalysisConfig`] (a legacy [`DriverConfig`] included).
    /// [`QueryMode::Demand`] skips all matrix builds — initial and
    /// after every edit — and answers queries from a lazily grown
    /// [`DemandCache`].
    ///
    /// # Errors
    ///
    /// Returns the verifier's error when the module is not well-formed
    /// (sessions only manage modules whose edits can be re-verified).
    pub fn with_config(
        module: Module,
        config: impl Into<AnalysisConfig>,
    ) -> Result<Self, SessionError> {
        let config = config.into();
        verify_module(&module)?;
        let nf = module.num_functions();
        let callgraph = CallGraph::build(&module);
        let cfgs = gr::build_cfgs(&module);
        // Placeholder analysis state; the initial rebuild treats every
        // function as edited and fills all caches.
        let rbaa = RbaaAnalysis::from_pieces(
            RangeAnalysis::from_parts(Vec::new()),
            GrAnalysis::from_raw(
                LocTable::default(),
                Vec::new(),
                std::sync::Arc::new(ExprArena::new()),
                0,
            ),
            LrAnalysis::from_parts(Vec::new()),
        );
        let mut session = AnalysisSession {
            module,
            config,
            range_parts: Vec::new(),
            lr_parts: Vec::new(),
            cfgs,
            callgraph,
            components: Vec::new(),
            rbaa,
            matrices: Vec::new(),
            demand: Mutex::new(None),
            pool: pool::WorkerPool::new(config.threads),
            phases: PhaseStats::default(),
            stats: SessionStats::default(),
        };
        let all: Vec<usize> = (0..nf).collect();
        session.rebuild(&all, &[]);
        session.stats = SessionStats::default();
        Ok(session)
    }

    /// Builds a session with a driver configuration and a query mode.
    #[deprecated(
        note = "use `AnalysisSession::with_config` with `AnalysisConfig::builder().query_mode(…)`"
    )]
    pub fn with_mode(
        module: Module,
        config: DriverConfig,
        mode: QueryMode,
    ) -> Result<Self, SessionError> {
        let config = AnalysisConfig {
            query_mode: mode,
            ..config.into()
        };
        Self::with_config(module, config)
    }

    /// The module under analysis (reflecting every applied update).
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The configuration the session analyzes with.
    pub fn config(&self) -> AnalysisConfig {
        self.config
    }

    /// The query mode the session answers with.
    pub fn query_mode(&self) -> QueryMode {
        self.config.query_mode
    }

    /// The demand cache's activity counters; `None` until the first
    /// [`QueryMode::Demand`] query (and always in [`QueryMode::Matrix`]).
    pub fn demand_stats(&self) -> Option<DemandStats> {
        self.demand
            .lock()
            .expect("demand cache lock")
            .as_ref()
            .map(|c| c.stats())
    }

    /// The assembled analysis — byte-identical to
    /// [`analyze_parallel`](crate::analyze_parallel) on
    /// [`AnalysisSession::module`].
    pub fn analysis(&self) -> &RbaaAnalysis {
        &self.rbaa
    }

    /// The cached all-pairs matrix of `f`.
    ///
    /// # Panics
    ///
    /// In [`QueryMode::Demand`] no matrices exist.
    pub fn matrix(&self, f: FuncId) -> &AliasMatrix {
        &self.matrices[f.index()]
    }

    /// The Figure 13/14 statistics of `f`'s all-pairs sweep.
    ///
    /// # Panics
    ///
    /// In [`QueryMode::Demand`] no matrices exist.
    pub fn stats_of(&self, f: FuncId) -> &QueryStats {
        self.matrices[f.index()].stats()
    }

    /// Reuse/recompute counters accumulated over all updates.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Wall-clock attribution of the most recent rebuild (or, right
    /// after [`AnalysisSession::load`], of the snapshot decode — its
    /// `load_ns` field). Overwritten by every update.
    pub fn phases(&self) -> &PhaseStats {
        &self.phases
    }

    /// Freezes the current state into an immutable, thread-shareable
    /// [`FrozenAnalysis`] — the publish half of a snapshot-isolated
    /// query service (see [`crate::service::AliasService`]). The cost
    /// is one module clone plus `Arc` reference bumps for the analysis
    /// state and matrices; subsequent edits to the session never touch
    /// a frozen snapshot.
    pub fn freeze(&self) -> FrozenAnalysis {
        FrozenAnalysis {
            module: std::sync::Arc::new(self.module.clone()),
            rbaa: self.rbaa.clone(),
            matrices: self.matrices.clone().into(),
            mode: self.config.query_mode,
            demand: Mutex::new(None),
        }
    }

    /// Like [`crate::BatchAnalysis::alias_with_test`]: answered from
    /// the cached matrix in `O(1)` (or memoised on demand in
    /// [`QueryMode::Demand`]), falling back to the direct computation
    /// for values outside the pointer universe.
    pub fn alias_with_test(
        &self,
        f: FuncId,
        p: ValueId,
        q: ValueId,
    ) -> (AliasResult, Option<WhichTest>) {
        if self.config.query_mode == QueryMode::Demand {
            let mut guard = self.demand.lock().expect("demand cache lock");
            let cache = guard.get_or_insert_with(|| self.rbaa.demand_cache());
            return cache.query(&self.rbaa, f, p, q);
        }
        match self.matrices[f.index()].lookup(p, q) {
            Some(v) => v,
            None => self.rbaa.alias_with_test(f, p, q),
        }
    }

    /// Replaces the body of `f` — sugar for a one-element
    /// [`SessionEdit::Replace`] batch: every mutation funnels through
    /// [`AnalysisSession::apply_edits`], the session's single edit
    /// currency. A body equal to the current one is a no-op: nothing
    /// is dirtied and every cache is carried over (countable via
    /// [`SessionStats::noop_edits`]).
    ///
    /// # Errors
    ///
    /// [`SessionError::Verify`] when the new body (or a caller broken
    /// by a signature change) fails verification; the session is left
    /// unchanged.
    pub fn replace_function(&mut self, f: FuncId, body: Function) -> Result<(), SessionError> {
        self.apply_edits(vec![SessionEdit::Replace { func: f, body }])
            .map(|_| ())
    }

    /// Adds a function — sugar for a one-element [`SessionEdit::Add`]
    /// batch — returning its id.
    ///
    /// # Errors
    ///
    /// [`SessionError::Verify`] when the body fails verification; the
    /// session is left unchanged.
    pub fn add_function(&mut self, body: Function) -> Result<FuncId, SessionError> {
        let added = self.apply_edits(vec![SessionEdit::Add { body }])?;
        Ok(added[0])
    }

    /// Removes function `f` — sugar for a one-element
    /// [`SessionEdit::Remove`] batch, additionally handing back the
    /// removed body. Later functions shift down one id, with every
    /// internal call target remapped (exactly like
    /// [`Module::remove_function`]).
    ///
    /// # Errors
    ///
    /// [`SessionError::Verify`] — carrying the verifier's structured
    /// dangling-call report — when another function still calls `f`;
    /// the session is left unchanged.
    pub fn remove_function(&mut self, f: FuncId) -> Result<Function, SessionError> {
        if f.index() >= self.module.num_functions() {
            return Err(SessionError::NoSuchFunction(f));
        }
        let removed = self.module.function(f).clone();
        self.apply_edits(vec![SessionEdit::Remove { func: f }])?;
        Ok(removed)
    }

    /// The [`SessionEdit::Replace`] fast path: targeted verification
    /// (the new body, plus callers only when the signature changed)
    /// instead of the batch path's whole-module probe clone.
    fn commit_single_replace(&mut self, f: FuncId, body: Function) -> Result<(), SessionError> {
        if f.index() >= self.module.num_functions() {
            return Err(SessionError::NoSuchFunction(f));
        }
        if *self.module.function(f) == body {
            self.stats.edits += 1;
            self.stats.noop_edits += 1;
            self.stats.parts_reused += self.module.num_functions();
            self.stats.matrices_reused += self.module.num_functions();
            self.stats.gr_components_reused += self.components.len();
            return Ok(());
        }
        let signature_changed = self.module.function(f).param_tys() != body.param_tys()
            || self.module.function(f).ret_ty() != body.ret_ty();
        let old = self.module.replace_function(f, body);
        // Verify the new body plus — only when the signature changed —
        // every caller whose call sites could now mismatch. Unrelated
        // functions were valid before and cannot have been affected.
        let mut check = verify_function(self.module.function(f), Some(&self.module));
        if check.is_ok() && signature_changed {
            for caller in self.module.func_ids() {
                if caller != f && self.callgraph.callees(caller).contains(&f) {
                    check = verify_function(self.module.function(caller), Some(&self.module));
                    if check.is_err() {
                        break;
                    }
                }
            }
        }
        if let Err(e) = check {
            self.module.replace_function(f, old);
            return Err(e.into());
        }
        self.callgraph
            .replace_function_edges(f, self.module.function(f));
        self.cfgs[f.index()] = Cfg::new(self.module.function(f));
        self.rebuild(&[f.index()], &[]);
        self.stats.edits += 1;
        Ok(())
    }

    /// The [`SessionEdit::Add`] fast path: verifies just the new body.
    fn commit_single_add(&mut self, body: Function) -> Result<FuncId, SessionError> {
        let f = self.module.add_function(body);
        if let Err(e) = verify_function(self.module.function(f), Some(&self.module)) {
            self.module.remove_function(f);
            return Err(e.into());
        }
        self.callgraph.push_function(self.module.function(f));
        self.cfgs.push(Cfg::new(self.module.function(f)));
        self.rebuild(&[f.index()], &[]);
        self.stats.edits += 1;
        Ok(f)
    }

    /// The [`SessionEdit::Remove`] fast path: the whole-module probe
    /// clone is taken only to surface the structured dangling-call
    /// error, never on success.
    fn commit_single_remove(&mut self, f: FuncId) -> Result<(), SessionError> {
        if f.index() >= self.module.num_functions() {
            return Err(SessionError::NoSuchFunction(f));
        }
        let still_called = self
            .module
            .func_ids()
            .any(|caller| caller != f && self.callgraph.callees(caller).contains(&f));
        if still_called {
            // Surface the verifier's structured error for the dangling
            // call sites the removal would create.
            let mut probe = self.module.clone();
            probe.remove_function(f);
            let err = verify_module(&probe).expect_err("dangling calls fail verification");
            return Err(err.into());
        }
        let gone = f.index();
        self.module.remove_function(f);
        self.callgraph.remove_function(f);
        self.cfgs.remove(gone);
        self.range_parts.remove(gone);
        self.lr_parts.remove(gone);
        if self.config.query_mode == QueryMode::Matrix {
            self.matrices.remove(gone);
        }
        // Shift cached component members into the new id space; the
        // removed function's own component is dropped (its membership
        // changed, so it could never match again anyway).
        self.components.retain_mut(|c| {
            if c.members.iter().any(|m| m.index() == gone) {
                return false;
            }
            for m in &mut c.members {
                if m.index() > gone {
                    *m = FuncId::new(m.index() - 1);
                }
            }
            true
        });
        self.rebuild(&[], &[gone]);
        self.stats.edits += 1;
        Ok(())
    }

    /// Applies a batch of edits **atomically**: either every edit lands
    /// and the analysis is rebuilt once, or the session is left exactly
    /// as it was. This is the session's *only* mutation entry point —
    /// [`AnalysisSession::replace_function`],
    /// [`AnalysisSession::add_function`] and
    /// [`AnalysisSession::remove_function`] are one-element-batch sugar
    /// over it, and a one-element batch takes a targeted-verification
    /// fast path (no whole-module probe clone). All ids in the batch —
    /// replace and remove targets alike — are interpreted in the
    /// session's *pre-batch* id space; added bodies may call each other
    /// (and replaced survivors) at `pre_batch_count + k` for the `k`-th
    /// add. Removals compact ids exactly like
    /// [`Module::remove_functions`]. Returns the *post-batch* ids of
    /// the added functions, in batch order.
    ///
    /// A batch that changes nothing (empty, or replaces whose bodies
    /// equal the current ones) is one no-op edit: nothing is dirtied
    /// and every cache is carried over, observable via
    /// [`SessionStats::noop_edits`].
    ///
    /// Grouped edits can be *individually* invalid but jointly valid —
    /// e.g. a signature change plus the caller rewrites it forces, or a
    /// removal plus edits that drop the last calls to the removed
    /// function — which is exactly why verification runs once against
    /// the would-be final module rather than per edit.
    ///
    /// # Errors
    ///
    /// [`SessionError::NoSuchFunction`] /
    /// [`SessionError::DuplicateTarget`] for malformed batches, and
    /// [`SessionError::Verify`] when the final module fails
    /// verification. The session is unchanged on every error.
    pub fn apply_edits(
        &mut self,
        mut edits: Vec<SessionEdit>,
    ) -> Result<Vec<FuncId>, SessionError> {
        if edits.len() == 1 {
            // A one-element batch can verify exactly what the edit
            // touches; the general path below pays a whole-module probe
            // clone, which at million-instruction scale dominates the
            // edit itself.
            return match edits.pop().expect("length checked") {
                SessionEdit::Replace { func, body } => {
                    self.commit_single_replace(func, body).map(|()| Vec::new())
                }
                SessionEdit::Add { body } => self.commit_single_add(body).map(|f| vec![f]),
                SessionEdit::Remove { func } => {
                    self.commit_single_remove(func).map(|()| Vec::new())
                }
            };
        }
        let nf = self.module.num_functions();
        let mut targeted = vec![false; nf];
        for e in &edits {
            if let SessionEdit::Replace { func, .. } | SessionEdit::Remove { func } = e {
                if func.index() >= nf {
                    return Err(SessionError::NoSuchFunction(*func));
                }
                if targeted[func.index()] {
                    return Err(SessionError::DuplicateTarget(*func));
                }
                targeted[func.index()] = true;
            }
        }
        let mut replaces: Vec<(FuncId, Function)> = Vec::new();
        let mut adds: Vec<Function> = Vec::new();
        let mut removes: Vec<usize> = Vec::new();
        for e in edits {
            match e {
                SessionEdit::Replace { func, body } => {
                    // Identical bodies change nothing; dropping them
                    // here keeps their parts/matrices on the reuse path.
                    if *self.module.function(func) != body {
                        replaces.push((func, body));
                    }
                }
                SessionEdit::Add { body } => adds.push(body),
                SessionEdit::Remove { func } => removes.push(func.index()),
            }
        }
        removes.sort_unstable();
        if replaces.is_empty() && adds.is_empty() && removes.is_empty() {
            self.stats.edits += 1;
            self.stats.noop_edits += 1;
            self.stats.parts_reused += nf;
            self.stats.matrices_reused += nf;
            self.stats.gr_components_reused += self.components.len();
            return Ok(Vec::new());
        }
        // Verify the would-be final module on a scratch clone before
        // touching any cache: replaces, then adds, then the batch
        // removal (which reports calls into removed functions as
        // dangling-callee errors).
        let removed_ids: Vec<FuncId> = removes.iter().map(|&i| FuncId::new(i)).collect();
        {
            let mut probe = self.module.clone();
            for (f, body) in &replaces {
                probe.replace_function(*f, body.clone());
            }
            for body in &adds {
                probe.add_function(body.clone());
            }
            probe.remove_functions(&removed_ids);
            verify_module(&probe)?;
        }
        // Commit. Mirrors the single-edit paths; cannot fail past here.
        let mut edited: Vec<usize> = Vec::new();
        let mut touched: Vec<FuncId> = Vec::new();
        for (f, body) in replaces {
            self.module.replace_function(f, body);
            self.cfgs[f.index()] = Cfg::new(self.module.function(f));
            touched.push(f);
            // Post-batch id: removals below shift later ids down.
            edited.push(f.index() - removes.partition_point(|&r| r < f.index()));
        }
        let num_adds = adds.len();
        for body in adds {
            let f = self.module.add_function(body);
            self.callgraph.push_function(self.module.function(f));
            self.cfgs.push(Cfg::new(self.module.function(f)));
            touched.push(f);
        }
        // Re-derive the out-edges of every touched row only now, when
        // the node count includes all of the batch's additions: a
        // replaced (or earlier-added) body may call a function added
        // later in the same batch, whose id was out of range — and
        // would be silently filtered — at its own commit point.
        for f in touched {
            self.callgraph
                .replace_function_edges(f, self.module.function(f));
        }
        for &gone in removes.iter().rev() {
            let f = FuncId::new(gone);
            self.module.remove_function(f);
            self.callgraph.remove_function(f);
            self.cfgs.remove(gone);
            self.range_parts.remove(gone);
            self.lr_parts.remove(gone);
            if self.config.query_mode == QueryMode::Matrix {
                self.matrices.remove(gone);
            }
            self.components.retain_mut(|c| {
                if c.members.iter().any(|m| m.index() == gone) {
                    return false;
                }
                for m in &mut c.members {
                    if m.index() > gone {
                        *m = FuncId::new(m.index() - 1);
                    }
                }
                true
            });
        }
        // Adds landed at nf..nf+num_adds pre-removal; every removal is
        // below nf, so post-batch they sit at the tail, in order.
        let new_nf = self.module.num_functions();
        let added_ids: Vec<FuncId> = (new_nf - num_adds..new_nf).map(FuncId::new).collect();
        edited.extend(added_ids.iter().map(|f| f.index()));
        edited.sort_unstable();
        self.rebuild(&edited, &removes);
        self.stats.edits += 1;
        Ok(added_ids)
    }

    /// Applies a [`sra_lang::SourceDiff`] — the output of
    /// [`sra_lang::SourceProgram::apply_edit`] — to the session. The
    /// diff's id-space contract matches [`AnalysisSession::apply_edits`]
    /// exactly: replaced/removed ids are pre-edit ids and re-lowered
    /// bodies call additions at `pre_edit_count + k`, so an
    /// [`sra_lang::SourceDiff::Incremental`] maps 1:1 onto a batch. A
    /// [`sra_lang::SourceDiff::Noop`] (whitespace, comments,
    /// reordering, …) takes the no-op fast path — zero re-analysis,
    /// every cache carried over. A
    /// [`sra_lang::SourceDiff::FullRebuild`] (the globals changed)
    /// replaces the whole session state from scratch, counted honestly
    /// as one edit that re-analyzed everything.
    ///
    /// # Errors
    ///
    /// [`SessionError::Verify`] when the diffed module does not verify
    /// against this session's module (e.g. the diff came from a
    /// [`sra_lang::SourceProgram`] that never matched the session);
    /// the session is unchanged on error.
    pub fn apply_source_edit(&mut self, diff: sra_lang::SourceDiff) -> Result<(), SessionError> {
        match diff {
            sra_lang::SourceDiff::Noop => self.apply_edits(Vec::new()).map(|_| ()),
            sra_lang::SourceDiff::Incremental {
                replaced,
                added,
                removed,
                ..
            } => {
                let mut edits: Vec<SessionEdit> =
                    Vec::with_capacity(replaced.len() + added.len() + removed.len());
                edits.extend(
                    replaced
                        .into_iter()
                        .map(|(func, body)| SessionEdit::Replace { func, body }),
                );
                edits.extend(added.into_iter().map(|body| SessionEdit::Add { body }));
                edits.extend(removed.into_iter().map(|func| SessionEdit::Remove { func }));
                self.apply_edits(edits).map(|_| ())
            }
            sra_lang::SourceDiff::FullRebuild { module } => {
                let mut fresh = Self::with_config(module, self.config)?;
                let new_nf = fresh.module.num_functions();
                fresh.stats = self.stats;
                fresh.stats.edits += 1;
                fresh.stats.parts_reanalyzed += new_nf;
                fresh.stats.gr_components_solved += fresh.components.len();
                if fresh.config.query_mode == QueryMode::Matrix {
                    fresh.stats.matrices_rebuilt += new_nf;
                }
                *self = fresh;
                Ok(())
            }
        }
    }

    /// Recomputes the analysis after a structural update. `edited`
    /// holds the current-id indices of replaced/added functions;
    /// `removed` the (sorted, pre-batch) old indices removals vacated
    /// (for the id-shift remaps of cached state).
    fn rebuild(&mut self, edited: &[usize], removed: &[usize]) {
        debug_assert!(removed.windows(2).all(|w| w[0] < w[1]), "sorted, no dups");
        let nf = self.module.num_functions();
        let is_edited = |i: usize| edited.contains(&i);
        // Old-space metadata needed for the rebase/remap maps, captured
        // before any cache is touched. `old_of[i]` translates a current
        // id back into the pre-update id space: the surviving old ids,
        // in order, skipping every removed slot.
        let old_of: Vec<usize> = (0..nf + removed.len())
            .filter(|o| removed.binary_search(o).is_err())
            .collect();
        let old_fid_of = |i: usize| old_of[i];
        // The spans are indexed by OLD function ids: the removals
        // already compacted `range_parts`, so re-open a zero-budget gap
        // at each vacated slot (its exact old budget is gone with the
        // part, but a zero-budget span at the block's old start makes
        // every symbol it minted correctly unmappable). Ascending
        // insertion order keeps earlier gaps' positions stable.
        let mut old_range_spans: Vec<(u32, u32)> = self
            .range_parts
            .iter()
            .map(|p| (p.first_symbol, p.symbol_names.len() as u32))
            .collect();
        for &gone in removed {
            let gap_first = if gone == 0 {
                0
            } else {
                let (first, budget) = old_range_spans[gone - 1];
                first + budget
            };
            old_range_spans.insert(gone, (gap_first, 0));
        }
        let old_locs = self.rbaa.gr().locs();

        // -- 1. Function parts: recompute edited, rebase the rest. ----
        let t_parts = std::time::Instant::now();
        let m = &self.module;
        let config = self.config;
        let recomputed: Vec<(usize, RangePart, LrPart)> = {
            let todo: Vec<usize> = (0..nf).filter(|&i| is_edited(i)).collect();
            let parts = self.pool.run_indexed(todo.len(), |k| {
                let i = todo[k];
                let fid = FuncId::new(i);
                (
                    sra_range::analyze_function_part(m.function(fid), config.range, 0),
                    lr::analyze_function_part(m, fid, 0),
                )
            });
            todo.into_iter()
                .zip(parts)
                .map(|(i, (r, l))| (i, r, l))
                .collect()
        };
        // Splice recomputed parts in (added functions extend the vecs).
        for (i, r, l) in recomputed {
            if i < self.range_parts.len() {
                self.range_parts[i] = r;
                self.lr_parts[i] = l;
            } else {
                debug_assert_eq!(i, self.range_parts.len(), "functions are appended in order");
                self.range_parts.push(r);
                self.lr_parts.push(l);
            }
        }
        // Prefix-sum the new symbol bases and rebase every part that
        // moved — exactly the block assignment `analyze_parallel` uses.
        let mut range_base = 0u32;
        let mut lr_base = 0u32;
        for i in 0..nf {
            let (rp, lp) = (&mut self.range_parts[i], &mut self.lr_parts[i]);
            let moved = rp.first_symbol != range_base || lp.first_symbol != lr_base;
            rp.rebase(range_base);
            lp.rebase(lr_base);
            range_base += rp.symbol_names.len() as u32;
            lr_base += lp.symbol_names.len() as u32;
            if is_edited(i) {
                self.stats.parts_reanalyzed += 1;
            } else {
                self.stats.parts_reused += 1;
                if moved {
                    self.stats.parts_rebased += 1;
                }
            }
        }
        let parts_ns = ns_since(t_parts);
        let t_assemble = std::time::Instant::now();
        let ranges = RangeAnalysis::from_parts_on(self.range_parts.clone(), &self.pool);
        let lr = LrAnalysis::from_parts_on(self.lr_parts.clone(), &self.pool);
        let assemble_ns = ns_since(t_assemble);

        // -- 2. The old→new renaming maps for cached GR states. -------
        let t_gr = std::time::Instant::now();
        let locs = LocTable::build(m);
        let new_range_spans: Vec<(u32, u32)> = self
            .range_parts
            .iter()
            .map(|p| (p.first_symbol, p.symbol_names.len() as u32))
            .collect();
        // Old symbol → owning old function, by binary search over the
        // old block spans (which stay sorted even when a removal left a
        // gap).
        let old_owner = |s: Symbol| -> Option<usize> {
            let i = old_range_spans.partition_point(|&(first, _)| first <= s.index());
            let i = i.checked_sub(1)?;
            let (first, budget) = old_range_spans[i];
            (s.index() < first + budget).then_some(i)
        };
        // A current id for an old function id (None: a removed one).
        let new_fid_of = |old: usize| -> Option<usize> {
            match removed.binary_search(&old) {
                Ok(_) => None,
                Err(k) => Some(old - k),
            }
        };
        let map_symbol = |s: Symbol| -> Option<Symbol> {
            let old = old_owner(s)?;
            let new = new_fid_of(old)?;
            if is_edited(new) {
                // The block was re-minted; old symbols have no
                // guaranteed counterpart.
                return None;
            }
            let (old_first, _) = old_range_spans[old];
            let (new_first, _) = new_range_spans[new];
            Some(Symbol::new(s.index() - old_first + new_first))
        };
        let map_loc = |l: LocId| -> Option<LocId> {
            let site = old_locs.site(l);
            match (site.func, site.value) {
                (None, None) => {
                    // A global: globals are not editable, so the fresh
                    // table assigns them the same leading ids.
                    Some(l)
                }
                (Some(fid), Some(v)) => {
                    let new = new_fid_of(fid.index())?;
                    if is_edited(new) {
                        return None;
                    }
                    locs.loc_of_value(FuncId::new(new), v)
                }
                _ => None,
            }
        };
        // The old GR canonical arena stays alive through the rebuild:
        // clean components' cached states are *imported* out of it into
        // the fresh canonical arena under `map_symbol`/`map_loc`.
        let old_gr_arena = self.rbaa.gr().arena_arc();

        // -- 3. GR: re-solve dirty components, carry over the rest. ---
        let callers = gr::build_callers(m);
        let graph = &self.callgraph;
        let cond = Condensation::build(graph);
        let new_components = graph.weak_components();
        let gr_config = GrConfig {
            threads: config.threads,
            ..config.gr
        };
        let mut solver = GrSolver::new(
            m, &ranges, &locs, gr_config, &callers, &self.cfgs, cond, &self.pool,
        );

        // Pair each new component with a clean cache when membership
        // matches exactly and no member was edited.
        let mut old_caches: Vec<Option<CompCache>> = std::mem::take(&mut self.components)
            .into_iter()
            .map(Some)
            .collect();
        let mut matched: Vec<Option<CompCache>> = new_components
            .iter()
            .map(|members| {
                if members.iter().any(|f| is_edited(f.index())) {
                    return None;
                }
                let slot = old_caches
                    .iter_mut()
                    .find(|c| c.as_ref().is_some_and(|c| &c.members == members))?;
                slot.take()
            })
            .collect();

        // Phase 1: ascend dirty components; clean components contribute
        // their cached cap metadata without any sweeping.
        let schedules = solver.component_schedules(&new_components);
        let mut trip = false;
        let mut max_sweeps = 1u32;
        let mut ascent: Vec<(u32, bool)> = Vec::with_capacity(new_components.len());
        for (k, members) in new_components.iter().enumerate() {
            let (sweeps, tripped) = match &matched[k] {
                Some(cache) => (cache.sweeps, cache.tripped),
                None => {
                    for &f in members {
                        solver.seed_function(f);
                    }
                    solver.ascend_component(&schedules[k])
                }
            };
            trip |= tripped;
            max_sweeps = max_sweeps.max(sweeps);
            ascent.push((sweeps, tripped));
        }

        // Phase 2: finish every component under the shared trip flag.
        // `CLEAN` functions carry their old fixpoint over (imported
        // into the fresh canonical arena below); everything else is
        // read back from the solver.
        const DIRTY: u8 = 0;
        const CLEAN: u8 = 1;
        let mut disposition: Vec<u8> = vec![DIRTY; nf];
        let mut new_caches: Vec<CompCache> = Vec::with_capacity(new_components.len());
        for (k, members) in new_components.iter().enumerate() {
            let (sweeps, tripped) = ascent[k];
            match matched[k].take() {
                Some(cache) if cache.final_trip == trip => {
                    for &f in members {
                        disposition[f.index()] = CLEAN;
                    }
                    self.stats.gr_components_reused += 1;
                    new_caches.push(cache);
                    continue;
                }
                Some(_) => {
                    // The module-wide cap verdict changed: the cached
                    // fixpoint was finished under the other flag, so
                    // re-solve this (rare) component from seeds.
                    for &f in members {
                        solver.seed_function(f);
                    }
                    let redo = solver.ascend_component(&schedules[k]);
                    debug_assert_eq!(redo, (sweeps, tripped), "ascent is context-free");
                    solver.finish_component(&schedules[k], members, trip);
                    self.stats.gr_components_refinished += 1;
                }
                None => {
                    solver.finish_component(&schedules[k], members, trip);
                    self.stats.gr_components_solved += 1;
                }
            }
            new_caches.push(CompCache {
                members: members.clone(),
                sweeps,
                tripped,
                final_trip: trip,
            });
        }
        self.components = new_caches;

        // Assemble the per-function state vectors into one fresh
        // canonical arena, in function order — the exact import a
        // scratch analysis performs, so the assembled ids match scratch
        // id-for-id. Dirty functions import out of the solver arena
        // (identity renaming); clean ones import their cached states
        // out of the *old* canonical arena under the edit's monotone
        // symbol/location renaming — the arena-level replacement for
        // the value-level state rebase.
        let solver_states = std::mem::take(&mut solver.states);
        let solver_arena = std::mem::take(&mut solver.arena);
        drop(solver);
        let mut gr_arena = ExprArena::new();
        let mut dirty_map = ImportMap::default();
        let mut clean_map = TryImportMap::default();
        let rename_clean = |s: Symbol| map_symbol(s);
        let mut solver_states = solver_states.into_iter().map(Some).collect::<Vec<_>>();
        let mut gr_states: Vec<std::sync::Arc<Vec<PtrState>>> = Vec::with_capacity(nf);
        for (i, &dispo) in disposition.iter().enumerate() {
            if dispo == CLEAN {
                let old = self.rbaa.gr().function_states(FuncId::new(old_fid_of(i)));
                gr_states.push(std::sync::Arc::new(
                    old.iter()
                        .map(|s| match s {
                            PtrState::Top => PtrState::Top,
                            PtrState::Map(m) => PtrState::Map(
                                m.iter()
                                    .map(|(l, &r)| {
                                        let loc = map_loc(*l)
                                            .expect("clean components only mention their own ids");
                                        let r = gr_arena
                                            .try_import_range(
                                                &old_gr_arena,
                                                r,
                                                &rename_clean,
                                                &mut clean_map,
                                            )
                                            .expect("clean components only mention their own ids");
                                        (loc, r)
                                    })
                                    .collect(),
                            ),
                        })
                        .collect(),
                ));
            } else {
                let states = solver_states[i].take().expect("dirty slot solved once");
                gr_states.push(std::sync::Arc::new(
                    states
                        .iter()
                        .map(|s| {
                            gr::import_ptr_state(
                                &mut gr_arena,
                                &solver_arena,
                                s,
                                &|s| s,
                                &mut dirty_map,
                            )
                        })
                        .collect(),
                ));
            }
        }

        let gr_ns = ns_since(t_gr);
        let t_matrices = std::time::Instant::now();

        // -- 4. Matrix invalidation: a clean-component function keeps --
        // its matrix outright (verdicts are invariant under the
        // monotone renamings); a dirty-component one keeps it iff its
        // GR states came out unchanged up to the renaming. The
        // comparison walks old and new arena nodes in lockstep
        // (`range_eq_mapped`), materializing nothing; unmappable old
        // symbols land on an out-of-range sentinel that can never
        // compare equal. Demand mode holds no matrices, so there is
        // nothing to invalidate — the demand cache is dropped wholesale
        // below.
        let mut rebuild: Vec<usize> = Vec::new();
        if self.config.query_mode == QueryMode::Matrix {
            let sentinel_symbol = Symbol::new(u32::MAX);
            let cmp_symbol = |s: Symbol| map_symbol(s).unwrap_or(sentinel_symbol);
            let state_eq = |old: &PtrState, new: &PtrState| -> bool {
                match (old, new) {
                    (PtrState::Top, PtrState::Top) => true,
                    (PtrState::Map(a), PtrState::Map(b)) => {
                        a.len() == b.len()
                            && a.iter().zip(b).all(|((la, ra), (lb, rb))| {
                                map_loc(*la) == Some(*lb)
                                    && old_gr_arena.range_eq_mapped(
                                        *ra,
                                        &gr_arena,
                                        *rb,
                                        &cmp_symbol,
                                    )
                            })
                    }
                    _ => false,
                }
            };
            for i in 0..nf {
                if is_edited(i) || i >= self.matrices.len() {
                    rebuild.push(i);
                    continue;
                }
                if disposition[i] != DIRTY {
                    self.stats.matrices_reused += 1;
                    continue;
                }
                let fid = FuncId::new(i);
                let old_fid = FuncId::new(old_fid_of(i));
                let same = self.module.function(fid).value_ids().all(|v| {
                    state_eq(
                        self.rbaa.gr().raw_state(old_fid, v),
                        &gr_states[i][v.index()],
                    )
                });
                if same {
                    self.stats.matrices_reused += 1;
                } else {
                    rebuild.push(i);
                }
            }
        }

        // -- 5. Assemble and rebuild the invalidated matrices. --------
        gr_arena.absorb_op_stats(&solver_arena);
        let gr = GrAnalysis::from_raw(locs, gr_states, std::sync::Arc::new(gr_arena), max_sweeps);
        self.rbaa = RbaaAnalysis::from_pieces(ranges, gr, lr);
        // Any grown demand cache indexes the superseded analysis.
        *self.demand.lock().expect("demand cache lock") = None;
        self.phases = PhaseStats {
            parts_ns,
            assemble_ns,
            gr_ns,
            ..PhaseStats::default()
        };
        if self.config.query_mode == QueryMode::Demand {
            // No matrices in demand mode — queries regrow the cache.
            return;
        }
        let rbaa = &self.rbaa;
        let m = &self.module;
        // One invalidated matrix gets the whole worker budget for its
        // signature triangle (`run_indexed` of one job runs inline, so
        // the pool is free for the tiles); several share the pool
        // function-wise (tiling inside each would oversubscribe it).
        // A full rebuild — construction, or a whole-module edit — runs
        // the module sweep, whose chunks reuse scratch overlays (and
        // their accumulated comparison memos) across functions.
        let single = rebuild.len() == 1;
        let pool = &self.pool;
        let sweep =
            rebuild.len() == m.num_functions() && rebuild.iter().enumerate().all(|(k, &i)| k == i);
        let fresh = if sweep {
            AliasMatrix::build_all_on(rbaa, m, pool)
        } else {
            pool.run_indexed(rebuild.len(), |k| {
                let fid = FuncId::new(rebuild[k]);
                if single {
                    AliasMatrix::build_with_on(rbaa, m, fid, pool)
                } else {
                    AliasMatrix::build(rbaa, m, fid)
                }
            })
        };
        self.stats.matrices_rebuilt += rebuild.len();
        let mut slots: Vec<Option<std::sync::Arc<AliasMatrix>>> =
            std::mem::take(&mut self.matrices)
                .into_iter()
                .map(Some)
                .collect();
        slots.resize_with(nf, || None);
        for (i, mx) in rebuild.into_iter().zip(fresh) {
            slots[i] = Some(std::sync::Arc::new(mx));
        }
        self.matrices = slots
            .into_iter()
            .map(|s| s.expect("every function has a matrix"))
            .collect();
        self.phases.matrices_ns = ns_since(t_matrices);
    }
}

// ---------------------------------------------------------------------
// Warm-start persistence (see [`crate::persist`] for the format).
// ---------------------------------------------------------------------

impl AnalysisSession {
    /// Serializes the complete session — module, per-function parts,
    /// GR fixpoint, component caches, matrices or demand cache, and
    /// counters — as a versioned, checksummed snapshot stream.
    ///
    /// Saves are byte-deterministic: saving the same session twice
    /// produces identical bytes (hash maps are emitted in sorted
    /// order), so snapshots can be content-addressed.
    pub fn save<W: std::io::Write>(&self, w: &mut W) -> Result<(), PersistError> {
        persist::write_header(w, &persist::MAGIC)?;

        let mut enc = persist::Enc::new();
        persist::encode_config(&mut enc, &self.config);
        enc.finish_section(w, persist::tag::CONFIG)?;

        let mut enc = persist::Enc::new();
        persist::encode_module(&mut enc, &self.module, &self.callgraph);
        enc.finish_section(w, persist::tag::MODULE)?;

        // Per-function items are length-framed (format v2) so the
        // loader can split each section into independent slices and
        // decode them on its worker pool.
        let mut enc = persist::Enc::new();
        enc.usize(self.range_parts.len());
        for p in &self.range_parts {
            enc.nested(|e| persist::encode_range_part(e, p));
        }
        enc.finish_section(w, persist::tag::RANGE_PARTS)?;

        let mut enc = persist::Enc::new();
        enc.usize(self.lr_parts.len());
        for p in &self.lr_parts {
            enc.nested(|e| persist::encode_lr_part(e, p));
        }
        enc.finish_section(w, persist::tag::LR_PARTS)?;

        let mut enc = persist::Enc::new();
        let gr = self.rbaa.gr();
        persist::encode_arena(&mut enc, gr.arena());
        enc.u32(gr.ascending_sweeps());
        enc.usize(self.module.num_functions());
        for f in self.module.func_ids() {
            let states = gr.function_states(f);
            enc.nested(|e| {
                e.usize(states.len());
                for st in states.iter() {
                    persist::encode_ptr_state(e, st);
                }
            });
        }
        enc.finish_section(w, persist::tag::GR)?;

        let mut enc = persist::Enc::new();
        enc.usize(self.components.len());
        for c in &self.components {
            enc.usize(c.members.len());
            for &f in &c.members {
                enc.u32(f.index() as u32);
            }
            enc.u32(c.sweeps);
            enc.bool(c.tripped);
            enc.bool(c.final_trip);
        }
        enc.finish_section(w, persist::tag::COMPONENTS)?;

        let mut enc = persist::Enc::new();
        enc.usize(self.matrices.len());
        for mx in &self.matrices {
            enc.nested(|e| mx.encode(e));
        }
        enc.finish_section(w, persist::tag::MATRICES)?;

        let mut enc = persist::Enc::new();
        match &*self.demand.lock().expect("demand cache lock") {
            None => enc.bool(false),
            Some(cache) => {
                enc.bool(true);
                cache.encode(&mut enc);
            }
        }
        enc.finish_section(w, persist::tag::DEMAND)?;

        let mut enc = persist::Enc::new();
        let s = &self.stats;
        for v in [
            s.edits,
            s.noop_edits,
            s.parts_reanalyzed,
            s.parts_reused,
            s.parts_rebased,
            s.gr_components_solved,
            s.gr_components_reused,
            s.gr_components_refinished,
            s.matrices_rebuilt,
            s.matrices_reused,
        ] {
            enc.usize(v);
        }
        enc.finish_section(w, persist::tag::STATS)?;

        persist::write_end(w)
    }

    /// Reconstructs a session from a snapshot stream written by
    /// [`AnalysisSession::save`].
    ///
    /// Every decoded id is validated before it is trusted, the module
    /// is re-verified, the embedded call graph is cross-checked against
    /// a rebuild, and a corrupted, truncated or version-skewed stream
    /// returns a structured [`PersistError`] — never a panic and never
    /// a wrong verdict. Purely memoised state (CFGs, the location
    /// table, demand-cache overlay arenas) is rebuilt rather than
    /// deserialized. If the saved [`AnalysisConfig::load_verify`] knob
    /// is set, the loaded analysis is additionally compared state-by-
    /// state against a scratch re-analysis of the module
    /// ([`PersistError::VerifyFailed`] on any mismatch).
    pub fn load<R: std::io::Read>(r: &mut R) -> Result<Self, PersistError> {
        let t_load = std::time::Instant::now();
        persist::read_header(r, &persist::MAGIC)?;

        let buf = persist::expect_section(r, persist::tag::CONFIG)?;
        let mut dec = persist::Dec::new(&buf);
        let config = persist::decode_config(&mut dec)?;
        dec.finish()?;
        // The session's long-lived pool, spawned as soon as the width
        // is known: the per-function part, GR-state and matrix slices
        // below decode on it, and it is moved into the session at the
        // end.
        let pool = pool::WorkerPool::new(config.threads);

        let buf = persist::expect_section(r, persist::tag::MODULE)?;
        let mut dec = persist::Dec::new(&buf);
        let (module, callgraph) = persist::decode_module(&mut dec)?;
        dec.finish()?;
        let nf = module.num_functions();

        // Splits a section into its per-item slices (format v2 frames
        // every item), so item decodes are independent pool jobs.
        // Validation that chains across items (symbol-base accumulation)
        // stays serial below; errors surface in index order.
        fn slices<'a>(mut dec: persist::Dec<'a>, n: usize) -> Result<Vec<&'a [u8]>, PersistError> {
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(dec.bytes()?);
            }
            dec.finish()?;
            Ok(out)
        }

        let buf = persist::expect_section(r, persist::tag::RANGE_PARTS)?;
        let mut dec = persist::Dec::new(&buf);
        if dec.len(1)? != nf {
            return Err(persist::corrupt(
                "range-part table does not match the module",
            ));
        }
        let chunks = slices(dec, nf)?;
        let decoded = pool.run_indexed(nf, |i| {
            let mut d = persist::Dec::new(chunks[i]);
            let p = persist::decode_range_part(&mut d)?;
            d.finish()?;
            Ok::<_, PersistError>(p)
        });
        let mut range_parts = Vec::with_capacity(nf);
        let mut base = 0u32;
        for (i, p) in decoded.into_iter().enumerate() {
            let p = p?;
            if p.ranges.len() != module.function(FuncId::new(i)).num_values()
                || p.first_symbol != base
            {
                return Err(persist::corrupt("range part does not match its function"));
            }
            base += p.symbol_names.len() as u32;
            range_parts.push(p);
        }

        let buf = persist::expect_section(r, persist::tag::LR_PARTS)?;
        let mut dec = persist::Dec::new(&buf);
        if dec.len(1)? != nf {
            return Err(persist::corrupt("LR-part table does not match the module"));
        }
        let chunks = slices(dec, nf)?;
        let decoded = pool.run_indexed(nf, |i| {
            let func = module.function(FuncId::new(i));
            let mut d = persist::Dec::new(chunks[i]);
            let p = persist::decode_lr_part(
                &mut d,
                func.num_values(),
                func.num_blocks(),
                module.num_globals(),
            )?;
            d.finish()?;
            Ok::<_, PersistError>(p)
        });
        let mut lr_parts = Vec::with_capacity(nf);
        let mut base = 0u32;
        for p in decoded {
            let p = p?;
            if p.first_symbol != base {
                return Err(persist::corrupt("LR part does not match its function"));
            }
            base += p.symbol_names.len() as u32;
            lr_parts.push(p);
        }

        let buf = persist::expect_section(r, persist::tag::GR)?;
        let mut dec = persist::Dec::new(&buf);
        let gr_arena = persist::decode_arena(&mut dec)?;
        let ascending_sweeps = dec.u32()?;
        let locs = LocTable::build(&module);
        if dec.len(8)? != nf {
            return Err(persist::corrupt("GR state table does not match the module"));
        }
        let chunks = slices(dec, nf)?;
        let decoded = pool.run_indexed(nf, |i| {
            let nv = module.function(FuncId::new(i)).num_values();
            let mut d = persist::Dec::new(chunks[i]);
            if d.len(1)? != nv {
                return Err(persist::corrupt("GR states do not match their function"));
            }
            let mut states = Vec::with_capacity(nv);
            for _ in 0..nv {
                states.push(persist::decode_ptr_state(&mut d, locs.len(), &gr_arena)?);
            }
            d.finish()?;
            Ok(std::sync::Arc::new(states))
        });
        let mut gr_states = Vec::with_capacity(nf);
        for states in decoded {
            gr_states.push(states?);
        }
        let gr = GrAnalysis::from_raw(
            locs,
            gr_states,
            std::sync::Arc::new(gr_arena),
            ascending_sweeps,
        );

        let buf = persist::expect_section(r, persist::tag::COMPONENTS)?;
        let mut dec = persist::Dec::new(&buf);
        let n_comps = dec.len(10)?;
        let mut components = Vec::with_capacity(n_comps);
        for _ in 0..n_comps {
            let n_members = dec.len(4)?;
            let mut members = Vec::with_capacity(n_members);
            let mut prev: Option<usize> = None;
            for _ in 0..n_members {
                let f = dec.u32()? as usize;
                if f >= nf || prev.is_some_and(|p| p >= f) {
                    return Err(persist::corrupt("component members are invalid"));
                }
                prev = Some(f);
                members.push(FuncId::new(f));
            }
            components.push(CompCache {
                members,
                sweeps: dec.u32()?,
                tripped: dec.bool()?,
                final_trip: dec.bool()?,
            });
        }
        dec.finish()?;

        let buf = persist::expect_section(r, persist::tag::MATRICES)?;
        let mut dec = persist::Dec::new(&buf);
        let n_matrices = dec.len(8)?;
        let expected = if config.query_mode == QueryMode::Matrix {
            nf
        } else {
            0
        };
        if n_matrices != expected {
            return Err(persist::corrupt(
                "matrix table does not match the query mode",
            ));
        }
        let chunks = slices(dec, n_matrices)?;
        let decoded = pool.run_indexed(n_matrices, |i| {
            let ptrs = crate::query::pointer_values(&module, FuncId::new(i));
            let mut d = persist::Dec::new(chunks[i]);
            let mx = AliasMatrix::decode(&mut d, &ptrs)?;
            d.finish()?;
            Ok::<_, PersistError>(std::sync::Arc::new(mx))
        });
        let mut matrices = Vec::with_capacity(n_matrices);
        for mx in decoded {
            matrices.push(mx?);
        }

        let ranges = RangeAnalysis::from_parts_on(range_parts.clone(), &pool);
        let lr = LrAnalysis::from_parts_on(lr_parts.clone(), &pool);
        let rbaa = RbaaAnalysis::from_pieces(ranges, gr, lr);

        let buf = persist::expect_section(r, persist::tag::DEMAND)?;
        let mut dec = persist::Dec::new(&buf);
        let demand = if dec.bool()? {
            if config.query_mode != QueryMode::Demand {
                return Err(persist::corrupt(
                    "demand cache saved by a matrix-mode session",
                ));
            }
            Some(DemandCache::decode(&mut dec, &rbaa, &module)?)
        } else {
            None
        };
        dec.finish()?;

        let buf = persist::expect_section(r, persist::tag::STATS)?;
        let mut dec = persist::Dec::new(&buf);
        let stats = SessionStats {
            edits: dec.usize()?,
            noop_edits: dec.usize()?,
            parts_reanalyzed: dec.usize()?,
            parts_reused: dec.usize()?,
            parts_rebased: dec.usize()?,
            gr_components_solved: dec.usize()?,
            gr_components_reused: dec.usize()?,
            gr_components_refinished: dec.usize()?,
            matrices_rebuilt: dec.usize()?,
            matrices_reused: dec.usize()?,
        };
        dec.finish()?;

        let buf = persist::expect_section(r, persist::tag::END)?;
        persist::Dec::new(&buf).finish()?;

        let cfgs = gr::build_cfgs(&module);
        let session = AnalysisSession {
            module,
            config,
            range_parts,
            lr_parts,
            cfgs,
            callgraph,
            components,
            rbaa,
            matrices,
            demand: Mutex::new(demand),
            pool,
            phases: PhaseStats {
                load_ns: ns_since(t_load),
                ..PhaseStats::default()
            },
            stats,
        };
        if config.load_verify {
            session.verify_against_scratch()?;
        }
        Ok(session)
    }

    /// Compares the loaded analysis against a scratch
    /// [`analyze_parallel`](crate::analyze_parallel) of the same module
    /// — the cross-arena `eq_mapped` lockstep the incremental rails
    /// use, under the identity symbol renaming (loaded and scratch
    /// analyses assign the same symbol-id blocks by construction).
    ///
    /// [`AnalysisSession::load`] runs this automatically when the
    /// snapshot's [`AnalysisConfig::load_verify`] flag is set; calling
    /// it directly lets a harness time unverified loads and still
    /// prove one of them identical to a scratch re-analysis.
    ///
    /// # Errors
    ///
    /// [`PersistError::VerifyFailed`] naming the first `(function,
    /// value)` whose bootstrap range, GR state or LR state diverges.
    pub fn verify_against_scratch(&self) -> Result<(), PersistError> {
        let scratch = crate::analyze_parallel(&self.module, self.config);
        let ident = |s: Symbol| s;
        let fail = |f: FuncId, v: ValueId, what: &str| {
            Err(PersistError::VerifyFailed(format!(
                "{what} of {f}:{v} differs from scratch re-analysis"
            )))
        };
        for f in self.module.func_ids() {
            for v in self.module.function(f).value_ids() {
                let (a, b) = (self.rbaa.ranges(), scratch.ranges());
                if !a
                    .arena()
                    .range_eq_mapped(a.range(f, v), b.arena(), b.range(f, v), &ident)
                {
                    return fail(f, v, "bootstrap range");
                }
                let same_gr = match (self.rbaa.gr().raw_state(f, v), scratch.gr().raw_state(f, v)) {
                    (PtrState::Top, PtrState::Top) => true,
                    (PtrState::Map(a), PtrState::Map(b)) => {
                        a.len() == b.len()
                            && a.iter().zip(b).all(|((la, ra), (lb, rb))| {
                                la == lb
                                    && self.rbaa.gr().arena().range_eq_mapped(
                                        *ra,
                                        scratch.gr().arena(),
                                        *rb,
                                        &ident,
                                    )
                            })
                    }
                    _ => false,
                };
                if !same_gr {
                    return fail(f, v, "GR state");
                }
                let same_lr = match (self.rbaa.lr().raw_state(f, v), scratch.lr().raw_state(f, v)) {
                    (None, None) => true,
                    (Some(a), Some(b)) => {
                        a.base == b.base
                            && a.block == b.block
                            && a.sigmas == b.sigmas
                            && self.rbaa.lr().arena().range_eq_mapped(
                                a.range,
                                scratch.lr().arena(),
                                b.range,
                                &ident,
                            )
                    }
                    _ => false,
                };
                if !same_lr {
                    return fail(f, v, "LR state");
                }
            }
        }
        Ok(())
    }
}

impl AliasAnalysis for AnalysisSession {
    fn name(&self) -> &'static str {
        "rbaa"
    }

    fn alias(&self, f: FuncId, p: ValueId, q: ValueId) -> AliasResult {
        self.alias_with_test(f, p, q).0
    }
}

impl fmt::Debug for AnalysisSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AnalysisSession")
            .field("functions", &self.module.num_functions())
            .field("components", &self.components.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::BatchAnalysis;
    use crate::query::pointer_values;
    use sra_ir::{Callee, FunctionBuilder, Ty};

    /// The full byte-identity rail: states, symbols, sweeps, verdicts
    /// and per-function statistics all equal a scratch analysis of the
    /// session's current module.
    fn assert_matches_scratch(session: &AnalysisSession) {
        let m = session.module();
        let scratch = crate::analyze_parallel(m, session.config());
        let rbaa = session.analysis();
        assert!(
            rbaa.symbols().iter().eq(scratch.symbols().iter()),
            "symbol tables diverged"
        );
        assert!(
            rbaa.lr().symbols().iter().eq(scratch.lr().symbols().iter()),
            "LR symbol tables diverged"
        );
        assert_eq!(
            rbaa.gr().ascending_sweeps(),
            scratch.gr().ascending_sweeps(),
            "ascending sweep counts diverged"
        );
        for f in m.func_ids() {
            let func = m.function(f);
            for v in func.value_ids() {
                assert_eq!(
                    rbaa.gr().state(f, v),
                    scratch.gr().state(f, v),
                    "GR state diverged at {f} {v}"
                );
                assert_eq!(
                    rbaa.ranges().range(f, v),
                    scratch.ranges().range(f, v),
                    "range diverged at {f} {v}"
                );
                assert_eq!(
                    rbaa.lr().state(f, v),
                    scratch.lr().state(f, v),
                    "LR state diverged at {f} {v}"
                );
            }
        }
        let batch = BatchAnalysis::from_rbaa(scratch, m, 1);
        for f in m.func_ids() {
            let ptrs = pointer_values(m, f);
            for &p in &ptrs {
                for &q in &ptrs {
                    assert_eq!(
                        session.alias_with_test(f, p, q),
                        batch.alias_with_test(f, p, q),
                        "verdict diverged at {f}: {p} vs {q}"
                    );
                }
            }
            assert_eq!(session.stats_of(f), batch.stats(f), "stats diverged at {f}");
        }
    }

    /// `f_i(p) -> ptr {{ q = p + 1; r = f_next(q); ret r }}` chain (the
    /// last returns its formal, or links back to f0 when `ring`), plus
    /// a main calling f0 with a fresh allocation.
    fn chain_module(n: usize, ring: bool) -> Module {
        let mut m = Module::new();
        for i in 0..n {
            m.add_function(chain_body(&format!("f{i}"), i, n, ring, 1));
        }
        let mut b = FunctionBuilder::new("main", &[], None);
        let hundred = b.const_int(100);
        let x = b.malloc(hundred);
        let _ = b.call(Callee::Internal(FuncId::new(0)), &[x], Some(Ty::Ptr));
        b.ret(None);
        m.add_function(b.finish());
        sra_ir::verify::verify_module(&m).expect("chain verifies");
        m
    }

    /// One chain member with a configurable offset (editing the offset
    /// is a "real" single-function edit that changes no call edge).
    fn chain_body(name: &str, i: usize, n: usize, ring: bool, offset: i64) -> Function {
        let mut b = FunctionBuilder::new(name, &[Ty::Ptr], Some(Ty::Ptr));
        let p = b.param(0);
        let off = b.const_int(offset);
        let q = b.ptr_add(p, off);
        if i + 1 < n {
            let r = b.call(Callee::Internal(FuncId::new(i + 1)), &[q], Some(Ty::Ptr));
            b.ret(Some(r));
        } else if ring {
            let r = b.call(Callee::Internal(FuncId::new(0)), &[q], Some(Ty::Ptr));
            b.ret(Some(r));
        } else {
            b.ret(Some(p));
        }
        b.finish()
    }

    #[test]
    fn single_function_edit_matches_scratch_and_reuses_parts() {
        let m = chain_module(4, false);
        let mut session =
            AnalysisSession::with_config(m, DriverConfig::with_threads(2)).expect("verifies");
        assert_matches_scratch(&session);
        // Change f1's offset: call edges unchanged, dataflow changed.
        session
            .replace_function(FuncId::new(1), chain_body("f1", 1, 4, false, 3))
            .expect("valid edit");
        assert_matches_scratch(&session);
        let stats = *session.stats();
        assert_eq!(stats.edits, 1);
        assert_eq!(stats.parts_reanalyzed, 1);
        assert!(
            stats.parts_reused >= 4,
            "the other functions' parts carry over: {stats:?}"
        );
    }

    /// The pre-`AnalysisConfig` constructors stay alive (deprecated
    /// shims) and route to the exact same state as the builder path.
    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_builder_path() {
        let m = chain_module(3, false);
        let via_new = AnalysisSession::new(m.clone()).expect("verifies");
        assert_eq!(via_new.config(), AnalysisConfig::default());

        let driver = DriverConfig::with_threads(2);
        let via_mode =
            AnalysisSession::with_mode(m.clone(), driver, QueryMode::Demand).expect("verifies");
        let config = AnalysisConfig::builder()
            .threads(2)
            .query_mode(QueryMode::Demand)
            .build();
        // `gr.threads` is derived: the driver overrides it with its own
        // thread count at analysis time, so the shim may carry the
        // default while the builder keeps the knobs in lockstep.
        let mut shim_config = via_mode.config();
        shim_config.gr.threads = config.gr.threads;
        assert_eq!(shim_config, config);
        let via_builder = AnalysisSession::with_config(m.clone(), config).expect("verifies");
        for f in m.func_ids() {
            let ptrs = pointer_values(&m, f);
            for &p in &ptrs {
                for &q in &ptrs {
                    assert_eq!(
                        via_mode.alias_with_test(f, p, q),
                        via_builder.alias_with_test(f, p, q),
                        "shim and builder sessions diverged at {f}: {p} vs {q}"
                    );
                }
            }
        }
    }

    #[test]
    fn noop_replace_dirties_nothing() {
        let m = chain_module(3, false);
        let mut session =
            AnalysisSession::with_config(m, AnalysisConfig::default()).expect("verifies");
        let body = session.module().function(FuncId::new(1)).clone();
        session
            .replace_function(FuncId::new(1), body)
            .expect("no-op ok");
        let stats = *session.stats();
        assert_eq!(stats.noop_edits, 1);
        assert_eq!(stats.parts_reanalyzed, 0);
        assert_eq!(stats.matrices_rebuilt, 0);
        assert_eq!(stats.gr_components_solved, 0);
        assert!(stats.parts_reused > 0);
        assert!(stats.matrices_reused > 0);
        assert!(stats.gr_components_reused > 0);
        assert_matches_scratch(&session);
    }

    /// An edit that cuts a mutually recursive ring splits its SCC; the
    /// reverse edit merges two SCCs back into one ring. Both directions
    /// must stay byte-identical to scratch.
    #[test]
    fn edits_that_split_and_merge_sccs_match_scratch() {
        let m = chain_module(3, true);
        let cond = Condensation::of_module(&m);
        assert!(cond.is_recursive(cond.scc_of(FuncId::new(0))));
        let mut session =
            AnalysisSession::with_config(m, AnalysisConfig::default()).expect("verifies");
        assert_matches_scratch(&session);

        // Split: f2 stops calling f0 — the 3-cycle SCC falls apart.
        session
            .replace_function(FuncId::new(2), chain_body("f2", 2, 3, false, 1))
            .expect("valid edit");
        let cond = Condensation::of_module(session.module());
        assert!(!cond.is_recursive(cond.scc_of(FuncId::new(0))));
        assert_eq!(cond.num_sccs(), 4, "chain + main are all singletons");
        assert_matches_scratch(&session);

        // Merge: restore the back edge — the SCCs fuse into one ring.
        session
            .replace_function(FuncId::new(2), chain_body("f2", 2, 3, true, 1))
            .expect("valid edit");
        let cond = Condensation::of_module(session.module());
        assert!(cond.is_recursive(cond.scc_of(FuncId::new(0))));
        assert_eq!(cond.num_sccs(), 2, "ring + main");
        assert_matches_scratch(&session);
    }

    #[test]
    fn add_and_remove_functions_match_scratch() {
        let m = chain_module(3, false);
        let mut session =
            AnalysisSession::with_config(m, AnalysisConfig::default()).expect("verifies");
        // Add an independent leaf.
        let mut b = FunctionBuilder::new("leaf", &[Ty::Int], Some(Ty::Int));
        let n = b.param(0);
        let one = b.const_int(1);
        let n1 = b.binop(sra_ir::BinOp::Add, n, one);
        b.ret(Some(n1));
        let leaf = session.add_function(b.finish()).expect("valid add");
        assert_matches_scratch(&session);

        // Removing a function that is still called is rejected with the
        // verifier's structured error, leaving the session unchanged.
        let before = session.module().clone();
        let err = session.remove_function(FuncId::new(1)).unwrap_err();
        assert!(matches!(err, SessionError::Verify(_)), "{err}");
        assert_eq!(session.module(), &before);
        assert_matches_scratch(&session);

        // Removing the uncalled leaf shifts nothing else out of place.
        session.remove_function(leaf).expect("leaf is uncalled");
        assert_matches_scratch(&session);
        // And the id space is dense again: main moved down by one.
        assert_eq!(
            session.module().function_by_name("main"),
            Some(FuncId::new(3))
        );
    }

    #[test]
    fn invalid_replacement_is_rejected_and_session_unchanged() {
        let m = chain_module(3, false);
        let mut session =
            AnalysisSession::with_config(m, AnalysisConfig::default()).expect("verifies");
        let before = session.module().clone();
        // A body calling f1 with the wrong arity fails verification.
        let mut b = FunctionBuilder::new("f0", &[Ty::Ptr], Some(Ty::Ptr));
        let p = b.param(0);
        let r = b.call(Callee::Internal(FuncId::new(1)), &[p, p], Some(Ty::Ptr));
        b.ret(Some(r));
        let err = session
            .replace_function(FuncId::new(0), b.finish())
            .unwrap_err();
        assert!(matches!(err, SessionError::Verify(_)));
        assert_eq!(session.module(), &before);
        assert_matches_scratch(&session);
        // Out-of-range ids are reported as such.
        let mut b = FunctionBuilder::new("nope", &[], None);
        b.ret(None);
        assert_eq!(
            session.replace_function(FuncId::new(99), b.finish()),
            Err(SessionError::NoSuchFunction(FuncId::new(99)))
        );
    }

    /// A demand-mode session builds no matrices — ever — yet answers
    /// byte-identically to a matrix-mode session through replaces,
    /// adds, removals, and freezes.
    #[test]
    fn demand_mode_matches_matrix_mode_through_edits() {
        let m = chain_module(4, false);
        let config = AnalysisConfig::builder().threads(2).build();
        let demand_config = AnalysisConfig {
            query_mode: QueryMode::Demand,
            ..config
        };
        let mut demand = AnalysisSession::with_config(m.clone(), demand_config).expect("verifies");
        let mut matrix = AnalysisSession::with_config(m, config).expect("verifies");
        assert_eq!(demand.query_mode(), QueryMode::Demand);
        assert_eq!(matrix.query_mode(), QueryMode::Matrix);

        let check = |d: &AnalysisSession, mx: &AnalysisSession| {
            let m = d.module();
            let frozen = d.freeze();
            assert_eq!(frozen.query_mode(), QueryMode::Demand);
            for f in m.func_ids() {
                let ptrs = pointer_values(m, f);
                for &p in &ptrs {
                    for &q in &ptrs {
                        let want = mx.alias_with_test(f, p, q);
                        assert_eq!(d.alias_with_test(f, p, q), want, "session at {f}");
                        assert_eq!(frozen.alias_with_test(f, p, q), want, "frozen at {f}");
                    }
                }
            }
        };
        check(&demand, &matrix);

        // A real edit, applied to both.
        let body = || chain_body("f1", 1, 4, false, 5);
        demand
            .replace_function(FuncId::new(1), body())
            .expect("edit");
        matrix
            .replace_function(FuncId::new(1), body())
            .expect("edit");
        check(&demand, &matrix);

        // Add then remove a leaf (the removal path must not expect a
        // matrix slot to vacate).
        let leaf_body = || {
            let mut b = FunctionBuilder::new("leaf", &[], None);
            let eight = b.const_int(8);
            let _ = b.malloc(eight);
            b.ret(None);
            b.finish()
        };
        let d_leaf = demand.add_function(leaf_body()).expect("add");
        let m_leaf = matrix.add_function(leaf_body()).expect("add");
        assert_eq!(d_leaf, m_leaf);
        check(&demand, &matrix);
        demand.remove_function(d_leaf).expect("remove");
        matrix.remove_function(m_leaf).expect("remove");
        check(&demand, &matrix);

        // The whole point: demand mode never built a matrix, and the
        // queries above were answered by a memoising cache.
        assert_eq!(demand.stats().matrices_rebuilt, 0, "{:?}", demand.stats());
        let dstats = demand.demand_stats().expect("cache was exercised");
        assert!(dstats.queries > 0);
        assert!(matrix.stats().matrices_rebuilt > 0);
        assert_eq!(matrix.demand_stats(), None);
        // Clones start with a cold cache but the same verdicts.
        let fork = demand.clone();
        assert_eq!(fork.demand_stats(), None);
        check(&fork, &matrix);
    }

    /// The one module-wide coupling between components is the ascending
    /// cap: editing a capped recursive ring so it converges flips the
    /// trip flag for *every* component, and an untouched independent
    /// component must re-run its post phase from cached pre-force
    /// states (the `gr_components_refinished` path) — and still match
    /// scratch exactly.
    #[test]
    fn cap_trip_flip_refinishes_clean_components() {
        let mut m = Module::new();
        // Component A: a 2-ring whose churn grows without bound, fed a
        // fresh allocation by a caller in the same component.
        m.add_function(chain_body("f0", 0, 2, true, 1));
        m.add_function(chain_body("f1", 1, 2, true, 1));
        let mut b = FunctionBuilder::new("main_a", &[], None);
        let sz = b.const_int(64);
        let buf = b.malloc(sz);
        let _ = b.call(Callee::Internal(FuncId::new(0)), &[buf], Some(Ty::Ptr));
        b.ret(None);
        m.add_function(b.finish());
        // Component B: an independent function with a pointer loop (its
        // φ is a join point the cap forcing would send to ⊤).
        let mut b = FunctionBuilder::new("g", &[], None);
        let sz = b.const_int(8);
        let buf = b.malloc(sz);
        let head = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        let one = b.const_int(1);
        let end = b.ptr_add(buf, one);
        let entry = b.current_block();
        b.jump(head);
        b.switch_to(head);
        let p = b.phi(Ty::Ptr, &[(entry, buf)]);
        let c = b.cmp(sra_ir::CmpOp::Lt, p, end);
        b.br(c, body, exit);
        b.switch_to(body);
        let pn = b.ptr_add(p, one);
        b.add_phi_arg(p, body, pn);
        b.jump(head);
        b.switch_to(exit);
        b.ret(None);
        let mut g = b.finish();
        sra_ir::essa::run(&mut g);
        m.add_function(g);
        sra_ir::verify::verify_module(&m).expect("verifies");

        // Widening off + a small cap: the ring's unbounded churn trips
        // it (so scratch forces g's φ to ⊤ too), while the *cut* chain
        // of the later edit converges well within it.
        let config = DriverConfig {
            threads: 1,
            gr: GrConfig {
                widening: false,
                max_ascending_sweeps: 8,
                ..GrConfig::default()
            },
            ..DriverConfig::with_threads(1)
        };
        let mut session = AnalysisSession::with_config(m, config).expect("verifies");
        assert_matches_scratch(&session);

        // Cut the ring: nothing trips any more; g (untouched) must drop
        // its forced-⊤ fixpoint and re-finish from its pre states.
        session
            .replace_function(FuncId::new(1), chain_body("f1", 1, 2, false, 1))
            .expect("valid edit");
        assert_matches_scratch(&session);
        assert!(
            session.stats().gr_components_refinished >= 1,
            "the clean component re-ran its post phase: {:?}",
            session.stats()
        );

        // Restore the ring: the flag flips back.
        session
            .replace_function(FuncId::new(1), chain_body("f1", 1, 2, true, 1))
            .expect("valid edit");
        assert_matches_scratch(&session);
    }

    /// A batch whose edits are individually invalid (removing functions
    /// that are still called) but jointly valid lands atomically as one
    /// edit — including a multi-removal id compaction — and stays
    /// byte-identical to scratch.
    #[test]
    fn batched_edits_apply_atomically_and_match_scratch() {
        let m = chain_module(5, false); // f0..f4 + main
        let mut session =
            AnalysisSession::with_config(m, AnalysisConfig::default()).expect("verifies");
        let err = session.remove_function(FuncId::new(3)).unwrap_err();
        assert!(matches!(err, SessionError::Verify(_)), "{err}");
        let mut b = FunctionBuilder::new("leaf", &[], Some(Ty::Int));
        let z = b.const_int(0);
        b.ret(Some(z));
        let added = session
            .apply_edits(vec![
                SessionEdit::Replace {
                    func: FuncId::new(2),
                    body: chain_body("f2", 2, 3, false, 1),
                },
                SessionEdit::Add { body: b.finish() },
                SessionEdit::Remove {
                    func: FuncId::new(3),
                },
                SessionEdit::Remove {
                    func: FuncId::new(4),
                },
            ])
            .expect("jointly valid");
        // 6 pre-batch functions − 2 removed + 1 added = 5, add at the
        // tail, survivors compacted in order.
        assert_eq!(session.module().num_functions(), 5);
        assert_eq!(added, vec![FuncId::new(4)]);
        assert_eq!(
            session.module().function_by_name("leaf"),
            Some(FuncId::new(4))
        );
        assert_eq!(
            session.module().function_by_name("main"),
            Some(FuncId::new(3))
        );
        assert_eq!(session.stats().edits, 1);
        assert_matches_scratch(&session);
    }

    #[test]
    fn batched_signature_change_rewrites_callers_atomically() {
        let m = chain_module(3, false);
        let mut session =
            AnalysisSession::with_config(m, AnalysisConfig::default()).expect("verifies");
        let f1_wide = || {
            let mut b = FunctionBuilder::new("f1", &[Ty::Ptr, Ty::Int], Some(Ty::Ptr));
            let p = b.param(0);
            let n = b.param(1);
            let q = b.ptr_add(p, n);
            let r = b.call(Callee::Internal(FuncId::new(2)), &[q], Some(Ty::Ptr));
            b.ret(Some(r));
            b.finish()
        };
        // Alone, the signature change breaks f0's call site.
        let err = session
            .replace_function(FuncId::new(1), f1_wide())
            .unwrap_err();
        assert!(matches!(err, SessionError::Verify(_)), "{err}");
        // Paired with f0's rewrite it lands atomically.
        let mut b = FunctionBuilder::new("f0", &[Ty::Ptr], Some(Ty::Ptr));
        let p = b.param(0);
        let two = b.const_int(2);
        let q = b.ptr_add(p, two);
        let r = b.call(Callee::Internal(FuncId::new(1)), &[q, two], Some(Ty::Ptr));
        b.ret(Some(r));
        session
            .apply_edits(vec![
                SessionEdit::Replace {
                    func: FuncId::new(1),
                    body: f1_wide(),
                },
                SessionEdit::Replace {
                    func: FuncId::new(0),
                    body: b.finish(),
                },
            ])
            .expect("jointly valid");
        assert_eq!(session.stats().edits, 1);
        assert_eq!(session.stats().parts_reanalyzed, 2);
        assert_matches_scratch(&session);
    }

    #[test]
    fn empty_and_identical_batches_take_the_noop_path() {
        let m = chain_module(3, false);
        let mut session =
            AnalysisSession::with_config(m, AnalysisConfig::default()).expect("verifies");
        session.apply_edits(Vec::new()).expect("empty batch");
        let body = session.module().function(FuncId::new(1)).clone();
        session
            .apply_edits(vec![SessionEdit::Replace {
                func: FuncId::new(1),
                body,
            }])
            .expect("identical body");
        let stats = *session.stats();
        assert_eq!(stats.edits, 2);
        assert_eq!(stats.noop_edits, 2);
        assert_eq!(stats.parts_reanalyzed, 0);
        assert_eq!(stats.matrices_rebuilt, 0);
        assert_eq!(stats.gr_components_solved, 0);
        assert_matches_scratch(&session);
    }

    #[test]
    fn invalid_batches_are_rejected_whole() {
        let m = chain_module(3, false);
        let mut session =
            AnalysisSession::with_config(m, AnalysisConfig::default()).expect("verifies");
        let before = session.module().clone();
        let body = chain_body("f1", 1, 3, false, 2);
        // Same function targeted twice.
        let err = session
            .apply_edits(vec![
                SessionEdit::Replace {
                    func: FuncId::new(1),
                    body: body.clone(),
                },
                SessionEdit::Remove {
                    func: FuncId::new(1),
                },
            ])
            .unwrap_err();
        assert_eq!(err, SessionError::DuplicateTarget(FuncId::new(1)));
        // Out-of-range target.
        let err = session
            .apply_edits(vec![SessionEdit::Remove {
                func: FuncId::new(9),
            }])
            .unwrap_err();
        assert_eq!(err, SessionError::NoSuchFunction(FuncId::new(9)));
        // A verify failure anywhere voids the whole batch — including
        // the valid replace submitted alongside it.
        let err = session
            .apply_edits(vec![
                SessionEdit::Replace {
                    func: FuncId::new(0),
                    body: chain_body("f0", 0, 3, false, 7),
                },
                SessionEdit::Remove {
                    func: FuncId::new(2), // still called by f1
                },
            ])
            .unwrap_err();
        assert!(matches!(err, SessionError::Verify(_)), "{err}");
        assert_eq!(session.module(), &before);
        assert_eq!(session.stats().edits, 0);
        assert_matches_scratch(&session);
    }

    /// The full frontend→session path: textual edits diffed by
    /// [`sra_lang::SourceProgram`] flow through
    /// [`AnalysisSession::apply_source_edit`], keeping the session's
    /// module in lockstep with the program's and its analysis
    /// byte-identical to scratch.
    #[test]
    fn apply_source_edit_keeps_session_in_lockstep_with_the_program() {
        let base = "int tab[4];\n\
             int helper(ptr p, int n) { int i; i = 0; while (i < n) { p[i] = i; i = i + 1; } return i; }\n\
             export int main() { ptr a; a = malloc(8); int k; k = helper(a, 8); return k; }\n";
        let mut program = sra_lang::SourceProgram::new(base).expect("compiles");
        let mut session =
            AnalysisSession::with_config(program.module().clone(), AnalysisConfig::default())
                .expect("verifies");

        // A body tweak flows through as one incremental replace.
        let edited = base.replace("p[i] = i;", "p[i] = i + 1;");
        let diff = program.apply_edit(&edited).expect("compiles");
        session.apply_source_edit(diff).expect("applies");
        assert_eq!(session.module(), program.module());
        assert_matches_scratch(&session);
        assert_eq!(session.stats().edits, 1);
        assert_eq!(session.stats().parts_reanalyzed, 1);

        // A comment-only edit is a no-op: zero re-analysis.
        let commented = format!("// tweak\n{edited}");
        let diff = program.apply_edit(&commented).expect("compiles");
        session.apply_source_edit(diff).expect("applies");
        assert_eq!(session.stats().noop_edits, 1);
        assert_eq!(session.stats().parts_reanalyzed, 1);

        // Changing a global forces a (counted) full rebuild.
        let regrown = commented.replace("int tab[4];", "int tab[9];");
        let diff = program.apply_edit(&regrown).expect("compiles");
        assert!(matches!(diff, sra_lang::SourceDiff::FullRebuild { .. }));
        session.apply_source_edit(diff).expect("applies");
        assert_eq!(session.module(), program.module());
        assert_matches_scratch(&session);
        assert_eq!(session.stats().edits, 3);
        assert_eq!(
            session.stats().parts_reanalyzed,
            1 + session.module().num_functions()
        );
    }

    /// Snapshot roundtrip in matrix mode: save → load reproduces the
    /// module, config, verdicts, counters — and re-saving the loaded
    /// session reproduces the exact bytes (saves are deterministic).
    /// `load_verify` is on, so the load also proves state-identity
    /// against a scratch re-analysis.
    #[test]
    fn persist_roundtrip_matrix_mode() {
        let config = AnalysisConfig::builder()
            .threads(1)
            .load_verify(true)
            .build();
        let mut session =
            AnalysisSession::with_config(chain_module(4, false), config).expect("verifies");
        // Exercise the incremental path so caches are warm and stats
        // are non-trivial.
        session
            .replace_function(FuncId::new(1), chain_body("f1", 1, 4, false, 3))
            .expect("applies");

        let mut bytes = Vec::new();
        session.save(&mut bytes).expect("saves");
        let loaded = AnalysisSession::load(&mut bytes.as_slice()).expect("loads");

        assert_eq!(loaded.module(), session.module());
        assert_eq!(loaded.config(), session.config());
        assert_eq!(loaded.stats(), session.stats());
        assert_matches_scratch(&loaded);
        let m = session.module();
        for f in m.func_ids() {
            let ptrs = pointer_values(m, f);
            for &p in &ptrs {
                for &q in &ptrs {
                    assert_eq!(
                        loaded.alias_with_test(f, p, q),
                        session.alias_with_test(f, p, q),
                        "verdict diverged at {f}: {p} vs {q}"
                    );
                }
            }
        }

        let mut again = Vec::new();
        loaded.save(&mut again).expect("saves");
        assert_eq!(again, bytes, "save is not byte-deterministic");
    }

    /// Snapshot roundtrip in demand mode with a grown demand cache:
    /// the memoised signatures and pair verdicts survive the trip.
    #[test]
    fn persist_roundtrip_demand_mode() {
        let config = AnalysisConfig::builder()
            .threads(1)
            .query_mode(QueryMode::Demand)
            .load_verify(true)
            .build();
        let session =
            AnalysisSession::with_config(chain_module(3, true), config).expect("verifies");
        let m = session.module().clone();
        // Grow the demand cache with a query stream.
        for f in m.func_ids() {
            let ptrs = pointer_values(&m, f);
            for &p in &ptrs {
                for &q in &ptrs {
                    session.alias_with_test(f, p, q);
                }
            }
        }
        let before = session.demand_stats().expect("cache grown");

        let mut bytes = Vec::new();
        session.save(&mut bytes).expect("saves");
        let loaded = AnalysisSession::load(&mut bytes.as_slice()).expect("loads");

        assert_eq!(loaded.demand_stats(), Some(before), "demand counters lost");
        // Re-save before issuing queries — queries grow the demand
        // counters, which are part of the snapshot.
        let mut again = Vec::new();
        loaded.save(&mut again).expect("saves");
        assert_eq!(again, bytes, "save is not byte-deterministic");

        for f in m.func_ids() {
            let ptrs = pointer_values(&m, f);
            for &p in &ptrs {
                for &q in &ptrs {
                    assert_eq!(
                        loaded.alias_with_test(f, p, q),
                        session.alias_with_test(f, p, q),
                        "verdict diverged at {f}: {p} vs {q}"
                    );
                }
            }
        }
    }

    /// Damaged streams fail structurally, never panic: every
    /// single-byte corruption and every truncation of a real snapshot
    /// is rejected with a [`PersistError`].
    #[test]
    fn persist_rejects_damage() {
        let config = AnalysisConfig::builder().threads(1).build();
        let session =
            AnalysisSession::with_config(chain_module(2, false), config).expect("verifies");
        let mut bytes = Vec::new();
        session.save(&mut bytes).expect("saves");

        for cut in 0..bytes.len() {
            assert!(
                AnalysisSession::load(&mut &bytes[..cut]).is_err(),
                "truncation at {cut} slipped through"
            );
        }
        // Flip one bit in a sample of positions (the full sweep runs in
        // the dedicated roundtrip rail).
        for pos in (0..bytes.len()).step_by(7) {
            let mut dmg = bytes.clone();
            dmg[pos] ^= 0x10;
            if dmg == bytes {
                continue;
            }
            assert!(
                AnalysisSession::load(&mut dmg.as_slice()).is_err(),
                "bit flip at {pos} slipped through"
            );
        }
    }
}
