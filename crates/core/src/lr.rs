//! The local pointer range analysis `LR` (paper §3.6).
//!
//! The local analysis renames pointers at every φ-function and load: it
//! binds each pointer to `(base, range)` where `base` is either a fresh
//! location (`NewLocs()` in Figure 11) or a global, and `range` tracks
//! the offset accumulated by pointer arithmetic from that base. Because
//! fresh locations break the imprecision that φ joins introduce in the
//! global analysis, two offsets from a common renamed base — like
//! `newp[0]` and `newp[1]` in the paper's Figure 4 — are disambiguated
//! even when their global ranges overlap.
//!
//! **Offset valuation.** The paper's local test renames "every pointer
//! alive at the beginning of a single entry region" so that, *within one
//! instance of the region*, offsets are relative to a fixed base
//! (Figure 4 rewrites `p[i]`/`p[i+1]` into `newp[0]`/`newp[1]`). We
//! obtain the same effect without rewriting the program: integer values
//! are evaluated to exact symbolic *singletons*, with loop-φs, loads,
//! parameters and call results bound to fresh symbols. Two offsets from
//! a common base then compare as expressions over the same region
//! instance: `[i, i]` and `[i+1, i+1]` are provably disjoint. This is
//! the "same moment during execution" semantics the paper assigns to
//! local disambiguation (§4).
//!
//! The analysis is a single pass over the dominance-tree pre-order
//! (instructions are "evaluated abstractly in the order given by the
//! program's dominance tree", §3.6); the underlying lattice is finite so
//! no widening is needed. Offsets are interned [`ExprId`]s/[`RangeId`]s
//! in a per-part [`ExprArena`] — the σ-set-carrying [`LrState`] is ids
//! all the way down, and [`LrAnalysis::from_parts`] imports the part
//! arenas into one module arena exactly like the bootstrap ranges.

use sra_ir::cfg::Cfg;
use sra_ir::dom::DomTree;
use sra_ir::{BinOp, FuncId, GlobalId, Inst, Module, Ty, ValueId, ValueKind};
use sra_symbolic::pool::WorkerPool;
use sra_symbolic::{
    ExprArena, ExprId, ImportMap, OverlayPart, RangeId, Symbol, SymbolNames, SymbolTable,
};

use std::fmt;
use std::sync::Arc;

/// The base a pointer is locally an offset of.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LocalBase {
    /// A fresh location minted by `NewLocs()` — one per allocation,
    /// φ-function, load, call or parameter.
    Fresh(u32),
    /// The address of a module global (syntactically identifiable, so
    /// two occurrences share the base).
    Global(GlobalId),
}

impl fmt::Display for LocalBase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LocalBase::Fresh(i) => write!(f, "new{}", i),
            LocalBase::Global(g) => write!(f, "{}", g),
        }
    }
}

/// The local abstract state of one pointer: `LR(p) = base + range`,
/// with the offset range interned in the owning analysis' arena.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LrState {
    /// The local base.
    pub base: LocalBase,
    /// Offset range from the base (a handle into the analysis' arena).
    pub range: RangeId,
    /// The σ-nodes the pointer's derivation traversed — through the
    /// base *and* through the integer offset expressions — as a sorted
    /// set. Two states speak about the same dynamic instance of their
    /// symbols — the precondition of the paper's "same moment" local
    /// test — only when these sets are identical: the σ on a loop's
    /// back-edge and the σ on its exit edge re-read the φ at
    /// *different* instants, so offsets taken through them must not be
    /// compared (\[0,0\] from the exit σ and \[1,1\] from the body σ can
    /// both be `base+1` concretely when the loop runs once).
    pub sigmas: Vec<ValueId>,
    /// Block of the defining instruction (`None` for parameters and
    /// global addresses). The local test additionally requires a
    /// common block: within one execution of a block every value is
    /// defined exactly once, so the k-th definitions of two pointers
    /// in it belong to the same activation — the alignment that makes
    /// range disjointness meaningful. Pointers in different blocks
    /// (e.g. a loop body and its exit) are defined different numbers
    /// of times and their aligned definitions may mix iterations.
    pub block: Option<sra_ir::BlockId>,
}

/// An [`LrState`] bundled with its arena — what [`LrAnalysis::state`]
/// hands out. Equality is structural across arenas (the byte-identity
/// rails compare states of independently built analyses).
#[derive(Clone, Copy)]
pub struct LrStateRef<'a> {
    state: &'a LrState,
    arena: &'a ExprArena,
}

impl<'a> LrStateRef<'a> {
    /// Bundles a state with its arena.
    pub fn new(state: &'a LrState, arena: &'a ExprArena) -> Self {
        LrStateRef { state, arena }
    }

    /// The underlying state.
    pub fn state(&self) -> &'a LrState {
        self.state
    }

    /// The arena the state's range handle points into.
    pub fn arena(&self) -> &'a ExprArena {
        self.arena
    }

    /// The local base.
    pub fn base(&self) -> LocalBase {
        self.state.base
    }

    /// The interned offset range.
    pub fn range(&self) -> RangeId {
        self.state.range
    }

    /// The σ-set of the derivation.
    pub fn sigmas(&self) -> &'a [ValueId] {
        &self.state.sigmas
    }

    /// Block of the defining instruction.
    pub fn block(&self) -> Option<sra_ir::BlockId> {
        self.state.block
    }

    /// Renders as `new3 + [i, i]`.
    pub fn display(&self, names: &'a dyn SymbolNames) -> impl fmt::Display + 'a {
        DisplayLr {
            state: self.state,
            arena: self.arena,
            names,
        }
    }
}

impl PartialEq for LrStateRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.state.base == other.state.base
            && self.state.sigmas == other.state.sigmas
            && self.state.block == other.state.block
            && self
                .arena
                .range_structural_eq(self.state.range, other.arena, other.state.range)
    }
}

impl Eq for LrStateRef<'_> {}

impl fmt::Debug for LrStateRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        struct NoNames;
        impl SymbolNames for NoNames {
            fn symbol_name(&self, _s: Symbol) -> Option<&str> {
                None
            }
        }
        write!(
            f,
            "{} (σ: {:?}, block: {:?})",
            self.display(&NoNames),
            self.state.sigmas,
            self.state.block
        )
    }
}

struct DisplayLr<'a> {
    state: &'a LrState,
    arena: &'a ExprArena,
    names: &'a dyn SymbolNames,
}

impl fmt::Display for DisplayLr<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} + {}",
            self.state.base,
            self.arena.display_range(self.state.range, self.names)
        )
    }
}

/// The per-function output of the local analysis: the states (ranges
/// interned in the part's own arena) plus the offset-symbol names
/// minted, in minting order. See [`sra_range::RangePart`] for the role
/// parts play in the batch driver.
#[derive(Debug, Clone)]
pub struct LrPart {
    /// The part's private arena (shared by reference with an
    /// incremental session's cache).
    pub arena: Arc<ExprArena>,
    /// `LR(v)` for every value of the function.
    pub states: Arc<Vec<Option<LrState>>>,
    /// The `first_symbol` this part was analyzed with.
    pub first_symbol: u32,
    /// Names of the symbols minted, starting at `first_symbol`.
    pub symbol_names: Vec<String>,
}

impl LrPart {
    /// Rebases the part onto a new `first_symbol` (see
    /// [`sra_range::RangePart::rebase`] — same contract: an LR part
    /// mentions only its own symbol block, and the arena import under
    /// the monotone shift reproduces exactly what
    /// [`analyze_function_part`] would have minted at the new base).
    pub fn rebase(&mut self, new_first: u32) {
        if new_first == self.first_symbol {
            return;
        }
        let old = self.first_symbol;
        let budget = self.symbol_names.len() as u32;
        let rename = |s: Symbol| {
            debug_assert!(
                s.index() >= old && (s.index() - old) < budget,
                "LR parts only mention their own symbol block"
            );
            Symbol::new(s.index() - old + new_first)
        };
        let mut dst = ExprArena::new();
        let mut map = ImportMap::default();
        let states = self
            .states
            .iter()
            .map(|slot| {
                slot.as_ref().map(|s| LrState {
                    base: s.base,
                    range: dst.import_range(&self.arena, s.range, &rename, &mut map),
                    sigmas: s.sigmas.clone(),
                    block: s.block,
                })
            })
            .collect();
        self.arena = Arc::new(dst);
        self.states = Arc::new(states);
        self.first_symbol = new_first;
    }
}

/// The number of offset symbols [`analyze_function_part`] will mint for
/// `fid`: one per integer parameter plus one per *reachable* integer
/// φ/load/call/comparison. The analysis walks the dominance tree, but a
/// count only needs reachability, so this pre-scan stops at the CFG's
/// reverse post-order (same block set, no dominator computation).
pub fn symbol_budget(m: &Module, fid: FuncId) -> usize {
    let f = m.function(fid);
    let params = f
        .value_ids()
        .filter(|&v| {
            matches!(f.value(v).kind(), ValueKind::Param { .. }) && f.value(v).ty() == Some(Ty::Int)
        })
        .count();
    let cfg = Cfg::new(f);
    let mut insts = 0;
    for &b in cfg.rpo() {
        for &v in f.block(b).insts() {
            if f.value(v).ty() != Some(Ty::Int) {
                continue;
            }
            if matches!(
                f.value(v).as_inst(),
                Some(Inst::Phi { .. })
                    | Some(Inst::Load { .. })
                    | Some(Inst::Call { .. })
                    | Some(Inst::Cmp { .. })
            ) {
                insts += 1;
            }
        }
    }
    params + insts
}

/// Results of the local analysis: `LR(p)` for every pointer `p`, with
/// every offset range interned in one module arena.
#[derive(Debug, Clone)]
pub struct LrAnalysis {
    states: Vec<Vec<Option<LrState>>>,
    symbols: SymbolTable,
    arena: Arc<ExprArena>,
}

impl LrAnalysis {
    /// Runs the local analysis over every function of `m`.
    pub fn analyze(m: &Module) -> Self {
        let mut parts = Vec::with_capacity(m.num_functions());
        let mut base = 0u32;
        for fid in m.func_ids() {
            let part = analyze_function_part(m, fid, base);
            base += part.symbol_names.len() as u32;
            parts.push(part);
        }
        Self::from_parts(parts)
    }

    /// Reassembles a whole-module result from per-function parts in
    /// function order, importing every part arena into one module
    /// arena; see [`sra_range::RangeAnalysis::from_parts`] — the same
    /// structure-driven import makes the module arena (and every id)
    /// canonical in the analyzed states.
    ///
    /// # Panics
    ///
    /// Panics when the parts' symbol bases do not line up.
    pub fn from_parts(parts: Vec<LrPart>) -> Self {
        let mut symbols = SymbolTable::new();
        let mut arena = ExprArena::new();
        let mut states = Vec::with_capacity(parts.len());
        for part in parts {
            assert_eq!(
                part.first_symbol as usize,
                symbols.len(),
                "LR parts assembled out of order or with wrong bases"
            );
            for name in &part.symbol_names {
                symbols.fresh(name);
            }
            let mut map = ImportMap::default();
            let func_states = part
                .states
                .iter()
                .map(|slot| {
                    slot.as_ref().map(|s| LrState {
                        base: s.base,
                        range: arena.import_range(&part.arena, s.range, &|s| s, &mut map),
                        sigmas: s.sigmas.clone(),
                        block: s.block,
                    })
                })
                .collect();
            arena.absorb_op_stats(&part.arena);
            states.push(func_states);
        }
        LrAnalysis {
            states,
            symbols,
            arena: Arc::new(arena),
        }
    }

    /// [`LrAnalysis::from_parts`] with the per-part imports fanned out
    /// on `pool` — same fixed-order overlay merge as
    /// [`sra_range::RangeAnalysis::from_parts_on`], and byte-identical
    /// to the serial walk for the same reason. A width-1 pool takes the
    /// serial path directly.
    pub fn from_parts_on(parts: Vec<LrPart>, pool: &WorkerPool) -> Self {
        if pool.threads() == 1 || parts.len() <= 1 {
            return Self::from_parts(parts);
        }
        let mut symbols = SymbolTable::new();
        for part in &parts {
            assert_eq!(
                part.first_symbol as usize,
                symbols.len(),
                "LR parts assembled out of order or with wrong bases"
            );
            for name in &part.symbol_names {
                symbols.fresh(name);
            }
        }
        let empty = Arc::new(ExprArena::new());
        let imported: Vec<(Vec<Option<LrState>>, OverlayPart)> =
            pool.run_indexed(parts.len(), |i| {
                let part = &parts[i];
                let mut overlay = ExprArena::with_base(Arc::clone(&empty));
                let mut map = ImportMap::default();
                let func_states = part
                    .states
                    .iter()
                    .map(|slot| {
                        slot.as_ref().map(|s| LrState {
                            base: s.base,
                            range: overlay.import_range(&part.arena, s.range, &|s| s, &mut map),
                            sigmas: s.sigmas.clone(),
                            block: s.block,
                        })
                    })
                    .collect();
                (func_states, overlay.into_overlay_part())
            });
        let mut arena = ExprArena::new();
        let mut states = Vec::with_capacity(parts.len());
        for ((mut func_states, overlay), part) in imported.into_iter().zip(&parts) {
            let xl = arena.adopt(overlay);
            arena.absorb_op_stats(&part.arena);
            for slot in func_states.iter_mut().flatten() {
                slot.range = xl.range(slot.range);
            }
            states.push(func_states);
        }
        LrAnalysis {
            states,
            symbols,
            arena: Arc::new(arena),
        }
    }

    /// The local state of `v` in `f`; `None` for non-pointers and
    /// unreachable values.
    pub fn state(&self, f: FuncId, v: ValueId) -> Option<LrStateRef<'_>> {
        self.states[f.index()][v.index()]
            .as_ref()
            .map(|s| LrStateRef::new(s, &self.arena))
    }

    /// Raw access to the stored state (crate-internal fast paths).
    pub(crate) fn raw_state(&self, f: FuncId, v: ValueId) -> Option<&LrState> {
        self.states[f.index()][v.index()].as_ref()
    }

    /// The module arena every state's range handle points into.
    pub fn arena(&self) -> &ExprArena {
        &self.arena
    }

    /// The module arena behind its shared handle (overlay bases for
    /// parallel consumers).
    pub fn arena_arc(&self) -> Arc<ExprArena> {
        Arc::clone(&self.arena)
    }

    /// The symbol table of the local offset symbols (for display).
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }
}

/// Analyzes one function, minting offset symbols `first_symbol,
/// first_symbol + 1, …` (exactly [`symbol_budget`] of them) into a
/// fresh part arena. Pure and thread-safe.
pub fn analyze_function_part(m: &Module, fid: FuncId, first_symbol: u32) -> LrPart {
    let mut minter = Minter {
        base: first_symbol,
        names: Vec::new(),
    };
    let mut arena = ExprArena::new();
    let states = analyze_function(m, fid, &mut arena, &mut minter);
    debug_assert_eq!(
        minter.names.len(),
        symbol_budget(m, fid),
        "symbol_budget must match what the analysis mints"
    );
    LrPart {
        arena: Arc::new(arena),
        states: Arc::new(states),
        first_symbol,
        symbol_names: minter.names,
    }
}

/// Mints globally-unique symbols from a pre-assigned id block.
struct Minter {
    base: u32,
    names: Vec<String>,
}

impl Minter {
    fn fresh(&mut self, name: &str) -> Symbol {
        let s = Symbol::new(self.base + self.names.len() as u32);
        self.names.push(name.to_owned());
        s
    }
}

fn analyze_function(
    m: &Module,
    fid: FuncId,
    arena: &mut ExprArena,
    symbols: &mut Minter,
) -> Vec<Option<LrState>> {
    let f = m.function(fid);
    let zero_range = arena.range_constant(0);
    let mut states: Vec<Option<LrState>> = vec![None; f.num_values()];
    // Exact symbolic value of every integer (singleton semantics) plus
    // the σ-set its derivation traversed.
    let mut int_val: Vec<Option<(ExprId, Vec<ValueId>)>> = vec![None; f.num_values()];
    let mut fresh = 0u32;

    // Parameters, constants and global addresses dominate everything.
    for v in f.value_ids() {
        match f.value(v).kind() {
            ValueKind::Const(c) => {
                int_val[v.index()] = Some((arena.constant(*c as i128), Vec::new()));
            }
            ValueKind::Param { index } => match f.value(v).ty() {
                Some(Ty::Ptr) => {
                    states[v.index()] = Some(LrState {
                        base: LocalBase::Fresh(fresh),
                        range: zero_range,
                        sigmas: Vec::new(),
                        block: None,
                    });
                    fresh += 1;
                }
                Some(Ty::Int) => {
                    let name = match f.value(v).name() {
                        Some(n) => n.to_owned(),
                        None => format!("{}.arg{}", f.name(), index),
                    };
                    let s = symbols.fresh(&name);
                    int_val[v.index()] = Some((arena.symbol(s), Vec::new()));
                }
                None => {}
            },
            ValueKind::GlobalAddr(g) => {
                states[v.index()] = Some(LrState {
                    base: LocalBase::Global(*g),
                    range: zero_range,
                    sigmas: Vec::new(),
                    block: None,
                });
            }
            ValueKind::Inst(_) => {}
        }
    }

    let cfg = Cfg::new(f);
    let dom = DomTree::new(f, &cfg);
    for b in dom.preorder() {
        for &v in f.block(b).insts() {
            let Some(inst) = f.value(v).as_inst() else {
                continue;
            };
            match f.value(v).ty() {
                Some(Ty::Ptr) => {
                    let state = match inst {
                        // NewLocs() + [0,0] — Figure 11.
                        Inst::Malloc { .. }
                        | Inst::Alloca { .. }
                        | Inst::Phi { .. }
                        | Inst::Load { .. }
                        | Inst::Call { .. } => {
                            let s = LrState {
                                base: LocalBase::Fresh(fresh),
                                range: zero_range,
                                sigmas: Vec::new(),
                                block: Some(b),
                            };
                            fresh += 1;
                            Some(s)
                        }
                        // Copies preserve the local state.
                        Inst::Free { ptr } => states[ptr.index()].clone().map(|mut s| {
                            s.block = Some(b);
                            s
                        }),
                        // A σ re-reads its input on one CFG edge: the
                        // state is preserved, but the instant of the
                        // read is recorded so that only offsets taken
                        // from the *same* σ remain comparable.
                        Inst::Sigma { input, .. } => states[input.index()].clone().map(|mut s| {
                            insert_sigma(&mut s.sigmas, v);
                            s.block = Some(b);
                            s
                        }),
                        // Offsets accumulate exactly: LR(q) = loc + ([l,u] + c),
                        // inheriting the σ-instants of base and offset.
                        Inst::PtrAdd { base, offset } => {
                            let (off, off_sigmas) = int_val[offset.index()]
                                .clone()
                                .expect("int operands are always valued");
                            states[base.index()].clone().map(|s| LrState {
                                base: s.base,
                                range: arena.range_add_expr(s.range, off),
                                sigmas: union_sigmas(&s.sigmas, &off_sigmas),
                                block: Some(b),
                            })
                        }
                        _ => None,
                    };
                    states[v.index()] = state;
                }
                Some(Ty::Int) => {
                    let expr = match inst {
                        Inst::IntBin { op, lhs, rhs } => {
                            let (a, sa) = int_val[lhs.index()].clone().expect("valued");
                            let (bx, sb) = int_val[rhs.index()].clone().expect("valued");
                            let e = match op {
                                BinOp::Add => arena.add(a, bx),
                                BinOp::Sub => arena.sub(a, bx),
                                BinOp::Mul => arena.mul(a, bx),
                                BinOp::Div => arena.div(a, bx),
                                BinOp::Rem => arena.rem(a, bx),
                            };
                            Some((e, union_sigmas(&sa, &sb)))
                        }
                        // Like pointer σs: value preserved, instant
                        // recorded.
                        Inst::Sigma { input, .. } => {
                            int_val[input.index()].clone().map(|(e, mut s)| {
                                insert_sigma(&mut s, v);
                                (e, s)
                            })
                        }
                        // φs, loads, calls and comparisons denote "the
                        // value at this moment" — a fresh symbol.
                        Inst::Phi { .. }
                        | Inst::Load { .. }
                        | Inst::Call { .. }
                        | Inst::Cmp { .. } => {
                            let name = format!("{}.{}", f.name(), v);
                            Some((arena.symbol(symbols.fresh(&name)), Vec::new()))
                        }
                        _ => None,
                    };
                    int_val[v.index()] = expr;
                }
                None => {}
            }
        }
    }
    states
}

/// Inserts `v` into a sorted σ-set.
fn insert_sigma(set: &mut Vec<ValueId>, v: ValueId) {
    if let Err(pos) = set.binary_search(&v) {
        set.insert(pos, v);
    }
}

/// Union of two sorted σ-sets.
fn union_sigmas(a: &[ValueId], b: &[ValueId]) -> Vec<ValueId> {
    if b.is_empty() {
        return a.to_vec();
    }
    let mut out = a.to_vec();
    for &v in b {
        insert_sigma(&mut out, v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sra_ir::{CmpOp, FunctionBuilder};
    use sra_symbolic::SymRange;

    fn rv(lr: &LrAnalysis, s: LrStateRef<'_>) -> SymRange {
        lr.arena().range_value(s.range())
    }

    fn disjoint(lr: &LrAnalysis, a: LrStateRef<'_>, b: LrStateRef<'_>) -> bool {
        rv(lr, a).meet(&rv(lr, b)).is_empty()
    }

    /// The paper's Figure 10 (right column): the φ gets a fresh base and
    /// a4/a5 become separable.
    #[test]
    fn figure10_local_precision() {
        let mut b = FunctionBuilder::new("f", &[Ty::Int], None);
        let cond = b.param(0);
        let t = b.create_block();
        let e = b.create_block();
        let j = b.create_block();
        let two = b.const_int(2);
        let a1 = b.malloc(two);
        let one = b.const_int(1);
        let a2 = b.ptr_add(a1, one);
        let z = b.const_int(0);
        let c = b.cmp(CmpOp::Ne, cond, z);
        b.br(c, t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        let a3 = b.phi(Ty::Ptr, &[(t, a1), (e, a2)]);
        let a4 = b.ptr_add(a3, one);
        let two_c = b.const_int(2);
        let a5 = b.ptr_add(a3, two_c);
        b.ret(None);
        let mut m = Module::new();
        let fid = m.add_function(b.finish());
        let lr = LrAnalysis::analyze(&m);

        let s3 = lr.state(fid, a3).expect("φ has LR state");
        let s4 = lr.state(fid, a4).expect("a4 has LR state");
        let s5 = lr.state(fid, a5).expect("a5 has LR state");
        // a3 is a fresh base at [0,0]; a4 and a5 offset from it.
        assert_eq!(rv(&lr, s3), SymRange::constant(0));
        assert_eq!(s4.base(), s3.base());
        assert_eq!(s5.base(), s3.base());
        assert_eq!(rv(&lr, s4), SymRange::constant(1));
        assert_eq!(rv(&lr, s5), SymRange::constant(2));
        // Disjoint ranges on the same base: the local test separates
        // them, exactly as the paper's right column shows.
        assert!(disjoint(&lr, s4, s5));
        // a1/a2 keep their own (different) base.
        let s1 = lr.state(fid, a1).unwrap();
        assert_ne!(s1.base(), s3.base());
    }

    /// Loop-carried index: p+i and p+(i+1) get offsets [i,i] and
    /// [i+1,i+1] — disjoint within one iteration (the Figure 4 insight).
    #[test]
    fn loop_index_offsets_are_singletons() {
        let mut b = FunctionBuilder::new("f", &[Ty::Ptr, Ty::Int], None);
        let p = b.param(0);
        let n = b.param(1);
        let head = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        let zero = b.const_int(0);
        let entry = b.entry_block();
        b.jump(head);
        b.switch_to(head);
        let i = b.phi(Ty::Int, &[(entry, zero)]);
        let c = b.cmp(CmpOp::Lt, i, n);
        b.br(c, body, exit);
        b.switch_to(body);
        let t0 = b.ptr_add(p, i);
        let one = b.const_int(1);
        let i1 = b.binop(BinOp::Add, i, one);
        let t1 = b.ptr_add(p, i1);
        let two = b.const_int(2);
        let i2 = b.binop(BinOp::Add, i, two);
        b.add_phi_arg(i, body, i2);
        b.jump(head);
        b.switch_to(exit);
        b.ret(None);
        let mut m = Module::new();
        let fid = m.add_function(b.finish());
        let lr = LrAnalysis::analyze(&m);
        let s0 = lr.state(fid, t0).unwrap();
        let s1 = lr.state(fid, t1).unwrap();
        assert_eq!(s0.base(), s1.base());
        assert!(disjoint(&lr, s0, s1), "{} vs {}", rv(&lr, s0), rv(&lr, s1));
    }

    #[test]
    fn sigma_copies_free_copies() {
        let mut b = FunctionBuilder::new("f", &[Ty::Ptr, Ty::Ptr], None);
        let p = b.param(0);
        let q = b.param(1);
        let t = b.create_block();
        let e = b.create_block();
        let c = b.cmp(CmpOp::Lt, p, q);
        b.br(c, t, e);
        b.switch_to(t);
        let freed = b.free(p);
        b.ret(None);
        b.switch_to(e);
        b.ret(None);
        let mut f = b.finish();
        sra_ir::essa::run(&mut f);
        let mut m = Module::new();
        let fid = m.add_function(f);
        let lr = LrAnalysis::analyze(&m);
        let f = m.function(fid);
        let p_base = lr.state(fid, p).unwrap().base();
        // Every σ of p keeps p's base.
        for v in f.value_ids() {
            if let Some(Inst::Sigma { input, .. }) = f.value(v).as_inst() {
                if original(f, *input) == p {
                    assert_eq!(lr.state(fid, v).unwrap().base(), p_base);
                }
            }
        }
        let _ = freed;
    }

    fn original(f: &sra_ir::Function, mut v: ValueId) -> ValueId {
        while let Some(Inst::Sigma { input, .. }) = f.value(v).as_inst() {
            v = *input;
        }
        v
    }

    #[test]
    fn globals_share_base() {
        let mut m = Module::new();
        let g = m.add_global("tab", 16);
        let mut b = FunctionBuilder::new("f", &[], None);
        let a1 = b.global_addr(g, Ty::Ptr);
        let a2 = b.global_addr(g, Ty::Ptr);
        let one = b.const_int(1);
        let p = b.ptr_add(a1, one);
        let five = b.const_int(5);
        let q = b.ptr_add(a2, five);
        b.ret(None);
        let fid = m.add_function(b.finish());
        let lr = LrAnalysis::analyze(&m);
        let sp = lr.state(fid, p).unwrap();
        let sq = lr.state(fid, q).unwrap();
        assert_eq!(sp.base(), sq.base());
        assert_eq!(sp.base(), LocalBase::Global(g));
        assert!(disjoint(&lr, sp, sq));
    }

    #[test]
    fn symbolic_offsets_accumulate() {
        let mut b = FunctionBuilder::new("f", &[Ty::Ptr, Ty::Int], None);
        let p = b.param(0);
        let n = b.param(1);
        b.set_name(n, "n");
        let q = b.ptr_add(p, n);
        let one = b.const_int(1);
        let r = b.ptr_add(q, one);
        b.ret(None);
        let mut m = Module::new();
        let fid = m.add_function(b.finish());
        let lr = LrAnalysis::analyze(&m);
        let sp = lr.state(fid, p).unwrap();
        let sr = lr.state(fid, r).unwrap();
        assert_eq!(sr.base(), sp.base());
        assert_eq!(
            format!("{}", sr.display(lr.symbols())),
            "new0 + [n + 1, n + 1]"
        );
        // p and q=p+n cannot be separated (n may be 0)…
        let sq = lr.state(fid, q).unwrap();
        assert!(!disjoint(&lr, sp, sq));
        // …but q and r=q+1 can.
        assert!(disjoint(&lr, sq, sr));
    }

    /// Rebasing an LR part is byte-identical to re-analyzing at the new
    /// base, down to the module arena ids after assembly.
    #[test]
    fn rebase_equals_reanalysis() {
        let mut b = FunctionBuilder::new("f", &[Ty::Ptr, Ty::Int], None);
        let p = b.param(0);
        let n = b.param(1);
        let q = b.ptr_add(p, n);
        let _ = q;
        b.ret(None);
        let mut m = Module::new();
        let fid = m.add_function(b.finish());
        let mut part = analyze_function_part(&m, fid, 4);
        part.rebase(0);
        let fresh = analyze_function_part(&m, fid, 0);
        let via_rebase = LrAnalysis::from_parts(vec![part]);
        let via_fresh = LrAnalysis::from_parts(vec![fresh]);
        for v in m.function(fid).value_ids() {
            assert_eq!(
                via_rebase.raw_state(fid, v),
                via_fresh.raw_state(fid, v),
                "{v}"
            );
        }
    }
}
