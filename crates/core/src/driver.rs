//! The batch analysis driver: whole-module analysis and all-pairs
//! query evaluation fanned out across a thread pool.
//!
//! The serial pipeline ([`RbaaAnalysis::analyze`]) walks one function
//! at a time and answers every `p, q` query from scratch. For the
//! paper's evaluation workloads — 22 benchmarks, all-pairs queries per
//! function (Figures 13/14), and the million-instruction scaling sweep
//! (Figure 15) — both are embarrassingly parallel along the function
//! axis. [`BatchAnalysis`] exploits that:
//!
//! 1. **parallel** — the bootstrap integer ranges and the local (LR)
//!    analysis of each function run on a hand-rolled
//!    [`std::thread`]-pool ([`crate::pool`]). Kernel-symbol identities
//!    are pre-assigned from per-function budgets
//!    ([`sra_range::symbol_budget`]), so the assembled result is
//!    byte-identical to the serial analysis regardless of scheduling.
//! 2. **parallel** — the global (GR) analysis is *inter*procedural, so
//!    it cannot shard along the function axis; instead it runs as a
//!    wave schedule over the bottom-up SCC condensation of the call
//!    graph ([`GrSchedule::Waves`](crate::GrSchedule)): the mutually
//!    independent SCCs of each condensation level are solved
//!    concurrently, with the Gauss–Seidel order inside each SCC — which
//!    is part of the precision the snapshot tests pin — preserved
//!    exactly. Results are byte-identical to the serial schedule.
//! 3. **parallel** — one [`AliasMatrix`] per function, built on worker
//!    threads with a per-worker [`sra_symbolic::ExprArena`] memoising
//!    every range comparison. Repeat queries are `O(1)`.
//!
//! Determinism: every phase either runs in function order or writes
//! into per-function slots, so results never depend on thread timing —
//! the equivalence property test compares this driver against the
//! serial per-query path verdict for verdict.
//!
//! # Examples
//!
//! ```
//! use sra_core::{AliasAnalysis, AliasResult, BatchAnalysis};
//! use sra_ir::{FunctionBuilder, Module};
//!
//! let mut b = FunctionBuilder::new("main", &[], None);
//! let ten = b.const_int(10);
//! let p = b.malloc(ten);
//! let q = b.malloc(ten);
//! b.ret(None);
//! let mut m = Module::new();
//! let fid = m.add_function(b.finish());
//!
//! let batch = BatchAnalysis::analyze(&m);
//! assert_eq!(batch.alias(fid, p, q), AliasResult::NoAlias);
//! assert_eq!(batch.stats(fid).queries, 1);
//! ```

use sra_ir::{FuncId, Module, ValueId};
use sra_range::{RangeAnalysis, RangeConfig, RangePart};

use crate::gr::{GrAnalysis, GrConfig};
use crate::lr::{self, LrAnalysis, LrPart};
use crate::pool;
use crate::query::{AliasAnalysis, AliasMatrix, AliasResult, QueryStats, RbaaAnalysis, WhichTest};

/// Tuning knobs for [`BatchAnalysis`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriverConfig {
    /// Worker threads for the per-function phases. `1` runs everything
    /// inline (the deterministic reference schedule — results are
    /// identical either way).
    pub threads: usize,
    /// Bootstrap integer-range configuration.
    pub range: RangeConfig,
    /// Global-analysis configuration. Its `threads` knob is overridden
    /// with the driver's own [`DriverConfig::threads`], so one setting
    /// governs every phase.
    pub gr: GrConfig,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            threads: pool::default_threads(),
            range: RangeConfig::default(),
            gr: GrConfig::default(),
        }
    }
}

impl DriverConfig {
    /// A config with an explicit worker count and default analyses.
    pub fn with_threads(threads: usize) -> Self {
        DriverConfig {
            threads,
            ..DriverConfig::default()
        }
    }
}

/// Runs the paper's full analysis pipeline (bootstrap ranges + GR +
/// LR) with the per-function phases on `config.threads` workers. The
/// result is byte-identical to [`RbaaAnalysis::analyze`]. Accepts
/// either the unified [`crate::AnalysisConfig`] or the legacy
/// [`DriverConfig`].
pub fn analyze_parallel(m: &Module, config: impl Into<crate::AnalysisConfig>) -> RbaaAnalysis {
    let config = config.into().driver();
    let nf = m.num_functions();

    // Pre-assign symbol-id blocks so workers mint non-conflicting,
    // schedule-independent symbols. The budget scans are cheap but
    // parallel anyway (LR's needs a dominance tree).
    let budgets: Vec<(usize, usize)> = pool::run_indexed(nf, config.threads, |i| {
        let fid = FuncId::new(i);
        (
            sra_range::symbol_budget(m.function(fid), config.range),
            lr::symbol_budget(m, fid),
        )
    });
    let mut range_bases = Vec::with_capacity(nf);
    let mut lr_bases = Vec::with_capacity(nf);
    let (mut rb, mut lb) = (0u32, 0u32);
    for &(r, l) in &budgets {
        range_bases.push(rb);
        lr_bases.push(lb);
        rb += r as u32;
        lb += l as u32;
    }

    // Per-function analyses on the pool.
    let parts: Vec<(RangePart, LrPart)> = pool::run_indexed(nf, config.threads, |i| {
        let fid = FuncId::new(i);
        (
            sra_range::analyze_function_part(m.function(fid), config.range, range_bases[i]),
            lr::analyze_function_part(m, fid, lr_bases[i]),
        )
    });
    let mut range_parts = Vec::with_capacity(nf);
    let mut lr_parts = Vec::with_capacity(nf);
    for (r, l) in parts {
        range_parts.push(r);
        lr_parts.push(l);
    }
    let ranges = RangeAnalysis::from_parts(range_parts);
    let lr = LrAnalysis::from_parts(lr_parts);

    // Interprocedural global analysis: wave-scheduled over the call
    // graph's SCC condensation (see module docs), sharing the driver's
    // worker count.
    let gr_config = GrConfig {
        threads: config.threads,
        ..config.gr
    };
    let gr = GrAnalysis::analyze_with(m, &ranges, gr_config);

    RbaaAnalysis::from_pieces(ranges, gr, lr)
}

/// The batch driver's result: the full [`RbaaAnalysis`] plus one cached
/// [`AliasMatrix`] per function.
#[derive(Debug)]
pub struct BatchAnalysis {
    rbaa: RbaaAnalysis,
    matrices: Vec<AliasMatrix>,
}

impl BatchAnalysis {
    /// Analyzes `m` and evaluates every function's all-pairs matrix,
    /// with default configuration (all available workers).
    pub fn analyze(m: &Module) -> Self {
        Self::analyze_with(m, crate::AnalysisConfig::default())
    }

    /// Analyzes `m` with an explicit configuration (unified
    /// [`crate::AnalysisConfig`] or legacy [`DriverConfig`]).
    pub fn analyze_with(m: &Module, config: impl Into<crate::AnalysisConfig>) -> Self {
        let config = config.into();
        let rbaa = analyze_parallel(m, config);
        Self::from_rbaa(rbaa, m, config.threads)
    }

    /// Builds the per-function matrices over an existing analysis.
    /// A single-function module hands the whole worker budget to that
    /// function's signature triangle ([`AliasMatrix::build_with`]);
    /// several functions share the budget function-wise instead, so
    /// the pool is never oversubscribed. Byte-identical either way.
    pub fn from_rbaa(rbaa: RbaaAnalysis, m: &Module, threads: usize) -> Self {
        let nf = m.num_functions();
        let inner = if nf == 1 { threads } else { 1 };
        let matrices = pool::run_indexed(nf, threads, |i| {
            AliasMatrix::build_with(&rbaa, m, FuncId::new(i), inner)
        });
        BatchAnalysis { rbaa, matrices }
    }

    /// Per-module totals of the matrices' packed-cell byte accounting.
    pub fn total_matrix_bytes(&self) -> crate::query::MatrixBytes {
        let mut total = crate::query::MatrixBytes::default();
        for mx in &self.matrices {
            total.merge(&mx.bytes());
        }
        total
    }

    /// The underlying analysis (states, symbol table, …).
    pub fn rbaa(&self) -> &RbaaAnalysis {
        &self.rbaa
    }

    /// The cached all-pairs matrix of `f`.
    pub fn matrix(&self, f: FuncId) -> &AliasMatrix {
        &self.matrices[f.index()]
    }

    /// The Figure 13/14 statistics of `f`'s all-pairs sweep.
    pub fn stats(&self, f: FuncId) -> &QueryStats {
        self.matrices[f.index()].stats()
    }

    /// Statistics summed over every function.
    pub fn total_stats(&self) -> QueryStats {
        let mut total = QueryStats::default();
        for mx in &self.matrices {
            total.merge(mx.stats());
        }
        total
    }

    /// Like [`RbaaAnalysis::alias_with_test`], answered from the cache
    /// in `O(1)` (falling back to the direct computation for values
    /// outside the pointer universe, e.g. non-pointers).
    pub fn alias_with_test(
        &self,
        f: FuncId,
        p: ValueId,
        q: ValueId,
    ) -> (AliasResult, Option<WhichTest>) {
        match self.matrices[f.index()].lookup(p, q) {
            Some(v) => v,
            None => self.rbaa.alias_with_test(f, p, q),
        }
    }
}

impl AliasAnalysis for BatchAnalysis {
    fn name(&self) -> &'static str {
        "rbaa"
    }

    fn alias(&self, f: FuncId, p: ValueId, q: ValueId) -> AliasResult {
        self.alias_with_test(f, p, q).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::pointer_values;

    /// A module with interprocedural flow, loops, σs, frees — every
    /// state kind the pipeline produces.
    fn sample_module() -> Module {
        use sra_ir::{BinOp, Callee, CmpOp, FunctionBuilder, Ty};
        let mut m = Module::new();

        let mut b = FunctionBuilder::new("callee", &[Ty::Ptr, Ty::Int], Some(Ty::Ptr));
        let p = b.param(0);
        let n = b.param(1);
        let head = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        let zero = b.const_int(0);
        let entry = b.entry_block();
        b.jump(head);
        b.switch_to(head);
        let i = b.phi(Ty::Int, &[(entry, zero)]);
        let c = b.cmp(CmpOp::Lt, i, n);
        b.br(c, body, exit);
        b.switch_to(body);
        let a0 = b.ptr_add(p, i);
        b.store(a0, i);
        let one = b.const_int(1);
        let i1 = b.binop(BinOp::Add, i, one);
        let a1 = b.ptr_add(p, i1);
        let x = b.load(a0, Ty::Int);
        b.store(a1, x);
        let two = b.const_int(2);
        let i2 = b.binop(BinOp::Add, i, two);
        b.add_phi_arg(i, body, i2);
        b.jump(head);
        b.switch_to(exit);
        let q = b.ptr_add(p, n);
        b.ret(Some(q));
        let mut f = b.finish();
        sra_ir::essa::run(&mut f);
        let callee = m.add_function(f);

        let mut b = FunctionBuilder::new("main", &[], None);
        let z = b.call(Callee::External("atoi".into()), &[], Some(Ty::Int));
        let buf = b.malloc(z);
        let other = b.malloc(z);
        let r = b.call(Callee::Internal(callee), &[buf, z], Some(Ty::Ptr));
        let dead = b.free(other);
        let loaded = b.load(buf, Ty::Ptr);
        let _ = (r, dead, loaded);
        b.ret(None);
        let mut f = b.finish();
        f.set_exported(true);
        m.add_function(f);
        sra_ir::verify::verify_module(&m).expect("verifies");
        m
    }

    #[test]
    fn batch_matches_serial_per_query() {
        let m = sample_module();
        let serial = RbaaAnalysis::analyze(&m);
        for threads in [1, 4] {
            let batch = BatchAnalysis::analyze_with(&m, DriverConfig::with_threads(threads));
            for f in m.func_ids() {
                let ptrs = pointer_values(&m, f);
                for &p in &ptrs {
                    for &q in &ptrs {
                        assert_eq!(
                            batch.alias_with_test(f, p, q),
                            serial.alias_with_test(f, p, q),
                            "threads={threads} {f} {p} vs {q}"
                        );
                    }
                }
                assert_eq!(
                    batch.stats(f),
                    &QueryStats::run_pairs(&serial, f, &ptrs),
                    "stats for {f}"
                );
            }
        }
    }

    #[test]
    fn parallel_analysis_is_byte_identical() {
        let m = sample_module();
        let serial = RbaaAnalysis::analyze(&m);
        let parallel = analyze_parallel(&m, DriverConfig::with_threads(4));
        // Same symbol tables (names in the same order)…
        assert_eq!(
            serial.symbols().iter().collect::<Vec<_>>(),
            parallel.symbols().iter().collect::<Vec<_>>()
        );
        // …and same displayed states everywhere.
        for f in m.func_ids() {
            let func = m.function(f);
            for v in func.value_ids() {
                assert_eq!(
                    format!("{}", serial.gr().state(f, v).display(serial.symbols())),
                    format!("{}", parallel.gr().state(f, v).display(parallel.symbols())),
                );
                assert_eq!(
                    serial.ranges().display_range(f, v),
                    parallel.ranges().display_range(f, v),
                );
                // Canonical module arenas: the raw ids agree too.
                assert_eq!(serial.ranges().range(f, v), parallel.ranges().range(f, v));
            }
        }
    }

    #[test]
    fn matrix_lookup_diagonal_and_outsiders() {
        let m = sample_module();
        let batch = BatchAnalysis::analyze(&m);
        let f = m.func_ids().next().unwrap();
        let ptrs = pointer_values(&m, f);
        let p = ptrs[0];
        assert_eq!(
            batch.alias_with_test(f, p, p),
            (AliasResult::MayAlias, None)
        );
        // A non-pointer value is outside the universe; the fallback
        // still answers.
        let func = m.function(f);
        let non_ptr = func
            .value_ids()
            .find(|&v| func.value(v).ty() != Some(sra_ir::Ty::Ptr))
            .unwrap();
        assert_eq!(batch.matrix(f).lookup(non_ptr, p), None);
        assert_eq!(
            batch.alias_with_test(f, non_ptr, p),
            batch.rbaa().alias_with_test(f, non_ptr, p)
        );
    }

    #[test]
    fn total_stats_sum_functions() {
        let m = sample_module();
        let batch = BatchAnalysis::analyze(&m);
        let mut expect = QueryStats::default();
        for f in m.func_ids() {
            expect.merge(batch.stats(f));
        }
        assert_eq!(batch.total_stats(), expect);
    }
}
