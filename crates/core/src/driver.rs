//! The batch analysis driver: whole-module analysis and all-pairs
//! query evaluation fanned out across a thread pool.
//!
//! The serial pipeline ([`RbaaAnalysis::analyze`]) walks one function
//! at a time and answers every `p, q` query from scratch. For the
//! paper's evaluation workloads — 22 benchmarks, all-pairs queries per
//! function (Figures 13/14), and the million-instruction scaling sweep
//! (Figure 15) — both are embarrassingly parallel along the function
//! axis. [`BatchAnalysis`] exploits that:
//!
//! 1. **parallel** — the bootstrap integer ranges and the local (LR)
//!    analysis of each function run on a hand-rolled
//!    [`std::thread`]-pool ([`crate::pool`]). Kernel-symbol identities
//!    are pre-assigned from per-function budgets
//!    ([`sra_range::symbol_budget`]), so the assembled result is
//!    byte-identical to the serial analysis regardless of scheduling.
//! 2. **parallel** — the global (GR) analysis is *inter*procedural, so
//!    it cannot shard along the function axis; instead it runs as a
//!    wave schedule over the bottom-up SCC condensation of the call
//!    graph ([`GrSchedule::Waves`](crate::GrSchedule)): the mutually
//!    independent SCCs of each condensation level are solved
//!    concurrently, with the Gauss–Seidel order inside each SCC — which
//!    is part of the precision the snapshot tests pin — preserved
//!    exactly. Results are byte-identical to the serial schedule.
//! 3. **parallel** — one [`AliasMatrix`] per function, built on worker
//!    threads with a per-worker [`sra_symbolic::ExprArena`] memoising
//!    every range comparison. Repeat queries are `O(1)`.
//!
//! Determinism: every phase either runs in function order or writes
//! into per-function slots, so results never depend on thread timing —
//! the equivalence property test compares this driver against the
//! serial per-query path verdict for verdict.
//!
//! # Examples
//!
//! ```
//! use sra_core::{AliasAnalysis, AliasResult, BatchAnalysis};
//! use sra_ir::{FunctionBuilder, Module};
//!
//! let mut b = FunctionBuilder::new("main", &[], None);
//! let ten = b.const_int(10);
//! let p = b.malloc(ten);
//! let q = b.malloc(ten);
//! b.ret(None);
//! let mut m = Module::new();
//! let fid = m.add_function(b.finish());
//!
//! let batch = BatchAnalysis::analyze(&m);
//! assert_eq!(batch.alias(fid, p, q), AliasResult::NoAlias);
//! assert_eq!(batch.stats(fid).queries, 1);
//! ```

use sra_ir::{FuncId, Module, ValueId};
use sra_range::{RangeAnalysis, RangeConfig, RangePart};

use crate::gr::{GrAnalysis, GrConfig};
use crate::lr::{self, LrAnalysis, LrPart};
use crate::pool;
use crate::query::{AliasAnalysis, AliasMatrix, AliasResult, QueryStats, RbaaAnalysis, WhichTest};

/// Tuning knobs for [`BatchAnalysis`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriverConfig {
    /// Worker threads for the per-function phases. `1` runs everything
    /// inline (the deterministic reference schedule — results are
    /// identical either way).
    pub threads: usize,
    /// Bootstrap integer-range configuration.
    pub range: RangeConfig,
    /// Global-analysis configuration. Its `threads` knob is overridden
    /// with the driver's own [`DriverConfig::threads`], so one setting
    /// governs every phase.
    pub gr: GrConfig,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            threads: pool::default_threads(),
            range: RangeConfig::default(),
            gr: GrConfig::default(),
        }
    }
}

impl DriverConfig {
    /// A config with an explicit worker count and default analyses.
    pub fn with_threads(threads: usize) -> Self {
        DriverConfig {
            threads,
            ..DriverConfig::default()
        }
    }
}

/// Wall-clock attribution of one pipeline run, phase by phase — how
/// the driver (and the bench trajectory) proves where a scratch build
/// spends its time. Loads fill [`PhaseStats::load_ns`] instead of the
/// analysis phases.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Symbol-budget pre-scan (fixes schedule-independent symbol ids).
    pub budget_ns: u64,
    /// Per-function bootstrap-range and LR part analyses.
    pub parts_ns: u64,
    /// Canonical-arena assembly of the parts (range + LR imports).
    pub assemble_ns: u64,
    /// Interprocedural GR solve plus its canonical re-interning.
    pub gr_ns: u64,
    /// Per-function alias-matrix builds.
    pub matrices_ns: u64,
    /// Snapshot deserialization (section decode + reassembly).
    pub load_ns: u64,
}

impl PhaseStats {
    /// Sum of every recorded phase.
    pub fn total_ns(&self) -> u64 {
        self.budget_ns
            + self.parts_ns
            + self.assemble_ns
            + self.gr_ns
            + self.matrices_ns
            + self.load_ns
    }

    /// Field-wise accumulation.
    pub fn merge(&mut self, other: &PhaseStats) {
        self.budget_ns += other.budget_ns;
        self.parts_ns += other.parts_ns;
        self.assemble_ns += other.assemble_ns;
        self.gr_ns += other.gr_ns;
        self.matrices_ns += other.matrices_ns;
        self.load_ns += other.load_ns;
    }
}

/// Nanoseconds since `t`, saturated into a `u64`.
pub(crate) fn ns_since(t: std::time::Instant) -> u64 {
    u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Runs the paper's full analysis pipeline (bootstrap ranges + GR +
/// LR) with the per-function phases on `config.threads` workers. The
/// result is byte-identical to [`RbaaAnalysis::analyze`]. Accepts
/// either the unified [`crate::AnalysisConfig`] or the legacy
/// [`DriverConfig`].
pub fn analyze_parallel(m: &Module, config: impl Into<crate::AnalysisConfig>) -> RbaaAnalysis {
    let config = config.into();
    let pool = pool::WorkerPool::new(config.threads);
    analyze_parallel_on(m, config, &pool).0
}

/// [`analyze_parallel`] on a caller-provided [`pool::WorkerPool`] —
/// every phase (budget scan, part analyses, canonical assembly, GR
/// waves) dispatches onto the same long-lived workers instead of
/// spawning its own — with the per-phase wall-clock breakdown.
pub fn analyze_parallel_on(
    m: &Module,
    config: impl Into<crate::AnalysisConfig>,
    pool: &pool::WorkerPool,
) -> (RbaaAnalysis, PhaseStats) {
    let config = config.into().driver();
    let nf = m.num_functions();
    let mut phases = PhaseStats::default();

    // Pre-assign symbol-id blocks so workers mint non-conflicting,
    // schedule-independent symbols. The budget scans are cheap but
    // parallel anyway (LR's needs a dominance tree).
    let t = std::time::Instant::now();
    let budgets: Vec<(usize, usize)> = pool.run_indexed(nf, |i| {
        let fid = FuncId::new(i);
        (
            sra_range::symbol_budget(m.function(fid), config.range),
            lr::symbol_budget(m, fid),
        )
    });
    let mut range_bases = Vec::with_capacity(nf);
    let mut lr_bases = Vec::with_capacity(nf);
    let (mut rb, mut lb) = (0u32, 0u32);
    for &(r, l) in &budgets {
        range_bases.push(rb);
        lr_bases.push(lb);
        rb += r as u32;
        lb += l as u32;
    }
    phases.budget_ns = ns_since(t);

    // Per-function analyses on the pool.
    let t = std::time::Instant::now();
    let parts: Vec<(RangePart, LrPart)> = pool.run_indexed(nf, |i| {
        let fid = FuncId::new(i);
        (
            sra_range::analyze_function_part(m.function(fid), config.range, range_bases[i]),
            lr::analyze_function_part(m, fid, lr_bases[i]),
        )
    });
    let mut range_parts = Vec::with_capacity(nf);
    let mut lr_parts = Vec::with_capacity(nf);
    for (r, l) in parts {
        range_parts.push(r);
        lr_parts.push(l);
    }
    phases.parts_ns = ns_since(t);

    let t = std::time::Instant::now();
    let ranges = RangeAnalysis::from_parts_on(range_parts, pool);
    let lr = LrAnalysis::from_parts_on(lr_parts, pool);
    phases.assemble_ns = ns_since(t);

    // Interprocedural global analysis: wave-scheduled over the call
    // graph's SCC condensation (see module docs), sharing the driver's
    // pool.
    let t = std::time::Instant::now();
    let gr_config = GrConfig {
        threads: config.threads,
        ..config.gr
    };
    let gr = GrAnalysis::analyze_on(m, &ranges, gr_config, pool);
    phases.gr_ns = ns_since(t);

    (RbaaAnalysis::from_pieces(ranges, gr, lr), phases)
}

/// The batch driver's result: the full [`RbaaAnalysis`] plus one cached
/// [`AliasMatrix`] per function.
#[derive(Debug)]
pub struct BatchAnalysis {
    rbaa: RbaaAnalysis,
    matrices: Vec<AliasMatrix>,
    phases: PhaseStats,
}

impl BatchAnalysis {
    /// Analyzes `m` and evaluates every function's all-pairs matrix,
    /// with default configuration (all available workers).
    pub fn analyze(m: &Module) -> Self {
        Self::analyze_with(m, crate::AnalysisConfig::default())
    }

    /// Analyzes `m` with an explicit configuration (unified
    /// [`crate::AnalysisConfig`] or legacy [`DriverConfig`]). One pool
    /// is spawned for the whole build; every phase reuses its workers.
    pub fn analyze_with(m: &Module, config: impl Into<crate::AnalysisConfig>) -> Self {
        let config = config.into();
        let pool = pool::WorkerPool::new(config.threads);
        let (rbaa, phases) = analyze_parallel_on(m, config, &pool);
        let mut batch = Self::from_rbaa_on(rbaa, m, &pool);
        batch.phases.merge(&phases);
        batch
    }

    /// Builds the per-function matrices over an existing analysis, on a
    /// one-shot pool of `threads` width.
    pub fn from_rbaa(rbaa: RbaaAnalysis, m: &Module, threads: usize) -> Self {
        Self::from_rbaa_on(rbaa, m, &pool::WorkerPool::new(threads))
    }

    /// Builds the per-function matrices over an existing analysis.
    /// A single-function module hands the whole pool to that function's
    /// signature triangle ([`AliasMatrix::build_with_on`] — `run_indexed`
    /// of one job runs inline, leaving the workers free for the tiles);
    /// several functions share the pool function-wise instead, so it is
    /// never oversubscribed. Byte-identical either way.
    pub fn from_rbaa_on(rbaa: RbaaAnalysis, m: &Module, pool: &pool::WorkerPool) -> Self {
        let t = std::time::Instant::now();
        let nf = m.num_functions();
        let matrices = if nf == 1 {
            // A lone function gets the whole pool for its signature
            // triangle instead of one chunk of a one-function sweep.
            vec![AliasMatrix::build_with_on(&rbaa, m, FuncId::new(0), pool)]
        } else {
            AliasMatrix::build_all_on(&rbaa, m, pool)
        };
        BatchAnalysis {
            rbaa,
            matrices,
            phases: PhaseStats {
                matrices_ns: ns_since(t),
                ..PhaseStats::default()
            },
        }
    }

    /// The per-phase wall-clock breakdown of this build.
    pub fn phases(&self) -> &PhaseStats {
        &self.phases
    }

    /// Per-module totals of the matrices' packed-cell byte accounting.
    pub fn total_matrix_bytes(&self) -> crate::query::MatrixBytes {
        let mut total = crate::query::MatrixBytes::default();
        for mx in &self.matrices {
            total.merge(&mx.bytes());
        }
        total
    }

    /// The underlying analysis (states, symbol table, …).
    pub fn rbaa(&self) -> &RbaaAnalysis {
        &self.rbaa
    }

    /// The cached all-pairs matrix of `f`.
    pub fn matrix(&self, f: FuncId) -> &AliasMatrix {
        &self.matrices[f.index()]
    }

    /// The Figure 13/14 statistics of `f`'s all-pairs sweep.
    pub fn stats(&self, f: FuncId) -> &QueryStats {
        self.matrices[f.index()].stats()
    }

    /// Statistics summed over every function.
    pub fn total_stats(&self) -> QueryStats {
        let mut total = QueryStats::default();
        for mx in &self.matrices {
            total.merge(mx.stats());
        }
        total
    }

    /// Like [`RbaaAnalysis::alias_with_test`], answered from the cache
    /// in `O(1)` (falling back to the direct computation for values
    /// outside the pointer universe, e.g. non-pointers).
    pub fn alias_with_test(
        &self,
        f: FuncId,
        p: ValueId,
        q: ValueId,
    ) -> (AliasResult, Option<WhichTest>) {
        match self.matrices[f.index()].lookup(p, q) {
            Some(v) => v,
            None => self.rbaa.alias_with_test(f, p, q),
        }
    }
}

impl AliasAnalysis for BatchAnalysis {
    fn name(&self) -> &'static str {
        "rbaa"
    }

    fn alias(&self, f: FuncId, p: ValueId, q: ValueId) -> AliasResult {
        self.alias_with_test(f, p, q).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::pointer_values;

    /// A module with interprocedural flow, loops, σs, frees — every
    /// state kind the pipeline produces.
    fn sample_module() -> Module {
        use sra_ir::{BinOp, Callee, CmpOp, FunctionBuilder, Ty};
        let mut m = Module::new();

        let mut b = FunctionBuilder::new("callee", &[Ty::Ptr, Ty::Int], Some(Ty::Ptr));
        let p = b.param(0);
        let n = b.param(1);
        let head = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        let zero = b.const_int(0);
        let entry = b.entry_block();
        b.jump(head);
        b.switch_to(head);
        let i = b.phi(Ty::Int, &[(entry, zero)]);
        let c = b.cmp(CmpOp::Lt, i, n);
        b.br(c, body, exit);
        b.switch_to(body);
        let a0 = b.ptr_add(p, i);
        b.store(a0, i);
        let one = b.const_int(1);
        let i1 = b.binop(BinOp::Add, i, one);
        let a1 = b.ptr_add(p, i1);
        let x = b.load(a0, Ty::Int);
        b.store(a1, x);
        let two = b.const_int(2);
        let i2 = b.binop(BinOp::Add, i, two);
        b.add_phi_arg(i, body, i2);
        b.jump(head);
        b.switch_to(exit);
        let q = b.ptr_add(p, n);
        b.ret(Some(q));
        let mut f = b.finish();
        sra_ir::essa::run(&mut f);
        let callee = m.add_function(f);

        let mut b = FunctionBuilder::new("main", &[], None);
        let z = b.call(Callee::External("atoi".into()), &[], Some(Ty::Int));
        let buf = b.malloc(z);
        let other = b.malloc(z);
        let r = b.call(Callee::Internal(callee), &[buf, z], Some(Ty::Ptr));
        let dead = b.free(other);
        let loaded = b.load(buf, Ty::Ptr);
        let _ = (r, dead, loaded);
        b.ret(None);
        let mut f = b.finish();
        f.set_exported(true);
        m.add_function(f);
        sra_ir::verify::verify_module(&m).expect("verifies");
        m
    }

    #[test]
    fn batch_matches_serial_per_query() {
        let m = sample_module();
        let serial = RbaaAnalysis::analyze(&m);
        for threads in [1, 4] {
            let batch = BatchAnalysis::analyze_with(&m, DriverConfig::with_threads(threads));
            for f in m.func_ids() {
                let ptrs = pointer_values(&m, f);
                for &p in &ptrs {
                    for &q in &ptrs {
                        assert_eq!(
                            batch.alias_with_test(f, p, q),
                            serial.alias_with_test(f, p, q),
                            "threads={threads} {f} {p} vs {q}"
                        );
                    }
                }
                assert_eq!(
                    batch.stats(f),
                    &QueryStats::run_pairs(&serial, f, &ptrs),
                    "stats for {f}"
                );
            }
        }
    }

    #[test]
    fn parallel_analysis_is_byte_identical() {
        let m = sample_module();
        let serial = RbaaAnalysis::analyze(&m);
        let parallel = analyze_parallel(&m, DriverConfig::with_threads(4));
        // Same symbol tables (names in the same order)…
        assert_eq!(
            serial.symbols().iter().collect::<Vec<_>>(),
            parallel.symbols().iter().collect::<Vec<_>>()
        );
        // …and same displayed states everywhere.
        for f in m.func_ids() {
            let func = m.function(f);
            for v in func.value_ids() {
                assert_eq!(
                    format!("{}", serial.gr().state(f, v).display(serial.symbols())),
                    format!("{}", parallel.gr().state(f, v).display(parallel.symbols())),
                );
                assert_eq!(
                    serial.ranges().display_range(f, v),
                    parallel.ranges().display_range(f, v),
                );
                // Canonical module arenas: the raw ids agree too.
                assert_eq!(serial.ranges().range(f, v), parallel.ranges().range(f, v));
            }
        }
    }

    #[test]
    fn matrix_lookup_diagonal_and_outsiders() {
        let m = sample_module();
        let batch = BatchAnalysis::analyze(&m);
        let f = m.func_ids().next().unwrap();
        let ptrs = pointer_values(&m, f);
        let p = ptrs[0];
        assert_eq!(
            batch.alias_with_test(f, p, p),
            (AliasResult::MayAlias, None)
        );
        // A non-pointer value is outside the universe; the fallback
        // still answers.
        let func = m.function(f);
        let non_ptr = func
            .value_ids()
            .find(|&v| func.value(v).ty() != Some(sra_ir::Ty::Ptr))
            .unwrap();
        assert_eq!(batch.matrix(f).lookup(non_ptr, p), None);
        assert_eq!(
            batch.alias_with_test(f, non_ptr, p),
            batch.rbaa().alias_with_test(f, non_ptr, p)
        );
    }

    #[test]
    fn total_stats_sum_functions() {
        let m = sample_module();
        let batch = BatchAnalysis::analyze(&m);
        let mut expect = QueryStats::default();
        for f in m.func_ids() {
            expect.merge(batch.stats(f));
        }
        assert_eq!(batch.total_stats(), expect);
    }
}
