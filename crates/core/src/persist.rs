//! Versioned snapshot persistence for warm-started sessions.
//!
//! [`AnalysisSession::save`](crate::AnalysisSession::save) serializes
//! a session's complete analysis state — module, per-function range/LR
//! parts, the interprocedural GR fixpoint (canonical arena included),
//! component caches, packed alias matrices and demand-cache signatures
//! — into a length-prefixed, checksummed binary stream;
//! [`AnalysisSession::load`](crate::AnalysisSession::load) restores it
//! without re-running any analysis, so a million-instruction module
//! answers its first query in load time instead of analysis time.
//!
//! # Format
//!
//! ```text
//! magic "SRA1SNAP" | format version (u32) | AnalysisConfig header
//! section*: tag (u8) | payload len (u64) | payload | checksum (u64)
//! END section
//! ```
//!
//! Everything is little-endian. Each section's checksum is an
//! [`FxHasher`] digest of its payload bytes, so truncation and
//! bit-flips are detected per section. Loads are *checked*: every
//! index is validated against the tables it points into, expression
//! arenas are re-interned node by node (rejecting forward references
//! and non-canonical nodes), and the restored module passes the IR
//! verifier before any state is attached to it. A corrupted, truncated
//! or version-skewed stream fails with a structured [`PersistError`] —
//! never a panic — and with
//! [`AnalysisConfig::load_verify`](crate::AnalysisConfig::load_verify)
//! the loaded state is additionally compared against a scratch
//! re-analysis before being returned.
//!
//! The demand cache's memo arenas and the alias matrices' position
//! index are pure caches: they are rebuilt (or regrown lazily) after a
//! load and never serialized, keeping snapshots small and verdicts
//! unchanged.
//!
//! Format version 2 length-frames every per-function item inside the
//! part, GR-state and matrix sections (`Enc::nested`), so a loader
//! can split a section into independent byte slices up front and
//! decode the items on its worker pool — the framing is what makes the
//! parallel warm-start load possible. Saves stay byte-deterministic.

use std::fmt;
use std::hash::Hasher;
use std::io::{self, Read, Write};

use sra_symbolic::FxHasher;

/// The stream magic: identifies a session snapshot.
pub const MAGIC: [u8; 8] = *b"SRA1SNAP";
/// The service-stream magic: a saved [`crate::AliasService`] (tenant
/// table wrapping per-tenant session snapshots).
pub const SERVICE_MAGIC: [u8; 8] = *b"SRA1SERV";
/// Bumped on any incompatible change to the layout. Loaders reject
/// other versions with [`PersistError::UnsupportedVersion`].
/// Version 2 added per-item length framing to the part, GR-state and
/// matrix sections so loads can decode them in parallel.
pub const FORMAT_VERSION: u32 = 2;

/// Section tags, in stream order.
pub(crate) mod tag {
    pub const CONFIG: u8 = 0;
    pub const MODULE: u8 = 1;
    pub const RANGE_PARTS: u8 = 2;
    pub const LR_PARTS: u8 = 3;
    pub const GR: u8 = 4;
    pub const COMPONENTS: u8 = 5;
    pub const MATRICES: u8 = 6;
    pub const DEMAND: u8 = 7;
    pub const STATS: u8 = 8;
    pub const TENANT: u8 = 9;
    pub const END: u8 = 0xFF;
}

/// Why a snapshot failed to save or load. Loads never panic on bad
/// input; they return one of these.
#[derive(Debug)]
pub enum PersistError {
    /// The underlying reader/writer failed.
    Io(io::Error),
    /// The stream does not start with the snapshot magic.
    BadMagic,
    /// The stream was written by an incompatible format version.
    UnsupportedVersion(u32),
    /// The stream ended inside a header, section or payload.
    Truncated,
    /// A section's payload does not match its stored checksum.
    ChecksumMismatch {
        /// The tag of the failing section.
        section: u8,
    },
    /// The stream decoded but its contents are inconsistent — an
    /// out-of-range index, a non-canonical arena node, a module that
    /// fails verification, …
    Corrupt(String),
    /// `load_verify` was requested and the loaded state differs from a
    /// scratch re-analysis of the restored module.
    VerifyFailed(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            PersistError::BadMagic => write!(f, "not a session snapshot (bad magic)"),
            PersistError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot format version {v} (supported: {FORMAT_VERSION})"
                )
            }
            PersistError::Truncated => write!(f, "snapshot stream is truncated"),
            PersistError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in snapshot section {section:#x}")
            }
            PersistError::Corrupt(why) => write!(f, "corrupt snapshot: {why}"),
            PersistError::VerifyFailed(why) => {
                write!(
                    f,
                    "loaded snapshot failed verification against scratch: {why}"
                )
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        // An unexpected EOF mid-read means the stream was cut short.
        if e.kind() == io::ErrorKind::UnexpectedEof {
            PersistError::Truncated
        } else {
            PersistError::Io(e)
        }
    }
}

/// Shorthand for a payload-level inconsistency.
pub(crate) fn corrupt(why: impl Into<String>) -> PersistError {
    PersistError::Corrupt(why.into())
}

fn checksum(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

// ---------------------------------------------------------------------
// Primitive little-endian encoding into an in-memory section buffer.
// ---------------------------------------------------------------------

/// An encoder for one section's payload.
#[derive(Default)]
pub(crate) struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub fn new() -> Self {
        Enc::default()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i128(&mut self, v: i128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Encodes a sub-payload with a leading byte length
    /// (readable back with [`Dec::bytes`]) — the framing that lets a
    /// loader split a section into independently decodable slices.
    pub fn nested(&mut self, f: impl FnOnce(&mut Enc)) {
        let mut sub = Enc::new();
        f(&mut sub);
        self.bytes(&sub.buf);
    }

    pub fn opt_u32(&mut self, v: Option<u32>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u32(x);
            }
        }
    }

    /// Writes this payload as one framed section: tag, length, bytes,
    /// checksum.
    pub fn finish_section(self, w: &mut impl Write, tag: u8) -> Result<(), PersistError> {
        w.write_all(&[tag])?;
        w.write_all(&(self.buf.len() as u64).to_le_bytes())?;
        w.write_all(&self.buf)?;
        w.write_all(&checksum(&self.buf).to_le_bytes())?;
        Ok(())
    }
}

/// Writes the zero-payload END section.
pub(crate) fn write_end(w: &mut impl Write) -> Result<(), PersistError> {
    Enc::new().finish_section(w, tag::END)
}

// ---------------------------------------------------------------------
// Bounded decoding out of a checksum-verified section buffer.
// ---------------------------------------------------------------------

/// A decoder over one section's verified payload. Every read is
/// bounds-checked; running off the end is [`PersistError::Truncated`].
pub(crate) struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn i64(&mut self) -> Result<i64, PersistError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn i128(&mut self) -> Result<i128, PersistError> {
        Ok(i128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    pub fn usize(&mut self) -> Result<usize, PersistError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| corrupt("length overflows the address space"))
    }

    /// A collection length that must be plausible for elements of at
    /// least `min_elem_bytes` in the remaining payload — rejecting
    /// bogus lengths before any allocation is sized by them.
    pub fn len(&mut self, min_elem_bytes: usize) -> Result<usize, PersistError> {
        let n = self.usize()?;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(PersistError::Truncated);
        }
        Ok(n)
    }

    pub fn bool(&mut self) -> Result<bool, PersistError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(corrupt(format!("invalid bool byte {b}"))),
        }
    }

    pub fn bytes(&mut self) -> Result<&'a [u8], PersistError> {
        let n = self.len(1)?;
        self.take(n)
    }

    pub fn str(&mut self) -> Result<String, PersistError> {
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec()).map_err(|_| corrupt("invalid utf-8 string"))
    }

    pub fn opt_u32(&mut self) -> Result<Option<u32>, PersistError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u32()?)),
            b => Err(corrupt(format!("invalid option byte {b}"))),
        }
    }

    /// The payload must be fully consumed; trailing bytes mean the
    /// reader and writer disagree about the layout.
    pub fn finish(self) -> Result<(), PersistError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(corrupt(format!(
                "{} trailing bytes in section",
                self.remaining()
            )))
        }
    }
}

// ---------------------------------------------------------------------
// Stream-level framing.
// ---------------------------------------------------------------------

/// Writes the stream header (magic + version).
pub(crate) fn write_header(w: &mut impl Write, magic: &[u8; 8]) -> Result<(), PersistError> {
    w.write_all(magic)?;
    w.write_all(&FORMAT_VERSION.to_le_bytes())?;
    Ok(())
}

/// Reads and validates the stream header.
pub(crate) fn read_header(r: &mut impl Read, magic: &[u8; 8]) -> Result<(), PersistError> {
    let mut got = [0u8; 8];
    r.read_exact(&mut got)?;
    if &got != magic {
        return Err(PersistError::BadMagic);
    }
    let mut v = [0u8; 4];
    r.read_exact(&mut v)?;
    let version = u32::from_le_bytes(v);
    if version != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }
    Ok(())
}

/// Reads one framed section: `(tag, verified payload)`. The payload is
/// read through [`Read::take`], so a bogus length cannot trigger an
/// outsized allocation — the stream simply runs dry first.
pub(crate) fn read_section(r: &mut impl Read) -> Result<(u8, Vec<u8>), PersistError> {
    let mut tag_b = [0u8; 1];
    r.read_exact(&mut tag_b)?;
    let mut len_b = [0u8; 8];
    r.read_exact(&mut len_b)?;
    let len = u64::from_le_bytes(len_b);
    let mut payload = Vec::new();
    r.take(len).read_to_end(&mut payload)?;
    if payload.len() as u64 != len {
        return Err(PersistError::Truncated);
    }
    let mut sum_b = [0u8; 8];
    r.read_exact(&mut sum_b)?;
    if u64::from_le_bytes(sum_b) != checksum(&payload) {
        return Err(PersistError::ChecksumMismatch { section: tag_b[0] });
    }
    Ok((tag_b[0], payload))
}

/// Reads a section and checks its tag against the expected one.
pub(crate) fn expect_section(r: &mut impl Read, want: u8) -> Result<Vec<u8>, PersistError> {
    let (tag, payload) = read_section(r)?;
    if tag != want {
        return Err(corrupt(format!(
            "expected section {want:#x}, found {tag:#x}"
        )));
    }
    Ok(payload)
}

// ---------------------------------------------------------------------
// ExprArena codec: nodes in stored topological order, ids implicit.
// ---------------------------------------------------------------------

use sra_ir::{
    BinOp, BlockData, BlockId, Callee, CmpOp, FuncId, Function, GlobalId, Inst, Module, Terminator,
    Ty, ValueData, ValueId, ValueKind,
};
use sra_symbolic::{ExprArena, RawAtom, RawBound, RawExprNode, RawRangeNode};

pub(crate) fn encode_arena(enc: &mut Enc, arena: &ExprArena) {
    let (exprs, ranges) = arena.export_raw();
    enc.usize(exprs.len());
    for e in &exprs {
        enc.i128(e.constant);
        enc.usize(e.terms.len());
        for (atoms, coeff) in &e.terms {
            enc.i128(*coeff);
            enc.usize(atoms.len());
            for a in atoms {
                match a {
                    RawAtom::Sym(s) => {
                        enc.u8(0);
                        enc.u32(*s);
                    }
                    RawAtom::Min(x, y) => {
                        enc.u8(1);
                        enc.u32(*x);
                        enc.u32(*y);
                    }
                    RawAtom::Max(x, y) => {
                        enc.u8(2);
                        enc.u32(*x);
                        enc.u32(*y);
                    }
                    RawAtom::Div(x, y) => {
                        enc.u8(3);
                        enc.u32(*x);
                        enc.u32(*y);
                    }
                    RawAtom::Mod(x, y) => {
                        enc.u8(4);
                        enc.u32(*x);
                        enc.u32(*y);
                    }
                }
            }
        }
    }
    enc.usize(ranges.len());
    for r in &ranges {
        match r {
            RawRangeNode::Empty => enc.u8(0),
            RawRangeNode::Interval(lo, hi) => {
                enc.u8(1);
                for b in [lo, hi] {
                    match b {
                        RawBound::NegInf => enc.u8(0),
                        RawBound::PosInf => enc.u8(1),
                        RawBound::Fin(e) => {
                            enc.u8(2);
                            enc.u32(*e);
                        }
                    }
                }
            }
        }
    }
}

pub(crate) fn decode_arena(dec: &mut Dec<'_>) -> Result<ExprArena, PersistError> {
    let n_exprs = dec.len(17)?;
    let mut exprs = Vec::with_capacity(n_exprs);
    for _ in 0..n_exprs {
        let constant = dec.i128()?;
        let n_terms = dec.len(17)?;
        let mut terms = Vec::with_capacity(n_terms);
        for _ in 0..n_terms {
            let coeff = dec.i128()?;
            let n_atoms = dec.len(5)?;
            let mut atoms = Vec::with_capacity(n_atoms);
            for _ in 0..n_atoms {
                let atom = match dec.u8()? {
                    0 => RawAtom::Sym(dec.u32()?),
                    1 => RawAtom::Min(dec.u32()?, dec.u32()?),
                    2 => RawAtom::Max(dec.u32()?, dec.u32()?),
                    3 => RawAtom::Div(dec.u32()?, dec.u32()?),
                    4 => RawAtom::Mod(dec.u32()?, dec.u32()?),
                    b => return Err(corrupt(format!("invalid atom tag {b}"))),
                };
                atoms.push(atom);
            }
            terms.push((atoms, coeff));
        }
        exprs.push(RawExprNode { constant, terms });
    }
    let n_ranges = dec.len(1)?;
    let mut ranges = Vec::with_capacity(n_ranges);
    for _ in 0..n_ranges {
        let node = match dec.u8()? {
            0 => RawRangeNode::Empty,
            1 => {
                let mut bound = || -> Result<RawBound, PersistError> {
                    Ok(match dec.u8()? {
                        0 => RawBound::NegInf,
                        1 => RawBound::PosInf,
                        2 => RawBound::Fin(dec.u32()?),
                        b => return Err(corrupt(format!("invalid bound tag {b}"))),
                    })
                };
                let lo = bound()?;
                let hi = bound()?;
                RawRangeNode::Interval(lo, hi)
            }
            b => return Err(corrupt(format!("invalid range tag {b}"))),
        };
        ranges.push(node);
    }
    ExprArena::from_raw(&exprs, &ranges).map_err(|e| corrupt(format!("arena rejected: {e}")))
}

// ---------------------------------------------------------------------
// Module codec.
// ---------------------------------------------------------------------

fn encode_ty(enc: &mut Enc, ty: Ty) {
    enc.u8(match ty {
        Ty::Ptr => 0,
        Ty::Int => 1,
    });
}

fn decode_ty(dec: &mut Dec<'_>) -> Result<Ty, PersistError> {
    match dec.u8()? {
        0 => Ok(Ty::Ptr),
        1 => Ok(Ty::Int),
        b => Err(corrupt(format!("invalid type tag {b}"))),
    }
}

fn encode_opt_ty(enc: &mut Enc, ty: Option<Ty>) {
    match ty {
        None => enc.u8(0xFF),
        Some(t) => encode_ty(enc, t),
    }
}

fn decode_opt_ty(dec: &mut Dec<'_>) -> Result<Option<Ty>, PersistError> {
    match dec.u8()? {
        0xFF => Ok(None),
        0 => Ok(Some(Ty::Ptr)),
        1 => Ok(Some(Ty::Int)),
        b => Err(corrupt(format!("invalid optional-type tag {b}"))),
    }
}

fn encode_inst(enc: &mut Enc, inst: &Inst) {
    match inst {
        Inst::Malloc { size } => {
            enc.u8(0);
            enc.u32(size.index() as u32);
        }
        Inst::Alloca { size } => {
            enc.u8(1);
            enc.u32(size.index() as u32);
        }
        Inst::Free { ptr } => {
            enc.u8(2);
            enc.u32(ptr.index() as u32);
        }
        Inst::PtrAdd { base, offset } => {
            enc.u8(3);
            enc.u32(base.index() as u32);
            enc.u32(offset.index() as u32);
        }
        Inst::IntBin { op, lhs, rhs } => {
            enc.u8(4);
            enc.u8(*op as u8);
            enc.u32(lhs.index() as u32);
            enc.u32(rhs.index() as u32);
        }
        Inst::Cmp { op, lhs, rhs } => {
            enc.u8(5);
            enc.u8(*op as u8);
            enc.u32(lhs.index() as u32);
            enc.u32(rhs.index() as u32);
        }
        Inst::Load { ptr, ty } => {
            enc.u8(6);
            enc.u32(ptr.index() as u32);
            encode_ty(enc, *ty);
        }
        Inst::Store { ptr, val } => {
            enc.u8(7);
            enc.u32(ptr.index() as u32);
            enc.u32(val.index() as u32);
        }
        Inst::Phi { ty, args } => {
            enc.u8(8);
            encode_ty(enc, *ty);
            enc.usize(args.len());
            for (b, v) in args {
                enc.u32(b.index() as u32);
                enc.u32(v.index() as u32);
            }
        }
        Inst::Sigma { input, op, other } => {
            enc.u8(9);
            enc.u32(input.index() as u32);
            enc.u8(*op as u8);
            enc.u32(other.index() as u32);
        }
        Inst::Call {
            callee,
            args,
            ret_ty,
        } => {
            enc.u8(10);
            match callee {
                Callee::Internal(f) => {
                    enc.u8(0);
                    enc.u32(f.index() as u32);
                }
                Callee::External(name) => {
                    enc.u8(1);
                    enc.str(name);
                }
            }
            enc.usize(args.len());
            for v in args {
                enc.u32(v.index() as u32);
            }
            encode_opt_ty(enc, *ret_ty);
        }
    }
}

fn decode_binop(dec: &mut Dec<'_>) -> Result<BinOp, PersistError> {
    Ok(match dec.u8()? {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Rem,
        b => return Err(corrupt(format!("invalid binop tag {b}"))),
    })
}

fn decode_cmpop(dec: &mut Dec<'_>) -> Result<CmpOp, PersistError> {
    Ok(match dec.u8()? {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        5 => CmpOp::Ge,
        b => return Err(corrupt(format!("invalid cmpop tag {b}"))),
    })
}

fn vid(dec: &mut Dec<'_>) -> Result<ValueId, PersistError> {
    Ok(ValueId::new(dec.u32()? as usize))
}

fn decode_inst(dec: &mut Dec<'_>) -> Result<Inst, PersistError> {
    Ok(match dec.u8()? {
        0 => Inst::Malloc { size: vid(dec)? },
        1 => Inst::Alloca { size: vid(dec)? },
        2 => Inst::Free { ptr: vid(dec)? },
        3 => Inst::PtrAdd {
            base: vid(dec)?,
            offset: vid(dec)?,
        },
        4 => Inst::IntBin {
            op: decode_binop(dec)?,
            lhs: vid(dec)?,
            rhs: vid(dec)?,
        },
        5 => Inst::Cmp {
            op: decode_cmpop(dec)?,
            lhs: vid(dec)?,
            rhs: vid(dec)?,
        },
        6 => Inst::Load {
            ptr: vid(dec)?,
            ty: decode_ty(dec)?,
        },
        7 => Inst::Store {
            ptr: vid(dec)?,
            val: vid(dec)?,
        },
        8 => {
            let ty = decode_ty(dec)?;
            let n = dec.len(8)?;
            let mut args = Vec::with_capacity(n);
            for _ in 0..n {
                let b = BlockId::new(dec.u32()? as usize);
                let v = vid(dec)?;
                args.push((b, v));
            }
            Inst::Phi { ty, args }
        }
        9 => Inst::Sigma {
            input: vid(dec)?,
            op: decode_cmpop(dec)?,
            other: vid(dec)?,
        },
        10 => {
            let callee = match dec.u8()? {
                0 => Callee::Internal(FuncId::new(dec.u32()? as usize)),
                1 => Callee::External(dec.str()?),
                b => return Err(corrupt(format!("invalid callee tag {b}"))),
            };
            let n = dec.len(4)?;
            let mut args = Vec::with_capacity(n);
            for _ in 0..n {
                args.push(vid(dec)?);
            }
            let ret_ty = decode_opt_ty(dec)?;
            Inst::Call {
                callee,
                args,
                ret_ty,
            }
        }
        b => return Err(corrupt(format!("invalid instruction tag {b}"))),
    })
}

fn encode_function(enc: &mut Enc, f: &Function) {
    enc.str(f.name());
    enc.usize(f.param_tys().len());
    for &t in f.param_tys() {
        encode_ty(enc, t);
    }
    encode_opt_ty(enc, f.ret_ty());
    enc.usize(f.params().len());
    for &p in f.params() {
        enc.u32(p.index() as u32);
    }
    enc.usize(f.num_values());
    for v in f.value_ids() {
        let data = f.value(v);
        encode_opt_ty(enc, data.ty());
        match data.kind() {
            ValueKind::Param { index } => {
                enc.u8(0);
                enc.u32(*index as u32);
            }
            ValueKind::Const(c) => {
                enc.u8(1);
                enc.i64(*c);
            }
            ValueKind::GlobalAddr(g) => {
                enc.u8(2);
                enc.u32(g.index() as u32);
            }
            ValueKind::Inst(i) => {
                enc.u8(3);
                encode_inst(enc, i);
            }
        }
        match data.block() {
            None => enc.u8(0),
            Some(b) => {
                enc.u8(1);
                enc.u32(b.index() as u32);
            }
        }
        match data.name() {
            None => enc.u8(0),
            Some(n) => {
                enc.u8(1);
                enc.str(n);
            }
        }
    }
    enc.usize(f.num_blocks());
    for b in f.block_ids() {
        let block = f.block(b);
        enc.usize(block.insts().len());
        for &v in block.insts() {
            enc.u32(v.index() as u32);
        }
        match block.terminator_opt() {
            None => enc.u8(0),
            Some(Terminator::Jump(t)) => {
                enc.u8(1);
                enc.u32(t.index() as u32);
            }
            Some(Terminator::Br {
                cond,
                then_bb,
                else_bb,
            }) => {
                enc.u8(2);
                enc.u32(cond.index() as u32);
                enc.u32(then_bb.index() as u32);
                enc.u32(else_bb.index() as u32);
            }
            Some(Terminator::Ret(v)) => {
                enc.u8(3);
                enc.opt_u32(v.map(|v| v.index() as u32));
            }
        }
    }
    enc.bool(f.is_exported());
}

fn decode_function(dec: &mut Dec<'_>) -> Result<Function, PersistError> {
    let name = dec.str()?;
    let n_param_tys = dec.len(1)?;
    let mut param_tys = Vec::with_capacity(n_param_tys);
    for _ in 0..n_param_tys {
        param_tys.push(decode_ty(dec)?);
    }
    let ret_ty = decode_opt_ty(dec)?;
    let n_params = dec.len(4)?;
    let mut params = Vec::with_capacity(n_params);
    for _ in 0..n_params {
        params.push(vid(dec)?);
    }
    let n_values = dec.len(3)?;
    let mut values = Vec::with_capacity(n_values);
    for _ in 0..n_values {
        let ty = decode_opt_ty(dec)?;
        let kind = match dec.u8()? {
            0 => ValueKind::Param {
                index: dec.u32()? as usize,
            },
            1 => ValueKind::Const(dec.i64()?),
            2 => ValueKind::GlobalAddr(GlobalId::new(dec.u32()? as usize)),
            3 => ValueKind::Inst(decode_inst(dec)?),
            b => return Err(corrupt(format!("invalid value-kind tag {b}"))),
        };
        let block = match dec.u8()? {
            0 => None,
            1 => Some(BlockId::new(dec.u32()? as usize)),
            b => return Err(corrupt(format!("invalid block-option tag {b}"))),
        };
        let vname = match dec.u8()? {
            0 => None,
            1 => Some(dec.str()?),
            b => return Err(corrupt(format!("invalid name-option tag {b}"))),
        };
        values.push(ValueData::from_raw_parts(ty, kind, block, vname));
    }
    let n_blocks = dec.len(9)?;
    let mut blocks = Vec::with_capacity(n_blocks);
    for _ in 0..n_blocks {
        let n_insts = dec.len(4)?;
        let mut insts = Vec::with_capacity(n_insts);
        for _ in 0..n_insts {
            insts.push(vid(dec)?);
        }
        let term = match dec.u8()? {
            0 => None,
            1 => Some(Terminator::Jump(BlockId::new(dec.u32()? as usize))),
            2 => Some(Terminator::Br {
                cond: vid(dec)?,
                then_bb: BlockId::new(dec.u32()? as usize),
                else_bb: BlockId::new(dec.u32()? as usize),
            }),
            3 => Some(Terminator::Ret(
                dec.opt_u32()?.map(|v| ValueId::new(v as usize)),
            )),
            b => return Err(corrupt(format!("invalid terminator tag {b}"))),
        };
        blocks.push(BlockData::from_raw_parts(insts, term));
    }
    let exported = dec.bool()?;
    Ok(Function::from_raw_parts(
        name, param_tys, ret_ty, params, values, blocks, exported,
    ))
}

/// Encodes the module plus its call graph's adjacency (the callee
/// lists), which the loader cross-checks against a freshly built
/// [`sra_ir::callgraph::CallGraph`].
pub(crate) fn encode_module(enc: &mut Enc, m: &Module, callgraph: &sra_ir::callgraph::CallGraph) {
    enc.usize(m.num_globals());
    for g in m.global_ids() {
        let global = m.global(g);
        enc.str(global.name());
        enc.i64(global.size());
    }
    enc.usize(m.num_functions());
    for f in m.func_ids() {
        encode_function(enc, m.function(f));
    }
    for f in m.func_ids() {
        let callees = callgraph.callees(f);
        enc.usize(callees.len());
        for &c in callees {
            enc.u32(c.index() as u32);
        }
    }
}

/// Decodes and *verifies* the module: IR verification plus the stored
/// call-graph adjacency matching a rebuild.
pub(crate) fn decode_module(
    dec: &mut Dec<'_>,
) -> Result<(Module, sra_ir::callgraph::CallGraph), PersistError> {
    let mut m = Module::new();
    let n_globals = dec.len(9)?;
    for _ in 0..n_globals {
        let name = dec.str()?;
        let size = dec.i64()?;
        m.add_global(&name, size);
    }
    let n_funcs = dec.len(8)?;
    for _ in 0..n_funcs {
        let f = decode_function(dec)?;
        m.add_function(f);
    }
    sra_ir::verify::verify_module(&m)
        .map_err(|e| corrupt(format!("module fails verification: {e}")))?;
    let callgraph = sra_ir::callgraph::CallGraph::build(&m);
    for f in m.func_ids() {
        let n = dec.len(4)?;
        let stored: Vec<FuncId> = (0..n)
            .map(|_| Ok(FuncId::new(dec.u32()? as usize)))
            .collect::<Result<_, PersistError>>()?;
        if stored != callgraph.callees(f) {
            return Err(corrupt(format!(
                "call graph of {f:?} does not match the module"
            )));
        }
    }
    Ok((m, callgraph))
}

// ---------------------------------------------------------------------
// PtrState and analysis-part codecs.
// ---------------------------------------------------------------------

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::locs::LocId;
use crate::lr::{LocalBase, LrPart, LrState};
use crate::state::PtrState;
use sra_range::RangePart;
use sra_symbolic::RangeId;

pub(crate) fn encode_ptr_state(enc: &mut Enc, st: &PtrState) {
    match st {
        PtrState::Top => enc.u8(0),
        PtrState::Map(m) => {
            enc.u8(1);
            enc.usize(m.len());
            for (&loc, &r) in m {
                enc.u32(loc.index() as u32);
                enc.u32(r.index() as u32);
            }
        }
    }
}

pub(crate) fn decode_ptr_state(
    dec: &mut Dec<'_>,
    num_locs: usize,
    arena: &ExprArena,
) -> Result<PtrState, PersistError> {
    match dec.u8()? {
        0 => Ok(PtrState::Top),
        1 => {
            let n = dec.len(8)?;
            let mut m = BTreeMap::new();
            let mut prev: Option<LocId> = None;
            for _ in 0..n {
                let loc = LocId::new(dec.u32()? as usize);
                if loc.index() >= num_locs {
                    return Err(corrupt("pointer state references unknown location"));
                }
                if prev.is_some_and(|p| p.index() >= loc.index()) {
                    return Err(corrupt("pointer-state support is not sorted"));
                }
                prev = Some(loc);
                let r = arena
                    .range_id(dec.u32()? as usize)
                    .ok_or_else(|| corrupt("pointer state references unknown range"))?;
                m.insert(loc, r);
            }
            Ok(PtrState::Map(m))
        }
        b => Err(corrupt(format!("invalid pointer-state tag {b}"))),
    }
}

fn encode_range_ids(enc: &mut Enc, ids: &[RangeId]) {
    enc.usize(ids.len());
    for r in ids {
        enc.u32(r.index() as u32);
    }
}

fn decode_range_ids(dec: &mut Dec<'_>, arena: &ExprArena) -> Result<Vec<RangeId>, PersistError> {
    let n = dec.len(4)?;
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        let r = arena
            .range_id(dec.u32()? as usize)
            .ok_or_else(|| corrupt("part references unknown range"))?;
        ids.push(r);
    }
    Ok(ids)
}

fn encode_symbols(enc: &mut Enc, first_symbol: u32, names: &[String]) {
    enc.u32(first_symbol);
    enc.usize(names.len());
    for n in names {
        enc.str(n);
    }
}

fn decode_symbols(dec: &mut Dec<'_>) -> Result<(u32, Vec<String>), PersistError> {
    let first_symbol = dec.u32()?;
    let n = dec.len(8)?;
    let mut names = Vec::with_capacity(n);
    for _ in 0..n {
        names.push(dec.str()?);
    }
    Ok((first_symbol, names))
}

pub(crate) fn encode_range_part(enc: &mut Enc, part: &RangePart) {
    encode_arena(enc, &part.arena);
    encode_range_ids(enc, &part.ranges);
    encode_symbols(enc, part.first_symbol, &part.symbol_names);
}

pub(crate) fn decode_range_part(dec: &mut Dec<'_>) -> Result<RangePart, PersistError> {
    let arena = decode_arena(dec)?;
    let ranges = decode_range_ids(dec, &arena)?;
    let (first_symbol, symbol_names) = decode_symbols(dec)?;
    Ok(RangePart {
        arena: Arc::new(arena),
        ranges: Arc::new(ranges),
        first_symbol,
        symbol_names,
    })
}

pub(crate) fn encode_lr_part(enc: &mut Enc, part: &LrPart) {
    encode_arena(enc, &part.arena);
    enc.usize(part.states.len());
    for st in part.states.iter() {
        match st {
            None => enc.u8(0),
            Some(s) => {
                enc.u8(1);
                match s.base {
                    LocalBase::Fresh(sym) => {
                        enc.u8(0);
                        enc.u32(sym);
                    }
                    LocalBase::Global(g) => {
                        enc.u8(1);
                        enc.u32(g.index() as u32);
                    }
                }
                enc.u32(s.range.index() as u32);
                enc.usize(s.sigmas.len());
                for v in &s.sigmas {
                    enc.u32(v.index() as u32);
                }
                enc.opt_u32(s.block.map(|b| b.index() as u32));
            }
        }
    }
    encode_symbols(enc, part.first_symbol, &part.symbol_names);
}

/// `num_values`/`num_blocks` bound the function the part belongs to;
/// `num_globals` bounds the module's global table.
pub(crate) fn decode_lr_part(
    dec: &mut Dec<'_>,
    num_values: usize,
    num_blocks: usize,
    num_globals: usize,
) -> Result<LrPart, PersistError> {
    let arena = decode_arena(dec)?;
    let n = dec.len(1)?;
    if n != num_values {
        return Err(corrupt("LR state table does not match the function"));
    }
    let mut states = Vec::with_capacity(n);
    for _ in 0..n {
        let st = match dec.u8()? {
            0 => None,
            1 => {
                let base = match dec.u8()? {
                    0 => LocalBase::Fresh(dec.u32()?),
                    1 => {
                        let g = GlobalId::new(dec.u32()? as usize);
                        if g.index() >= num_globals {
                            return Err(corrupt("LR state references unknown global"));
                        }
                        LocalBase::Global(g)
                    }
                    b => return Err(corrupt(format!("invalid local-base tag {b}"))),
                };
                let range = arena
                    .range_id(dec.u32()? as usize)
                    .ok_or_else(|| corrupt("LR state references unknown range"))?;
                let n_sigmas = dec.len(4)?;
                let mut sigmas = Vec::with_capacity(n_sigmas);
                for _ in 0..n_sigmas {
                    let v = ValueId::new(dec.u32()? as usize);
                    if v.index() >= num_values {
                        return Err(corrupt("LR state references unknown value"));
                    }
                    sigmas.push(v);
                }
                let block = match dec.opt_u32()? {
                    None => None,
                    Some(b) => {
                        if b as usize >= num_blocks {
                            return Err(corrupt("LR state references unknown block"));
                        }
                        Some(BlockId::new(b as usize))
                    }
                };
                Some(LrState {
                    base,
                    range,
                    sigmas,
                    block,
                })
            }
            b => return Err(corrupt(format!("invalid LR-state tag {b}"))),
        };
        states.push(st);
    }
    let (first_symbol, symbol_names) = decode_symbols(dec)?;
    Ok(LrPart {
        arena: Arc::new(arena),
        states: Arc::new(states),
        first_symbol,
        symbol_names,
    })
}

// ---------------------------------------------------------------------
// AnalysisConfig header codec.
// ---------------------------------------------------------------------

use crate::config::AnalysisConfig;
use crate::gr::{GrConfig, GrSchedule};
use crate::query::QueryMode;
use sra_range::RangeConfig;

pub(crate) fn encode_config(enc: &mut Enc, c: &AnalysisConfig) {
    enc.usize(c.threads);
    enc.u32(c.range.descending_steps);
    enc.u32(c.range.max_ascending_sweeps);
    enc.bool(c.range.loads_as_symbols);
    enc.u32(c.gr.descending_steps);
    enc.u32(c.gr.max_ascending_sweeps);
    enc.bool(c.gr.widening);
    enc.u8(match c.gr.schedule {
        GrSchedule::Serial => 0,
        GrSchedule::Waves => 1,
    });
    enc.usize(c.gr.threads);
    enc.u8(match c.query_mode {
        QueryMode::Matrix => 0,
        QueryMode::Demand => 1,
    });
    enc.bool(c.load_verify);
}

pub(crate) fn decode_config(dec: &mut Dec<'_>) -> Result<AnalysisConfig, PersistError> {
    let threads = dec.usize()?;
    let range = RangeConfig {
        descending_steps: dec.u32()?,
        max_ascending_sweeps: dec.u32()?,
        loads_as_symbols: dec.bool()?,
    };
    let gr = GrConfig {
        descending_steps: dec.u32()?,
        max_ascending_sweeps: dec.u32()?,
        widening: dec.bool()?,
        schedule: match dec.u8()? {
            0 => GrSchedule::Serial,
            1 => GrSchedule::Waves,
            b => return Err(corrupt(format!("invalid schedule tag {b}"))),
        },
        threads: dec.usize()?,
    };
    let query_mode = match dec.u8()? {
        0 => QueryMode::Matrix,
        1 => QueryMode::Demand,
        b => return Err(corrupt(format!("invalid query-mode tag {b}"))),
    };
    let load_verify = dec.bool()?;
    Ok(AnalysisConfig {
        threads,
        range,
        gr,
        query_mode,
        load_verify,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sections_roundtrip_and_detect_damage() {
        let mut enc = Enc::new();
        enc.u32(7);
        enc.str("hello");
        enc.opt_u32(None);
        enc.opt_u32(Some(42));
        enc.i128(-3);
        let mut out = Vec::new();
        write_header(&mut out, &MAGIC).unwrap();
        enc.finish_section(&mut out, tag::MODULE).unwrap();
        write_end(&mut out).unwrap();

        let mut r = &out[..];
        read_header(&mut r, &MAGIC).unwrap();
        let payload = expect_section(&mut r, tag::MODULE).unwrap();
        let mut dec = Dec::new(&payload);
        assert_eq!(dec.u32().unwrap(), 7);
        assert_eq!(dec.str().unwrap(), "hello");
        assert_eq!(dec.opt_u32().unwrap(), None);
        assert_eq!(dec.opt_u32().unwrap(), Some(42));
        assert_eq!(dec.i128().unwrap(), -3);
        dec.finish().unwrap();
        let (end, _) = read_section(&mut r).unwrap();
        assert_eq!(end, tag::END);

        // Bad magic.
        let mut bad = out.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            read_header(&mut &bad[..], &MAGIC),
            Err(PersistError::BadMagic)
        ));
        // Version skew.
        let mut bad = out.clone();
        bad[8] = 0xEE;
        assert!(matches!(
            read_header(&mut &bad[..], &MAGIC),
            Err(PersistError::UnsupportedVersion(_))
        ));
        // A flipped payload byte fails the section checksum.
        let mut bad = out.clone();
        bad[12 + 9 + 3] ^= 0x01;
        let mut r = &bad[..];
        read_header(&mut r, &MAGIC).unwrap();
        assert!(matches!(
            read_section(&mut r),
            Err(PersistError::ChecksumMismatch { .. })
        ));
        // Truncation anywhere fails cleanly.
        for cut in 0..out.len() {
            let mut r = &out[..cut];
            let res = read_header(&mut r, &MAGIC).and_then(|()| loop {
                let (tag, _) = read_section(&mut r)?;
                if tag == tag::END {
                    break Ok(());
                }
            });
            assert!(res.is_err(), "cut at {cut} slipped through");
        }
    }
}
