//! Alias queries: the global test `QGR`, the local test `QLR`, the
//! combined analysis of the paper's Figure 5, the per-function
//! [`AliasMatrix`] cache that answers all-pairs workloads in `O(1)`
//! per repeat query, and the [`DemandCache`] that answers single
//! queries without paying the all-pairs triangle.

use std::sync::Arc;

use sra_ir::{BlockId, FuncId, Module, Ty, ValueId};
use sra_range::RangeAnalysis;
use sra_symbolic::{ArenaStats, ExprArena, FxHashMap, RangeId, SymbolTable};

use crate::gr::{GrAnalysis, GrConfig};
use crate::locs::{LocId, LocKind, LocTable};
use crate::lr::{LocalBase, LrAnalysis};
use crate::pool;
use crate::state::PtrState;

/// The verdict of one alias query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AliasResult {
    /// The two pointers provably never reference overlapping memory.
    NoAlias,
    /// Overlap could not be ruled out.
    MayAlias,
}

/// Which of the complementary mechanisms produced a `NoAlias` answer.
///
/// The paper's Figure 14 attributes answers to the *global test* only
/// when symbolic range comparison on a **common** location was needed;
/// the bulk of disambiguation comes from pointers whose supports do not
/// intersect at all ("comparing offsets from different locations", §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WhichTest {
    /// Supports are disjoint: the pointers address different allocation
    /// sites (or one of them addresses nothing).
    DistinctLocs,
    /// The global test of §3.5 proper: the supports share at least one
    /// location, and the symbolic offset ranges are provably disjoint
    /// everywhere.
    Global,
    /// The local test of §3.7 (same local base, disjoint offsets).
    Local,
}

/// How a session or service answers alias queries.
///
/// Both modes are pinned byte-identical to the uncached
/// [`RbaaAnalysis::alias_with_test`] reference; they trade *where* the
/// work happens. `Matrix` pays the all-pairs triangle at (re)build time
/// and answers lookups in `O(1)`; `Demand` builds nothing up front and
/// proves each signature pair the first time a query needs it — the
/// right choice when consumers touch a sparse subset of the `O(P²)`
/// pair universe (the scaling cliff of giant functions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum QueryMode {
    /// Eagerly build per-function [`AliasMatrix`] caches; queries are
    /// lock-free `O(1)` lookups.
    #[default]
    Matrix,
    /// Answer queries from a lazily grown [`DemandCache`]. The cache
    /// memoises per signature pair under a mutex, so concurrent readers
    /// of one snapshot serialize on it — throughput-critical all-pairs
    /// consumers should prefer `Matrix`.
    Demand,
}

/// A pointer disambiguation oracle.
///
/// Implemented by [`RbaaAnalysis`] here and by the baseline analyses in
/// the `sra-baselines` crate, so that the evaluation harness can compare
/// them uniformly.
pub trait AliasAnalysis {
    /// A short name for reports (`rbaa`, `basic`, `scev`).
    fn name(&self) -> &'static str;

    /// May `p` and `q` (two pointer-typed values of function `f`)
    /// reference overlapping memory?
    fn alias(&self, f: FuncId, p: ValueId, q: ValueId) -> AliasResult;
}

/// The paper's combined range-based alias analysis (`rbaa`): the global
/// symbolic range analysis of pointers plus the local renaming test.
///
/// Construct with [`RbaaAnalysis::analyze`]; the module should already
/// be in e-SSA form (run [`sra_ir::essa::run`] on each function during
/// lowering) — the analysis is still sound on plain SSA, only less
/// precise, because σ-nodes are where comparison information enters.
#[derive(Debug, Clone)]
pub struct RbaaAnalysis {
    ranges: RangeAnalysis,
    gr: GrAnalysis,
    lr: LrAnalysis,
}

impl RbaaAnalysis {
    /// Runs the full pipeline of Figure 5: bootstrap integer ranges,
    /// global pointer analysis, local pointer analysis.
    pub fn analyze(m: &Module) -> Self {
        Self::analyze_with(m, GrConfig::default())
    }

    /// Runs the pipeline with an explicit global-analysis configuration.
    pub fn analyze_with(m: &Module, config: GrConfig) -> Self {
        let ranges = RangeAnalysis::analyze(m);
        let gr = GrAnalysis::analyze_with(m, &ranges, config);
        let lr = LrAnalysis::analyze(m);
        RbaaAnalysis { ranges, gr, lr }
    }

    /// Assembles a result from already-computed pieces (the batch
    /// driver runs the per-function pieces on worker threads; external
    /// harnesses use it to time alternative pipeline schedules).
    pub fn from_pieces(ranges: RangeAnalysis, gr: GrAnalysis, lr: LrAnalysis) -> Self {
        RbaaAnalysis { ranges, gr, lr }
    }

    /// The bootstrap integer range analysis.
    pub fn ranges(&self) -> &RangeAnalysis {
        &self.ranges
    }

    /// The global pointer analysis.
    pub fn gr(&self) -> &GrAnalysis {
        &self.gr
    }

    /// The local pointer analysis.
    pub fn lr(&self) -> &LrAnalysis {
        &self.lr
    }

    /// The symbol table for displaying analysis states.
    pub fn symbols(&self) -> &SymbolTable {
        self.ranges.symbols()
    }

    /// Summed arena counters of the three module arenas (bootstrap
    /// ranges, GR, LR) — the interning effectiveness of one analysis.
    pub fn arena_stats(&self) -> ArenaStats {
        let mut s = self.ranges.arena().stats();
        s.merge(&self.gr.arena().stats());
        s.merge(&self.lr.arena().stats());
        s
    }

    /// Like [`AliasAnalysis::alias`], additionally reporting which test
    /// fired for a `NoAlias` answer (the paper's Figure 14 attribution).
    ///
    /// This is the *uncached reference path*: each call re-proves its
    /// range comparisons from the interned states (reconstructing the
    /// handful of ranges it needs), exactly like the seed per-query
    /// sweep the batched matrices are benchmarked against. Batch
    /// consumers use [`crate::AliasMatrix`], which memoises every
    /// comparison.
    pub fn alias_with_test(
        &self,
        f: FuncId,
        p: ValueId,
        q: ValueId,
    ) -> (AliasResult, Option<WhichTest>) {
        if p == q {
            return (AliasResult::MayAlias, None);
        }
        if let Some(kind) = global_no_alias_kind(
            self.gr.raw_state(f, p),
            self.gr.raw_state(f, q),
            self.gr.locs(),
            self.gr.arena(),
        ) {
            return (AliasResult::NoAlias, Some(kind));
        }
        if let (Some(sp), Some(sq)) = (self.lr.raw_state(f, p), self.lr.raw_state(f, q)) {
            // Preconditions for the "same moment" semantics: the
            // pointers must be defined in the same block (so their k-th
            // definitions belong to the same activation) and their
            // derivations must have read every σ at the same instant
            // (equal σ-sets — a body-σ and an exit-σ of one φ denote
            // different iterations whose addresses may coincide). Only
            // then does disjointness of the offset ranges prove the
            // addresses distinct within every activation.
            if sp.base == sq.base
                && sp.block.is_some()
                && sp.block == sq.block
                && sp.sigmas == sq.sigmas
            {
                let arena = self.lr.arena();
                if arena
                    .range_value(sp.range)
                    .meet(&arena.range_value(sq.range))
                    .is_empty()
                {
                    return (AliasResult::NoAlias, Some(WhichTest::Local));
                }
            }
        }
        (AliasResult::MayAlias, None)
    }

    /// Starts an empty [`DemandCache`] over this analysis — single
    /// queries with memoisation, no all-pairs matrix build.
    pub fn demand_cache(&self) -> DemandCache {
        DemandCache::new(self)
    }
}

impl AliasAnalysis for RbaaAnalysis {
    fn name(&self) -> &'static str {
        "rbaa"
    }

    fn alias(&self, f: FuncId, p: ValueId, q: ValueId) -> AliasResult {
        self.alias_with_test(f, p, q).0
    }
}

/// The global test `QGR` (§3.5): `NoAlias` when the concretizations are
/// provably disjoint. `arena` is the arena the states' range handles
/// point into (usually [`GrAnalysis::arena`]).
///
/// Implements Proposition 2, extended for `Unknown` locations (pointer
/// parameters of exported functions and external-call results): two
/// *different* locations only separate pointers when both are concrete
/// allocation sites, because two unknown bases may be the same memory;
/// within a *common* location the symbolic offset ranges must be
/// provably disjoint.
pub fn global_no_alias(a: &PtrState, b: &PtrState, locs: &LocTable, arena: &ExprArena) -> bool {
    global_no_alias_kind(a, b, locs, arena).is_some()
}

/// Like [`global_no_alias`], reporting *how* the pointers were
/// separated: by disjoint supports, or by range reasoning on common
/// locations (the paper's "global test" of Figure 14).
pub fn global_no_alias_kind(
    a: &PtrState,
    b: &PtrState,
    locs: &LocTable,
    arena: &ExprArena,
) -> Option<WhichTest> {
    // ⊥ concretizes to the empty address set.
    if a.is_bottom() || b.is_bottom() {
        return Some(WhichTest::DistinctLocs);
    }
    if a.is_top() || b.is_top() {
        return None;
    }
    let mut used_ranges = false;
    for (la, ra) in a.support() {
        for (lb, rb) in b.support() {
            if la == lb {
                if arena.range_value(ra).may_overlap(&arena.range_value(rb)) {
                    return None;
                }
                used_ranges = true;
            } else if !locs.site(la).kind.separable_from(locs.site(lb).kind) {
                // An unknown base may coincide with globals and other
                // unknown bases (but not with fresh allocations).
                return None;
            }
        }
    }
    Some(if used_ranges {
        WhichTest::Global
    } else {
        WhichTest::DistinctLocs
    })
}

/// Aggregate statistics over a batch of queries — the rows of the
/// paper's Figures 13 and 14.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Total queries issued.
    pub queries: usize,
    /// Queries answered `NoAlias`.
    pub no_alias: usize,
    /// `NoAlias` answers from disjoint allocation-site supports.
    pub by_distinct_locs: usize,
    /// `NoAlias` answers produced by the global test (common-location
    /// range reasoning).
    pub by_global: usize,
    /// `NoAlias` answers produced by the local test.
    pub by_local: usize,
}

impl QueryStats {
    /// Percentage of queries answered `NoAlias` (the `%` columns of
    /// Figure 13).
    pub fn percent_no_alias(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            100.0 * self.no_alias as f64 / self.queries as f64
        }
    }

    /// Issues every pairwise query among `pointers` (unordered pairs,
    /// `p ≠ q`) against `rbaa` and accumulates the outcome.
    pub fn run_pairs(rbaa: &RbaaAnalysis, f: FuncId, pointers: &[ValueId]) -> Self {
        let mut stats = QueryStats::default();
        for (i, &p) in pointers.iter().enumerate() {
            for &q in &pointers[i + 1..] {
                stats.queries += 1;
                match rbaa.alias_with_test(f, p, q) {
                    (AliasResult::NoAlias, Some(WhichTest::DistinctLocs)) => {
                        stats.no_alias += 1;
                        stats.by_distinct_locs += 1;
                    }
                    (AliasResult::NoAlias, Some(WhichTest::Global)) => {
                        stats.no_alias += 1;
                        stats.by_global += 1;
                    }
                    (AliasResult::NoAlias, Some(WhichTest::Local)) => {
                        stats.no_alias += 1;
                        stats.by_local += 1;
                    }
                    _ => {}
                }
            }
        }
        stats
    }

    /// Merges another batch into this one.
    pub fn merge(&mut self, other: &QueryStats) {
        self.queries += other.queries;
        self.no_alias += other.no_alias;
        self.by_distinct_locs += other.by_distinct_locs;
        self.by_global += other.by_global;
        self.by_local += other.by_local;
    }
}

/// Collects the pointer-typed values of a function — the query universe
/// of the paper's evaluation (§4 enumerates pairs of pointers).
pub fn pointer_values(m: &Module, f: FuncId) -> Vec<ValueId> {
    let func = m.function(f);
    func.value_ids()
        .filter(|&v| func.value(v).ty() == Some(Ty::Ptr))
        .collect()
}

/// Packed verdict codes of one [`AliasMatrix`] cell. Exactly four
/// values — a cell is two bits: `NoAlias`/`MayAlias` plus the
/// which-test attribution sideband.
const CELL_MAY: u8 = 0;
const CELL_DISTINCT: u8 = 1;
const CELL_GLOBAL: u8 = 2;
const CELL_LOCAL: u8 = 3;

/// Functions per scratch-overlay window in
/// [`AliasMatrix::build_all_on`]: the memo tables are rebuilt from
/// empty after this many functions so they stay cache-sized on
/// module-scale sweeps while still amortising disjointness proofs
/// across the (heavily state-sharing) functions inside one window.
const SCRATCH_WINDOW: usize = 1024;

fn decode_cell(cell: u8) -> (AliasResult, Option<WhichTest>) {
    match cell {
        CELL_DISTINCT => (AliasResult::NoAlias, Some(WhichTest::DistinctLocs)),
        CELL_GLOBAL => (AliasResult::NoAlias, Some(WhichTest::Global)),
        CELL_LOCAL => (AliasResult::NoAlias, Some(WhichTest::Local)),
        _ => (AliasResult::MayAlias, None),
    }
}

/// Reads 2-bit cell `idx` of a packed cell store (four cells per byte,
/// little-endian within the byte).
#[inline]
fn get_packed(cells: &[u8], idx: usize) -> u8 {
    (cells[idx >> 2] >> ((idx & 3) * 2)) & 3
}

/// Byte accounting of packed [`AliasMatrix`] cell storage, in the style
/// of [`ArenaStats`]: the triangular bitset holds four 2-bit verdicts
/// per byte, so `packed_bytes ≈ pairs / 4` against the one-byte-per-pair
/// layout recorded in `unpacked_bytes`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatrixBytes {
    /// Unordered pointer pairs the matrix caches (its cell count).
    pub pairs: usize,
    /// Bytes actually allocated for the packed 2-bit cells.
    pub packed_bytes: usize,
    /// Bytes the former one-byte-per-cell layout would allocate.
    pub unpacked_bytes: usize,
}

impl MatrixBytes {
    /// Accumulates another matrix's accounting (for per-module totals).
    pub fn merge(&mut self, other: &MatrixBytes) {
        self.pairs += other.pairs;
        self.packed_bytes += other.packed_bytes;
        self.unpacked_bytes += other.unpacked_bytes;
    }

    /// Memory saving of the packed layout (`unpacked / packed`, ~4× at
    /// scale); `0.0` for an empty matrix.
    pub fn saving_ratio(&self) -> f64 {
        if self.packed_bytes == 0 {
            0.0
        } else {
            self.unpacked_bytes as f64 / self.packed_bytes as f64
        }
    }
}

/// The cached all-pairs verdicts of one function: every unordered pair
/// of pointer-typed values of `f`, evaluated once over the analyses'
/// interned states, packed into a triangular bitset of 2-bit cells
/// (four verdicts per byte — see [`MatrixBytes`]).
///
/// The build works directly on the GR and LR module arenas' handles —
/// state signatures are `RangeId` vectors, no re-interning — through
/// per-build *overlay* arenas ([`ExprArena::with_base`]), so every
/// distinct range comparison is proved once and matrix builds can run
/// on worker threads against one shared analysis. Verdicts are
/// byte-identical to [`RbaaAnalysis::alias_with_test`] — the
/// workspace's equivalence property tests pin this, for the serial and
/// the tiled parallel build alike.
#[derive(Debug, Clone)]
pub struct AliasMatrix {
    ptrs: Vec<ValueId>,
    pos: FxHashMap<ValueId, usize>,
    /// 2-bit cells, four per byte; cell `k` is the verdict of the k-th
    /// unordered pair in row-major upper-triangle order.
    cells: Vec<u8>,
    stats: QueryStats,
}

/// Interned global state of one pointer.
#[derive(Clone, PartialEq, Eq, Hash)]
enum IGr {
    Bottom,
    Top,
    Support(Vec<(LocId, RangeId)>),
}

/// Interned local state of one pointer.
#[derive(Clone, PartialEq, Eq, Hash)]
struct ILr {
    base: LocalBase,
    block: Option<BlockId>,
    /// Dense id of the σ-set (equal sets share an id).
    sigmas: u32,
    range: RangeId,
}

impl AliasMatrix {
    /// Builds the matrix over every pointer-typed value of `f`
    /// (serial — see [`AliasMatrix::build_with`]).
    pub fn build(rbaa: &RbaaAnalysis, m: &Module, f: FuncId) -> Self {
        Self::build_for_with(rbaa, f, pointer_values(m, f), 1)
    }

    /// Like [`AliasMatrix::build`], with the signature triangle tiled
    /// across `threads` pool workers — byte-identical to the serial
    /// build (each tile proves its comparisons in its own overlay
    /// arena, and verdicts depend only on the interned states, never on
    /// which overlay memoised them).
    pub fn build_with(rbaa: &RbaaAnalysis, m: &Module, f: FuncId, threads: usize) -> Self {
        Self::build_for_with(rbaa, f, pointer_values(m, f), threads)
    }

    /// Like [`AliasMatrix::build_with`], but the tiles ride an existing
    /// [`pool::WorkerPool`] instead of a one-shot pool — the form the
    /// session/driver pipelines use so matrix tiling reuses the same
    /// long-lived workers as every other phase.
    pub fn build_with_on(
        rbaa: &RbaaAnalysis,
        m: &Module,
        f: FuncId,
        pool: &pool::WorkerPool,
    ) -> Self {
        Self::build_for_on(rbaa, f, pointer_values(m, f), pool)
    }

    /// Builds the matrix over an explicit pointer universe (must be
    /// duplicate-free), serially.
    ///
    /// Hash-consing happens at two levels: the states' offset ranges
    /// are already interned handles into the GR/LR module arenas (the
    /// per-build overlays memoise each distinct comparison once), and
    /// whole pointer *states* are deduplicated into signature classes —
    /// a function with `P` pointers typically has far fewer distinct
    /// `(GR, LR)` states, and for `p ≠ q` the verdict depends only on
    /// the states, so the `O(P²)` pair sweep collapses to `O(S²)`
    /// state-pair verdicts plus an `O(P²)` table fill.
    pub fn build_for(rbaa: &RbaaAnalysis, f: FuncId, ptrs: Vec<ValueId>) -> Self {
        Self::build_for_with(rbaa, f, ptrs, 1)
    }

    /// [`AliasMatrix::build_for`] with a worker budget for the
    /// signature triangle (a one-shot pool of exactly `threads`
    /// workers, matching the historical semantics).
    pub fn build_for_with(
        rbaa: &RbaaAnalysis,
        f: FuncId,
        ptrs: Vec<ValueId>,
        threads: usize,
    ) -> Self {
        Self::build_for_on(rbaa, f, ptrs, &pool::WorkerPool::forced(threads))
    }

    /// Builds every function's matrix on `pool`, functions chunked
    /// across the workers, with each chunk reusing **one** pair of
    /// scratch overlay arenas (and one per-module location-kind table)
    /// across all of its functions. Every state lives in the same
    /// canonical module arenas, so disjointness proofs memoised while
    /// building one function's matrix are hits for every later
    /// function of the chunk — on module-scale builds most of the
    /// comparison work disappears, where the per-function entry points
    /// re-prove it from a cold overlay each time. Verdicts depend only
    /// on the interned states, never on which overlay memoised them,
    /// so the result is cell-for-cell identical to per-function builds
    /// (pinned by `build_all_matches_per_function_builds` and the
    /// equivalence rails).
    pub fn build_all_on(rbaa: &RbaaAnalysis, m: &Module, pool: &pool::WorkerPool) -> Vec<Self> {
        let nf = m.num_functions();
        let kinds = Self::loc_kinds(rbaa);
        let width = pool.threads();
        let chunks = pool::chunk_bounds(nf, if width <= 1 { 1 } else { width * 4 });
        let parts: Vec<Vec<AliasMatrix>> = pool.run_map(chunks, |(lo, hi)| {
            let mut gr_arena = ExprArena::with_base(rbaa.gr().arena_arc());
            let mut lr_arena = ExprArena::with_base(rbaa.lr().arena_arc());
            let mut since_flush = 0usize;
            (lo..hi)
                .map(|i| {
                    // Unbounded memo accumulation over a 10⁴-function
                    // sweep grows the overlay tables past every cache
                    // level and the lookups start paying DRAM misses;
                    // a fixed per-chunk window keeps them hot while
                    // still amortising proofs across nearby functions
                    // (which share most of their states). The flush
                    // points are deterministic, and memoisation can't
                    // change verdicts either way.
                    if since_flush == SCRATCH_WINDOW {
                        gr_arena = ExprArena::with_base(rbaa.gr().arena_arc());
                        lr_arena = ExprArena::with_base(rbaa.lr().arena_arc());
                        since_flush = 0;
                    }
                    since_flush += 1;
                    let f = FuncId::new(i);
                    Self::build_for_scratch(
                        rbaa,
                        f,
                        pointer_values(m, f),
                        &kinds,
                        &mut gr_arena,
                        &mut lr_arena,
                    )
                })
                .collect()
        });
        parts.into_iter().flatten().collect()
    }

    /// The per-module location-kind table the global test indexes —
    /// derived from the `LocTable` once per build (or once per
    /// [`AliasMatrix::build_all_on`] chunk, not once per function).
    fn loc_kinds(rbaa: &RbaaAnalysis) -> Vec<LocKind> {
        let locs = rbaa.gr().locs();
        (0..locs.len())
            .map(|i| locs.site(LocId::new(i)).kind)
            .collect()
    }

    /// Collapses the pointers' interned states into dense signature
    /// classes: the class id of each pointer, plus the class table in
    /// id order (a function with `P` pointers typically has far fewer
    /// distinct `(GR, LR)` states, and for `p ≠ q` the verdict depends
    /// only on the states).
    fn signatures(
        rbaa: &RbaaAnalysis,
        f: FuncId,
        ptrs: &[ValueId],
    ) -> (Vec<usize>, Vec<(IGr, Option<ILr>)>) {
        let mut sigma_ids: FxHashMap<&[ValueId], u32> = FxHashMap::default();
        let mut sig_ids: FxHashMap<(IGr, Option<ILr>), u32> = FxHashMap::default();
        let mut sigs: Vec<usize> = Vec::with_capacity(ptrs.len());
        for &p in ptrs {
            let st = rbaa.gr().raw_state(f, p);
            let igr = if st.is_bottom() {
                IGr::Bottom
            } else if st.is_top() {
                IGr::Top
            } else {
                IGr::Support(st.support().collect())
            };
            let ilr = rbaa.lr().raw_state(f, p).map(|s| {
                let next = sigma_ids.len() as u32;
                let sigmas = *sigma_ids.entry(s.sigmas.as_slice()).or_insert(next);
                ILr {
                    base: s.base,
                    block: s.block,
                    sigmas,
                    range: s.range,
                }
            });
            let next = sig_ids.len() as u32;
            sigs.push(*sig_ids.entry((igr, ilr)).or_insert(next) as usize);
        }
        let mut by_id: Vec<Option<(IGr, Option<ILr>)>> = vec![None; sig_ids.len()];
        for (k, id) in sig_ids {
            by_id[id as usize] = Some(k);
        }
        let by_id = by_id
            .into_iter()
            .map(|k| k.expect("dense signature ids"))
            .collect();
        (sigs, by_id)
    }

    /// Serial build against caller-owned scratch overlays — the
    /// [`AliasMatrix::build_all_on`] worker body. `gr_arena`/`lr_arena`
    /// must be overlays over this analysis' GR/LR module arenas.
    fn build_for_scratch(
        rbaa: &RbaaAnalysis,
        f: FuncId,
        ptrs: Vec<ValueId>,
        kinds: &[LocKind],
        gr_arena: &mut ExprArena,
        lr_arena: &mut ExprArena,
    ) -> Self {
        let (sigs, by_id) = Self::signatures(rbaa, f, &ptrs);
        let s = by_id.len();
        let mut sig_cells = Vec::with_capacity(s * (s + 1) / 2);
        for a in 0..s {
            for b in a..s {
                let (ga, la) = &by_id[a];
                let (gb, lb) = &by_id[b];
                sig_cells.push(Self::verdict(gr_arena, lr_arena, kinds, ga, gb, la, lb));
            }
        }
        Self::pack(ptrs, &sigs, &sig_cells, s)
    }

    /// [`AliasMatrix::build_for`] with the signature triangle tiled
    /// onto `pool`.
    pub fn build_for_on(
        rbaa: &RbaaAnalysis,
        f: FuncId,
        ptrs: Vec<ValueId>,
        pool: &pool::WorkerPool,
    ) -> Self {
        let kinds = Self::loc_kinds(rbaa);

        // Collapse equal states to one signature class (the states'
        // ranges are already interned ids — signatures are id tuples).
        let (sigs, by_id) = Self::signatures(rbaa, f, &ptrs);

        // One verdict per unordered signature pair (including the
        // "same signature, different pointer" diagonal).
        // Row `a` of the upper triangle (b ≥ a) starts after the
        // `a*s - a*(a-1)/2` entries of the rows above it.
        let s = by_id.len();
        let row_start = |a: usize| a * s - a * a.saturating_sub(1) / 2;
        // Tile the flat triangle index space onto the pool: tiles are a
        // deterministic split, each worker proves its tile against its
        // own overlay arena, and concatenation restores serial order —
        // so the parallel build is byte-identical to `threads == 1`.
        let total = s * (s + 1) / 2;
        let width = pool.threads();
        let tiles = pool::chunk_bounds(total, if width <= 1 { 1 } else { width * 4 });
        let parts: Vec<Vec<u8>> = pool.run_map(tiles, |(lo, hi)| {
            let mut gr_arena = ExprArena::with_base(rbaa.gr().arena_arc());
            let mut lr_arena = ExprArena::with_base(rbaa.lr().arena_arc());
            // Recover the (row, column) of the tile's first flat index:
            // the largest row whose start is ≤ lo.
            let mut a = {
                let (mut l, mut h) = (0usize, s);
                while l + 1 < h {
                    let mid = (l + h) / 2;
                    if row_start(mid) <= lo {
                        l = mid;
                    } else {
                        h = mid;
                    }
                }
                l
            };
            let mut b = a + (lo - row_start(a));
            let mut out = Vec::with_capacity(hi - lo);
            for _ in lo..hi {
                let (ga, la) = &by_id[a];
                let (gb, lb) = &by_id[b];
                out.push(Self::verdict(
                    &mut gr_arena,
                    &mut lr_arena,
                    &kinds,
                    ga,
                    gb,
                    la,
                    lb,
                ));
                b += 1;
                if b == s {
                    a += 1;
                    b = a;
                }
            }
            out
        });
        let mut sig_cells = Vec::with_capacity(total);
        for part in parts {
            sig_cells.extend(part);
        }
        Self::pack(ptrs, &sigs, &sig_cells, s)
    }

    /// Fills the pointer-pair triangle (2-bit cells, four pairs per
    /// byte) and the per-function statistics from the signature-pair
    /// verdict table, then assembles the matrix.
    fn pack(ptrs: Vec<ValueId>, sigs: &[usize], sig_cells: &[u8], s: usize) -> Self {
        let row_start = |a: usize| a * s - a * a.saturating_sub(1) / 2;
        let sig_cell = |a: usize, b: usize| {
            let (a, b) = if a <= b { (a, b) } else { (b, a) };
            sig_cells[row_start(a) + b - a]
        };
        let n = ptrs.len();
        let npairs = n * n.saturating_sub(1) / 2;
        let mut cells = vec![0u8; npairs.div_ceil(4)];
        let mut stats = QueryStats::default();
        let mut idx = 0;
        for i in 0..n {
            for j in i + 1..n {
                let cell = sig_cell(sigs[i], sigs[j]);
                cells[idx >> 2] |= cell << ((idx & 3) * 2);
                idx += 1;
                stats.queries += 1;
                match cell {
                    CELL_DISTINCT => {
                        stats.no_alias += 1;
                        stats.by_distinct_locs += 1;
                    }
                    CELL_GLOBAL => {
                        stats.no_alias += 1;
                        stats.by_global += 1;
                    }
                    CELL_LOCAL => {
                        stats.no_alias += 1;
                        stats.by_local += 1;
                    }
                    _ => {}
                }
            }
        }

        let pos = ptrs.iter().enumerate().map(|(i, &p)| (p, i)).collect();
        AliasMatrix {
            ptrs,
            pos,
            cells,
            stats,
        }
    }

    /// One pair, on interned handles — mirrors
    /// [`RbaaAnalysis::alias_with_test`] decision for decision.
    /// `gr_arena`/`lr_arena` are the build's overlays over the
    /// respective module arenas.
    fn verdict(
        gr_arena: &mut ExprArena,
        lr_arena: &mut ExprArena,
        kinds: &[LocKind],
        gp: &IGr,
        gq: &IGr,
        lp: &Option<ILr>,
        lq: &Option<ILr>,
    ) -> u8 {
        // The global test (`global_no_alias_kind` on handles).
        let global = match (gp, gq) {
            (IGr::Bottom, _) | (_, IGr::Bottom) => Some(CELL_DISTINCT),
            (IGr::Top, _) | (_, IGr::Top) => None,
            (IGr::Support(sa), IGr::Support(sb)) => {
                let mut used_ranges = false;
                let mut separated = true;
                'pairs: for &(la, ra) in sa {
                    for &(lb, rb) in sb {
                        if la == lb {
                            if !gr_arena.ranges_disjoint(ra, rb) {
                                separated = false;
                                break 'pairs;
                            }
                            used_ranges = true;
                        } else if !kinds[la.index()].separable_from(kinds[lb.index()]) {
                            separated = false;
                            break 'pairs;
                        }
                    }
                }
                if separated {
                    Some(if used_ranges {
                        CELL_GLOBAL
                    } else {
                        CELL_DISTINCT
                    })
                } else {
                    None
                }
            }
        };
        if let Some(cell) = global {
            return cell;
        }
        // The local test (`QLR` preconditions, then range disjointness).
        if let (Some(a), Some(b)) = (lp, lq) {
            if a.base == b.base
                && a.block.is_some()
                && a.block == b.block
                && a.sigmas == b.sigmas
                && lr_arena.ranges_disjoint(a.range, b.range)
            {
                return CELL_LOCAL;
            }
        }
        CELL_MAY
    }

    /// The pointer universe of the matrix, in value order.
    pub fn pointers(&self) -> &[ValueId] {
        &self.ptrs
    }

    /// The aggregate [`QueryStats`] of the all-pairs sweep (one
    /// Figure 13/14 row contribution).
    pub fn stats(&self) -> &QueryStats {
        &self.stats
    }

    /// The cached verdict for `p` vs `q` in `O(1)`; `None` when either
    /// value is outside the matrix's universe. `p == q` answers
    /// `MayAlias` like [`RbaaAnalysis::alias_with_test`].
    pub fn lookup(&self, p: ValueId, q: ValueId) -> Option<(AliasResult, Option<WhichTest>)> {
        let &i = self.pos.get(&p)?;
        let &j = self.pos.get(&q)?;
        if i == j {
            return Some((AliasResult::MayAlias, None));
        }
        let (i, j) = if i < j { (i, j) } else { (j, i) };
        let n = self.ptrs.len();
        let idx = i * (2 * n - i - 1) / 2 + (j - i - 1);
        Some(decode_cell(get_packed(&self.cells, idx)))
    }

    /// Byte accounting of this matrix's packed cell store.
    pub fn bytes(&self) -> MatrixBytes {
        let n = self.ptrs.len();
        let pairs = n * n.saturating_sub(1) / 2;
        MatrixBytes {
            pairs,
            packed_bytes: self.cells.len(),
            unpacked_bytes: pairs,
        }
    }
}

/// Activity counters of one [`DemandCache`] — how much of the pair
/// universe a query stream actually touched.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DemandStats {
    /// Queries answered (including `p == q` shortcuts).
    pub queries: usize,
    /// Pointer states interned into signature classes (first sight of a
    /// `(f, value)`; repeats hit the per-pointer memo).
    pub sig_misses: usize,
    /// Signature-pair verdicts proved (first sight of an unordered
    /// signature pair; repeats hit the pair memo).
    pub pair_misses: usize,
}

/// Demand-driven alias queries: answers single `(f, p, q)` pairs
/// against the interned GR/LR states with per-signature-pair
/// memoisation — **no all-pairs matrix build**.
///
/// Where [`AliasMatrix::build_for`] pays `O(S²)` signature verdicts
/// plus an `O(P²)` fill up front, a `DemandCache` interns each
/// pointer's state signature the first time a query mentions it and
/// proves each unordered signature pair the first time a query needs
/// it; everything after that is two hash lookups. Verdicts are
/// byte-identical to [`RbaaAnalysis::alias_with_test`] (the
/// `demand_equivalence` rail pins this): the memo key fully determines
/// the inputs of the decision, so caching cannot change an answer.
///
/// The cache is valid only for the analysis it was created from; it
/// borrows nothing, so sessions drop and recreate it on rebuild.
pub struct DemandCache {
    /// Overlay arenas over the GR/LR module arenas — same memoised
    /// comparison machinery the matrix build uses.
    gr_arena: ExprArena,
    lr_arena: ExprArena,
    /// The GR module arena this cache was built over, to catch queries
    /// against a different analysis in debug builds.
    gr_base: Arc<ExprArena>,
    kinds: Vec<LocKind>,
    sigma_ids: FxHashMap<Vec<ValueId>, u32>,
    /// Signature contents by dense id (`sigs[id]` is the interning key
    /// of signature class `id`).
    sigs: Vec<(IGr, Option<ILr>)>,
    sig_ids: FxHashMap<(IGr, Option<ILr>), u32>,
    /// Per-pointer signature memo.
    ptr_sig: FxHashMap<(FuncId, ValueId), u32>,
    /// Per-unordered-signature-pair verdict memo.
    pair_memo: FxHashMap<(u32, u32), u8>,
    stats: DemandStats,
}

impl std::fmt::Debug for DemandCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DemandCache")
            .field("signatures", &self.sigs.len())
            .field("pairs", &self.pair_memo.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl DemandCache {
    /// Starts an empty cache over `rbaa` (see
    /// [`RbaaAnalysis::demand_cache`]).
    pub fn new(rbaa: &RbaaAnalysis) -> Self {
        let locs = rbaa.gr().locs();
        DemandCache {
            gr_arena: ExprArena::with_base(rbaa.gr().arena_arc()),
            lr_arena: ExprArena::with_base(rbaa.lr().arena_arc()),
            gr_base: rbaa.gr().arena_arc(),
            kinds: (0..locs.len())
                .map(|i| locs.site(LocId::new(i)).kind)
                .collect(),
            sigma_ids: FxHashMap::default(),
            sigs: Vec::new(),
            sig_ids: FxHashMap::default(),
            ptr_sig: FxHashMap::default(),
            pair_memo: FxHashMap::default(),
            stats: DemandStats::default(),
        }
    }

    /// Answers one query — byte-identical to
    /// [`RbaaAnalysis::alias_with_test`] on the same `rbaa`.
    ///
    /// `rbaa` must be the analysis this cache was created from (other
    /// analyses' states would be read against the wrong arenas; debug
    /// builds assert the arena identity).
    pub fn query(
        &mut self,
        rbaa: &RbaaAnalysis,
        f: FuncId,
        p: ValueId,
        q: ValueId,
    ) -> (AliasResult, Option<WhichTest>) {
        debug_assert!(
            Arc::ptr_eq(&self.gr_base, &rbaa.gr().arena_arc()),
            "demand cache queried against a different analysis"
        );
        self.stats.queries += 1;
        if p == q {
            return (AliasResult::MayAlias, None);
        }
        let a = self.sig_of(rbaa, f, p);
        let b = self.sig_of(rbaa, f, q);
        let key = if a <= b { (a, b) } else { (b, a) };
        // Split the borrows: the memo entry computation reads `sigs`
        // while mutating the overlay arenas.
        let DemandCache {
            gr_arena,
            lr_arena,
            kinds,
            sigs,
            pair_memo,
            stats,
            ..
        } = self;
        let cell = *pair_memo.entry(key).or_insert_with(|| {
            stats.pair_misses += 1;
            let (ga, la) = &sigs[key.0 as usize];
            let (gb, lb) = &sigs[key.1 as usize];
            AliasMatrix::verdict(gr_arena, lr_arena, kinds, ga, gb, la, lb)
        });
        decode_cell(cell)
    }

    /// The cache's activity counters.
    pub fn stats(&self) -> DemandStats {
        self.stats
    }

    /// Interns the `(GR, LR)` state of `(f, p)` into a signature class,
    /// memoised per pointer. A signature fully determines both states
    /// (exact support handles, base, block, σ-set identity, offset
    /// handles), so equal signatures — even across functions — always
    /// produce equal verdicts.
    fn sig_of(&mut self, rbaa: &RbaaAnalysis, f: FuncId, p: ValueId) -> u32 {
        if let Some(&id) = self.ptr_sig.get(&(f, p)) {
            return id;
        }
        self.stats.sig_misses += 1;
        let st = rbaa.gr().raw_state(f, p);
        let igr = if st.is_bottom() {
            IGr::Bottom
        } else if st.is_top() {
            IGr::Top
        } else {
            IGr::Support(st.support().collect())
        };
        let ilr = rbaa.lr().raw_state(f, p).map(|s| {
            let next = self.sigma_ids.len() as u32;
            let sigmas = *self.sigma_ids.entry(s.sigmas.clone()).or_insert(next);
            ILr {
                base: s.base,
                block: s.block,
                sigmas,
                range: s.range,
            }
        });
        let key = (igr, ilr);
        let id = match self.sig_ids.get(&key) {
            Some(&id) => id,
            None => {
                let id = self.sigs.len() as u32;
                self.sigs.push(key.clone());
                self.sig_ids.insert(key, id);
                id
            }
        };
        self.ptr_sig.insert((f, p), id);
        id
    }
}
// ---------------------------------------------------------------------
// Persistence codecs (see [`crate::persist`]). They live here because
// `AliasMatrix` and `DemandCache` keep their internals private; every
// hash map is emitted in sorted order so saves are byte-deterministic,
// and every decoded id is validated before it is trusted.
// ---------------------------------------------------------------------

use crate::persist::{corrupt, Dec, Enc, PersistError};

impl AliasMatrix {
    pub(crate) fn encode(&self, enc: &mut Enc) {
        enc.usize(self.ptrs.len());
        for &p in &self.ptrs {
            enc.u32(p.index() as u32);
        }
        enc.bytes(&self.cells);
        enc.usize(self.stats.queries);
        enc.usize(self.stats.no_alias);
        enc.usize(self.stats.by_distinct_locs);
        enc.usize(self.stats.by_global);
        enc.usize(self.stats.by_local);
    }

    /// Decodes a matrix whose pointer universe must equal
    /// `expected_ptrs` (the loader passes `pointer_values(m, f)`, which
    /// is what sessions build matrices over).
    pub(crate) fn decode(
        dec: &mut Dec<'_>,
        expected_ptrs: &[ValueId],
    ) -> Result<Self, PersistError> {
        let n = dec.len(4)?;
        if n != expected_ptrs.len() {
            return Err(corrupt("matrix pointer universe does not match the module"));
        }
        let mut ptrs = Vec::with_capacity(n);
        for &want in expected_ptrs {
            let got = ValueId::new(dec.u32()? as usize);
            if got != want {
                return Err(corrupt("matrix pointer universe does not match the module"));
            }
            ptrs.push(got);
        }
        let cells = dec.bytes()?.to_vec();
        let npairs = n * n.saturating_sub(1) / 2;
        if cells.len() != npairs.div_ceil(4) {
            return Err(corrupt("matrix cell store has the wrong length"));
        }
        if npairs % 4 != 0 {
            if let Some(&last) = cells.last() {
                if last >> ((npairs % 4) * 2) != 0 {
                    return Err(corrupt("matrix cell store has nonzero padding bits"));
                }
            }
        }
        let pos = ptrs.iter().enumerate().map(|(i, &p)| (p, i)).collect();
        let stats = QueryStats {
            queries: dec.usize()?,
            no_alias: dec.usize()?,
            by_distinct_locs: dec.usize()?,
            by_global: dec.usize()?,
            by_local: dec.usize()?,
        };
        Ok(AliasMatrix {
            ptrs,
            pos,
            cells,
            stats,
        })
    }
}

impl DemandCache {
    pub(crate) fn encode(&self, enc: &mut Enc) {
        // σ-sets by dense id (invert the interning map).
        let mut sigma_sets: Vec<&[ValueId]> = vec![&[]; self.sigma_ids.len()];
        for (set, &id) in &self.sigma_ids {
            sigma_sets[id as usize] = set;
        }
        enc.usize(sigma_sets.len());
        for set in &sigma_sets {
            enc.usize(set.len());
            for &v in *set {
                enc.u32(v.index() as u32);
            }
        }
        enc.usize(self.sigs.len());
        for (igr, ilr) in &self.sigs {
            match igr {
                IGr::Bottom => enc.u8(0),
                IGr::Top => enc.u8(1),
                IGr::Support(support) => {
                    enc.u8(2);
                    enc.usize(support.len());
                    for &(loc, r) in support {
                        enc.u32(loc.index() as u32);
                        enc.u32(r.index() as u32);
                    }
                }
            }
            match ilr {
                None => enc.u8(0),
                Some(ilr) => {
                    enc.u8(1);
                    match ilr.base {
                        LocalBase::Fresh(s) => {
                            enc.u8(0);
                            enc.u32(s);
                        }
                        LocalBase::Global(g) => {
                            enc.u8(1);
                            enc.u32(g.index() as u32);
                        }
                    }
                    enc.opt_u32(ilr.block.map(|b| b.index() as u32));
                    enc.u32(ilr.sigmas);
                    enc.u32(ilr.range.index() as u32);
                }
            }
        }
        let mut ptr_sig: Vec<(u32, u32, u32)> = self
            .ptr_sig
            .iter()
            .map(|(&(f, v), &id)| (f.index() as u32, v.index() as u32, id))
            .collect();
        ptr_sig.sort_unstable();
        enc.usize(ptr_sig.len());
        for (f, v, id) in ptr_sig {
            enc.u32(f);
            enc.u32(v);
            enc.u32(id);
        }
        let mut pairs: Vec<(u32, u32, u8)> = self
            .pair_memo
            .iter()
            .map(|(&(a, b), &cell)| (a, b, cell))
            .collect();
        pairs.sort_unstable();
        enc.usize(pairs.len());
        for (a, b, cell) in pairs {
            enc.u32(a);
            enc.u32(b);
            enc.u8(cell);
        }
        enc.usize(self.stats.queries);
        enc.usize(self.stats.sig_misses);
        enc.usize(self.stats.pair_misses);
    }

    /// Decodes a cache over `rbaa` (which must be the loaded analysis —
    /// every `RangeId`/`LocId` is validated against its arenas). The
    /// overlay arenas restart empty: they are pure comparison memos, so
    /// verdicts are unaffected.
    pub(crate) fn decode(
        dec: &mut Dec<'_>,
        rbaa: &RbaaAnalysis,
        m: &Module,
    ) -> Result<Self, PersistError> {
        let mut cache = DemandCache::new(rbaa);
        let gr_base = rbaa.gr().arena_arc();
        let lr_base = rbaa.lr().arena_arc();
        let n_sigma = dec.len(8)?;
        for id in 0..n_sigma {
            let len = dec.len(4)?;
            let mut set = Vec::with_capacity(len);
            for _ in 0..len {
                set.push(ValueId::new(dec.u32()? as usize));
            }
            if cache.sigma_ids.insert(set, id as u32).is_some() {
                return Err(corrupt("duplicate σ-set in demand cache"));
            }
        }
        let n_sigs = dec.len(2)?;
        for id in 0..n_sigs {
            let igr = match dec.u8()? {
                0 => IGr::Bottom,
                1 => IGr::Top,
                2 => {
                    let len = dec.len(8)?;
                    let mut support = Vec::with_capacity(len);
                    let mut prev: Option<LocId> = None;
                    for _ in 0..len {
                        let loc = LocId::new(dec.u32()? as usize);
                        if loc.index() >= cache.kinds.len() {
                            return Err(corrupt("signature references unknown location"));
                        }
                        if prev.is_some_and(|p| p.index() >= loc.index()) {
                            return Err(corrupt("signature support is not sorted"));
                        }
                        prev = Some(loc);
                        let r = gr_base
                            .range_id(dec.u32()? as usize)
                            .ok_or_else(|| corrupt("signature references unknown GR range"))?;
                        support.push((loc, r));
                    }
                    IGr::Support(support)
                }
                b => return Err(corrupt(format!("invalid GR-signature tag {b}"))),
            };
            let ilr = match dec.u8()? {
                0 => None,
                1 => {
                    let base = match dec.u8()? {
                        0 => LocalBase::Fresh(dec.u32()?),
                        1 => {
                            let g = sra_ir::GlobalId::new(dec.u32()? as usize);
                            if g.index() >= m.num_globals() {
                                return Err(corrupt("signature references unknown global"));
                            }
                            LocalBase::Global(g)
                        }
                        b => return Err(corrupt(format!("invalid local-base tag {b}"))),
                    };
                    let block = dec.opt_u32()?.map(|b| BlockId::new(b as usize));
                    let sigmas = dec.u32()?;
                    if sigmas as usize >= n_sigma {
                        return Err(corrupt("signature references unknown σ-set"));
                    }
                    let range = lr_base
                        .range_id(dec.u32()? as usize)
                        .ok_or_else(|| corrupt("signature references unknown LR range"))?;
                    Some(ILr {
                        base,
                        block,
                        sigmas,
                        range,
                    })
                }
                b => return Err(corrupt(format!("invalid LR-signature tag {b}"))),
            };
            let key = (igr, ilr);
            if cache.sig_ids.insert(key.clone(), id as u32).is_some() {
                return Err(corrupt("duplicate signature in demand cache"));
            }
            cache.sigs.push(key);
        }
        let n_ptr = dec.len(12)?;
        let mut prev: Option<(u32, u32)> = None;
        for _ in 0..n_ptr {
            let f = dec.u32()?;
            let v = dec.u32()?;
            let id = dec.u32()?;
            if prev.is_some_and(|p| p >= (f, v)) {
                return Err(corrupt("pointer-signature memo is not sorted"));
            }
            prev = Some((f, v));
            let func = FuncId::new(f as usize);
            if func.index() >= m.num_functions()
                || v as usize >= m.function(func).num_values()
                || id as usize >= n_sigs
            {
                return Err(corrupt("pointer-signature memo references unknown ids"));
            }
            cache.ptr_sig.insert((func, ValueId::new(v as usize)), id);
        }
        let n_pairs = dec.len(9)?;
        let mut prev: Option<(u32, u32)> = None;
        for _ in 0..n_pairs {
            let a = dec.u32()?;
            let b = dec.u32()?;
            let cell = dec.u8()?;
            if prev.is_some_and(|p| p >= (a, b)) {
                return Err(corrupt("pair memo is not sorted"));
            }
            prev = Some((a, b));
            if a > b || b as usize >= n_sigs || cell > 3 {
                return Err(corrupt("pair memo references unknown ids"));
            }
            cache.pair_memo.insert((a, b), cell);
        }
        cache.stats = DemandStats {
            queries: dec.usize()?,
            sig_misses: dec.usize()?,
            pair_misses: dec.usize()?,
        };
        Ok(cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sra_ir::{BinOp, Callee, CmpOp, FunctionBuilder};

    /// The paper's Figure 1 end-to-end: the two stores write provably
    /// disjoint regions, disambiguated by the *global* test.
    #[test]
    fn figure1_global_disambiguation() {
        // main: Z = atoi(..); b = malloc(Z); s = malloc(strlen);
        //       prepare(b, Z, s)
        let mut m = Module::new();

        // prepare(p, N, mm):
        //   for (i = p, e = p + N; i < e; i += 2) { *i = 0; *(i+1) = 0xFF }
        //   for (f = e + strlen(m); i < f; i++) { *i = *m; m++ }
        let mut b = FunctionBuilder::new("prepare", &[Ty::Ptr, Ty::Int, Ty::Ptr], None);
        let p = b.param(0);
        let n = b.param(1);
        b.set_name(n, "N");
        let mptr = b.param(2);
        let h1 = b.create_block();
        let bd1 = b.create_block();
        let mid = b.create_block();
        let h2 = b.create_block();
        let bd2 = b.create_block();
        let exit = b.create_block();
        let zero = b.const_int(0);
        let i0 = b.ptr_add(p, zero);
        let e = b.ptr_add(p, n);
        let entry = b.entry_block();
        b.jump(h1);

        b.switch_to(h1);
        let i1 = b.phi(Ty::Ptr, &[(entry, i0)]);
        let c1 = b.cmp(CmpOp::Lt, i1, e);
        b.br(c1, bd1, mid);

        b.switch_to(bd1);
        // store *i = 0 — through the σ of i1 (inserted by essa).
        let ff = b.const_int(0xFF);
        b.store(i1, zero); // will be rewritten to σ(i1) by essa
        let one = b.const_int(1);
        let t0 = b.ptr_add(i1, one);
        b.store(t0, ff);
        let two = b.const_int(2);
        let i3 = b.ptr_add(i1, two);
        b.add_phi_arg(i1, bd1, i3);
        b.jump(h1);

        b.switch_to(mid);
        let len = b.call(Callee::External("strlen".into()), &[mptr], Some(Ty::Int));
        let f2 = b.ptr_add(e, len);
        b.jump(h2);

        b.switch_to(h2);
        let i5 = b.phi(Ty::Ptr, &[(mid, i1)]);
        let m1 = b.phi(Ty::Ptr, &[(mid, mptr)]);
        let c2 = b.cmp(CmpOp::Lt, i5, f2);
        b.br(c2, bd2, exit);

        b.switch_to(bd2);
        let ch = b.load(m1, Ty::Int);
        b.store(i5, ch);
        let m2 = b.ptr_add(m1, one);
        let i7 = b.ptr_add(i5, one);
        b.add_phi_arg(i5, bd2, i7);
        b.add_phi_arg(m1, bd2, m2);
        b.jump(h2);

        b.switch_to(exit);
        b.ret(None);
        let mut fprep = b.finish();
        sra_ir::essa::run(&mut fprep);
        sra_ir::verify::verify_function(&fprep, None).expect("verified");
        let prep = m.add_function(fprep);

        // main:
        let mut b = FunctionBuilder::new("main", &[], None);
        let z = b.call(Callee::External("atoi".into()), &[], Some(Ty::Int));
        let buf = b.malloc(z);
        let slen = b.call(Callee::External("strlen".into()), &[], Some(Ty::Int));
        let s = b.malloc(slen);
        b.call(Callee::Internal(prep), &[buf, z, s], None);
        b.ret(None);
        m.add_function(b.finish());

        sra_ir::verify::verify_module(&m).expect("module verified");
        let rbaa = RbaaAnalysis::analyze(&m);

        // The store addresses: σ(i1) in bd1 (first loop) and σ(i5) in
        // bd2 (second loop).
        let f = m.function(prep);
        let sig1 = f
            .value_ids()
            .find(|&v| {
                matches!(f.value(v).as_inst(),
                    Some(sra_ir::Inst::Sigma { input, op: CmpOp::Lt, .. }) if *input == i1)
            })
            .expect("σ(i1)");
        let sig2 = f
            .value_ids()
            .find(|&v| {
                matches!(f.value(v).as_inst(),
                    Some(sra_ir::Inst::Sigma { input, op: CmpOp::Lt, .. }) if *input == i5)
            })
            .expect("σ(i5)");

        let (res, test) = rbaa.alias_with_test(prep, sig1, sig2);
        assert_eq!(
            res,
            AliasResult::NoAlias,
            "stores at lines 6 and 10 are independent"
        );
        assert_eq!(test, Some(WhichTest::Global));

        // Complementarity: σ(i1) vs t0 = σ(i1)+1 overlaps globally
        // ([0,N-1] vs [1,N]) but the *local* test separates them within
        // an iteration — the Figure 4 situation.
        let (res, test) = rbaa.alias_with_test(prep, sig1, t0);
        assert_eq!(res, AliasResult::NoAlias);
        assert_eq!(test, Some(WhichTest::Local));
        // And the φ i1 vs its own σ may alias (same address).
        let (res, _) = rbaa.alias_with_test(prep, i1, sig1);
        assert_eq!(res, AliasResult::MayAlias);
    }

    /// The paper's Figure 3/4: tmp0 = p+i, tmp1 = p+i+1 — the global
    /// test fails but the local test separates them.
    #[test]
    fn figure3_local_disambiguation() {
        let mut b = FunctionBuilder::new("accelerate", &[Ty::Ptr, Ty::Int], None);
        let p = b.param(0);
        let n = b.param(1);
        b.set_name(n, "N");
        let head = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        let zero = b.const_int(0);
        let entry = b.entry_block();
        b.jump(head);
        b.switch_to(head);
        let i = b.phi(Ty::Int, &[(entry, zero)]);
        let c = b.cmp(CmpOp::Lt, i, n);
        b.br(c, body, exit);
        b.switch_to(body);
        let tmp0 = b.ptr_add(p, i);
        let one = b.const_int(1);
        let ip1 = b.binop(BinOp::Add, i, one);
        let tmp1 = b.ptr_add(p, ip1);
        let x = b.load(tmp0, Ty::Int);
        b.store(tmp0, x);
        let y = b.load(tmp1, Ty::Int);
        b.store(tmp1, y);
        let two = b.const_int(2);
        let i2 = b.binop(BinOp::Add, i, two);
        b.add_phi_arg(i, body, i2);
        b.jump(head);
        b.switch_to(exit);
        b.ret(None);
        let mut f = b.finish();
        f.set_exported(true);
        sra_ir::essa::run(&mut f);
        let mut m = Module::new();
        let fid = m.add_function(f);
        let rbaa = RbaaAnalysis::analyze(&m);

        let (res, test) = rbaa.alias_with_test(fid, tmp0, tmp1);
        assert_eq!(res, AliasResult::NoAlias);
        assert_eq!(
            test,
            Some(WhichTest::Local),
            "only the local test separates them"
        );
    }

    /// Distinct malloc sites never alias (global test).
    #[test]
    fn distinct_mallocs_no_alias() {
        let mut b = FunctionBuilder::new("main", &[], None);
        let ten = b.const_int(10);
        let p = b.malloc(ten);
        let q = b.malloc(ten);
        b.ret(None);
        let mut m = Module::new();
        let fid = m.add_function(b.finish());
        let rbaa = RbaaAnalysis::analyze(&m);
        let (res, test) = rbaa.alias_with_test(fid, p, q);
        assert_eq!(res, AliasResult::NoAlias);
        assert_eq!(test, Some(WhichTest::DistinctLocs));
    }

    /// Two pointer params of an exported function may alias — distinct
    /// Unknown locations never separate.
    #[test]
    fn unknown_params_may_alias() {
        let mut b = FunctionBuilder::new("api", &[Ty::Ptr, Ty::Ptr], None);
        let p = b.param(0);
        let q = b.param(1);
        b.ret(None);
        let mut f = b.finish();
        f.set_exported(true);
        let mut m = Module::new();
        let fid = m.add_function(f);
        let rbaa = RbaaAnalysis::analyze(&m);
        assert_eq!(rbaa.alias(fid, p, q), AliasResult::MayAlias);
        // But offsets from the *same* param are still separable.
        let mut b = FunctionBuilder::new("api2", &[Ty::Ptr], None);
        let p = b.param(0);
        let one = b.const_int(1);
        let a = b.ptr_add(p, one);
        let two = b.const_int(2);
        let c = b.ptr_add(p, two);
        b.ret(None);
        let mut f = b.finish();
        f.set_exported(true);
        let fid2 = m.add_function(f);
        let rbaa = RbaaAnalysis::analyze(&m);
        assert_eq!(rbaa.alias(fid2, a, c), AliasResult::NoAlias);
    }

    /// A loaded pointer (⊤) may alias everything.
    #[test]
    fn loaded_pointer_top() {
        let mut b = FunctionBuilder::new("main", &[], None);
        let ten = b.const_int(10);
        let p = b.malloc(ten);
        let q = b.load(p, Ty::Ptr);
        let r = b.malloc(ten);
        b.ret(None);
        let mut m = Module::new();
        let fid = m.add_function(b.finish());
        let rbaa = RbaaAnalysis::analyze(&m);
        assert_eq!(rbaa.alias(fid, q, r), AliasResult::MayAlias);
        assert_eq!(rbaa.alias(fid, q, p), AliasResult::MayAlias);
    }

    /// Freed pointers concretize to ∅.
    #[test]
    fn freed_pointer_no_alias() {
        let mut b = FunctionBuilder::new("main", &[], None);
        let ten = b.const_int(10);
        let p = b.malloc(ten);
        let dead = b.free(p);
        b.ret(None);
        let mut m = Module::new();
        let fid = m.add_function(b.finish());
        let rbaa = RbaaAnalysis::analyze(&m);
        assert_eq!(rbaa.alias(fid, dead, p), AliasResult::NoAlias);
    }

    /// QueryStats totals add up.
    #[test]
    fn query_stats_accumulate() {
        let mut b = FunctionBuilder::new("main", &[], None);
        let ten = b.const_int(10);
        let p = b.malloc(ten);
        let _q = b.malloc(ten);
        let one = b.const_int(1);
        let _p1 = b.ptr_add(p, one);
        b.ret(None);
        let mut m = Module::new();
        let fid = m.add_function(b.finish());
        let rbaa = RbaaAnalysis::analyze(&m);
        let ptrs = pointer_values(&m, fid);
        assert_eq!(ptrs.len(), 3);
        let stats = QueryStats::run_pairs(&rbaa, fid, &ptrs);
        assert_eq!(stats.queries, 3);
        // p vs q and p1 vs q are separated by sites (distinct locs);
        // p vs p1 share a loc with provably disjoint ranges (global).
        assert_eq!(stats.no_alias, 3);
        assert_eq!(stats.by_distinct_locs, 2);
        assert_eq!(stats.by_global, 1);
        assert!(stats.percent_no_alias() > 99.0);
    }

    /// Functions with zero pointer pairs — no pointers at all, or a
    /// single pointer — must produce an empty matrix and all-zero
    /// stats with finite percentages, not NaN or a panic.
    #[test]
    fn empty_and_single_pointer_functions_yield_empty_matrices() {
        // percent_no_alias at zero queries is 0.0, not NaN.
        let zero = QueryStats::default();
        assert_eq!(zero.queries, 0);
        assert_eq!(zero.percent_no_alias(), 0.0);
        assert!(zero.percent_no_alias().is_finite());

        let mut m = Module::new();
        // An addressless function: integers only.
        let mut b = FunctionBuilder::new("ints", &[Ty::Int], Some(Ty::Int));
        let n = b.param(0);
        let one = b.const_int(1);
        let n1 = b.binop(BinOp::Add, n, one);
        b.ret(Some(n1));
        let ints = m.add_function(b.finish());
        // A single-pointer function: one malloc, zero pairs.
        let mut b = FunctionBuilder::new("one_ptr", &[], None);
        let eight = b.const_int(8);
        let p = b.malloc(eight);
        b.ret(None);
        let one_ptr = m.add_function(b.finish());
        sra_ir::verify::verify_module(&m).expect("verifies");

        let rbaa = RbaaAnalysis::analyze(&m);
        for f in [ints, one_ptr] {
            let matrix = AliasMatrix::build(&rbaa, &m, f);
            assert_eq!(matrix.stats().queries, 0, "{f}");
            assert_eq!(matrix.stats().no_alias, 0, "{f}");
            assert_eq!(matrix.stats().percent_no_alias(), 0.0, "{f}");
        }
        // The empty matrix answers lookups about outsiders with None…
        let matrix = AliasMatrix::build(&rbaa, &m, ints);
        assert!(matrix.pointers().is_empty());
        assert_eq!(matrix.lookup(n, n1), None);
        // …and the single-pointer matrix still covers its diagonal.
        let matrix = AliasMatrix::build(&rbaa, &m, one_ptr);
        assert_eq!(matrix.pointers(), &[p]);
        assert_eq!(matrix.lookup(p, p), Some((AliasResult::MayAlias, None)));
    }

    /// Regression (found by the pipeline deep fuzz): the local test
    /// must not compare offsets taken through *different* σs of the
    /// same φ. In `while (p < e) { *p = x; p = p + 1; }` the body's
    /// `p+1` (σ_< instance of iteration k) and the exit pointer (σ_≥
    /// instance after the last iteration) both read the loop-φ, but at
    /// different instants: with exactly one iteration both concretely
    /// equal `base+1`, so a `NoAlias` verdict would be unsound.
    #[test]
    fn sigma_instances_are_not_comparable_locally() {
        let mut b = FunctionBuilder::new("walk", &[], None);
        let size = b.const_int(8);
        let buf = b.malloc(size);
        let head = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        let one = b.const_int(1);
        let end = b.ptr_add(buf, one); // e = buf + 1: a single iteration
        let entry = b.current_block();
        b.jump(head);
        b.switch_to(head);
        let p = b.phi(Ty::Ptr, &[(entry, buf)]);
        let c = b.cmp(CmpOp::Lt, p, end);
        b.br(c, body, exit);
        b.switch_to(body);
        let zero = b.const_int(0);
        b.store(p, zero);
        let pnext = b.ptr_add(p, one);
        b.add_phi_arg(p, body, pnext);
        b.jump(head);
        b.switch_to(exit);
        b.ret(None);
        let mut f = b.finish();
        f.set_exported(true);
        sra_ir::essa::run(&mut f);
        let mut m = Module::new();
        let fid = m.add_function(f);
        sra_ir::verify::verify_module(&m).expect("verifies");

        let rbaa = RbaaAnalysis::analyze(&m);
        let f = m.function(fid);
        let exit_sigma = f
            .value_ids()
            .find(|&v| {
                matches!(f.value(v).as_inst(),
                    Some(sra_ir::Inst::Sigma { input, op: CmpOp::Ge, .. }) if *input == p)
            })
            .expect("exit σ of the loop φ");
        // `pnext` was rewritten by e-SSA to add from the body σ; its LR
        // offset is [1,1] while the exit σ's is [0,0] — yet both can be
        // `buf+1` at run time. The σ-chain guard must reject the pair.
        assert_eq!(
            rbaa.alias(fid, pnext, exit_sigma),
            AliasResult::MayAlias,
            "offsets from different σ instances of one φ are incomparable"
        );
    }

    /// A module whose pointers exercise every cell code: distinct
    /// mallocs (DistinctLocs), same-base disjoint offsets (Global),
    /// a loaded pointer (⊤ → MayAlias) and a freed one (⊥).
    fn mixed_pointer_module() -> (Module, FuncId) {
        let mut b = FunctionBuilder::new("mixed", &[], None);
        let ten = b.const_int(10);
        let p = b.malloc(ten);
        let q = b.malloc(ten);
        for off in 0..6 {
            let c = b.const_int(off);
            let base = if off % 2 == 0 { p } else { q };
            let _ = b.ptr_add(base, c);
        }
        let _top = b.load(p, Ty::Ptr);
        let _dead = b.free(q);
        b.ret(None);
        let mut m = Module::new();
        let fid = m.add_function(b.finish());
        sra_ir::verify::verify_module(&m).expect("verifies");
        (m, fid)
    }

    /// The tiled parallel build must be byte-identical to the serial
    /// one: same verdicts on every pair, same stats, same byte layout.
    #[test]
    fn parallel_build_matches_serial() {
        let (m, fid) = mixed_pointer_module();
        let rbaa = RbaaAnalysis::analyze(&m);
        let ptrs = pointer_values(&m, fid);
        let serial = AliasMatrix::build(&rbaa, &m, fid);
        for threads in [2, 4, 7] {
            let tiled = AliasMatrix::build_with(&rbaa, &m, fid, threads);
            assert_eq!(serial.stats(), tiled.stats(), "t{threads}");
            assert_eq!(serial.bytes(), tiled.bytes(), "t{threads}");
            assert_eq!(serial.cells, tiled.cells, "t{threads}");
            for &p in &ptrs {
                for &q in &ptrs {
                    assert_eq!(serial.lookup(p, q), tiled.lookup(p, q));
                }
            }
        }
    }

    /// The module-sweep build (shared scratch overlays reused across
    /// every function of a chunk) must be cell-for-cell identical to
    /// per-function builds — memoisation carried across functions can
    /// never change a verdict, at any pool width.
    #[test]
    fn build_all_matches_per_function_builds() {
        let mut m = Module::new();
        let mut fids = Vec::new();
        for i in 0..5 {
            let mut b = FunctionBuilder::new(&format!("f{i}"), &[Ty::Int], None);
            let n = b.param(0);
            let p = b.malloc(n);
            let q = b.malloc(n);
            for off in 0..4 {
                let c = b.const_int(off + i);
                let base = if off % 2 == 0 { p } else { q };
                let _ = b.ptr_add(base, c);
            }
            b.ret(None);
            fids.push(m.add_function(b.finish()));
        }
        sra_ir::verify::verify_module(&m).expect("verifies");
        let rbaa = RbaaAnalysis::analyze(&m);
        let reference: Vec<AliasMatrix> = fids
            .iter()
            .map(|&f| AliasMatrix::build(&rbaa, &m, f))
            .collect();
        for threads in [1, 2, 4] {
            let pool = pool::WorkerPool::forced(threads);
            let swept = AliasMatrix::build_all_on(&rbaa, &m, &pool);
            assert_eq!(swept.len(), reference.len(), "t{threads}");
            for (serial, sweep) in reference.iter().zip(&swept) {
                assert_eq!(serial.stats(), sweep.stats(), "t{threads}");
                assert_eq!(serial.cells, sweep.cells, "t{threads}");
                assert_eq!(serial.ptrs, sweep.ptrs, "t{threads}");
            }
        }
    }

    /// Cells pack four verdicts per byte, and the accounting says so.
    #[test]
    fn packed_cells_quarter_the_bytes() {
        let (m, fid) = mixed_pointer_module();
        let rbaa = RbaaAnalysis::analyze(&m);
        let matrix = AliasMatrix::build(&rbaa, &m, fid);
        let n = matrix.pointers().len();
        let pairs = n * (n - 1) / 2;
        let bytes = matrix.bytes();
        assert_eq!(bytes.pairs, pairs);
        assert_eq!(bytes.unpacked_bytes, pairs);
        assert_eq!(bytes.packed_bytes, pairs.div_ceil(4));
        assert!(bytes.saving_ratio() >= 3.0, "{:?}", bytes);
        let mut total = MatrixBytes::default();
        total.merge(&bytes);
        total.merge(&bytes);
        assert_eq!(total.pairs, 2 * pairs);
        assert_eq!(MatrixBytes::default().saving_ratio(), 0.0);
    }

    /// Demand-driven answers are byte-identical to the uncached
    /// reference, and repeats hit the memo instead of re-proving.
    #[test]
    fn demand_cache_matches_reference_and_memoises() {
        let (m, fid) = mixed_pointer_module();
        let rbaa = RbaaAnalysis::analyze(&m);
        let ptrs = pointer_values(&m, fid);
        let mut cache = rbaa.demand_cache();
        for &p in &ptrs {
            for &q in &ptrs {
                assert_eq!(
                    cache.query(&rbaa, fid, p, q),
                    rbaa.alias_with_test(fid, p, q)
                );
            }
        }
        let stats = cache.stats();
        assert_eq!(stats.queries, ptrs.len() * ptrs.len());
        assert_eq!(stats.sig_misses, ptrs.len());
        // Pair verdicts are proved per signature class, not per pair.
        let s = stats.sig_misses;
        assert!(stats.pair_misses <= s * (s + 1) / 2);
        // A repeat query is pure memo traffic.
        let before = cache.stats();
        cache.query(&rbaa, fid, ptrs[0], ptrs[1]);
        let after = cache.stats();
        assert_eq!(after.sig_misses, before.sig_misses);
        assert_eq!(after.pair_misses, before.pair_misses);
        assert_eq!(after.queries, before.queries + 1);
    }

    /// A single cold query proves only the one signature pair it
    /// needs — the "no full matrix build" property of demand mode.
    #[test]
    fn demand_single_query_touches_one_pair() {
        let (m, fid) = mixed_pointer_module();
        let rbaa = RbaaAnalysis::analyze(&m);
        let ptrs = pointer_values(&m, fid);
        let mut cache = rbaa.demand_cache();
        let (p, q) = (ptrs[0], ptrs[1]);
        assert_eq!(
            cache.query(&rbaa, fid, p, q),
            rbaa.alias_with_test(fid, p, q)
        );
        let stats = cache.stats();
        assert_eq!(stats.sig_misses, 2, "only the two queried pointers");
        assert_eq!(stats.pair_misses, 1, "only the one queried pair");
    }

    /// Regression (code review of the σ-chain fix): the instance
    /// confusion also flows through *integer* σs. In
    /// `for (i = 0; i < n; i++) *(p+i) = 0; *(p + (i-1)) = 1;` the
    /// body store uses σ_<(i) (iteration k) and the post-loop store
    /// uses σ_≥(i) − 1 (after the last iteration); with one iteration
    /// both are `p+0`, so ranges [i,i] vs [i−1,i−1] must not be
    /// compared even though no pointer-typed σ is involved.
    #[test]
    fn int_sigma_instances_are_not_comparable_locally() {
        let mut b = FunctionBuilder::new("tail", &[Ty::Ptr, Ty::Int], None);
        let p = b.param(0);
        let n = b.param(1);
        let head = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        let zero = b.const_int(0);
        let entry = b.current_block();
        b.jump(head);
        b.switch_to(head);
        let i = b.phi(Ty::Int, &[(entry, zero)]);
        let c = b.cmp(CmpOp::Lt, i, n);
        b.br(c, body, exit);
        b.switch_to(body);
        let body_addr = b.ptr_add(p, i); // i rewritten to σ_<(i) by e-SSA
        b.store(body_addr, zero);
        let one = b.const_int(1);
        let inext = b.binop(BinOp::Add, i, one);
        b.add_phi_arg(i, body, inext);
        b.jump(head);
        b.switch_to(exit);
        let neg_one = b.const_int(-1);
        let im1 = b.binop(BinOp::Add, i, neg_one); // σ_≥(i) − 1
        let tail_addr = b.ptr_add(p, im1);
        b.store(tail_addr, one);
        b.ret(None);
        let mut f = b.finish();
        f.set_exported(true);
        sra_ir::essa::run(&mut f);
        let mut m = Module::new();
        let fid = m.add_function(f);
        sra_ir::verify::verify_module(&m).expect("verifies");

        let rbaa = RbaaAnalysis::analyze(&m);
        assert_eq!(
            rbaa.alias(fid, body_addr, tail_addr),
            AliasResult::MayAlias,
            "offsets through different int-σ instances are incomparable"
        );
    }
}
