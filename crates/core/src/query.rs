//! Alias queries: the global test `QGR`, the local test `QLR`, the
//! combined analysis of the paper's Figure 5, and the per-function
//! [`AliasMatrix`] cache that answers all-pairs workloads in `O(1)`
//! per repeat query.

use sra_ir::{BlockId, FuncId, Module, Ty, ValueId};
use sra_range::RangeAnalysis;
use sra_symbolic::{ArenaStats, ExprArena, FxHashMap, RangeId, SymbolTable};

use crate::gr::{GrAnalysis, GrConfig};
use crate::locs::{LocId, LocKind, LocTable};
use crate::lr::{LocalBase, LrAnalysis};
use crate::state::PtrState;

/// The verdict of one alias query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AliasResult {
    /// The two pointers provably never reference overlapping memory.
    NoAlias,
    /// Overlap could not be ruled out.
    MayAlias,
}

/// Which of the complementary mechanisms produced a `NoAlias` answer.
///
/// The paper's Figure 14 attributes answers to the *global test* only
/// when symbolic range comparison on a **common** location was needed;
/// the bulk of disambiguation comes from pointers whose supports do not
/// intersect at all ("comparing offsets from different locations", §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WhichTest {
    /// Supports are disjoint: the pointers address different allocation
    /// sites (or one of them addresses nothing).
    DistinctLocs,
    /// The global test of §3.5 proper: the supports share at least one
    /// location, and the symbolic offset ranges are provably disjoint
    /// everywhere.
    Global,
    /// The local test of §3.7 (same local base, disjoint offsets).
    Local,
}

/// A pointer disambiguation oracle.
///
/// Implemented by [`RbaaAnalysis`] here and by the baseline analyses in
/// the `sra-baselines` crate, so that the evaluation harness can compare
/// them uniformly.
pub trait AliasAnalysis {
    /// A short name for reports (`rbaa`, `basic`, `scev`).
    fn name(&self) -> &'static str;

    /// May `p` and `q` (two pointer-typed values of function `f`)
    /// reference overlapping memory?
    fn alias(&self, f: FuncId, p: ValueId, q: ValueId) -> AliasResult;
}

/// The paper's combined range-based alias analysis (`rbaa`): the global
/// symbolic range analysis of pointers plus the local renaming test.
///
/// Construct with [`RbaaAnalysis::analyze`]; the module should already
/// be in e-SSA form (run [`sra_ir::essa::run`] on each function during
/// lowering) — the analysis is still sound on plain SSA, only less
/// precise, because σ-nodes are where comparison information enters.
#[derive(Debug, Clone)]
pub struct RbaaAnalysis {
    ranges: RangeAnalysis,
    gr: GrAnalysis,
    lr: LrAnalysis,
}

impl RbaaAnalysis {
    /// Runs the full pipeline of Figure 5: bootstrap integer ranges,
    /// global pointer analysis, local pointer analysis.
    pub fn analyze(m: &Module) -> Self {
        Self::analyze_with(m, GrConfig::default())
    }

    /// Runs the pipeline with an explicit global-analysis configuration.
    pub fn analyze_with(m: &Module, config: GrConfig) -> Self {
        let ranges = RangeAnalysis::analyze(m);
        let gr = GrAnalysis::analyze_with(m, &ranges, config);
        let lr = LrAnalysis::analyze(m);
        RbaaAnalysis { ranges, gr, lr }
    }

    /// Assembles a result from already-computed pieces (the batch
    /// driver runs the per-function pieces on worker threads).
    pub(crate) fn from_pieces(ranges: RangeAnalysis, gr: GrAnalysis, lr: LrAnalysis) -> Self {
        RbaaAnalysis { ranges, gr, lr }
    }

    /// The bootstrap integer range analysis.
    pub fn ranges(&self) -> &RangeAnalysis {
        &self.ranges
    }

    /// The global pointer analysis.
    pub fn gr(&self) -> &GrAnalysis {
        &self.gr
    }

    /// The local pointer analysis.
    pub fn lr(&self) -> &LrAnalysis {
        &self.lr
    }

    /// The symbol table for displaying analysis states.
    pub fn symbols(&self) -> &SymbolTable {
        self.ranges.symbols()
    }

    /// Summed arena counters of the three module arenas (bootstrap
    /// ranges, GR, LR) — the interning effectiveness of one analysis.
    pub fn arena_stats(&self) -> ArenaStats {
        let mut s = self.ranges.arena().stats();
        s.merge(&self.gr.arena().stats());
        s.merge(&self.lr.arena().stats());
        s
    }

    /// Like [`AliasAnalysis::alias`], additionally reporting which test
    /// fired for a `NoAlias` answer (the paper's Figure 14 attribution).
    ///
    /// This is the *uncached reference path*: each call re-proves its
    /// range comparisons from the interned states (reconstructing the
    /// handful of ranges it needs), exactly like the seed per-query
    /// sweep the batched matrices are benchmarked against. Batch
    /// consumers use [`crate::AliasMatrix`], which memoises every
    /// comparison.
    pub fn alias_with_test(
        &self,
        f: FuncId,
        p: ValueId,
        q: ValueId,
    ) -> (AliasResult, Option<WhichTest>) {
        if p == q {
            return (AliasResult::MayAlias, None);
        }
        if let Some(kind) = global_no_alias_kind(
            self.gr.raw_state(f, p),
            self.gr.raw_state(f, q),
            self.gr.locs(),
            self.gr.arena(),
        ) {
            return (AliasResult::NoAlias, Some(kind));
        }
        if let (Some(sp), Some(sq)) = (self.lr.raw_state(f, p), self.lr.raw_state(f, q)) {
            // Preconditions for the "same moment" semantics: the
            // pointers must be defined in the same block (so their k-th
            // definitions belong to the same activation) and their
            // derivations must have read every σ at the same instant
            // (equal σ-sets — a body-σ and an exit-σ of one φ denote
            // different iterations whose addresses may coincide). Only
            // then does disjointness of the offset ranges prove the
            // addresses distinct within every activation.
            if sp.base == sq.base
                && sp.block.is_some()
                && sp.block == sq.block
                && sp.sigmas == sq.sigmas
            {
                let arena = self.lr.arena();
                if arena
                    .range_value(sp.range)
                    .meet(&arena.range_value(sq.range))
                    .is_empty()
                {
                    return (AliasResult::NoAlias, Some(WhichTest::Local));
                }
            }
        }
        (AliasResult::MayAlias, None)
    }
}

impl AliasAnalysis for RbaaAnalysis {
    fn name(&self) -> &'static str {
        "rbaa"
    }

    fn alias(&self, f: FuncId, p: ValueId, q: ValueId) -> AliasResult {
        self.alias_with_test(f, p, q).0
    }
}

/// The global test `QGR` (§3.5): `NoAlias` when the concretizations are
/// provably disjoint. `arena` is the arena the states' range handles
/// point into (usually [`GrAnalysis::arena`]).
///
/// Implements Proposition 2, extended for `Unknown` locations (pointer
/// parameters of exported functions and external-call results): two
/// *different* locations only separate pointers when both are concrete
/// allocation sites, because two unknown bases may be the same memory;
/// within a *common* location the symbolic offset ranges must be
/// provably disjoint.
pub fn global_no_alias(a: &PtrState, b: &PtrState, locs: &LocTable, arena: &ExprArena) -> bool {
    global_no_alias_kind(a, b, locs, arena).is_some()
}

/// Like [`global_no_alias`], reporting *how* the pointers were
/// separated: by disjoint supports, or by range reasoning on common
/// locations (the paper's "global test" of Figure 14).
pub fn global_no_alias_kind(
    a: &PtrState,
    b: &PtrState,
    locs: &LocTable,
    arena: &ExprArena,
) -> Option<WhichTest> {
    // ⊥ concretizes to the empty address set.
    if a.is_bottom() || b.is_bottom() {
        return Some(WhichTest::DistinctLocs);
    }
    if a.is_top() || b.is_top() {
        return None;
    }
    let mut used_ranges = false;
    for (la, ra) in a.support() {
        for (lb, rb) in b.support() {
            if la == lb {
                if arena.range_value(ra).may_overlap(&arena.range_value(rb)) {
                    return None;
                }
                used_ranges = true;
            } else if !locs.site(la).kind.separable_from(locs.site(lb).kind) {
                // An unknown base may coincide with globals and other
                // unknown bases (but not with fresh allocations).
                return None;
            }
        }
    }
    Some(if used_ranges {
        WhichTest::Global
    } else {
        WhichTest::DistinctLocs
    })
}

/// Aggregate statistics over a batch of queries — the rows of the
/// paper's Figures 13 and 14.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Total queries issued.
    pub queries: usize,
    /// Queries answered `NoAlias`.
    pub no_alias: usize,
    /// `NoAlias` answers from disjoint allocation-site supports.
    pub by_distinct_locs: usize,
    /// `NoAlias` answers produced by the global test (common-location
    /// range reasoning).
    pub by_global: usize,
    /// `NoAlias` answers produced by the local test.
    pub by_local: usize,
}

impl QueryStats {
    /// Percentage of queries answered `NoAlias` (the `%` columns of
    /// Figure 13).
    pub fn percent_no_alias(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            100.0 * self.no_alias as f64 / self.queries as f64
        }
    }

    /// Issues every pairwise query among `pointers` (unordered pairs,
    /// `p ≠ q`) against `rbaa` and accumulates the outcome.
    pub fn run_pairs(rbaa: &RbaaAnalysis, f: FuncId, pointers: &[ValueId]) -> Self {
        let mut stats = QueryStats::default();
        for (i, &p) in pointers.iter().enumerate() {
            for &q in &pointers[i + 1..] {
                stats.queries += 1;
                match rbaa.alias_with_test(f, p, q) {
                    (AliasResult::NoAlias, Some(WhichTest::DistinctLocs)) => {
                        stats.no_alias += 1;
                        stats.by_distinct_locs += 1;
                    }
                    (AliasResult::NoAlias, Some(WhichTest::Global)) => {
                        stats.no_alias += 1;
                        stats.by_global += 1;
                    }
                    (AliasResult::NoAlias, Some(WhichTest::Local)) => {
                        stats.no_alias += 1;
                        stats.by_local += 1;
                    }
                    _ => {}
                }
            }
        }
        stats
    }

    /// Merges another batch into this one.
    pub fn merge(&mut self, other: &QueryStats) {
        self.queries += other.queries;
        self.no_alias += other.no_alias;
        self.by_distinct_locs += other.by_distinct_locs;
        self.by_global += other.by_global;
        self.by_local += other.by_local;
    }
}

/// Collects the pointer-typed values of a function — the query universe
/// of the paper's evaluation (§4 enumerates pairs of pointers).
pub fn pointer_values(m: &Module, f: FuncId) -> Vec<ValueId> {
    let func = m.function(f);
    func.value_ids()
        .filter(|&v| func.value(v).ty() == Some(Ty::Ptr))
        .collect()
}

/// Packed verdict codes of one [`AliasMatrix`] cell.
const CELL_MAY: u8 = 0;
const CELL_DISTINCT: u8 = 1;
const CELL_GLOBAL: u8 = 2;
const CELL_LOCAL: u8 = 3;

fn decode_cell(cell: u8) -> (AliasResult, Option<WhichTest>) {
    match cell {
        CELL_DISTINCT => (AliasResult::NoAlias, Some(WhichTest::DistinctLocs)),
        CELL_GLOBAL => (AliasResult::NoAlias, Some(WhichTest::Global)),
        CELL_LOCAL => (AliasResult::NoAlias, Some(WhichTest::Local)),
        _ => (AliasResult::MayAlias, None),
    }
}

/// The cached all-pairs verdicts of one function: every unordered pair
/// of pointer-typed values of `f`, evaluated once over the analyses'
/// interned states, packed into a triangular byte matrix.
///
/// The build works directly on the GR and LR module arenas' handles —
/// state signatures are `RangeId` vectors, no re-interning — through
/// per-build *overlay* arenas ([`ExprArena::with_base`]), so every
/// distinct range comparison is proved once and matrix builds can run
/// on worker threads against one shared analysis. Verdicts are
/// byte-identical to [`RbaaAnalysis::alias_with_test`] — the
/// workspace's equivalence property test pins this.
#[derive(Debug, Clone)]
pub struct AliasMatrix {
    ptrs: Vec<ValueId>,
    pos: FxHashMap<ValueId, usize>,
    cells: Vec<u8>,
    stats: QueryStats,
}

/// Interned global state of one pointer.
#[derive(PartialEq, Eq, Hash)]
enum IGr {
    Bottom,
    Top,
    Support(Vec<(LocId, RangeId)>),
}

/// Interned local state of one pointer.
#[derive(PartialEq, Eq, Hash)]
struct ILr {
    base: LocalBase,
    block: Option<BlockId>,
    /// Dense id of the σ-set (equal sets share an id).
    sigmas: u32,
    range: RangeId,
}

impl AliasMatrix {
    /// Builds the matrix over every pointer-typed value of `f`.
    pub fn build(rbaa: &RbaaAnalysis, m: &Module, f: FuncId) -> Self {
        Self::build_for(rbaa, f, pointer_values(m, f))
    }

    /// Builds the matrix over an explicit pointer universe (must be
    /// duplicate-free).
    ///
    /// Hash-consing happens at two levels: the states' offset ranges
    /// are already interned handles into the GR/LR module arenas (the
    /// per-build overlays memoise each distinct comparison once), and
    /// whole pointer *states* are deduplicated into signature classes —
    /// a function with `P` pointers typically has far fewer distinct
    /// `(GR, LR)` states, and for `p ≠ q` the verdict depends only on
    /// the states, so the `O(P²)` pair sweep collapses to `O(S²)`
    /// state-pair verdicts plus an `O(P²)` table fill.
    pub fn build_for(rbaa: &RbaaAnalysis, f: FuncId, ptrs: Vec<ValueId>) -> Self {
        let mut gr_arena = ExprArena::with_base(rbaa.gr().arena_arc());
        let mut lr_arena = ExprArena::with_base(rbaa.lr().arena_arc());
        let locs = rbaa.gr().locs();
        let kinds: Vec<LocKind> = (0..locs.len())
            .map(|i| locs.site(LocId::new(i)).kind)
            .collect();

        // Collapse equal states to one signature class (the states'
        // ranges are already interned ids — signatures are id tuples).
        let mut sigma_ids: FxHashMap<&[ValueId], u32> = FxHashMap::default();
        let mut sig_ids: FxHashMap<(IGr, Option<ILr>), u32> = FxHashMap::default();
        let mut sigs: Vec<usize> = Vec::with_capacity(ptrs.len());
        for &p in &ptrs {
            let st = rbaa.gr().raw_state(f, p);
            let igr = if st.is_bottom() {
                IGr::Bottom
            } else if st.is_top() {
                IGr::Top
            } else {
                IGr::Support(st.support().collect())
            };
            let ilr = rbaa.lr().raw_state(f, p).map(|s| {
                let next = sigma_ids.len() as u32;
                let sigmas = *sigma_ids.entry(s.sigmas.as_slice()).or_insert(next);
                ILr {
                    base: s.base,
                    block: s.block,
                    sigmas,
                    range: s.range,
                }
            });
            let next = sig_ids.len() as u32;
            sigs.push(*sig_ids.entry((igr, ilr)).or_insert(next) as usize);
        }
        let mut by_id: Vec<Option<(&IGr, &Option<ILr>)>> = vec![None; sig_ids.len()];
        for (k, &id) in &sig_ids {
            by_id[id as usize] = Some((&k.0, &k.1));
        }

        // One verdict per unordered signature pair (including the
        // "same signature, different pointer" diagonal).
        // Row `a` of the upper triangle (b ≥ a) starts after the
        // `a*s - a*(a-1)/2` entries of the rows above it.
        let s = sig_ids.len();
        let tri = |a: usize, b: usize| a * s - a * a.saturating_sub(1) / 2 - a + b;
        let mut sig_cells = vec![CELL_MAY; s * (s + 1) / 2];
        for a in 0..s {
            let (ga, la) = by_id[a].expect("dense signature ids");
            for b in a..s {
                let (gb, lb) = by_id[b].expect("dense signature ids");
                sig_cells[tri(a, b)] =
                    Self::verdict(&mut gr_arena, &mut lr_arena, &kinds, ga, gb, la, lb);
            }
        }
        let sig_cell = |a: usize, b: usize| {
            let (a, b) = if a <= b { (a, b) } else { (b, a) };
            sig_cells[tri(a, b)]
        };

        // Fill the pointer-pair triangle from the signature table.
        let n = ptrs.len();
        let mut cells = vec![CELL_MAY; n * n.saturating_sub(1) / 2];
        let mut stats = QueryStats::default();
        let mut idx = 0;
        for i in 0..n {
            for j in i + 1..n {
                let cell = sig_cell(sigs[i], sigs[j]);
                cells[idx] = cell;
                idx += 1;
                stats.queries += 1;
                match cell {
                    CELL_DISTINCT => {
                        stats.no_alias += 1;
                        stats.by_distinct_locs += 1;
                    }
                    CELL_GLOBAL => {
                        stats.no_alias += 1;
                        stats.by_global += 1;
                    }
                    CELL_LOCAL => {
                        stats.no_alias += 1;
                        stats.by_local += 1;
                    }
                    _ => {}
                }
            }
        }

        let pos = ptrs.iter().enumerate().map(|(i, &p)| (p, i)).collect();
        AliasMatrix {
            ptrs,
            pos,
            cells,
            stats,
        }
    }

    /// One pair, on interned handles — mirrors
    /// [`RbaaAnalysis::alias_with_test`] decision for decision.
    /// `gr_arena`/`lr_arena` are the build's overlays over the
    /// respective module arenas.
    fn verdict(
        gr_arena: &mut ExprArena,
        lr_arena: &mut ExprArena,
        kinds: &[LocKind],
        gp: &IGr,
        gq: &IGr,
        lp: &Option<ILr>,
        lq: &Option<ILr>,
    ) -> u8 {
        // The global test (`global_no_alias_kind` on handles).
        let global = match (gp, gq) {
            (IGr::Bottom, _) | (_, IGr::Bottom) => Some(CELL_DISTINCT),
            (IGr::Top, _) | (_, IGr::Top) => None,
            (IGr::Support(sa), IGr::Support(sb)) => {
                let mut used_ranges = false;
                let mut separated = true;
                'pairs: for &(la, ra) in sa {
                    for &(lb, rb) in sb {
                        if la == lb {
                            if !gr_arena.ranges_disjoint(ra, rb) {
                                separated = false;
                                break 'pairs;
                            }
                            used_ranges = true;
                        } else if !kinds[la.index()].separable_from(kinds[lb.index()]) {
                            separated = false;
                            break 'pairs;
                        }
                    }
                }
                if separated {
                    Some(if used_ranges {
                        CELL_GLOBAL
                    } else {
                        CELL_DISTINCT
                    })
                } else {
                    None
                }
            }
        };
        if let Some(cell) = global {
            return cell;
        }
        // The local test (`QLR` preconditions, then range disjointness).
        if let (Some(a), Some(b)) = (lp, lq) {
            if a.base == b.base
                && a.block.is_some()
                && a.block == b.block
                && a.sigmas == b.sigmas
                && lr_arena.ranges_disjoint(a.range, b.range)
            {
                return CELL_LOCAL;
            }
        }
        CELL_MAY
    }

    /// The pointer universe of the matrix, in value order.
    pub fn pointers(&self) -> &[ValueId] {
        &self.ptrs
    }

    /// The aggregate [`QueryStats`] of the all-pairs sweep (one
    /// Figure 13/14 row contribution).
    pub fn stats(&self) -> &QueryStats {
        &self.stats
    }

    /// The cached verdict for `p` vs `q` in `O(1)`; `None` when either
    /// value is outside the matrix's universe. `p == q` answers
    /// `MayAlias` like [`RbaaAnalysis::alias_with_test`].
    pub fn lookup(&self, p: ValueId, q: ValueId) -> Option<(AliasResult, Option<WhichTest>)> {
        let &i = self.pos.get(&p)?;
        let &j = self.pos.get(&q)?;
        if i == j {
            return Some((AliasResult::MayAlias, None));
        }
        let (i, j) = if i < j { (i, j) } else { (j, i) };
        let n = self.ptrs.len();
        let idx = i * (2 * n - i - 1) / 2 + (j - i - 1);
        Some(decode_cell(self.cells[idx]))
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use sra_ir::{BinOp, Callee, CmpOp, FunctionBuilder};

    /// The paper's Figure 1 end-to-end: the two stores write provably
    /// disjoint regions, disambiguated by the *global* test.
    #[test]
    fn figure1_global_disambiguation() {
        // main: Z = atoi(..); b = malloc(Z); s = malloc(strlen);
        //       prepare(b, Z, s)
        let mut m = Module::new();

        // prepare(p, N, mm):
        //   for (i = p, e = p + N; i < e; i += 2) { *i = 0; *(i+1) = 0xFF }
        //   for (f = e + strlen(m); i < f; i++) { *i = *m; m++ }
        let mut b = FunctionBuilder::new("prepare", &[Ty::Ptr, Ty::Int, Ty::Ptr], None);
        let p = b.param(0);
        let n = b.param(1);
        b.set_name(n, "N");
        let mptr = b.param(2);
        let h1 = b.create_block();
        let bd1 = b.create_block();
        let mid = b.create_block();
        let h2 = b.create_block();
        let bd2 = b.create_block();
        let exit = b.create_block();
        let zero = b.const_int(0);
        let i0 = b.ptr_add(p, zero);
        let e = b.ptr_add(p, n);
        let entry = b.entry_block();
        b.jump(h1);

        b.switch_to(h1);
        let i1 = b.phi(Ty::Ptr, &[(entry, i0)]);
        let c1 = b.cmp(CmpOp::Lt, i1, e);
        b.br(c1, bd1, mid);

        b.switch_to(bd1);
        // store *i = 0 — through the σ of i1 (inserted by essa).
        let ff = b.const_int(0xFF);
        b.store(i1, zero); // will be rewritten to σ(i1) by essa
        let one = b.const_int(1);
        let t0 = b.ptr_add(i1, one);
        b.store(t0, ff);
        let two = b.const_int(2);
        let i3 = b.ptr_add(i1, two);
        b.add_phi_arg(i1, bd1, i3);
        b.jump(h1);

        b.switch_to(mid);
        let len = b.call(Callee::External("strlen".into()), &[mptr], Some(Ty::Int));
        let f2 = b.ptr_add(e, len);
        b.jump(h2);

        b.switch_to(h2);
        let i5 = b.phi(Ty::Ptr, &[(mid, i1)]);
        let m1 = b.phi(Ty::Ptr, &[(mid, mptr)]);
        let c2 = b.cmp(CmpOp::Lt, i5, f2);
        b.br(c2, bd2, exit);

        b.switch_to(bd2);
        let ch = b.load(m1, Ty::Int);
        b.store(i5, ch);
        let m2 = b.ptr_add(m1, one);
        let i7 = b.ptr_add(i5, one);
        b.add_phi_arg(i5, bd2, i7);
        b.add_phi_arg(m1, bd2, m2);
        b.jump(h2);

        b.switch_to(exit);
        b.ret(None);
        let mut fprep = b.finish();
        sra_ir::essa::run(&mut fprep);
        sra_ir::verify::verify_function(&fprep, None).expect("verified");
        let prep = m.add_function(fprep);

        // main:
        let mut b = FunctionBuilder::new("main", &[], None);
        let z = b.call(Callee::External("atoi".into()), &[], Some(Ty::Int));
        let buf = b.malloc(z);
        let slen = b.call(Callee::External("strlen".into()), &[], Some(Ty::Int));
        let s = b.malloc(slen);
        b.call(Callee::Internal(prep), &[buf, z, s], None);
        b.ret(None);
        m.add_function(b.finish());

        sra_ir::verify::verify_module(&m).expect("module verified");
        let rbaa = RbaaAnalysis::analyze(&m);

        // The store addresses: σ(i1) in bd1 (first loop) and σ(i5) in
        // bd2 (second loop).
        let f = m.function(prep);
        let sig1 = f
            .value_ids()
            .find(|&v| {
                matches!(f.value(v).as_inst(),
                    Some(sra_ir::Inst::Sigma { input, op: CmpOp::Lt, .. }) if *input == i1)
            })
            .expect("σ(i1)");
        let sig2 = f
            .value_ids()
            .find(|&v| {
                matches!(f.value(v).as_inst(),
                    Some(sra_ir::Inst::Sigma { input, op: CmpOp::Lt, .. }) if *input == i5)
            })
            .expect("σ(i5)");

        let (res, test) = rbaa.alias_with_test(prep, sig1, sig2);
        assert_eq!(
            res,
            AliasResult::NoAlias,
            "stores at lines 6 and 10 are independent"
        );
        assert_eq!(test, Some(WhichTest::Global));

        // Complementarity: σ(i1) vs t0 = σ(i1)+1 overlaps globally
        // ([0,N-1] vs [1,N]) but the *local* test separates them within
        // an iteration — the Figure 4 situation.
        let (res, test) = rbaa.alias_with_test(prep, sig1, t0);
        assert_eq!(res, AliasResult::NoAlias);
        assert_eq!(test, Some(WhichTest::Local));
        // And the φ i1 vs its own σ may alias (same address).
        let (res, _) = rbaa.alias_with_test(prep, i1, sig1);
        assert_eq!(res, AliasResult::MayAlias);
    }

    /// The paper's Figure 3/4: tmp0 = p+i, tmp1 = p+i+1 — the global
    /// test fails but the local test separates them.
    #[test]
    fn figure3_local_disambiguation() {
        let mut b = FunctionBuilder::new("accelerate", &[Ty::Ptr, Ty::Int], None);
        let p = b.param(0);
        let n = b.param(1);
        b.set_name(n, "N");
        let head = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        let zero = b.const_int(0);
        let entry = b.entry_block();
        b.jump(head);
        b.switch_to(head);
        let i = b.phi(Ty::Int, &[(entry, zero)]);
        let c = b.cmp(CmpOp::Lt, i, n);
        b.br(c, body, exit);
        b.switch_to(body);
        let tmp0 = b.ptr_add(p, i);
        let one = b.const_int(1);
        let ip1 = b.binop(BinOp::Add, i, one);
        let tmp1 = b.ptr_add(p, ip1);
        let x = b.load(tmp0, Ty::Int);
        b.store(tmp0, x);
        let y = b.load(tmp1, Ty::Int);
        b.store(tmp1, y);
        let two = b.const_int(2);
        let i2 = b.binop(BinOp::Add, i, two);
        b.add_phi_arg(i, body, i2);
        b.jump(head);
        b.switch_to(exit);
        b.ret(None);
        let mut f = b.finish();
        f.set_exported(true);
        sra_ir::essa::run(&mut f);
        let mut m = Module::new();
        let fid = m.add_function(f);
        let rbaa = RbaaAnalysis::analyze(&m);

        let (res, test) = rbaa.alias_with_test(fid, tmp0, tmp1);
        assert_eq!(res, AliasResult::NoAlias);
        assert_eq!(
            test,
            Some(WhichTest::Local),
            "only the local test separates them"
        );
    }

    /// Distinct malloc sites never alias (global test).
    #[test]
    fn distinct_mallocs_no_alias() {
        let mut b = FunctionBuilder::new("main", &[], None);
        let ten = b.const_int(10);
        let p = b.malloc(ten);
        let q = b.malloc(ten);
        b.ret(None);
        let mut m = Module::new();
        let fid = m.add_function(b.finish());
        let rbaa = RbaaAnalysis::analyze(&m);
        let (res, test) = rbaa.alias_with_test(fid, p, q);
        assert_eq!(res, AliasResult::NoAlias);
        assert_eq!(test, Some(WhichTest::DistinctLocs));
    }

    /// Two pointer params of an exported function may alias — distinct
    /// Unknown locations never separate.
    #[test]
    fn unknown_params_may_alias() {
        let mut b = FunctionBuilder::new("api", &[Ty::Ptr, Ty::Ptr], None);
        let p = b.param(0);
        let q = b.param(1);
        b.ret(None);
        let mut f = b.finish();
        f.set_exported(true);
        let mut m = Module::new();
        let fid = m.add_function(f);
        let rbaa = RbaaAnalysis::analyze(&m);
        assert_eq!(rbaa.alias(fid, p, q), AliasResult::MayAlias);
        // But offsets from the *same* param are still separable.
        let mut b = FunctionBuilder::new("api2", &[Ty::Ptr], None);
        let p = b.param(0);
        let one = b.const_int(1);
        let a = b.ptr_add(p, one);
        let two = b.const_int(2);
        let c = b.ptr_add(p, two);
        b.ret(None);
        let mut f = b.finish();
        f.set_exported(true);
        let fid2 = m.add_function(f);
        let rbaa = RbaaAnalysis::analyze(&m);
        assert_eq!(rbaa.alias(fid2, a, c), AliasResult::NoAlias);
    }

    /// A loaded pointer (⊤) may alias everything.
    #[test]
    fn loaded_pointer_top() {
        let mut b = FunctionBuilder::new("main", &[], None);
        let ten = b.const_int(10);
        let p = b.malloc(ten);
        let q = b.load(p, Ty::Ptr);
        let r = b.malloc(ten);
        b.ret(None);
        let mut m = Module::new();
        let fid = m.add_function(b.finish());
        let rbaa = RbaaAnalysis::analyze(&m);
        assert_eq!(rbaa.alias(fid, q, r), AliasResult::MayAlias);
        assert_eq!(rbaa.alias(fid, q, p), AliasResult::MayAlias);
    }

    /// Freed pointers concretize to ∅.
    #[test]
    fn freed_pointer_no_alias() {
        let mut b = FunctionBuilder::new("main", &[], None);
        let ten = b.const_int(10);
        let p = b.malloc(ten);
        let dead = b.free(p);
        b.ret(None);
        let mut m = Module::new();
        let fid = m.add_function(b.finish());
        let rbaa = RbaaAnalysis::analyze(&m);
        assert_eq!(rbaa.alias(fid, dead, p), AliasResult::NoAlias);
    }

    /// QueryStats totals add up.
    #[test]
    fn query_stats_accumulate() {
        let mut b = FunctionBuilder::new("main", &[], None);
        let ten = b.const_int(10);
        let p = b.malloc(ten);
        let _q = b.malloc(ten);
        let one = b.const_int(1);
        let _p1 = b.ptr_add(p, one);
        b.ret(None);
        let mut m = Module::new();
        let fid = m.add_function(b.finish());
        let rbaa = RbaaAnalysis::analyze(&m);
        let ptrs = pointer_values(&m, fid);
        assert_eq!(ptrs.len(), 3);
        let stats = QueryStats::run_pairs(&rbaa, fid, &ptrs);
        assert_eq!(stats.queries, 3);
        // p vs q and p1 vs q are separated by sites (distinct locs);
        // p vs p1 share a loc with provably disjoint ranges (global).
        assert_eq!(stats.no_alias, 3);
        assert_eq!(stats.by_distinct_locs, 2);
        assert_eq!(stats.by_global, 1);
        assert!(stats.percent_no_alias() > 99.0);
    }

    /// Functions with zero pointer pairs — no pointers at all, or a
    /// single pointer — must produce an empty matrix and all-zero
    /// stats with finite percentages, not NaN or a panic.
    #[test]
    fn empty_and_single_pointer_functions_yield_empty_matrices() {
        // percent_no_alias at zero queries is 0.0, not NaN.
        let zero = QueryStats::default();
        assert_eq!(zero.queries, 0);
        assert_eq!(zero.percent_no_alias(), 0.0);
        assert!(zero.percent_no_alias().is_finite());

        let mut m = Module::new();
        // An addressless function: integers only.
        let mut b = FunctionBuilder::new("ints", &[Ty::Int], Some(Ty::Int));
        let n = b.param(0);
        let one = b.const_int(1);
        let n1 = b.binop(BinOp::Add, n, one);
        b.ret(Some(n1));
        let ints = m.add_function(b.finish());
        // A single-pointer function: one malloc, zero pairs.
        let mut b = FunctionBuilder::new("one_ptr", &[], None);
        let eight = b.const_int(8);
        let p = b.malloc(eight);
        b.ret(None);
        let one_ptr = m.add_function(b.finish());
        sra_ir::verify::verify_module(&m).expect("verifies");

        let rbaa = RbaaAnalysis::analyze(&m);
        for f in [ints, one_ptr] {
            let matrix = AliasMatrix::build(&rbaa, &m, f);
            assert_eq!(matrix.stats().queries, 0, "{f}");
            assert_eq!(matrix.stats().no_alias, 0, "{f}");
            assert_eq!(matrix.stats().percent_no_alias(), 0.0, "{f}");
        }
        // The empty matrix answers lookups about outsiders with None…
        let matrix = AliasMatrix::build(&rbaa, &m, ints);
        assert!(matrix.pointers().is_empty());
        assert_eq!(matrix.lookup(n, n1), None);
        // …and the single-pointer matrix still covers its diagonal.
        let matrix = AliasMatrix::build(&rbaa, &m, one_ptr);
        assert_eq!(matrix.pointers(), &[p]);
        assert_eq!(matrix.lookup(p, p), Some((AliasResult::MayAlias, None)));
    }

    /// Regression (found by the pipeline deep fuzz): the local test
    /// must not compare offsets taken through *different* σs of the
    /// same φ. In `while (p < e) { *p = x; p = p + 1; }` the body's
    /// `p+1` (σ_< instance of iteration k) and the exit pointer (σ_≥
    /// instance after the last iteration) both read the loop-φ, but at
    /// different instants: with exactly one iteration both concretely
    /// equal `base+1`, so a `NoAlias` verdict would be unsound.
    #[test]
    fn sigma_instances_are_not_comparable_locally() {
        let mut b = FunctionBuilder::new("walk", &[], None);
        let size = b.const_int(8);
        let buf = b.malloc(size);
        let head = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        let one = b.const_int(1);
        let end = b.ptr_add(buf, one); // e = buf + 1: a single iteration
        let entry = b.current_block();
        b.jump(head);
        b.switch_to(head);
        let p = b.phi(Ty::Ptr, &[(entry, buf)]);
        let c = b.cmp(CmpOp::Lt, p, end);
        b.br(c, body, exit);
        b.switch_to(body);
        let zero = b.const_int(0);
        b.store(p, zero);
        let pnext = b.ptr_add(p, one);
        b.add_phi_arg(p, body, pnext);
        b.jump(head);
        b.switch_to(exit);
        b.ret(None);
        let mut f = b.finish();
        f.set_exported(true);
        sra_ir::essa::run(&mut f);
        let mut m = Module::new();
        let fid = m.add_function(f);
        sra_ir::verify::verify_module(&m).expect("verifies");

        let rbaa = RbaaAnalysis::analyze(&m);
        let f = m.function(fid);
        let exit_sigma = f
            .value_ids()
            .find(|&v| {
                matches!(f.value(v).as_inst(),
                    Some(sra_ir::Inst::Sigma { input, op: CmpOp::Ge, .. }) if *input == p)
            })
            .expect("exit σ of the loop φ");
        // `pnext` was rewritten by e-SSA to add from the body σ; its LR
        // offset is [1,1] while the exit σ's is [0,0] — yet both can be
        // `buf+1` at run time. The σ-chain guard must reject the pair.
        assert_eq!(
            rbaa.alias(fid, pnext, exit_sigma),
            AliasResult::MayAlias,
            "offsets from different σ instances of one φ are incomparable"
        );
    }

    /// Regression (code review of the σ-chain fix): the instance
    /// confusion also flows through *integer* σs. In
    /// `for (i = 0; i < n; i++) *(p+i) = 0; *(p + (i-1)) = 1;` the
    /// body store uses σ_<(i) (iteration k) and the post-loop store
    /// uses σ_≥(i) − 1 (after the last iteration); with one iteration
    /// both are `p+0`, so ranges [i,i] vs [i−1,i−1] must not be
    /// compared even though no pointer-typed σ is involved.
    #[test]
    fn int_sigma_instances_are_not_comparable_locally() {
        let mut b = FunctionBuilder::new("tail", &[Ty::Ptr, Ty::Int], None);
        let p = b.param(0);
        let n = b.param(1);
        let head = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        let zero = b.const_int(0);
        let entry = b.current_block();
        b.jump(head);
        b.switch_to(head);
        let i = b.phi(Ty::Int, &[(entry, zero)]);
        let c = b.cmp(CmpOp::Lt, i, n);
        b.br(c, body, exit);
        b.switch_to(body);
        let body_addr = b.ptr_add(p, i); // i rewritten to σ_<(i) by e-SSA
        b.store(body_addr, zero);
        let one = b.const_int(1);
        let inext = b.binop(BinOp::Add, i, one);
        b.add_phi_arg(i, body, inext);
        b.jump(head);
        b.switch_to(exit);
        let neg_one = b.const_int(-1);
        let im1 = b.binop(BinOp::Add, i, neg_one); // σ_≥(i) − 1
        let tail_addr = b.ptr_add(p, im1);
        b.store(tail_addr, one);
        b.ret(None);
        let mut f = b.finish();
        f.set_exported(true);
        sra_ir::essa::run(&mut f);
        let mut m = Module::new();
        let fid = m.add_function(f);
        sra_ir::verify::verify_module(&m).expect("verifies");

        let rbaa = RbaaAnalysis::analyze(&m);
        assert_eq!(
            rbaa.alias(fid, body_addr, tail_addr),
            AliasResult::MayAlias,
            "offsets through different int-σ instances are incomparable"
        );
    }
}
