//! The global pointer range analysis `GR` (paper §3.4).
//!
//! A whole-program abstract interpretation over
//! [`PtrState`](crate::PtrState), implementing the constraint rules of
//! Figure 9:
//!
//! * `p = malloc v` binds `p` to `{loc_p + [0,0]}`;
//! * `p = free v` binds `p` to ⊥;
//! * `q = p + c` shifts every component by `R(c)` (the bootstrap
//!   integer range analysis);
//! * `q = φ(p₁, p₂)` joins (and is the widening point);
//! * σ-nodes meet per-location against the other pointer's bounds;
//! * `q = *p` is ⊤ (the paper deliberately does not track pointers
//!   through memory);
//! * stores are ignored.
//!
//! Interprocedurality is context-insensitive (§3.1): each formal
//! parameter behaves as a φ over the actuals at every call site, and a
//! call's result joins the callee's return states. Exported functions
//! additionally seed pointer formals with an `Unknown` location of their
//! own, since callers outside the module may pass anything.
//!
//! # States are interned
//!
//! Every offset range of every state is a [`sra_symbolic::RangeId`] into the solver's
//! arena (seeded from the bootstrap analysis' module arena, so `R(c)`
//! handles stay valid), which turns the fixpoint's dominating costs —
//! state equality in `update`, widening's bound-stability test, and the
//! provable-inclusion fast path — into integer compares and memo hits.
//! After the fixpoint, [`GrAnalysis`] re-interns the final states into
//! a fresh *canonical* arena (a structure-driven import in function/
//! value order), so the ids an analysis hands out depend only on the
//! final states — serial, waves and incremental-session assemblies
//! agree id-for-id.
//!
//! # Scheduling
//!
//! The solver is a Gauss–Seidel fixpoint over the whole module. Its
//! sweep order — which is *spec*, because widening makes the computed
//! fixpoint order-sensitive — follows the SCC condensation of the call
//! graph ([`sra_ir::callgraph::Condensation`]): levels of the
//! condensation DAG, SCCs within a level in id order, member functions
//! of an SCC in id order, one pass per function per global sweep.
//! Sweep direction alternates: even sweeps walk the levels bottom-up
//! (so callee *return* states reach every caller within one sweep),
//! odd sweeps top-down (so caller *actuals* reach every formal within
//! one sweep). A call DAG of any depth therefore converges in O(1)
//! sweeps, where any fixed one-directional order — including the old
//! flat function-id order — needed a number of sweeps proportional to
//! the chain depth and could trip the ascending cap on nothing more
//! than a deep chain of calls.
//!
//! Two SCCs on the same condensation level share no call edge in either
//! direction, so they exchange no dataflow within a sweep. That is the
//! parallelism [`GrSchedule::Waves`] exploits: each level's SCCs are
//! analysed concurrently on the [`crate::pool`] thread pool — each task
//! interning into a private *overlay* over the frozen solver arena —
//! and after the level the overlays are merged back in SCC order
//! ([`sra_symbolic::ExprArena::adopt`]), so the result is
//! **byte-identical** to [`GrSchedule::Serial`] — the same determinism
//! contract the batch driver established for the per-function phases.
//! The `gr_schedule_equivalence` property suite pins the contract.

use std::sync::Arc;

use sra_ir::callgraph::{CallGraph, Condensation};
use sra_ir::cfg::Cfg;
use sra_ir::{Callee, CmpOp, FuncId, Inst, Module, Terminator, Ty, ValueId, ValueKind};
use sra_range::RangeAnalysis;
use sra_symbolic::{BoundId, ExprArena, ImportMap, OverlayPart, OverlayXlate, Symbol};

use crate::locs::LocTable;
use crate::pool;
use crate::state::{PtrState, PtrStateRef};

/// How the module-level Gauss–Seidel sweeps are executed.
///
/// Both schedules visit functions in the *same* order (the bottom-up
/// SCC condensation of the call graph) and produce byte-identical
/// states; `Waves` additionally runs the mutually independent SCCs of
/// each condensation level concurrently. A module that is one big
/// recursive SCC collapses `Waves` back to effectively-serial
/// execution — the schedule can only parallelise what recursion has
/// not fused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrSchedule {
    /// Level by level on the calling thread.
    Serial,
    /// Same order and results; same-level SCCs fan out on the pool
    /// with [`GrConfig::threads`] workers.
    Waves,
}

/// Tuning knobs for [`GrAnalysis`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrConfig {
    /// Length of the descending sequence (paper: 2).
    pub descending_steps: u32,
    /// Safety cap on ascending sweeps before unstable join points are
    /// forced to ⊤.
    pub max_ascending_sweeps: u32,
    /// Apply widening at φ/formal/call-result join points (the paper's
    /// cut set). Disabling this is only useful for ablation studies on
    /// acyclic programs.
    pub widening: bool,
    /// How to execute the sweeps (results are identical either way).
    pub schedule: GrSchedule,
    /// Worker threads for [`GrSchedule::Waves`] (`1` runs inline; the
    /// batch driver overrides this with its own worker count).
    pub threads: usize,
}

impl Default for GrConfig {
    fn default() -> Self {
        GrConfig {
            descending_steps: 2,
            max_ascending_sweeps: 32,
            widening: true,
            schedule: GrSchedule::Waves,
            threads: pool::default_threads(),
        }
    }
}

/// Results of the global analysis: `GR(p)` for every pointer `p`, with
/// every offset range interned in one canonical arena.
///
/// Per-function state vectors sit behind [`Arc`]s so an incremental
/// session can share the untouched functions' fixpoints between
/// successive analyses without copying them.
#[derive(Debug, Clone)]
pub struct GrAnalysis {
    locs: LocTable,
    states: Vec<Arc<Vec<PtrState>>>,
    arena: Arc<ExprArena>,
    ascending_sweeps: u32,
}

impl GrAnalysis {
    /// Runs the analysis with default configuration.
    pub fn analyze(m: &Module, ranges: &RangeAnalysis) -> Self {
        Self::analyze_with(m, ranges, GrConfig::default())
    }

    /// Runs the analysis on a one-shot pool of exactly
    /// [`GrConfig::threads`] width (so explicit thread counts exercise
    /// the wave schedule even on smaller machines). Long-lived callers
    /// should hold a [`pool::WorkerPool`] and use [`GrAnalysis::analyze_on`].
    pub fn analyze_with(m: &Module, ranges: &RangeAnalysis, config: GrConfig) -> Self {
        Self::analyze_on(m, ranges, config, &pool::WorkerPool::forced(config.threads))
    }

    /// Runs the analysis with every parallel phase — the wave levels
    /// and the final canonical re-interning — dispatched on `pool`.
    pub fn analyze_on(
        m: &Module,
        ranges: &RangeAnalysis,
        config: GrConfig,
        pool: &pool::WorkerPool,
    ) -> Self {
        let locs = LocTable::build(m);
        let graph = CallGraph::build(m);
        let components = graph.weak_components();
        let callers = build_callers(m);
        let cfgs = build_cfgs(m);
        let (states, solver_arena, ascending_sweeps) = {
            let mut solver = GrSolver::new(
                m,
                ranges,
                &locs,
                config,
                &callers,
                &cfgs,
                Condensation::build(&graph),
                pool,
            );
            solver.run(&components);
            (solver.states, solver.arena, solver.sweeps)
        };
        let (states, arena) = canonicalize_states_on(states, &solver_arena, pool);
        GrAnalysis {
            locs,
            states,
            arena,
            ascending_sweeps,
        }
    }

    /// Assembles a result from already-solved pieces (the incremental
    /// session recomputes only the dirty weak components, importing
    /// clean components' cached states into the fresh canonical
    /// `arena`).
    pub(crate) fn from_raw(
        locs: LocTable,
        states: Vec<Arc<Vec<PtrState>>>,
        arena: Arc<ExprArena>,
        ascending_sweeps: u32,
    ) -> Self {
        GrAnalysis {
            locs,
            states,
            arena,
            ascending_sweeps,
        }
    }

    /// The shared state vector of one function (for the session's
    /// carry-over of untouched components).
    pub(crate) fn function_states(&self, f: FuncId) -> &Arc<Vec<PtrState>> {
        &self.states[f.index()]
    }

    /// Raw access to a stored state (crate-internal fast paths that
    /// manage the arena themselves).
    pub(crate) fn raw_state(&self, f: FuncId, v: ValueId) -> &PtrState {
        &self.states[f.index()][v.index()]
    }

    /// The abstract state of value `v` in function `f` (⊥ for
    /// non-pointer values), bundled with the arena its offset ranges
    /// point into.
    pub fn state(&self, f: FuncId, v: ValueId) -> PtrStateRef<'_> {
        PtrStateRef::new(&self.states[f.index()][v.index()], &self.arena)
    }

    /// The canonical arena every state's range handles point into.
    pub fn arena(&self) -> &ExprArena {
        &self.arena
    }

    /// The canonical arena behind its shared handle (overlay bases for
    /// parallel consumers such as the matrix builds).
    pub fn arena_arc(&self) -> Arc<ExprArena> {
        Arc::clone(&self.arena)
    }

    /// The allocation-site table the states refer to.
    pub fn locs(&self) -> &LocTable {
        &self.locs
    }

    /// How many ascending sweeps the fixpoint took — a schedule-quality
    /// diagnostic: with the condensation order, deep call *chains*
    /// converge in O(1) sweeps instead of O(depth).
    pub fn ascending_sweeps(&self) -> u32 {
        self.ascending_sweeps
    }
}

/// Imports one state into `dst`, translating every range handle (the
/// canonical re-interning after a solve, and the session's clean-
/// component carry-over — there with a symbol renaming and a location
/// remap on the keys).
pub(crate) fn import_ptr_state(
    dst: &mut ExprArena,
    src: &ExprArena,
    s: &PtrState,
    rename: &impl Fn(Symbol) -> Symbol,
    map: &mut ImportMap,
) -> PtrState {
    match s {
        PtrState::Top => PtrState::Top,
        PtrState::Map(m) => PtrState::Map(
            m.iter()
                .map(|(loc, &r)| (*loc, dst.import_range(src, r, rename, map)))
                .collect(),
        ),
    }
}

/// Re-interns final solver states into a fresh canonical arena, in
/// function/value order. The import is structure-driven, so the
/// canonical arena — and every id — is a pure function of the final
/// states: serial and wave solves (whose *solver* arenas differ in
/// insertion order) land on identical canonical ids.
fn canonicalize_states(
    states: Vec<Vec<PtrState>>,
    solver_arena: &ExprArena,
) -> (Vec<Arc<Vec<PtrState>>>, Arc<ExprArena>) {
    let mut arena = ExprArena::new();
    let mut map = ImportMap::default();
    let out = states
        .into_iter()
        .map(|func| {
            Arc::new(
                func.iter()
                    .map(|s| import_ptr_state(&mut arena, solver_arena, s, &|s| s, &mut map))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    arena.absorb_op_stats(solver_arena);
    (out, Arc::new(arena))
}

/// [`canonicalize_states`] with the per-function imports fanned out on
/// `pool`: each function's states re-intern into a private overlay over
/// a shared frozen empty arena, and the overlays merge into the
/// canonical arena in function order.
///
/// Byte-identical to the serial walk — the same fixed-order
/// overlay-adopt argument as
/// [`sra_range::RangeAnalysis::from_parts_on`]: each overlay records
/// its function's structures in the serial import's first-encounter
/// order, and the in-order adopt dedups nodes already contributed by
/// earlier functions while appending new ones in overlay order. A
/// width-1 pool takes the serial path directly (the fan-out re-imports
/// shared structures once per function, which only pays off with real
/// parallelism).
fn canonicalize_states_on(
    states: Vec<Vec<PtrState>>,
    solver_arena: &ExprArena,
    pool: &pool::WorkerPool,
) -> (Vec<Arc<Vec<PtrState>>>, Arc<ExprArena>) {
    if pool.threads() == 1 || states.len() <= 1 {
        return canonicalize_states(states, solver_arena);
    }
    let empty = Arc::new(ExprArena::new());
    let imported: Vec<(Vec<PtrState>, OverlayPart)> = pool.run_map(states, |func| {
        let mut overlay = ExprArena::with_base(Arc::clone(&empty));
        let mut map = ImportMap::default();
        let func = func
            .iter()
            .map(|s| import_ptr_state(&mut overlay, solver_arena, s, &|s| s, &mut map))
            .collect();
        (func, overlay.into_overlay_part())
    });
    let mut arena = ExprArena::new();
    let out = imported
        .into_iter()
        .map(|(mut func, overlay)| {
            let xl = arena.adopt(overlay);
            for s in &mut func {
                remap_state(s, &xl);
            }
            Arc::new(func)
        })
        .collect();
    arena.absorb_op_stats(solver_arena);
    (out, Arc::new(arena))
}

/// A call site: caller and actual arguments.
pub(crate) struct CallSite {
    pub(crate) caller: FuncId,
    pub(crate) args: Vec<ValueId>,
}

/// The call sites targeting each function, callers in id order, sites
/// in instruction order — the join order the Gauss–Seidel formal-
/// parameter updates see, which is therefore part of the reproducible
/// schedule.
pub(crate) fn build_callers(m: &Module) -> Vec<Vec<CallSite>> {
    let nf = m.num_functions();
    let mut callers: Vec<Vec<CallSite>> = (0..nf).map(|_| Vec::new()).collect();
    for fid in m.func_ids() {
        let f = m.function(fid);
        for (_, v) in f.insts() {
            if let Some(Inst::Call {
                callee: Callee::Internal(target),
                args,
                ..
            }) = f.value(v).as_inst()
            {
                if target.index() < nf {
                    callers[target.index()].push(CallSite {
                        caller: fid,
                        args: args.clone(),
                    });
                }
            }
        }
    }
    callers
}

/// One CFG per function (reverse post-orders drive the sweeps; the
/// session caches these across edits).
pub(crate) fn build_cfgs(m: &Module) -> Vec<Cfg> {
    m.func_ids().map(|f| Cfg::new(m.function(f))).collect()
}

/// The widening cut set (the paper's Definition 4 join points): every
/// abstract-state join where recursive dataflow can re-enter — φ-nodes,
/// formal parameters (joins over call-site actuals) and internal-call
/// results (joins over callee returns).
///
/// `force_top_join_points` and the widened updates in `sweep_function`
/// must agree on this set: a capped ascending sequence forces exactly
/// these points to ⊤ and then relies on one more sweep re-deriving all
/// *other* values from them, so a join point missing here would keep a
/// stale, unsound state after the cap trips.
fn is_widen_point(kind: &ValueKind) -> bool {
    matches!(
        kind,
        ValueKind::Param { .. }
            | ValueKind::Inst(Inst::Phi { .. })
            | ValueKind::Inst(Inst::Call {
                callee: Callee::Internal(_),
                ..
            })
    )
}

/// Read/write access to the per-function pointer states during a
/// sweep. The serial schedule mutates the solver's arrays in place;
/// the wave schedule gives each SCC ownership of its members' states
/// over a read-only snapshot of everything else. (The arena travels
/// *beside* the store — the serial path lends the solver arena, a wave
/// task lends its private overlay.)
trait GrStore {
    fn state(&self, f: FuncId, v: ValueId) -> &PtrState;
    fn ret_state(&self, f: FuncId) -> &PtrState;
    fn set_state(&mut self, f: FuncId, v: ValueId, s: PtrState);
    fn set_ret_state(&mut self, f: FuncId, s: PtrState);
}

/// Direct, whole-module access (the serial schedule).
struct DirectStore<'a> {
    states: &'a mut [Vec<PtrState>],
    rets: &'a mut [PtrState],
}

impl GrStore for DirectStore<'_> {
    fn state(&self, f: FuncId, v: ValueId) -> &PtrState {
        &self.states[f.index()][v.index()]
    }

    fn ret_state(&self, f: FuncId) -> &PtrState {
        &self.rets[f.index()]
    }

    fn set_state(&mut self, f: FuncId, v: ValueId, s: PtrState) {
        self.states[f.index()][v.index()] = s;
    }

    fn set_ret_state(&mut self, f: FuncId, s: PtrState) {
        self.rets[f.index()] = s;
    }
}

/// One SCC's working set during a wave: owned state vectors for the
/// member functions (taken from the solver, mutated freely, written
/// back after the level completes) over a shared snapshot of every
/// other function's states. Cross-SCC *reads* only ever reach
/// functions of earlier (already written-back) or later (not yet
/// touched) levels — same-level SCCs are never call-adjacent.
struct SccStore<'a> {
    /// Member functions, ascending.
    members: &'a [FuncId],
    local_states: Vec<Vec<PtrState>>,
    local_rets: Vec<PtrState>,
    global_states: &'a [Vec<PtrState>],
    global_rets: &'a [PtrState],
}

impl SccStore<'_> {
    fn member_pos(&self, f: FuncId) -> Option<usize> {
        self.members.binary_search(&f).ok()
    }
}

impl GrStore for SccStore<'_> {
    fn state(&self, f: FuncId, v: ValueId) -> &PtrState {
        match self.member_pos(f) {
            Some(k) => &self.local_states[k][v.index()],
            None => &self.global_states[f.index()][v.index()],
        }
    }

    fn ret_state(&self, f: FuncId) -> &PtrState {
        match self.member_pos(f) {
            Some(k) => &self.local_rets[k],
            None => &self.global_rets[f.index()],
        }
    }

    fn set_state(&mut self, f: FuncId, v: ValueId, s: PtrState) {
        let k = self.member_pos(f).expect("writes stay within the SCC");
        self.local_states[k][v.index()] = s;
    }

    fn set_ret_state(&mut self, f: FuncId, s: PtrState) {
        let k = self.member_pos(f).expect("writes stay within the SCC");
        self.local_rets[k] = s;
    }
}

/// Writes `new` into the state of `(fid, v)`, applying widening or
/// descending discipline; returns whether the state changed.
fn update<S: GrStore>(
    store: &mut S,
    arena: &mut ExprArena,
    fid: FuncId,
    v: ValueId,
    new: PtrState,
    widen: bool,
    descend: bool,
) -> bool {
    let next = {
        let slot = store.state(fid, v);
        // Fast path for the (dominant) already-stable case: when `new`
        // is *provably* included in the stored state, `join` returns
        // the stored bounds verbatim (`bound_min`/`max` hand back the
        // provably-winning expression) and widening equal states is the
        // identity, so the slow path below could only confirm
        // "unchanged" after allocating two throwaway states. With
        // interned states the inclusion test itself is all memo hits.
        // Not taken for descending sweeps, which deliberately shrink
        // states.
        if !descend && new.le(slot, arena) {
            debug_assert!(
                {
                    let joined = slot.join(&new, arena);
                    let next = if widen {
                        slot.widen(&joined, arena)
                    } else {
                        joined
                    };
                    next == *store.state(fid, v)
                },
                "provable inclusion must leave the state byte-unchanged"
            );
            return false;
        }
        let slot = store.state(fid, v);
        let next = if descend {
            new
        } else if widen {
            let joined = slot.join(&new, arena);
            store.state(fid, v).widen(&joined, arena)
        } else {
            slot.join(&new, arena)
        };
        if next == *store.state(fid, v) {
            return false;
        }
        next
    };
    store.set_state(fid, v, next);
    true
}

/// The immutable context of a sweep: everything `sweep_function` needs
/// besides the states themselves, so the wave schedule can share it
/// across worker threads (and the session across edits).
pub(crate) struct SweepCtx<'a> {
    pub(crate) m: &'a Module,
    pub(crate) ranges: &'a RangeAnalysis,
    pub(crate) locs: &'a LocTable,
    /// Call sites targeting each function.
    pub(crate) callers: &'a [Vec<CallSite>],
    pub(crate) cfgs: &'a [Cfg],
}

impl SweepCtx<'_> {
    /// One Gauss–Seidel pass over `fid`: formals, then the reachable
    /// blocks in reverse post-order, then the function's return state.
    /// `arena` is the store's companion allocator (solver arena or a
    /// wave task's overlay).
    fn sweep_function<S: GrStore>(
        &self,
        store: &mut S,
        arena: &mut ExprArena,
        fid: FuncId,
        widen: bool,
        descend: bool,
    ) -> bool {
        let f = self.m.function(fid);
        let mut changed = false;

        // Formal parameters: φ over actuals (+Unknown seed when exported).
        for (index, &p) in f.params().iter().enumerate() {
            if f.value(p).ty() != Some(Ty::Ptr) {
                continue;
            }
            let mut acc = match self.locs.loc_of_value(fid, p) {
                Some(unknown_loc) => {
                    let zero = arena.range_constant(0);
                    PtrState::singleton(unknown_loc, zero)
                }
                None => PtrState::bottom(),
            };
            for site in &self.callers[fid.index()] {
                // Arity mismatches only exist in unverified modules;
                // treat a missing actual as contributing ⊥ rather than
                // panicking.
                let Some(&actual) = site.args.get(index) else {
                    continue;
                };
                acc = acc.join(store.state(site.caller, actual), arena);
            }
            changed |= update(store, arena, fid, p, acc, widen, descend);
        }

        for &b in self.cfgs[fid.index()].rpo() {
            for &v in f.block(b).insts() {
                if f.value(v).ty() != Some(Ty::Ptr) {
                    continue;
                }
                let Some(inst) = f.value(v).as_inst() else {
                    continue;
                };
                let new = match inst {
                    Inst::Phi { args, .. } => {
                        let mut acc = PtrState::bottom();
                        for (_, a) in args {
                            acc = acc.join(store.state(fid, *a), arena);
                        }
                        changed |= update(store, arena, fid, v, acc, widen, descend);
                        continue;
                    }
                    Inst::PtrAdd { base, offset } => {
                        let off = self.ranges.range(fid, *offset);
                        store.state(fid, *base).clone().add_offset(off, arena)
                    }
                    Inst::Sigma { input, op, other } => {
                        if f.value(*other).ty() == Some(Ty::Ptr) {
                            let input_state = store.state(fid, *input).clone();
                            let other_state = store.state(fid, *other).clone();
                            apply_ptr_sigma(arena, &input_state, *op, &other_state)
                        } else {
                            // Comparing a pointer with an integer tells
                            // us nothing about locations.
                            store.state(fid, *input).clone()
                        }
                    }
                    Inst::Call {
                        callee: Callee::Internal(target),
                        ..
                    } if target.index() < self.m.num_functions() => {
                        store.ret_state(*target).clone()
                    }
                    // Seeded kinds are invariant: malloc/alloca/global
                    // addresses, external calls, loads (⊤), free (⊥).
                    // Out-of-range internal targets (unverified
                    // modules) contribute nothing.
                    _ => continue,
                };
                let use_widen = widen && is_widen_point(f.value(v).kind());
                changed |= update(store, arena, fid, v, new, use_widen, descend);
            }
        }

        // Refresh this function's return state.
        let mut ret = PtrState::bottom();
        if f.ret_ty() == Some(Ty::Ptr) {
            for b in f.block_ids() {
                if let Some(Terminator::Ret(Some(v))) = f.block(b).terminator_opt() {
                    ret = ret.join(store.state(fid, *v), arena);
                }
            }
        }
        if ret != *store.ret_state(fid) {
            store.set_ret_state(fid, ret);
            changed = true;
        }
        changed
    }
}

/// Remaps every range handle of a state through an overlay merge
/// translation.
fn remap_state(s: &mut PtrState, xl: &OverlayXlate) {
    if let PtrState::Map(m) = s {
        for r in m.values_mut() {
            *r = xl.range(*r);
        }
    }
}

/// The module-level Gauss–Seidel engine, exposed crate-internally so
/// the incremental session can drive it one weak component at a time.
///
/// # Componentwise decomposition
///
/// Interprocedural dataflow crosses *call edges only*, so two distinct
/// weakly connected components of the call graph never exchange any
/// state. That makes the whole fixpoint decompose exactly:
///
/// * **ascending** — a component's trajectory under the global sweep
///   loop is identical to sweeping it alone: converged components
///   no-op in later sweeps (a Gauss–Seidel pass that changes nothing
///   leaves a fixpoint that every later pass preserves), the widening
///   flag and direction parity depend only on the sweep index, and the
///   global sweep count is the maximum of the per-component counts;
/// * **the only coupling is the ascending cap** — when *any* component
///   is still unstable at `max_ascending_sweeps`, the scratch solver
///   forces the widening cut set of *every* function to ⊤ and
///   re-derives, converged components included. The per-component
///   `tripped` bits are therefore OR-ed into one module-wide flag
///   before the post phase;
/// * **descending** — the scratch loop stops early only when *no*
///   component changed in a step, but extra steps on a per-component
///   stable state are no-ops, so running each component's descending
///   loop with its own early exit yields byte-identical final states.
///
/// `run` *is* this composition, so the session's partial recompute and
/// the scratch analysis execute the same code over each component —
/// byte-identity is structural, and `tests/session_equivalence.rs`
/// re-verifies it on random modules and edit streams.
pub(crate) struct GrSolver<'a> {
    pub(crate) ctx: SweepCtx<'a>,
    pub(crate) config: GrConfig,
    pub(crate) cond: Condensation,
    /// The solver's working arena: a clone of the bootstrap analysis'
    /// module arena (so `R(c)` handles resolve directly), extended by
    /// everything the fixpoint builds.
    pub(crate) arena: ExprArena,
    pub(crate) states: Vec<Vec<PtrState>>,
    /// Join of the return states of each function.
    pub(crate) ret_states: Vec<PtrState>,
    /// Ascending sweeps the fixpoint took (max over components).
    pub(crate) sweeps: u32,
    /// The pool wave levels dispatch onto (a width-1 pool runs every
    /// sweep inline, the serial reference schedule).
    pub(crate) pool: &'a pool::WorkerPool,
}

impl<'a> GrSolver<'a> {
    // The solver borrows each pre-built piece individually on purpose:
    // callers assemble them at different times (driver vs session) and
    // a params struct would just move the argument list one hop away.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        m: &'a Module,
        ranges: &'a RangeAnalysis,
        locs: &'a LocTable,
        config: GrConfig,
        callers: &'a [Vec<CallSite>],
        cfgs: &'a [Cfg],
        cond: Condensation,
        pool: &'a pool::WorkerPool,
    ) -> Self {
        let nf = m.num_functions();
        let states = m
            .func_ids()
            .map(|f| vec![PtrState::bottom(); m.function(f).num_values()])
            .collect();
        // The clone starts with fresh counters: the bootstrap arena's
        // op stats are already reported by the range analysis itself,
        // and the canonical GR arena absorbs this solver's stats at
        // assembly — copied counters would double-count.
        let mut arena = ranges.arena().clone();
        arena.clear_op_stats();
        GrSolver {
            ctx: SweepCtx {
                m,
                ranges,
                locs,
                callers,
                cfgs,
            },
            config,
            cond,
            arena,
            states,
            ret_states: vec![PtrState::bottom(); nf],
            sweeps: 0,
            pool,
        }
    }

    /// The condensation levels restricted to each weak component (one
    /// entry per element of `components`, members sorted ascending):
    /// the same level order the full sweep uses, with foreign SCCs
    /// dropped and empty levels elided. Built in one pass over the
    /// levels — `O(total SCCs)`, not per-component rescans — so
    /// many-component modules stay linear.
    pub(crate) fn component_schedules(&self, components: &[Vec<FuncId>]) -> Vec<Vec<Vec<u32>>> {
        // SCC → component index, via any member function.
        let mut comp_of_fn = vec![u32::MAX; self.ctx.m.num_functions()];
        for (k, members) in components.iter().enumerate() {
            for &f in members {
                comp_of_fn[f.index()] = k as u32;
            }
        }
        let mut schedules: Vec<Vec<Vec<u32>>> = vec![Vec::new(); components.len()];
        // The last module-level each component's schedule saw, so SCCs
        // of one level land in one restricted level.
        let mut last_level = vec![u32::MAX; components.len()];
        for (li, level) in self.cond.levels().iter().enumerate() {
            for &scc in level {
                let member = self.cond.members(scc)[0];
                let k = comp_of_fn[member.index()];
                debug_assert_ne!(k, u32::MAX, "every SCC belongs to a component");
                let k = k as usize;
                if last_level[k] == li as u32 {
                    schedules[k].last_mut().expect("level started").push(scc);
                } else {
                    schedules[k].push(vec![scc]);
                    last_level[k] = li as u32;
                }
            }
        }
        schedules
    }

    /// The full fixpoint: ascend every component, combine the cap
    /// verdicts, then finish every component under the shared flag.
    ///
    /// Components run sequentially (each with the configured wave
    /// schedule *inside* it). Relative to the pre-component solver this
    /// trades the cross-component wave parallelism of fully
    /// disconnected call graphs — rare in practice, since entry points
    /// link almost everything into one component — for never re-
    /// sweeping an already-converged component while a slow one churns,
    /// and for the per-component reuse the incremental session is built
    /// on.
    pub(crate) fn run(&mut self, components: &[Vec<FuncId>]) {
        for fid in self.ctx.m.func_ids() {
            self.seed_function(fid);
        }
        let schedules = self.component_schedules(components);
        let mut tripped = false;
        let mut max_sweeps = 1;
        for levels in &schedules {
            let (sweeps, trip) = self.ascend_component(levels);
            tripped |= trip;
            max_sweeps = max_sweeps.max(sweeps);
        }
        self.sweeps = max_sweeps;
        for (levels, members) in schedules.iter().zip(components) {
            self.finish_component(levels, members, tripped);
        }
    }

    /// Invariant seeds of one function: allocation sites, globals,
    /// unknown sources.
    pub(crate) fn seed_function(&mut self, fid: FuncId) {
        let f = self.ctx.m.function(fid);
        for v in f.value_ids() {
            if f.value(v).ty() != Some(Ty::Ptr) {
                continue;
            }
            let state = match f.value(v).kind() {
                ValueKind::GlobalAddr(g) => {
                    let loc = self.ctx.locs.loc_of_global(*g).expect("global has loc");
                    let zero = self.arena.range_constant(0);
                    Some(PtrState::singleton(loc, zero))
                }
                ValueKind::Inst(Inst::Malloc { .. }) | ValueKind::Inst(Inst::Alloca { .. }) => {
                    let loc = self.ctx.locs.loc_of_value(fid, v).expect("site has loc");
                    let zero = self.arena.range_constant(0);
                    Some(PtrState::singleton(loc, zero))
                }
                ValueKind::Inst(Inst::Call {
                    callee: Callee::External(_),
                    ..
                }) => {
                    let loc = self
                        .ctx
                        .locs
                        .loc_of_value(fid, v)
                        .expect("ext call has loc");
                    let zero = self.arena.range_constant(0);
                    Some(PtrState::singleton(loc, zero))
                }
                ValueKind::Inst(Inst::Load { .. }) => Some(PtrState::top()),
                _ => None,
            };
            if let Some(s) = state {
                self.states[fid.index()][v.index()] = s;
            }
        }
    }

    /// The ascending loop restricted to one component: runs until a
    /// sweep changes nothing or the cap is hit, leaving the states at
    /// the *pre-force* point either way. Returns `(sweeps, tripped)`.
    pub(crate) fn ascend_component(&mut self, levels: &[Vec<u32>]) -> (u32, bool) {
        let mut sweeps = 0;
        loop {
            let widen = self.config.widening && sweeps > 0;
            // Alternate direction: bottom-up propagates returns to
            // callers in one sweep, top-down propagates actuals to
            // formals in one sweep.
            let changed = self.sweep_levels(levels, widen, false, sweeps % 2 == 0);
            sweeps += 1;
            if !changed {
                return (sweeps, false);
            }
            if sweeps >= self.config.max_ascending_sweeps {
                return (sweeps, true);
            }
        }
    }

    /// The post phase of one component: the cut-set forcing (when the
    /// module-wide cap `tripped`) with its re-derive sweep, then the
    /// descending sequence.
    pub(crate) fn finish_component(
        &mut self,
        levels: &[Vec<u32>],
        members: &[FuncId],
        tripped: bool,
    ) {
        if tripped {
            self.force_top_join_points(members);
            self.sweep_levels(levels, false, false, true);
        }
        for step in 0..self.config.descending_steps {
            if !self.sweep_levels(levels, false, true, step % 2 == 0) {
                break;
            }
        }
    }

    /// One sweep over the given condensation levels — bottom-up when
    /// `up`, top-down otherwise. The two schedules visit identical
    /// orders; `Waves` additionally runs each level's SCCs
    /// concurrently (each interning into a private overlay, merged back
    /// in SCC order), which cannot change any result because same-level
    /// SCCs share no call edge and the overlay merge only translates
    /// ids.
    fn sweep_levels(&mut self, levels: &[Vec<u32>], widen: bool, descend: bool, up: bool) -> bool {
        let GrSolver {
            ctx,
            config,
            cond,
            arena,
            states,
            ret_states,
            pool,
            ..
        } = self;
        let ctx: &SweepCtx = ctx;
        let cond: &Condensation = cond;
        let config: GrConfig = *config;
        let pool: &pool::WorkerPool = pool;
        let waves = matches!(config.schedule, GrSchedule::Waves) && pool.threads() > 1;
        let mut changed = false;
        let mut order: Vec<&Vec<u32>> = levels.iter().collect();
        if !up {
            order.reverse();
        }
        for level in order {
            if !waves || level.len() == 1 {
                let mut store = DirectStore {
                    states: states.as_mut_slice(),
                    rets: ret_states.as_mut_slice(),
                };
                for &scc in level {
                    for &f in cond.members(scc) {
                        changed |= ctx.sweep_function(&mut store, arena, f, widen, descend);
                    }
                }
                continue;
            }
            // Hand each SCC ownership of its members' states; the
            // emptied slots are never read because same-level SCCs are
            // not call-adjacent. Each task interns into an overlay over
            // the frozen solver arena.
            let items: Vec<(u32, Vec<Vec<PtrState>>, Vec<PtrState>)> = level
                .iter()
                .map(|&scc| {
                    let members = cond.members(scc);
                    (
                        scc,
                        members
                            .iter()
                            .map(|f| std::mem::take(&mut states[f.index()]))
                            .collect(),
                        members
                            .iter()
                            .map(|f| std::mem::take(&mut ret_states[f.index()]))
                            .collect(),
                    )
                })
                .collect();
            let frozen = Arc::new(std::mem::take(arena));
            let results = {
                let global_states: &[Vec<PtrState>] = states.as_slice();
                let global_rets: &[PtrState] = ret_states.as_slice();
                let frozen = &frozen;
                pool.run_map(items, |(scc, local_states, local_rets)| {
                    let mut task_arena = ExprArena::with_base(Arc::clone(frozen));
                    let mut store = SccStore {
                        members: cond.members(scc),
                        local_states,
                        local_rets,
                        global_states,
                        global_rets,
                    };
                    let mut ch = false;
                    for &f in cond.members(scc) {
                        ch |= ctx.sweep_function(&mut store, &mut task_arena, f, widen, descend);
                    }
                    (
                        scc,
                        store.local_states,
                        store.local_rets,
                        ch,
                        task_arena.into_overlay_part(),
                    )
                })
            };
            *arena = Arc::try_unwrap(frozen).expect("wave overlays released their base");
            // Merge overlays back in SCC order (results preserve item
            // order) — deterministic regardless of thread timing.
            for (scc, mut local_states, mut local_rets, ch, part) in results {
                changed |= ch;
                let xl = arena.adopt(part);
                let members = cond.members(scc);
                for func in &mut local_states {
                    for s in func.iter_mut() {
                        remap_state(s, &xl);
                    }
                }
                for s in &mut local_rets {
                    remap_state(s, &xl);
                }
                for ((s, r), &f) in local_states.into_iter().zip(local_rets).zip(members) {
                    states[f.index()] = s;
                    ret_states[f.index()] = r;
                }
            }
        }
        changed
    }

    /// When the ascending cap trips, every join point of the widening
    /// cut set — φs, formal parameters *and* internal-call results —
    /// must go to ⊤: the one sweep that follows re-derives all other
    /// values from them, so any join left behind would keep a stale,
    /// unsound state (e.g. a deep recursive chain whose churn lives
    /// entirely in formal/return joins). Restricted to `members`
    /// because the cap forcing runs once per weak component.
    pub(crate) fn force_top_join_points(&mut self, members: &[FuncId]) {
        let m = self.ctx.m;
        for &fid in members {
            let f = m.function(fid);
            for v in f.value_ids() {
                if f.value(v).ty() != Some(Ty::Ptr) {
                    continue;
                }
                if is_widen_point(f.value(v).kind()) {
                    self.states[fid.index()][v.index()] = PtrState::top();
                }
            }
        }
    }
}

/// σ transfer for pointer comparisons: refine `input` knowing
/// `input ⟨op⟩ other` (Figure 9's intersection rules).
fn apply_ptr_sigma(
    arena: &mut ExprArena,
    input: &PtrState,
    op: CmpOp,
    other: &PtrState,
) -> PtrState {
    match op {
        CmpOp::Lt => input.clamp_with(other, arena, |arena, ra, rb| match arena.range_hi(rb) {
            Some(BoundId::Fin(u)) => {
                let one = arena.constant(1);
                let um1 = arena.sub(u, one);
                arena.range_clamp_above(ra, BoundId::Fin(um1))
            }
            _ => ra,
        }),
        CmpOp::Le => input.clamp_with(other, arena, |arena, ra, rb| match arena.range_hi(rb) {
            Some(hi) => arena.range_clamp_above(ra, hi),
            None => ra,
        }),
        CmpOp::Gt => input.clamp_with(other, arena, |arena, ra, rb| match arena.range_lo(rb) {
            Some(BoundId::Fin(l)) => {
                let one = arena.constant(1);
                let lp1 = arena.add(l, one);
                arena.range_clamp_below(ra, BoundId::Fin(lp1))
            }
            _ => ra,
        }),
        CmpOp::Ge => input.clamp_with(other, arena, |arena, ra, rb| match arena.range_lo(rb) {
            Some(lo) => arena.range_clamp_below(ra, lo),
            None => ra,
        }),
        CmpOp::Eq => input.clamp_with(other, arena, |arena, ra, rb| arena.range_meet(ra, rb)),
        CmpOp::Ne => input.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sra_ir::FunctionBuilder;
    use sra_symbolic::{RangeId, SymRange};

    fn show(s: PtrStateRef<'_>, ra: &RangeAnalysis) -> String {
        format!("{}", s.display(ra.symbols()))
    }

    /// malloc + constant offsets.
    #[test]
    fn malloc_and_offsets() {
        let mut b = FunctionBuilder::new("f", &[], None);
        let n = b.const_int(10);
        let p = b.malloc(n);
        let four = b.const_int(4);
        let q = b.ptr_add(p, four);
        b.ret(None);
        let mut m = Module::new();
        let fid = m.add_function(b.finish());
        let ra = RangeAnalysis::analyze(&m);
        let gr = GrAnalysis::analyze(&m, &ra);
        assert_eq!(show(gr.state(fid, p), &ra), "{loc0 + [0, 0]}");
        assert_eq!(show(gr.state(fid, q), &ra), "{loc0 + [4, 4]}");
    }

    /// The paper's Figure 10 (left column): a φ joins two offsets and
    /// derived pointers overlap under the global analysis.
    #[test]
    fn figure10_global_imprecision() {
        let mut b = FunctionBuilder::new("f", &[Ty::Int], None);
        let cond = b.param(0);
        let t = b.create_block();
        let e = b.create_block();
        let j = b.create_block();
        let two = b.const_int(2);
        let a1 = b.malloc(two);
        let one = b.const_int(1);
        let a2 = b.ptr_add(a1, one);
        let z = b.const_int(0);
        let c = b.cmp(CmpOp::Ne, cond, z);
        b.br(c, t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        let a3 = b.phi(Ty::Ptr, &[(t, a1), (e, a2)]);
        let a4 = b.ptr_add(a3, one);
        let two_c = b.const_int(2);
        let a5 = b.ptr_add(a3, two_c);
        b.ret(None);
        let mut m = Module::new();
        let fid = m.add_function(b.finish());
        let ra = RangeAnalysis::analyze(&m);
        let gr = GrAnalysis::analyze(&m, &ra);
        assert_eq!(show(gr.state(fid, a1), &ra), "{loc0 + [0, 0]}");
        assert_eq!(show(gr.state(fid, a2), &ra), "{loc0 + [1, 1]}");
        assert_eq!(show(gr.state(fid, a3), &ra), "{loc0 + [0, 1]}");
        assert_eq!(show(gr.state(fid, a4), &ra), "{loc0 + [1, 2]}");
        assert_eq!(show(gr.state(fid, a5), &ra), "{loc0 + [2, 3]}");
        // a4 and a5 have overlapping GR states — the global test cannot
        // separate them (the local test will).
        let r4 = gr.state(fid, a4).get(crate::LocId::new(0)).unwrap();
        let r5 = gr.state(fid, a5).get(crate::LocId::new(0)).unwrap();
        assert!(gr
            .arena()
            .range_value(r4)
            .may_overlap(&gr.arena().range_value(r5)));
    }

    /// Loads yield ⊤ and free yields ⊥ (Figure 9).
    #[test]
    fn load_top_free_bottom() {
        let mut b = FunctionBuilder::new("f", &[], None);
        let n = b.const_int(4);
        let p = b.malloc(n);
        let q = b.load(p, Ty::Ptr);
        let r = b.free(p);
        b.ret(None);
        let mut m = Module::new();
        let fid = m.add_function(b.finish());
        let ra = RangeAnalysis::analyze(&m);
        let gr = GrAnalysis::analyze(&m, &ra);
        assert!(gr.state(fid, q).is_top());
        assert!(gr.state(fid, r).is_bottom());
    }

    /// Interprocedural: actuals flow to formals, returns flow back.
    #[test]
    fn interprocedural_linking() {
        let mut m = Module::new();
        // callee(p: ptr) -> ptr { return p + 3 }
        let mut b = FunctionBuilder::new("callee", &[Ty::Ptr], Some(Ty::Ptr));
        let p = b.param(0);
        let three = b.const_int(3);
        let q = b.ptr_add(p, three);
        b.ret(Some(q));
        let callee = m.add_function(b.finish());
        // caller() { x = malloc 10; y = callee(x) }
        let mut b = FunctionBuilder::new("caller", &[], None);
        let ten = b.const_int(10);
        let x = b.malloc(ten);
        let y = b.call(Callee::Internal(callee), &[x], Some(Ty::Ptr));
        b.ret(None);
        let caller = m.add_function(b.finish());
        let ra = RangeAnalysis::analyze(&m);
        let gr = GrAnalysis::analyze(&m, &ra);
        let pstate = show(gr.state(callee, m.function(callee).params()[0]), &ra);
        assert_eq!(pstate, "{loc0 + [0, 0]}");
        let f = m.function(caller);
        let _ = f;
        assert_eq!(show(gr.state(caller, y), &ra), "{loc0 + [3, 3]}");
    }

    /// Exported functions get an Unknown location for pointer formals.
    #[test]
    fn exported_param_unknown_loc() {
        let mut b = FunctionBuilder::new("api", &[Ty::Ptr], None);
        let p = b.param(0);
        let one = b.const_int(1);
        let _q = b.ptr_add(p, one);
        b.ret(None);
        let mut f = b.finish();
        f.set_exported(true);
        let mut m = Module::new();
        let fid = m.add_function(f);
        let ra = RangeAnalysis::analyze(&m);
        let gr = GrAnalysis::analyze(&m, &ra);
        let st = gr.state(fid, m.function(fid).params()[0]);
        assert_eq!(st.support_len(), Some(1));
        let (loc, r) = st.support().next().unwrap();
        assert_eq!(gr.locs().site(loc).kind, crate::LocKind::Unknown);
        assert_eq!(gr.arena().range_value(r), SymRange::constant(0));
    }

    /// Builds a call chain or ring of `n` functions `f_i(p: ptr) -> ptr
    /// { q = p + 1; r = f_{i+1}(q); ret r }` (the last links back to
    /// `f_0` when `ring`, otherwise returns its formal), plus a `main`
    /// that calls `f_0` with a fresh allocation. The dataflow churns
    /// exclusively through formal-parameter and call-result joins — no
    /// φ-nodes anywhere.
    fn chain_module(n: usize, ring: bool) -> (Module, Vec<FuncId>, ValueId) {
        use sra_ir::Callee;
        let mut m = Module::new();
        for i in 0..n {
            let mut b = FunctionBuilder::new(&format!("f{i}"), &[Ty::Ptr], Some(Ty::Ptr));
            let p = b.param(0);
            let one = b.const_int(1);
            let q = b.ptr_add(p, one);
            if i + 1 < n {
                let r = b.call(Callee::Internal(FuncId::new(i + 1)), &[q], Some(Ty::Ptr));
                b.ret(Some(r));
            } else if ring {
                let r = b.call(Callee::Internal(FuncId::new(0)), &[q], Some(Ty::Ptr));
                b.ret(Some(r));
            } else {
                b.ret(Some(p));
            }
            m.add_function(b.finish());
        }
        let mut b = FunctionBuilder::new("main", &[], None);
        let hundred = b.const_int(100);
        let x = b.malloc(hundred);
        let r = b.call(Callee::Internal(FuncId::new(0)), &[x], Some(Ty::Ptr));
        b.ret(None);
        m.add_function(b.finish());
        sra_ir::verify::verify_module(&m).expect("chain verifies");
        let funcs = (0..n).map(FuncId::new).collect();
        (m, funcs, r)
    }

    /// A deep *acyclic* call chain converges in O(1) sweeps under the
    /// alternating condensation schedule — depth 64 is twice the
    /// ascending cap, which any fixed one-directional sweep order
    /// (including the pre-wave flat function-id order) would trip,
    /// forcing every join to ⊤.
    #[test]
    fn deep_call_dag_converges_without_tripping_cap() {
        let depth = 64;
        let (m, funcs, _r) = chain_module(depth, false);
        let ra = RangeAnalysis::analyze(&m);
        for schedule in [GrSchedule::Serial, GrSchedule::Waves] {
            let config = GrConfig {
                schedule,
                threads: 4,
                ..GrConfig::default()
            };
            assert!(config.max_ascending_sweeps < depth as u32);
            let gr = GrAnalysis::analyze_with(&m, &ra, config);
            assert!(
                gr.ascending_sweeps() <= 6,
                "deep chain should converge in O(1) sweeps, took {}",
                gr.ascending_sweeps()
            );
            // The deepest formal sits exactly `depth - 1` cells in.
            let last = *funcs.last().unwrap();
            let p = m.function(last).params()[0];
            assert_eq!(
                show(gr.state(last, p), &ra),
                format!("{{loc0 + [{}, {}]}}", depth - 1, depth - 1)
            );
        }
    }

    /// Regression for the ascending-cap audit: a mutually recursive
    /// ring whose churn lives *entirely* in formal and call-result
    /// joins (no φs) must terminate when the cap trips, and every join
    /// point of the widening cut set — formals AND call results, not
    /// just φs — must land on ⊤ so no stale finite state survives.
    /// Widening is disabled so the offsets genuinely grow without
    /// bound until the cap fires.
    #[test]
    fn capped_recursive_ring_forces_all_join_kinds_top() {
        let n = 8;
        let (m, funcs, main_call) = chain_module(n, true);
        let main = FuncId::new(n);
        let ra = RangeAnalysis::analyze(&m);
        for schedule in [GrSchedule::Serial, GrSchedule::Waves] {
            let config = GrConfig {
                widening: false,
                max_ascending_sweeps: 2,
                schedule,
                threads: 4,
                ..GrConfig::default()
            };
            let gr = GrAnalysis::analyze_with(&m, &ra, config);
            for &f in &funcs {
                let func = m.function(f);
                let p = func.params()[0];
                assert!(gr.state(f, p).is_top(), "{f}: capped formal must be ⊤");
                for v in func.value_ids() {
                    if func.value(v).ty() != Some(Ty::Ptr) {
                        continue;
                    }
                    assert!(
                        gr.state(f, v).is_top(),
                        "{f} {v}: every pointer derived from capped joins must be ⊤"
                    );
                }
            }
            // The caller's call result is itself a forced join…
            assert!(gr.state(main, main_call).is_top());
            // …while the allocation seed stays precise (it is invariant,
            // not a join).
            let x = m
                .function(main)
                .value_ids()
                .find(|&v| {
                    matches!(
                        m.function(main).value(v).kind(),
                        ValueKind::Inst(Inst::Malloc { .. })
                    )
                })
                .unwrap();
            assert_eq!(show(gr.state(main, x), &ra), "{loc0 + [0, 0]}");
        }
    }

    /// The `update` fast path claims: whenever `new ⊑ slot` is
    /// provable, the slow path (`join`, then optionally `widen`)
    /// returns the stored state *byte-identically*, so skipping it
    /// cannot change any result. The in-solver `debug_assert` re-checks
    /// this on every debug-mode analysis; this test pins the algebraic
    /// claim directly — in release builds too — over states whose
    /// bounds exercise every way `bound_min`/`max` can pick a winner:
    /// constants, symbols, sums, unresolved min/max atoms, infinities,
    /// multiple locations, ⊥ and ⊤.
    #[test]
    fn inclusion_fast_path_matches_slow_path() {
        use sra_symbolic::{Bound, SymExpr, Symbol};
        let n = || SymExpr::from(Symbol::new(0));
        let m_ = || SymExpr::from(Symbol::new(1));
        let l = crate::LocId::new;
        let mut arena = ExprArena::new();
        let bounds: Vec<Bound> = vec![
            Bound::NegInf,
            Bound::from(0),
            Bound::from(4),
            Bound::Fin(n()),
            Bound::Fin(n() + 1.into()),
            Bound::Fin(n() + m_()),
            Bound::Fin(SymExpr::min(n(), m_())),
            Bound::Fin(SymExpr::max(n(), 7.into())),
            Bound::PosInf,
        ];
        let mut ranges: Vec<RangeId> = vec![ExprArena::EMPTY_RANGE];
        for lo in &bounds {
            for hi in &bounds {
                let r = SymRange::with_bounds(lo.clone(), hi.clone());
                if !r.is_empty() {
                    ranges.push(arena.intern_range(&r));
                }
            }
        }
        let mut states: Vec<PtrState> = vec![PtrState::bottom(), PtrState::top()];
        for (i, &r) in ranges.iter().enumerate() {
            states.push(PtrState::singleton(l(0), r));
            let a = PtrState::singleton(l(0), r);
            let b = PtrState::singleton(l(1), ranges[i % 7]);
            states.push(a.join(&b, &mut arena));
        }
        let mut included = 0;
        for slot in &states {
            for new in &states {
                if !new.le(slot, &mut arena) {
                    continue;
                }
                included += 1;
                let joined = slot.join(new, &mut arena);
                assert_eq!(&joined, slot, "join must return the stored state verbatim");
                assert_eq!(
                    &slot.widen(&joined, &mut arena),
                    slot,
                    "widening the unchanged join must be the identity"
                );
            }
        }
        assert!(included > states.len(), "the sweep covered real inclusions");
    }

    /// The same ring with widening on and the default cap still
    /// terminates, and both schedules agree state-for-state — down to
    /// identical canonical-arena ids.
    #[test]
    fn recursive_ring_schedules_agree() {
        let (m, _funcs, _r) = chain_module(6, true);
        let ra = RangeAnalysis::analyze(&m);
        let serial = GrAnalysis::analyze_with(
            &m,
            &ra,
            GrConfig {
                schedule: GrSchedule::Serial,
                threads: 1,
                ..GrConfig::default()
            },
        );
        let waves = GrAnalysis::analyze_with(
            &m,
            &ra,
            GrConfig {
                schedule: GrSchedule::Waves,
                threads: 4,
                ..GrConfig::default()
            },
        );
        for f in m.func_ids() {
            for v in m.function(f).value_ids() {
                assert_eq!(serial.state(f, v), waves.state(f, v), "{f} {v}");
                // Canonicalization makes the raw id-level states agree
                // too, not just their structural values.
                assert_eq!(serial.raw_state(f, v), waves.raw_state(f, v), "{f} {v}");
            }
        }
        assert_eq!(serial.ascending_sweeps(), waves.ascending_sweeps());
    }

    /// A pointer loop: i = φ(p, i+2) with i < e bound — the paper's
    /// Figure 7 inner loop. After widening + descending the σ'd pointer
    /// is bounded by [0, N-1].
    #[test]
    fn figure7_first_loop() {
        let mut b = FunctionBuilder::new("main", &[], None);
        let z = b.call(Callee::External("atoi".into()), &[], Some(Ty::Int));
        let p = b.malloc(z);
        let head = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        let zero = b.const_int(0);
        let i0 = b.ptr_add(p, zero);
        let e = b.ptr_add(p, z);
        let entry = b.entry_block();
        b.jump(head);
        b.switch_to(head);
        let i1 = b.phi(Ty::Ptr, &[(entry, i0)]);
        let c = b.cmp(CmpOp::Lt, i1, e);
        b.br(c, body, exit);
        b.switch_to(body);
        // i2 = σ(i1 < e); *i2 = 0; i3 = i2 + 2
        let two = b.const_int(2);
        // (σ inserted by the essa pass; store through i1's σ)
        let i3 = b.ptr_add(i1, two);
        b.add_phi_arg(i1, body, i3);
        b.jump(head);
        b.switch_to(exit);
        b.ret(None);
        let mut f = b.finish();
        sra_ir::essa::run(&mut f);
        sra_ir::verify::verify_function(&f, None).expect("verified");
        let mut m = Module::new();
        let fid = m.add_function(f);
        let ra = RangeAnalysis::analyze(&m);
        let gr = GrAnalysis::analyze(&m, &ra);
        // Find the σ for i1 on the Lt edge.
        let f = m.function(fid);
        let sigma = f
            .value_ids()
            .find(|&v| {
                matches!(
                    f.value(v).as_inst(),
                    Some(Inst::Sigma { input, op: CmpOp::Lt, .. }) if *input == i1
                )
            })
            .expect("σ exists");
        let s = show(gr.state(fid, sigma), &ra);
        assert_eq!(s, "{loc0 + [0, atoi() - 1]}");
        // And e itself sits exactly at offset Z.
        assert_eq!(show(gr.state(fid, e), &ra), "{loc0 + [atoi(), atoi()]}");
    }
}
