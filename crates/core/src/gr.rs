//! The global pointer range analysis `GR` (paper §3.4).
//!
//! A whole-program abstract interpretation over
//! [`PtrState`](crate::PtrState), implementing the constraint rules of
//! Figure 9:
//!
//! * `p = malloc v` binds `p` to `{loc_p + [0,0]}`;
//! * `p = free v` binds `p` to ⊥;
//! * `q = p + c` shifts every component by `R(c)` (the bootstrap
//!   integer range analysis);
//! * `q = φ(p₁, p₂)` joins (and is the widening point);
//! * σ-nodes meet per-location against the other pointer's bounds;
//! * `q = *p` is ⊤ (the paper deliberately does not track pointers
//!   through memory);
//! * stores are ignored.
//!
//! Interprocedurality is context-insensitive (§3.1): each formal
//! parameter behaves as a φ over the actuals at every call site, and a
//! call's result joins the callee's return states. Exported functions
//! additionally seed pointer formals with an `Unknown` location of their
//! own, since callers outside the module may pass anything.

use sra_ir::cfg::Cfg;
use sra_ir::{Callee, CmpOp, FuncId, Inst, Module, Terminator, Ty, ValueId, ValueKind};
use sra_range::RangeAnalysis;
use sra_symbolic::{Bound, SymExpr, SymRange};

use crate::locs::LocTable;
use crate::state::PtrState;

/// Tuning knobs for [`GrAnalysis`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrConfig {
    /// Length of the descending sequence (paper: 2).
    pub descending_steps: u32,
    /// Safety cap on ascending sweeps before unstable join points are
    /// forced to ⊤.
    pub max_ascending_sweeps: u32,
    /// Apply widening at φ/formal/call-result join points (the paper's
    /// cut set). Disabling this is only useful for ablation studies on
    /// acyclic programs.
    pub widening: bool,
}

impl Default for GrConfig {
    fn default() -> Self {
        GrConfig {
            descending_steps: 2,
            max_ascending_sweeps: 32,
            widening: true,
        }
    }
}

/// Results of the global analysis: `GR(p)` for every pointer `p`.
#[derive(Debug, Clone)]
pub struct GrAnalysis {
    locs: LocTable,
    states: Vec<Vec<PtrState>>,
}

impl GrAnalysis {
    /// Runs the analysis with default configuration.
    pub fn analyze(m: &Module, ranges: &RangeAnalysis) -> Self {
        Self::analyze_with(m, ranges, GrConfig::default())
    }

    /// Runs the analysis.
    pub fn analyze_with(m: &Module, ranges: &RangeAnalysis, config: GrConfig) -> Self {
        let locs = LocTable::build(m);
        let states = {
            let mut solver = GrSolver::new(m, ranges, &locs, config);
            solver.run();
            solver.states
        };
        GrAnalysis { locs, states }
    }

    /// The abstract state of value `v` in function `f` (⊥ for non-pointer
    /// values).
    pub fn state(&self, f: FuncId, v: ValueId) -> &PtrState {
        &self.states[f.index()][v.index()]
    }

    /// The allocation-site table the states refer to.
    pub fn locs(&self) -> &LocTable {
        &self.locs
    }
}

/// A call site: caller and actual arguments.
struct CallSite {
    caller: FuncId,
    args: Vec<ValueId>,
}

struct GrSolver<'a> {
    m: &'a Module,
    ranges: &'a RangeAnalysis,
    locs: &'a LocTable,
    config: GrConfig,
    states: Vec<Vec<PtrState>>,
    /// Join of the return states of each function.
    ret_states: Vec<PtrState>,
    /// Call sites targeting each function.
    callers: Vec<Vec<CallSite>>,
    cfgs: Vec<Cfg>,
}

impl<'a> GrSolver<'a> {
    fn new(m: &'a Module, ranges: &'a RangeAnalysis, locs: &'a LocTable, config: GrConfig) -> Self {
        let nf = m.num_functions();
        let mut callers: Vec<Vec<CallSite>> = (0..nf).map(|_| Vec::new()).collect();
        for fid in m.func_ids() {
            let f = m.function(fid);
            for (_, v) in f.insts() {
                if let Some(Inst::Call {
                    callee: Callee::Internal(target),
                    args,
                    ..
                }) = f.value(v).as_inst()
                {
                    callers[target.index()].push(CallSite {
                        caller: fid,
                        args: args.clone(),
                    });
                }
            }
        }
        let states = m
            .func_ids()
            .map(|f| vec![PtrState::bottom(); m.function(f).num_values()])
            .collect();
        let cfgs = m.func_ids().map(|f| Cfg::new(m.function(f))).collect();
        GrSolver {
            m,
            ranges,
            locs,
            config,
            states,
            ret_states: vec![PtrState::bottom(); nf],
            callers,
            cfgs,
        }
    }

    fn run(&mut self) {
        self.seed();
        let mut sweeps = 0;
        loop {
            let widen = self.config.widening && sweeps > 0;
            let changed = self.sweep(widen, false);
            sweeps += 1;
            if !changed {
                break;
            }
            if sweeps >= self.config.max_ascending_sweeps {
                self.force_top_join_points();
                self.sweep(false, false);
                break;
            }
        }
        for _ in 0..self.config.descending_steps {
            if !self.sweep(false, true) {
                break;
            }
        }
    }

    /// Invariant seeds: allocation sites, globals, unknown sources.
    fn seed(&mut self) {
        for fid in self.m.func_ids() {
            let f = self.m.function(fid);
            for v in f.value_ids() {
                if f.value(v).ty() != Some(Ty::Ptr) {
                    continue;
                }
                let state = match f.value(v).kind() {
                    ValueKind::GlobalAddr(g) => {
                        let loc = self.locs.loc_of_global(*g).expect("global has loc");
                        Some(PtrState::singleton(loc, SymRange::constant(0)))
                    }
                    ValueKind::Inst(Inst::Malloc { .. }) | ValueKind::Inst(Inst::Alloca { .. }) => {
                        let loc = self.locs.loc_of_value(fid, v).expect("site has loc");
                        Some(PtrState::singleton(loc, SymRange::constant(0)))
                    }
                    ValueKind::Inst(Inst::Call {
                        callee: Callee::External(_),
                        ..
                    }) => {
                        let loc = self.locs.loc_of_value(fid, v).expect("ext call has loc");
                        Some(PtrState::singleton(loc, SymRange::constant(0)))
                    }
                    ValueKind::Inst(Inst::Load { .. }) => Some(PtrState::top()),
                    _ => None,
                };
                if let Some(s) = state {
                    self.states[fid.index()][v.index()] = s;
                }
            }
        }
    }

    fn sweep(&mut self, widen: bool, descend: bool) -> bool {
        let mut changed = false;
        for fid in self.m.func_ids() {
            changed |= self.sweep_function(fid, widen, descend);
        }
        changed
    }

    fn sweep_function(&mut self, fid: FuncId, widen: bool, descend: bool) -> bool {
        let f = self.m.function(fid);
        let mut changed = false;

        // Formal parameters: φ over actuals (+Unknown seed when exported).
        for (index, &p) in f.params().iter().enumerate() {
            if f.value(p).ty() != Some(Ty::Ptr) {
                continue;
            }
            let mut acc = match self.locs.loc_of_value(fid, p) {
                Some(unknown_loc) => PtrState::singleton(unknown_loc, SymRange::constant(0)),
                None => PtrState::bottom(),
            };
            for site in &self.callers[fid.index()] {
                let actual = site.args[index];
                acc = acc.join(&self.states[site.caller.index()][actual.index()]);
            }
            changed |= self.update(fid, p, acc, widen && !descend, descend);
        }

        let rpo: Vec<_> = self.cfgs[fid.index()].rpo().to_vec();
        for b in rpo {
            let insts = f.block(b).insts().to_vec();
            for v in insts {
                if f.value(v).ty() != Some(Ty::Ptr) {
                    continue;
                }
                let Some(inst) = f.value(v).as_inst() else {
                    continue;
                };
                let new = match inst {
                    Inst::Phi { args, .. } => {
                        let mut acc = PtrState::bottom();
                        for (_, a) in args {
                            acc = acc.join(&self.states[fid.index()][a.index()]);
                        }
                        changed |= self.update(fid, v, acc, widen, descend);
                        continue;
                    }
                    Inst::PtrAdd { base, offset } => {
                        let base_state = &self.states[fid.index()][base.index()];
                        let off = self.ranges.range(fid, *offset);
                        base_state.add_offset(off)
                    }
                    Inst::Sigma { input, op, other } => {
                        let input_state = self.states[fid.index()][input.index()].clone();
                        if f.value(*other).ty() == Some(Ty::Ptr) {
                            let other_state = &self.states[fid.index()][other.index()];
                            apply_ptr_sigma(&input_state, *op, other_state)
                        } else {
                            // Comparing a pointer with an integer tells
                            // us nothing about locations.
                            input_state
                        }
                    }
                    Inst::Call {
                        callee: Callee::Internal(target),
                        ..
                    } => self.ret_states[target.index()].clone(),
                    // Seeded kinds are invariant: malloc/alloca/global
                    // addresses, external calls, loads (⊤), free (⊥).
                    _ => continue,
                };
                let use_widen = widen
                    && matches!(
                        inst,
                        Inst::Call {
                            callee: Callee::Internal(_),
                            ..
                        }
                    );
                changed |= self.update(fid, v, new, use_widen, descend);
            }
        }

        // Refresh this function's return state.
        let mut ret = PtrState::bottom();
        if f.ret_ty() == Some(Ty::Ptr) {
            for b in f.block_ids() {
                if let Some(Terminator::Ret(Some(v))) = f.block(b).terminator_opt() {
                    ret = ret.join(&self.states[fid.index()][v.index()]);
                }
            }
        }
        if ret != self.ret_states[fid.index()] {
            self.ret_states[fid.index()] = ret;
            changed = true;
        }
        changed
    }

    /// Writes `new` into the state of `(fid, v)`, applying widening or
    /// descending discipline; returns whether the state changed.
    fn update(
        &mut self,
        fid: FuncId,
        v: ValueId,
        new: PtrState,
        widen: bool,
        descend: bool,
    ) -> bool {
        let slot = &mut self.states[fid.index()][v.index()];
        let next = if descend {
            new
        } else if widen {
            slot.widen(&slot.join(&new))
        } else {
            slot.join(&new)
        };
        if next != *slot {
            *slot = next;
            true
        } else {
            false
        }
    }

    fn force_top_join_points(&mut self) {
        for fid in self.m.func_ids() {
            let f = self.m.function(fid);
            for v in f.value_ids() {
                if f.value(v).ty() != Some(Ty::Ptr) {
                    continue;
                }
                let is_join = matches!(
                    f.value(v).kind(),
                    ValueKind::Param { .. }
                        | ValueKind::Inst(Inst::Phi { .. })
                        | ValueKind::Inst(Inst::Call {
                            callee: Callee::Internal(_),
                            ..
                        })
                );
                if is_join {
                    self.states[fid.index()][v.index()] = PtrState::top();
                }
            }
        }
    }
}

/// σ transfer for pointer comparisons: refine `input` knowing
/// `input ⟨op⟩ other` (Figure 9's intersection rules).
fn apply_ptr_sigma(input: &PtrState, op: CmpOp, other: &PtrState) -> PtrState {
    let one = SymExpr::from(1);
    match op {
        CmpOp::Lt => input.clamp_with(other, |ra, rb| match rb.hi() {
            Some(Bound::Fin(u)) => ra.clamp_above(Bound::Fin(u.clone() - one.clone())),
            _ => ra.clone(),
        }),
        CmpOp::Le => input.clamp_with(other, |ra, rb| match rb.hi() {
            Some(hi) => ra.clamp_above(hi.clone()),
            None => ra.clone(),
        }),
        CmpOp::Gt => input.clamp_with(other, |ra, rb| match rb.lo() {
            Some(Bound::Fin(l)) => ra.clamp_below(Bound::Fin(l.clone() + one.clone())),
            _ => ra.clone(),
        }),
        CmpOp::Ge => input.clamp_with(other, |ra, rb| match rb.lo() {
            Some(lo) => ra.clamp_below(lo.clone()),
            None => ra.clone(),
        }),
        CmpOp::Eq => input.clamp_with(other, |ra, rb| ra.meet(rb)),
        CmpOp::Ne => input.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sra_ir::FunctionBuilder;

    fn show(s: &PtrState, ra: &RangeAnalysis) -> String {
        format!("{}", s.display(ra.symbols()))
    }

    /// malloc + constant offsets.
    #[test]
    fn malloc_and_offsets() {
        let mut b = FunctionBuilder::new("f", &[], None);
        let n = b.const_int(10);
        let p = b.malloc(n);
        let four = b.const_int(4);
        let q = b.ptr_add(p, four);
        b.ret(None);
        let mut m = Module::new();
        let fid = m.add_function(b.finish());
        let ra = RangeAnalysis::analyze(&m);
        let gr = GrAnalysis::analyze(&m, &ra);
        assert_eq!(show(gr.state(fid, p), &ra), "{loc0 + [0, 0]}");
        assert_eq!(show(gr.state(fid, q), &ra), "{loc0 + [4, 4]}");
    }

    /// The paper's Figure 10 (left column): a φ joins two offsets and
    /// derived pointers overlap under the global analysis.
    #[test]
    fn figure10_global_imprecision() {
        let mut b = FunctionBuilder::new("f", &[Ty::Int], None);
        let cond = b.param(0);
        let t = b.create_block();
        let e = b.create_block();
        let j = b.create_block();
        let two = b.const_int(2);
        let a1 = b.malloc(two);
        let one = b.const_int(1);
        let a2 = b.ptr_add(a1, one);
        let z = b.const_int(0);
        let c = b.cmp(CmpOp::Ne, cond, z);
        b.br(c, t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        let a3 = b.phi(Ty::Ptr, &[(t, a1), (e, a2)]);
        let a4 = b.ptr_add(a3, one);
        let two_c = b.const_int(2);
        let a5 = b.ptr_add(a3, two_c);
        b.ret(None);
        let mut m = Module::new();
        let fid = m.add_function(b.finish());
        let ra = RangeAnalysis::analyze(&m);
        let gr = GrAnalysis::analyze(&m, &ra);
        assert_eq!(show(gr.state(fid, a1), &ra), "{loc0 + [0, 0]}");
        assert_eq!(show(gr.state(fid, a2), &ra), "{loc0 + [1, 1]}");
        assert_eq!(show(gr.state(fid, a3), &ra), "{loc0 + [0, 1]}");
        assert_eq!(show(gr.state(fid, a4), &ra), "{loc0 + [1, 2]}");
        assert_eq!(show(gr.state(fid, a5), &ra), "{loc0 + [2, 3]}");
        // a4 and a5 have overlapping GR states — the global test cannot
        // separate them (the local test will).
        let r4 = gr.state(fid, a4).get(crate::LocId::new(0)).unwrap();
        let r5 = gr.state(fid, a5).get(crate::LocId::new(0)).unwrap();
        assert!(r4.may_overlap(r5));
    }

    /// Loads yield ⊤ and free yields ⊥ (Figure 9).
    #[test]
    fn load_top_free_bottom() {
        let mut b = FunctionBuilder::new("f", &[], None);
        let n = b.const_int(4);
        let p = b.malloc(n);
        let q = b.load(p, Ty::Ptr);
        let r = b.free(p);
        b.ret(None);
        let mut m = Module::new();
        let fid = m.add_function(b.finish());
        let ra = RangeAnalysis::analyze(&m);
        let gr = GrAnalysis::analyze(&m, &ra);
        assert!(gr.state(fid, q).is_top());
        assert!(gr.state(fid, r).is_bottom());
    }

    /// Interprocedural: actuals flow to formals, returns flow back.
    #[test]
    fn interprocedural_linking() {
        let mut m = Module::new();
        // callee(p: ptr) -> ptr { return p + 3 }
        let mut b = FunctionBuilder::new("callee", &[Ty::Ptr], Some(Ty::Ptr));
        let p = b.param(0);
        let three = b.const_int(3);
        let q = b.ptr_add(p, three);
        b.ret(Some(q));
        let callee = m.add_function(b.finish());
        // caller() { x = malloc 10; y = callee(x) }
        let mut b = FunctionBuilder::new("caller", &[], None);
        let ten = b.const_int(10);
        let x = b.malloc(ten);
        let y = b.call(Callee::Internal(callee), &[x], Some(Ty::Ptr));
        b.ret(None);
        let caller = m.add_function(b.finish());
        let ra = RangeAnalysis::analyze(&m);
        let gr = GrAnalysis::analyze(&m, &ra);
        let pstate = show(gr.state(callee, m.function(callee).params()[0]), &ra);
        assert_eq!(pstate, "{loc0 + [0, 0]}");
        let f = m.function(caller);
        let _ = f;
        assert_eq!(show(gr.state(caller, y), &ra), "{loc0 + [3, 3]}");
    }

    /// Exported functions get an Unknown location for pointer formals.
    #[test]
    fn exported_param_unknown_loc() {
        let mut b = FunctionBuilder::new("api", &[Ty::Ptr], None);
        let p = b.param(0);
        let one = b.const_int(1);
        let _q = b.ptr_add(p, one);
        b.ret(None);
        let mut f = b.finish();
        f.set_exported(true);
        let mut m = Module::new();
        let fid = m.add_function(f);
        let ra = RangeAnalysis::analyze(&m);
        let gr = GrAnalysis::analyze(&m, &ra);
        let st = gr.state(fid, m.function(fid).params()[0]);
        assert_eq!(st.support_len(), Some(1));
        let (loc, r) = st.support().next().unwrap();
        assert_eq!(gr.locs().site(loc).kind, crate::LocKind::Unknown);
        assert_eq!(r, &SymRange::constant(0));
    }

    /// A pointer loop: i = φ(p, i+2) with i < e bound — the paper's
    /// Figure 7 inner loop. After widening + descending the σ'd pointer
    /// is bounded by [0, N-1].
    #[test]
    fn figure7_first_loop() {
        let mut b = FunctionBuilder::new("main", &[], None);
        let z = b.call(Callee::External("atoi".into()), &[], Some(Ty::Int));
        let p = b.malloc(z);
        let head = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        let zero = b.const_int(0);
        let i0 = b.ptr_add(p, zero);
        let e = b.ptr_add(p, z);
        let entry = b.entry_block();
        b.jump(head);
        b.switch_to(head);
        let i1 = b.phi(Ty::Ptr, &[(entry, i0)]);
        let c = b.cmp(CmpOp::Lt, i1, e);
        b.br(c, body, exit);
        b.switch_to(body);
        // i2 = σ(i1 < e); *i2 = 0; i3 = i2 + 2
        let two = b.const_int(2);
        // (σ inserted by the essa pass; store through i1's σ)
        let i3 = b.ptr_add(i1, two);
        b.add_phi_arg(i1, body, i3);
        b.jump(head);
        b.switch_to(exit);
        b.ret(None);
        let mut f = b.finish();
        sra_ir::essa::run(&mut f);
        sra_ir::verify::verify_function(&f, None).expect("verified");
        let mut m = Module::new();
        let fid = m.add_function(f);
        let ra = RangeAnalysis::analyze(&m);
        let gr = GrAnalysis::analyze(&m, &ra);
        // Find the σ for i1 on the Lt edge.
        let f = m.function(fid);
        let sigma = f
            .value_ids()
            .find(|&v| {
                matches!(
                    f.value(v).as_inst(),
                    Some(Inst::Sigma { input, op: CmpOp::Lt, .. }) if *input == i1
                )
            })
            .expect("σ exists");
        let s = show(gr.state(fid, sigma), &ra);
        assert_eq!(s, "{loc0 + [0, atoi() - 1]}");
        // And e itself sits exactly at offset Z.
        assert_eq!(show(gr.state(fid, e), &ra), "{loc0 + [atoi(), atoi()]}");
    }
}
