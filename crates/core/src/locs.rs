//! Program locations: the abstract allocation sites `Loc = {loc₀, …}`.

use std::collections::HashMap;
use std::fmt;

use sra_ir::{Callee, Inst};
use sra_ir::{FuncId, GlobalId, Module, Ty, ValueId, ValueKind};

/// Identifies one abstract location (`locᵢ` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LocId(u32);

impl LocId {
    /// Creates a loc id from a raw index.
    pub fn new(index: usize) -> Self {
        LocId(index as u32)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "loc{}", self.0)
    }
}

/// What kind of memory a location stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LocKind {
    /// A `malloc` call site.
    Malloc,
    /// An `alloca` (stack) site.
    Alloca,
    /// A module global.
    Global,
    /// Memory of unknown identity: a pointer parameter of an exported
    /// function, or the result of an external call returning a pointer.
    /// Two distinct `Unknown` locations may be the *same* concrete
    /// memory, so the global test never separates them by site — only
    /// same-site range reasoning applies.
    Unknown,
}

impl LocKind {
    /// `true` for memory whose identity is known (two distinct concrete
    /// locations can never overlap).
    pub fn is_concrete(self) -> bool {
        !matches!(self, LocKind::Unknown)
    }

    /// Can two *different* locations of these kinds be proven disjoint?
    ///
    /// * Two concrete locations are distinct chunks — always disjoint.
    /// * An `Unknown` location (a pointer that flowed in from outside
    ///   the module) is disjoint from a `Malloc`/`Alloca` site by the
    ///   freshness argument LLVM's `basicaa` also uses: the allocation
    ///   postdates the incoming pointer, which therefore cannot point
    ///   into it.
    /// * `Unknown` may coincide with a `Global` or another `Unknown`.
    pub fn separable_from(self, other: LocKind) -> bool {
        match (self, other) {
            (a, b) if a.is_concrete() && b.is_concrete() => true,
            (LocKind::Unknown, LocKind::Malloc | LocKind::Alloca) => true,
            (LocKind::Malloc | LocKind::Alloca, LocKind::Unknown) => true,
            _ => false,
        }
    }
}

/// One allocation site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocSite {
    /// The location id.
    pub id: LocId,
    /// Kind of memory.
    pub kind: LocKind,
    /// Function containing the site (`None` for globals).
    pub func: Option<FuncId>,
    /// The defining value (`None` for globals).
    pub value: Option<ValueId>,
    /// Human-readable name for diagnostics (`main.malloc.v3`, `@table`).
    pub name: String,
}

/// The table of every allocation site in a module.
///
/// Sites are discovered in a deterministic order: globals first, then
/// per function (in id order): `malloc`/`alloca` instructions, pointer
/// parameters of exported functions, and external calls returning
/// pointers.
///
/// # Examples
///
/// ```
/// use sra_core::LocTable;
/// use sra_ir::{FunctionBuilder, Module, Ty};
/// let mut m = Module::new();
/// m.add_global("tab", 8);
/// let mut b = FunctionBuilder::new("f", &[], None);
/// let n = b.const_int(4);
/// b.malloc(n);
/// b.ret(None);
/// m.add_function(b.finish());
/// let locs = LocTable::build(&m);
/// assert_eq!(locs.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LocTable {
    sites: Vec<AllocSite>,
    by_value: HashMap<(FuncId, ValueId), LocId>,
    by_global: HashMap<GlobalId, LocId>,
}

impl LocTable {
    /// Scans `m` for allocation sites.
    pub fn build(m: &Module) -> Self {
        let mut t = LocTable::default();
        for g in m.global_ids() {
            let id = LocId::new(t.sites.len());
            t.sites.push(AllocSite {
                id,
                kind: LocKind::Global,
                func: None,
                value: None,
                name: format!("@{}", m.global(g).name()),
            });
            t.by_global.insert(g, id);
        }
        for fid in m.func_ids() {
            let f = m.function(fid);
            // Pointer params of exported functions have unknown callers.
            if f.is_exported() {
                for &p in f.params() {
                    if f.value(p).ty() == Some(Ty::Ptr) {
                        let id = LocId::new(t.sites.len());
                        t.sites.push(AllocSite {
                            id,
                            kind: LocKind::Unknown,
                            func: Some(fid),
                            value: Some(p),
                            name: format!("{}.param.{}", f.name(), p),
                        });
                        t.by_value.insert((fid, p), id);
                    }
                }
            }
            for (_, v) in f.insts() {
                match f.value(v).kind() {
                    ValueKind::Inst(Inst::Malloc { .. }) => {
                        t.add_inst_site(fid, v, LocKind::Malloc, f.name(), "malloc");
                    }
                    ValueKind::Inst(Inst::Alloca { .. }) => {
                        t.add_inst_site(fid, v, LocKind::Alloca, f.name(), "alloca");
                    }
                    ValueKind::Inst(Inst::Call {
                        callee: Callee::External(name),
                        ret_ty: Some(Ty::Ptr),
                        ..
                    }) => {
                        let label = format!("ext.{}", name);
                        t.add_inst_site(fid, v, LocKind::Unknown, f.name(), &label);
                    }
                    _ => {}
                }
            }
        }
        t
    }

    fn add_inst_site(
        &mut self,
        fid: FuncId,
        v: ValueId,
        kind: LocKind,
        func_name: &str,
        label: &str,
    ) {
        let id = LocId::new(self.sites.len());
        self.sites.push(AllocSite {
            id,
            kind,
            func: Some(fid),
            value: Some(v),
            name: format!("{}.{}.{}", func_name, label, v),
        });
        self.by_value.insert((fid, v), id);
    }

    /// The number of allocation sites (the paper's `n`).
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// `true` when the module allocates no memory.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Site metadata for `loc`.
    ///
    /// # Panics
    ///
    /// Panics when `loc` is not a site of this table.
    pub fn site(&self, loc: LocId) -> &AllocSite {
        &self.sites[loc.index()]
    }

    /// The location created by value `v` in function `f`, if `v` is an
    /// allocation site (or unknown-pointer source).
    pub fn loc_of_value(&self, f: FuncId, v: ValueId) -> Option<LocId> {
        self.by_value.get(&(f, v)).copied()
    }

    /// The location of global `g`.
    pub fn loc_of_global(&self, g: GlobalId) -> Option<LocId> {
        self.by_global.get(&g).copied()
    }

    /// Iterates over all sites.
    pub fn iter(&self) -> impl Iterator<Item = &AllocSite> {
        self.sites.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sra_ir::FunctionBuilder;

    #[test]
    fn discovers_all_site_kinds() {
        let mut m = Module::new();
        let g = m.add_global("tab", 16);
        let mut b = FunctionBuilder::new("f", &[Ty::Ptr, Ty::Int], None);
        let n = b.const_int(8);
        let heap = b.malloc(n);
        let stack = b.alloca(n);
        let ext = b.call(Callee::External("getenv".into()), &[], Some(Ty::Ptr));
        b.ret(None);
        let mut func = b.finish();
        func.set_exported(true);
        let fid = m.add_function(func);
        let locs = LocTable::build(&m);
        // global + exported ptr param + malloc + alloca + external ptr call
        assert_eq!(locs.len(), 5);
        assert_eq!(
            locs.site(locs.loc_of_global(g).unwrap()).kind,
            LocKind::Global
        );
        let f = m.function(fid);
        let p = f.params()[0];
        assert_eq!(
            locs.site(locs.loc_of_value(fid, p).unwrap()).kind,
            LocKind::Unknown
        );
        assert_eq!(
            locs.site(locs.loc_of_value(fid, heap).unwrap()).kind,
            LocKind::Malloc
        );
        assert_eq!(
            locs.site(locs.loc_of_value(fid, stack).unwrap()).kind,
            LocKind::Alloca
        );
        assert_eq!(
            locs.site(locs.loc_of_value(fid, ext).unwrap()).kind,
            LocKind::Unknown
        );
    }

    #[test]
    fn non_exported_params_get_no_site() {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("f", &[Ty::Ptr], None);
        b.ret(None);
        let fid = m.add_function(b.finish());
        let locs = LocTable::build(&m);
        assert!(locs.is_empty());
        let p = m.function(fid).params()[0];
        assert_eq!(locs.loc_of_value(fid, p), None);
    }

    #[test]
    fn int_params_get_no_site() {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("f", &[Ty::Int], None);
        b.ret(None);
        let mut func = b.finish();
        func.set_exported(true);
        m.add_function(func);
        let locs = LocTable::build(&m);
        assert!(locs.is_empty());
    }
}
