//! Symbolic range analysis of pointers — the CGO'16 contribution.
//!
//! For every pointer `p` the analysis computes a *global* abstract state
//! `GR(p) ∈ MemLocs = (SymbRanges ⊎ ⊥)ⁿ` mapping each of the program's
//! `n` allocation sites to the symbolic interval of offsets `p` may
//! address within that site (§3.4), and a *local* state
//! `LR(p) ∈ (Loc ∪ NewLocs) × SymbRanges` that renames pointers at
//! φ-functions and loads so same-base offsets can be disambiguated even
//! when global ranges overlap (§3.6).
//!
//! Two complementary alias tests answer queries (§3.5, §3.7):
//!
//! * **global** (`QGR`): no-alias when the abstract address sets have
//!   provably empty intersection — disjoint allocation sites, or
//!   provably disjoint symbolic offset ranges within common sites;
//! * **local** (`QLR`): no-alias when both pointers share a local base
//!   and their offset ranges are provably disjoint.
//!
//! [`RbaaAnalysis`] packages both tests behind the [`AliasAnalysis`]
//! trait, trying the global test first and falling back to the local
//! one, exactly like the paper's Figure 5 pipeline.
//!
//! # Examples
//!
//! ```
//! use sra_ir::{BinOp, Callee, CmpOp, FunctionBuilder, Module, Ty};
//! use sra_core::{AliasAnalysis, AliasResult, RbaaAnalysis};
//!
//! // char* a = malloc(n); &a[0] vs &a[n-1]  (n unknown to the analysis)
//! let mut b = FunctionBuilder::new("main", &[], None);
//! let n = b.call(Callee::External("atoi".into()), &[], Some(Ty::Int));
//! let buf = b.malloc(n);
//! let zero = b.const_int(0);
//! let first = b.ptr_add(buf, zero);
//! let one = b.const_int(1);
//! let nm1 = b.binop(BinOp::Sub, n, one);
//! let last = b.ptr_add(buf, nm1);
//! b.store(first, zero);
//! b.store(last, zero);
//! b.ret(None);
//! let mut m = Module::new();
//! let fid = m.add_function(b.finish());
//!
//! let rbaa = RbaaAnalysis::analyze(&m);
//! // [0,0] vs [n-1,n-1] cannot be proven disjoint (n might be 1).
//! assert_eq!(rbaa.alias(fid, first, last), AliasResult::MayAlias);
//! ```

mod config;
mod driver;
mod gr;
mod locs;
pub mod lr;
pub mod persist;
pub mod pool;
mod query;
pub mod service;
pub mod session;
mod state;

pub use config::{AnalysisConfig, AnalysisConfigBuilder};
pub use driver::{analyze_parallel, analyze_parallel_on, BatchAnalysis, DriverConfig, PhaseStats};
pub use gr::{GrAnalysis, GrConfig, GrSchedule};
pub use locs::{AllocSite, LocId, LocKind, LocTable};
pub use lr::{LocalBase, LrAnalysis, LrPart, LrState, LrStateRef};
pub use persist::PersistError;
pub use pool::WorkerPool;
pub use query::{
    global_no_alias, global_no_alias_kind, pointer_values, AliasAnalysis, AliasMatrix, AliasResult,
    DemandCache, DemandStats, MatrixBytes, QueryMode, QueryStats, RbaaAnalysis, WhichTest,
};
pub use service::{AliasService, EpochSnapshot, ServiceError, TenantWriter};
pub use session::{AnalysisSession, FrozenAnalysis, SessionEdit, SessionError, SessionStats};
pub use state::{PtrState, PtrStateRef};
