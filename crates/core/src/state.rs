//! The `MemLocs` abstract domain: per-location symbolic offset ranges.

use std::collections::BTreeMap;
use std::fmt;

use sra_symbolic::{ExprArena, RangeId, SymbolNames};

use crate::locs::LocId;

/// The abstract state of one pointer: the paper's
/// `GR(p) ∈ (SymbRanges ⊎ ⊥)ⁿ` (§3.4), stored sparsely over its
/// *support* (the locations whose component is not ⊥). Every offset
/// range is an interned handle into the analysis' [`ExprArena`], so
/// states are cheap to clone and `O(support)` to compare — the lattice
/// operations take the arena explicitly.
///
/// `Top` is the greatest element `([−∞,∞], …, [−∞,∞])` — the state of a
/// pointer loaded from memory, which may address any location at any
/// offset.
///
/// # Examples
///
/// ```
/// use sra_core::{LocId, PtrState};
/// use sra_symbolic::{ExprArena, SymRange};
///
/// let mut arena = ExprArena::new();
/// let r0 = arena.intern_range(&SymRange::constant(0));
/// let r47 = arena.intern_range(&SymRange::interval(4.into(), 7.into()));
/// let a = PtrState::singleton(LocId::new(0), r0);
/// let b = PtrState::singleton(LocId::new(0), r47);
/// let j = a.join(&b, &mut arena);
/// let joined = j.get(LocId::new(0)).unwrap();
/// assert_eq!(
///     arena.range_value(joined),
///     SymRange::interval(0.into(), 7.into())
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PtrState {
    /// Every location, full range.
    Top,
    /// Sparse map from locations in the support to their offset range.
    /// An empty map is the least element ⊥ (points nowhere).
    Map(BTreeMap<LocId, RangeId>),
}

/// The default is ⊥ (so dense state tables can be built with
/// `mem::take`-friendly slots).
impl Default for PtrState {
    fn default() -> Self {
        PtrState::bottom()
    }
}

impl PtrState {
    /// The least element ⊥: a pointer that references no location (the
    /// state of `free`'s result).
    pub fn bottom() -> Self {
        PtrState::Map(BTreeMap::new())
    }

    /// The greatest element.
    pub fn top() -> Self {
        PtrState::Top
    }

    /// A single `loc + range` abstract address.
    pub fn singleton(loc: LocId, range: RangeId) -> Self {
        let mut m = BTreeMap::new();
        m.insert(loc, range);
        PtrState::Map(m)
    }

    /// `true` for ⊥.
    pub fn is_bottom(&self) -> bool {
        matches!(self, PtrState::Map(m) if m.is_empty())
    }

    /// `true` for ⊤.
    pub fn is_top(&self) -> bool {
        matches!(self, PtrState::Top)
    }

    /// The component for `loc` (`None` = ⊥ at that location). `Top`
    /// reports the full range for every location
    /// ([`ExprArena::TOP_RANGE`] is pre-interned with the same id in
    /// every arena, so no arena access is needed here).
    pub fn get(&self, loc: LocId) -> Option<RangeId> {
        match self {
            PtrState::Top => Some(ExprArena::TOP_RANGE),
            PtrState::Map(m) => m.get(&loc).copied(),
        }
    }

    /// The support: locations whose component is not ⊥. For `Top` the
    /// support is conceptually *all* locations; callers must branch on
    /// [`PtrState::is_top`] first (this method returns an empty iterator
    /// for `Top`).
    pub fn support(&self) -> impl Iterator<Item = (LocId, RangeId)> + '_ {
        match self {
            PtrState::Top => SupportIter::Top,
            PtrState::Map(m) => SupportIter::Map(m.iter()),
        }
    }

    /// Number of locations in the support (0 for ⊥; `None` for ⊤).
    pub fn support_len(&self) -> Option<usize> {
        match self {
            PtrState::Top => None,
            PtrState::Map(m) => Some(m.len()),
        }
    }

    /// The join `⊔` (per-location range join; ⊥ components adopt the
    /// other side).
    pub fn join(&self, other: &PtrState, arena: &mut ExprArena) -> PtrState {
        match (self, other) {
            (PtrState::Top, _) | (_, PtrState::Top) => PtrState::Top,
            (PtrState::Map(a), PtrState::Map(b)) => {
                let mut out = a.clone();
                for (loc, r) in b {
                    match out.entry(*loc) {
                        std::collections::btree_map::Entry::Occupied(mut o) => {
                            let j = arena.range_join(*o.get(), *r);
                            *o.get_mut() = j;
                        }
                        std::collections::btree_map::Entry::Vacant(v) => {
                            v.insert(*r);
                        }
                    }
                }
                PtrState::Map(out)
            }
        }
    }

    /// The ordering `⊑`: every component included (provable fragment).
    pub fn le(&self, other: &PtrState, arena: &mut ExprArena) -> bool {
        match (self, other) {
            (_, PtrState::Top) => true,
            (PtrState::Top, PtrState::Map(_)) => false,
            (PtrState::Map(a), PtrState::Map(b)) => a.iter().all(|(loc, &r)| match b.get(loc) {
                Some(&rb) => arena.range_le(r, rb),
                None => false,
            }),
        }
    }

    /// The paper's widening (Definition 4): per-location widening of
    /// ranges, with `⊥ ∇ R = R`.
    pub fn widen(&self, next: &PtrState, arena: &mut ExprArena) -> PtrState {
        match (self, next) {
            (PtrState::Top, _) | (_, PtrState::Top) => PtrState::Top,
            (PtrState::Map(a), PtrState::Map(b)) => {
                let mut out = BTreeMap::new();
                for (loc, &rb) in b {
                    let widened = match a.get(loc) {
                        Some(&ra) => arena.range_widen(ra, rb),
                        None => rb,
                    };
                    out.insert(*loc, widened);
                }
                // Locations only in `a` persist (the sequence grows).
                for (loc, &ra) in a {
                    out.entry(*loc).or_insert(ra);
                }
                PtrState::Map(out)
            }
        }
    }

    /// Shifts every component by a symbolic offset range: the transfer
    /// function of `q = p + c` with `R(c) = offset` (Figure 9).
    pub fn add_offset(&self, offset: RangeId, arena: &mut ExprArena) -> PtrState {
        match self {
            PtrState::Top => PtrState::Top,
            PtrState::Map(m) => {
                let out = m
                    .iter()
                    .map(|(loc, &r)| (*loc, arena.range_add(r, offset)))
                    .collect();
                PtrState::Map(out)
            }
        }
    }

    /// Per-location meet against `other` transformed by `f`: the σ-node
    /// transfer functions of Figure 9. A location where either side is ⊥
    /// stays ⊥.
    pub fn clamp_with(
        &self,
        other: &PtrState,
        arena: &mut ExprArena,
        f: impl Fn(&mut ExprArena, RangeId, RangeId) -> RangeId,
    ) -> PtrState {
        match (self, other) {
            (_, PtrState::Top) => self.clone(), // [−∞,∞] clamps nothing
            (PtrState::Top, PtrState::Map(b)) => {
                let mut out = BTreeMap::new();
                for (loc, &rb) in b {
                    let clamped = f(arena, ExprArena::TOP_RANGE, rb);
                    if !arena.range_is_empty(clamped) {
                        out.insert(*loc, clamped);
                    }
                }
                PtrState::Map(out)
            }
            (PtrState::Map(a), PtrState::Map(b)) => {
                let mut out = BTreeMap::new();
                for (loc, &ra) in a {
                    if let Some(&rb) = b.get(loc) {
                        let clamped = f(arena, ra, rb);
                        if !arena.range_is_empty(clamped) {
                            out.insert(*loc, clamped);
                        }
                    }
                }
                PtrState::Map(out)
            }
        }
    }

    /// Renders using `names` for symbols, in the paper's set notation:
    /// `{loc0 + [0, N-1], loc2 + [0, 0]}`.
    pub fn display<'a>(
        &'a self,
        arena: &'a ExprArena,
        names: &'a dyn SymbolNames,
    ) -> impl fmt::Display + 'a {
        DisplayState {
            state: self,
            arena,
            names,
        }
    }
}

/// A pointer state bundled with the arena its range handles point
/// into — what [`crate::GrAnalysis::state`] hands out, so call sites
/// can display, inspect and compare states without tracking the arena
/// separately. Equality is *structural* (a lockstep walk through both
/// arenas), so states from two independently built analyses compare
/// meaningfully — the property the byte-identity rails assert.
#[derive(Clone, Copy)]
pub struct PtrStateRef<'a> {
    state: &'a PtrState,
    arena: &'a ExprArena,
}

impl<'a> PtrStateRef<'a> {
    /// Bundles a state with its arena.
    pub fn new(state: &'a PtrState, arena: &'a ExprArena) -> Self {
        PtrStateRef { state, arena }
    }

    /// The underlying state.
    pub fn state(&self) -> &'a PtrState {
        self.state
    }

    /// The arena the state's range handles point into.
    pub fn arena(&self) -> &'a ExprArena {
        self.arena
    }

    /// `true` for ⊥.
    pub fn is_bottom(&self) -> bool {
        self.state.is_bottom()
    }

    /// `true` for ⊤.
    pub fn is_top(&self) -> bool {
        self.state.is_top()
    }

    /// The component for `loc`; see [`PtrState::get`].
    pub fn get(&self, loc: LocId) -> Option<RangeId> {
        self.state.get(loc)
    }

    /// The support; see [`PtrState::support`].
    pub fn support(&self) -> impl Iterator<Item = (LocId, RangeId)> + 'a {
        self.state.support()
    }

    /// Number of locations in the support (0 for ⊥; `None` for ⊤).
    pub fn support_len(&self) -> Option<usize> {
        self.state.support_len()
    }

    /// Renders using `names` for symbols.
    pub fn display(&self, names: &'a dyn SymbolNames) -> impl fmt::Display + 'a {
        DisplayState {
            state: self.state,
            arena: self.arena,
            names,
        }
    }
}

impl PartialEq for PtrStateRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        match (self.state, other.state) {
            (PtrState::Top, PtrState::Top) => true,
            (PtrState::Map(a), PtrState::Map(b)) => {
                a.len() == b.len()
                    && a.iter().zip(b).all(|((la, ra), (lb, rb))| {
                        la == lb && self.arena.range_structural_eq(*ra, other.arena, *rb)
                    })
            }
            _ => false,
        }
    }
}

impl Eq for PtrStateRef<'_> {}

/// Debug renders through `Display` (states print as
/// `{loc0 + [0, N-1]}`, which is what a failing equality assertion
/// wants to show).
impl fmt::Debug for PtrStateRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for PtrStateRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display(&NoNames))
    }
}

struct NoNames;

impl SymbolNames for NoNames {
    fn symbol_name(&self, _s: sra_symbolic::Symbol) -> Option<&str> {
        None
    }
}

enum SupportIter<'a> {
    Top,
    Map(std::collections::btree_map::Iter<'a, LocId, RangeId>),
}

impl Iterator for SupportIter<'_> {
    type Item = (LocId, RangeId);

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            SupportIter::Top => None,
            SupportIter::Map(it) => it.next().map(|(l, r)| (*l, *r)),
        }
    }
}

struct DisplayState<'a> {
    state: &'a PtrState,
    arena: &'a ExprArena,
    names: &'a dyn SymbolNames,
}

impl fmt::Display for DisplayState<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.state {
            PtrState::Top => write!(f, "top"),
            PtrState::Map(m) if m.is_empty() => write!(f, "bottom"),
            PtrState::Map(m) => {
                write!(f, "{{")?;
                for (i, (loc, r)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{} + {}", loc, self.arena.display_range(*r, self.names))?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sra_symbolic::{Bound, SymExpr, SymRange, Symbol};

    fn l(i: usize) -> LocId {
        LocId::new(i)
    }

    fn n() -> SymExpr {
        SymExpr::from(Symbol::new(0))
    }

    fn at(arena: &mut ExprArena, loc: LocId, lo: SymExpr, hi: SymExpr) -> PtrState {
        let r = arena.intern_range(&SymRange::interval(lo, hi));
        PtrState::singleton(loc, r)
    }

    fn rv(arena: &ExprArena, s: &PtrState, loc: LocId) -> Option<SymRange> {
        s.get(loc).map(|r| arena.range_value(r))
    }

    #[test]
    fn join_unions_supports() {
        let mut a = ExprArena::new();
        let s0 = PtrState::singleton(l(0), a.intern_range(&SymRange::constant(0)));
        let s1 = PtrState::singleton(l(1), a.intern_range(&SymRange::constant(5)));
        let j = s0.join(&s1, &mut a);
        assert_eq!(j.support_len(), Some(2));
        assert_eq!(rv(&a, &j, l(0)), Some(SymRange::constant(0)));
        assert_eq!(rv(&a, &j, l(1)), Some(SymRange::constant(5)));
    }

    #[test]
    fn bottom_is_neutral_for_join() {
        let mut arena = ExprArena::new();
        let a = at(&mut arena, l(0), 0.into(), n());
        assert_eq!(PtrState::bottom().join(&a, &mut arena), a);
        assert_eq!(a.join(&PtrState::bottom(), &mut arena), a);
    }

    #[test]
    fn top_absorbs() {
        let mut arena = ExprArena::new();
        let a = at(&mut arena, l(0), 0.into(), n());
        assert!(a.join(&PtrState::top(), &mut arena).is_top());
        assert!(a.le(&PtrState::top(), &mut arena));
        assert!(!PtrState::top().le(&a, &mut arena));
    }

    #[test]
    fn ordering() {
        let mut arena = ExprArena::new();
        let small = at(&mut arena, l(0), 1.into(), 2.into());
        let big = at(&mut arena, l(0), 0.into(), 5.into());
        assert!(small.le(&big, &mut arena));
        assert!(!big.le(&small, &mut arena));
        // Extra locations break inclusion.
        let extra = at(&mut arena, l(1), 0.into(), 0.into());
        let two = small.join(&extra, &mut arena);
        assert!(!two.le(&big, &mut arena));
        assert!(small.le(&two, &mut arena));
        assert!(PtrState::bottom().le(&small, &mut arena));
    }

    #[test]
    fn widen_per_location() {
        let mut arena = ExprArena::new();
        let a = at(&mut arena, l(0), 0.into(), 1.into());
        let grown = at(&mut arena, l(0), 0.into(), 2.into());
        let w = a.widen(&grown, &mut arena);
        let r = arena.range_value(w.get(l(0)).unwrap());
        assert_eq!(r.lo().unwrap(), &Bound::from(0));
        assert_eq!(r.hi().unwrap(), &Bound::PosInf);
        // New location appears as-is (⊥ ∇ R = R).
        let extra = at(&mut arena, l(1), 0.into(), 0.into());
        let with_new = grown.join(&extra, &mut arena);
        let w = a.widen(&with_new, &mut arena);
        assert_eq!(rv(&arena, &w, l(1)), Some(SymRange::constant(0)));
    }

    #[test]
    fn add_offset_shifts_all() {
        let mut arena = ExprArena::new();
        let a = at(&mut arena, l(0), 0.into(), n());
        let b = at(&mut arena, l(1), 2.into(), 2.into());
        let s = a.join(&b, &mut arena);
        let three = arena.intern_range(&SymRange::constant(3));
        let shifted = s.add_offset(three, &mut arena);
        assert_eq!(
            rv(&arena, &shifted, l(0)),
            Some(SymRange::interval(3.into(), n() + 3.into()))
        );
        assert_eq!(rv(&arena, &shifted, l(1)), Some(SymRange::constant(5)));
        assert!(PtrState::top().add_offset(three, &mut arena).is_top());
    }

    #[test]
    fn clamp_with_meets_per_location() {
        let mut arena = ExprArena::new();
        // p1 = {loc0+[0,+inf], loc1+[0,0]}; p2 = {loc0+[N,N]}
        let half = arena.intern_range(&SymRange::with_bounds(Bound::from(0), Bound::PosInf));
        let p1a = PtrState::singleton(l(0), half);
        let p1b = at(&mut arena, l(1), 0.into(), 0.into());
        let p1 = p1a.join(&p1b, &mut arena);
        let p2 = at(&mut arena, l(0), n(), n());
        // q = p1 ∩ [−∞, p2] — clamp above by p2's upper bound.
        let q = p1.clamp_with(&p2, &mut arena, |arena, ra, rb| match arena.range_hi(rb) {
            Some(hi) => arena.range_clamp_above(ra, hi),
            None => ra,
        });
        // loc1 is ⊥ in p2 so it disappears; loc0 clamps to [0, N].
        assert_eq!(q.get(l(1)), None);
        assert_eq!(
            rv(&arena, &q, l(0)),
            Some(SymRange::interval(0.into(), n()))
        );
    }

    #[test]
    fn clamp_from_top_narrows_support() {
        let mut arena = ExprArena::new();
        let p2 = at(&mut arena, l(3), 0.into(), n());
        let q =
            PtrState::top().clamp_with(&p2, &mut arena, |arena, ra, rb| match arena.range_hi(rb) {
                Some(hi) => arena.range_clamp_above(ra, hi),
                None => ra,
            });
        assert!(!q.is_top());
        assert_eq!(q.support_len(), Some(1));
        let r = arena.range_value(q.get(l(3)).unwrap());
        assert_eq!(r.lo(), Some(&Bound::NegInf));
    }

    #[test]
    fn display_notation() {
        let mut arena = ExprArena::new();
        let s = at(&mut arena, l(0), 0.into(), 3.into());
        assert_eq!(
            format!("{}", s.display(&arena, &NoNames)),
            "{loc0 + [0, 3]}"
        );
        assert_eq!(
            format!("{}", PtrState::bottom().display(&arena, &NoNames)),
            "bottom"
        );
        assert_eq!(
            format!("{}", PtrState::top().display(&arena, &NoNames)),
            "top"
        );
    }

    /// `PtrStateRef` equality is structural across arenas: equal values
    /// in different arenas compare equal, different values never do.
    #[test]
    fn state_ref_structural_equality() {
        let mut a1 = ExprArena::new();
        let mut a2 = ExprArena::new();
        // Skew a2's id space so equal values get different raw ids.
        let _ = a2.intern(&(n() * 9.into() - 4.into()));
        let s1 = at(&mut a1, l(0), 0.into(), n());
        let s2 = at(&mut a2, l(0), 0.into(), n());
        let s3 = at(&mut a2, l(0), 1.into(), n());
        assert_eq!(PtrStateRef::new(&s1, &a1), PtrStateRef::new(&s2, &a2));
        assert_ne!(PtrStateRef::new(&s1, &a1), PtrStateRef::new(&s3, &a2));
        let top = PtrState::top();
        assert_eq!(PtrStateRef::new(&top, &a1), PtrStateRef::new(&top, &a2));
        assert_ne!(PtrStateRef::new(&top, &a1), PtrStateRef::new(&s2, &a2));
        assert_eq!(
            format!("{:?}", PtrStateRef::new(&s1, &a1)),
            "{loc0 + [0, s0]}"
        );
    }
}
