//! The `MemLocs` abstract domain: per-location symbolic offset ranges.

use std::collections::BTreeMap;
use std::fmt;

use sra_symbolic::{SymExpr, SymRange, SymbolNames};

use crate::locs::LocId;

/// The abstract state of one pointer: the paper's
/// `GR(p) ∈ (SymbRanges ⊎ ⊥)ⁿ` (§3.4), stored sparsely over its
/// *support* (the locations whose component is not ⊥).
///
/// `Top` is the greatest element `([−∞,∞], …, [−∞,∞])` — the state of a
/// pointer loaded from memory, which may address any location at any
/// offset.
///
/// # Examples
///
/// ```
/// use sra_core::{LocId, PtrState};
/// use sra_symbolic::SymRange;
///
/// let a = PtrState::singleton(LocId::new(0), SymRange::constant(0));
/// let b = PtrState::singleton(LocId::new(0), SymRange::interval(4.into(), 7.into()));
/// let j = a.join(&b);
/// assert_eq!(j.get(LocId::new(0)), Some(&SymRange::interval(0.into(), 7.into())));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PtrState {
    /// Every location, full range.
    Top,
    /// Sparse map from locations in the support to their offset range.
    /// An empty map is the least element ⊥ (points nowhere).
    Map(BTreeMap<LocId, SymRange>),
}

/// The default is ⊥ (so dense state tables can be built with
/// `mem::take`-friendly slots).
impl Default for PtrState {
    fn default() -> Self {
        PtrState::bottom()
    }
}

impl PtrState {
    /// The least element ⊥: a pointer that references no location (the
    /// state of `free`'s result).
    pub fn bottom() -> Self {
        PtrState::Map(BTreeMap::new())
    }

    /// The greatest element.
    pub fn top() -> Self {
        PtrState::Top
    }

    /// A single `loc + range` abstract address.
    pub fn singleton(loc: LocId, range: SymRange) -> Self {
        let mut m = BTreeMap::new();
        m.insert(loc, range);
        PtrState::Map(m)
    }

    /// `true` for ⊥.
    pub fn is_bottom(&self) -> bool {
        matches!(self, PtrState::Map(m) if m.is_empty())
    }

    /// `true` for ⊤.
    pub fn is_top(&self) -> bool {
        matches!(self, PtrState::Top)
    }

    /// The component for `loc` (`None` = ⊥ at that location). `Top`
    /// reports the full range for every location.
    pub fn get(&self, loc: LocId) -> Option<&SymRange> {
        match self {
            PtrState::Top => Some(&FULL),
            PtrState::Map(m) => m.get(&loc),
        }
    }

    /// The support: locations whose component is not ⊥. For `Top` the
    /// support is conceptually *all* locations; callers must branch on
    /// [`PtrState::is_top`] first (this method returns an empty iterator
    /// for `Top`).
    pub fn support(&self) -> impl Iterator<Item = (LocId, &SymRange)> + '_ {
        match self {
            PtrState::Top => SupportIter::Top,
            PtrState::Map(m) => SupportIter::Map(m.iter()),
        }
    }

    /// Number of locations in the support (0 for ⊥; `None` for ⊤).
    pub fn support_len(&self) -> Option<usize> {
        match self {
            PtrState::Top => None,
            PtrState::Map(m) => Some(m.len()),
        }
    }

    /// The join `⊔` (per-location range join; ⊥ components adopt the
    /// other side).
    pub fn join(&self, other: &PtrState) -> PtrState {
        match (self, other) {
            (PtrState::Top, _) | (_, PtrState::Top) => PtrState::Top,
            (PtrState::Map(a), PtrState::Map(b)) => {
                let mut out = a.clone();
                for (loc, r) in b {
                    out.entry(*loc)
                        .and_modify(|cur| *cur = cur.join(r))
                        .or_insert_with(|| r.clone());
                }
                PtrState::Map(out)
            }
        }
    }

    /// The ordering `⊑`: every component included (provable fragment).
    pub fn le(&self, other: &PtrState) -> bool {
        match (self, other) {
            (_, PtrState::Top) => true,
            (PtrState::Top, PtrState::Map(_)) => false,
            (PtrState::Map(a), PtrState::Map(b)) => a
                .iter()
                .all(|(loc, r)| b.get(loc).map(|rb| r.le(rb)).unwrap_or(false)),
        }
    }

    /// The paper's widening (Definition 4): per-location widening of
    /// ranges, with `⊥ ∇ R = R`.
    pub fn widen(&self, next: &PtrState) -> PtrState {
        match (self, next) {
            (PtrState::Top, _) | (_, PtrState::Top) => PtrState::Top,
            (PtrState::Map(a), PtrState::Map(b)) => {
                let mut out = BTreeMap::new();
                for (loc, rb) in b {
                    let widened = match a.get(loc) {
                        Some(ra) => ra.widen(rb),
                        None => rb.clone(),
                    };
                    out.insert(*loc, widened);
                }
                // Locations only in `a` persist (the sequence grows).
                for (loc, ra) in a {
                    out.entry(*loc).or_insert_with(|| ra.clone());
                }
                PtrState::Map(out)
            }
        }
    }

    /// Shifts every component by a symbolic offset range: the transfer
    /// function of `q = p + c` with `R(c) = offset` (Figure 9).
    pub fn add_offset(&self, offset: &SymRange) -> PtrState {
        match self {
            PtrState::Top => PtrState::Top,
            PtrState::Map(m) => {
                let out = m.iter().map(|(loc, r)| (*loc, r.add(offset))).collect();
                PtrState::Map(out)
            }
        }
    }

    /// Per-location meet against `other` transformed by `f`: the σ-node
    /// transfer functions of Figure 9. A location where either side is ⊥
    /// stays ⊥.
    pub fn clamp_with(
        &self,
        other: &PtrState,
        f: impl Fn(&SymRange, &SymRange) -> SymRange,
    ) -> PtrState {
        match (self, other) {
            (_, PtrState::Top) => self.clone(), // [−∞,∞] clamps nothing
            (PtrState::Top, PtrState::Map(b)) => {
                let out = b
                    .iter()
                    .map(|(loc, rb)| (*loc, f(&FULL, rb)))
                    .filter(|(_, r)| !r.is_empty())
                    .collect();
                PtrState::Map(out)
            }
            (PtrState::Map(a), PtrState::Map(b)) => {
                let mut out = BTreeMap::new();
                for (loc, ra) in a {
                    if let Some(rb) = b.get(loc) {
                        let clamped = f(ra, rb);
                        if !clamped.is_empty() {
                            out.insert(*loc, clamped);
                        }
                    }
                }
                PtrState::Map(out)
            }
        }
    }

    /// Renders using `names` for symbols, in the paper's set notation:
    /// `{loc0 + [0, N-1], loc2 + [0, 0]}`.
    pub fn display<'a>(&'a self, names: &'a dyn SymbolNames) -> impl fmt::Display + 'a {
        DisplayState { state: self, names }
    }
}

static FULL: SymRange = SymRange::Interval {
    lo: sra_symbolic::Bound::NegInf,
    hi: sra_symbolic::Bound::PosInf,
};

enum SupportIter<'a> {
    Top,
    Map(std::collections::btree_map::Iter<'a, LocId, SymRange>),
}

impl<'a> Iterator for SupportIter<'a> {
    type Item = (LocId, &'a SymRange);

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            SupportIter::Top => None,
            SupportIter::Map(it) => it.next().map(|(l, r)| (*l, r)),
        }
    }
}

struct DisplayState<'a> {
    state: &'a PtrState,
    names: &'a dyn SymbolNames,
}

impl fmt::Display for DisplayState<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.state {
            PtrState::Top => write!(f, "top"),
            PtrState::Map(m) if m.is_empty() => write!(f, "bottom"),
            PtrState::Map(m) => {
                write!(f, "{{")?;
                for (i, (loc, r)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{} + {}", loc, r.display(self.names))?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl fmt::Display for PtrState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        struct NoNames;
        impl SymbolNames for NoNames {
            fn symbol_name(&self, _s: sra_symbolic::Symbol) -> Option<&str> {
                None
            }
        }
        write!(f, "{}", self.display(&NoNames))
    }
}

/// Convenience: build `{loc + [l, u]}` from expressions.
impl PtrState {
    /// Builds `{loc + [lo, hi]}`.
    pub fn at(loc: LocId, lo: SymExpr, hi: SymExpr) -> Self {
        PtrState::singleton(loc, SymRange::interval(lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sra_symbolic::Symbol;

    fn l(i: usize) -> LocId {
        LocId::new(i)
    }

    fn n() -> SymExpr {
        SymExpr::from(Symbol::new(0))
    }

    #[test]
    fn join_unions_supports() {
        let a = PtrState::singleton(l(0), SymRange::constant(0));
        let b = PtrState::singleton(l(1), SymRange::constant(5));
        let j = a.join(&b);
        assert_eq!(j.support_len(), Some(2));
        assert_eq!(j.get(l(0)), Some(&SymRange::constant(0)));
        assert_eq!(j.get(l(1)), Some(&SymRange::constant(5)));
    }

    #[test]
    fn bottom_is_neutral_for_join() {
        let a = PtrState::at(l(0), 0.into(), n());
        assert_eq!(PtrState::bottom().join(&a), a);
        assert_eq!(a.join(&PtrState::bottom()), a);
    }

    #[test]
    fn top_absorbs() {
        let a = PtrState::at(l(0), 0.into(), n());
        assert!(a.join(&PtrState::top()).is_top());
        assert!(a.le(&PtrState::top()));
        assert!(!PtrState::top().le(&a));
    }

    #[test]
    fn ordering() {
        let small = PtrState::at(l(0), 1.into(), 2.into());
        let big = PtrState::at(l(0), 0.into(), 5.into());
        assert!(small.le(&big));
        assert!(!big.le(&small));
        // Extra locations break inclusion.
        let two = small.join(&PtrState::at(l(1), 0.into(), 0.into()));
        assert!(!two.le(&big));
        assert!(small.le(&two));
        assert!(PtrState::bottom().le(&small));
    }

    #[test]
    fn widen_per_location() {
        let a = PtrState::at(l(0), 0.into(), 1.into());
        let grown = PtrState::at(l(0), 0.into(), 2.into());
        let w = a.widen(&grown);
        let r = w.get(l(0)).unwrap();
        assert_eq!(r.lo().unwrap(), &sra_symbolic::Bound::from(0));
        assert_eq!(r.hi().unwrap(), &sra_symbolic::Bound::PosInf);
        // New location appears as-is (⊥ ∇ R = R).
        let with_new = grown.join(&PtrState::at(l(1), 0.into(), 0.into()));
        let w = a.widen(&with_new);
        assert_eq!(w.get(l(1)), Some(&SymRange::constant(0)));
    }

    #[test]
    fn add_offset_shifts_all() {
        let s = PtrState::at(l(0), 0.into(), n()).join(&PtrState::at(l(1), 2.into(), 2.into()));
        let shifted = s.add_offset(&SymRange::constant(3));
        assert_eq!(
            shifted.get(l(0)),
            Some(&SymRange::interval(3.into(), n() + 3.into()))
        );
        assert_eq!(shifted.get(l(1)), Some(&SymRange::constant(5)));
        assert!(PtrState::top().add_offset(&SymRange::constant(1)).is_top());
    }

    #[test]
    fn clamp_with_meets_per_location() {
        // p1 = {loc0+[0,+inf], loc1+[0,0]}; p2 = {loc0+[N,N]}
        let p1 = PtrState::singleton(
            l(0),
            SymRange::with_bounds(sra_symbolic::Bound::from(0), sra_symbolic::Bound::PosInf),
        )
        .join(&PtrState::at(l(1), 0.into(), 0.into()));
        let p2 = PtrState::at(l(0), n(), n());
        // q = p1 ∩ [−∞, p2] — clamp above by p2's upper bound.
        let q = p1.clamp_with(&p2, |ra, rb| match rb.hi() {
            Some(hi) => ra.clamp_above(hi.clone()),
            None => ra.clone(),
        });
        // loc1 is ⊥ in p2 so it disappears; loc0 clamps to [0, N].
        assert_eq!(q.get(l(1)), None);
        assert_eq!(q.get(l(0)), Some(&SymRange::interval(0.into(), n())));
    }

    #[test]
    fn clamp_from_top_narrows_support() {
        let p2 = PtrState::at(l(3), 0.into(), n());
        let q = PtrState::top().clamp_with(&p2, |ra, rb| match rb.hi() {
            Some(hi) => ra.clamp_above(hi.clone()),
            None => ra.clone(),
        });
        assert!(!q.is_top());
        assert_eq!(q.support_len(), Some(1));
        let r = q.get(l(3)).unwrap();
        assert_eq!(r.lo(), Some(&sra_symbolic::Bound::NegInf));
    }

    #[test]
    fn display_notation() {
        let s = PtrState::at(l(0), 0.into(), 3.into());
        assert_eq!(s.to_string(), "{loc0 + [0, 3]}");
        assert_eq!(PtrState::bottom().to_string(), "bottom");
        assert_eq!(PtrState::top().to_string(), "top");
    }
}
