//! A snapshot-isolated, thread-safe alias-query service: many named
//! tenants ("modules"), each backed by an incremental
//! [`AnalysisSession`], serving concurrent readers while a per-tenant
//! writer applies edits.
//!
//! # The tenant/epoch/snapshot contract
//!
//! Each tenant owns a monotone **epoch** counter. Epoch 0 is the
//! snapshot published when the tenant is added; every applied edit
//! bumps the epoch by exactly one and publishes a fresh immutable
//! [`Arc<EpochSnapshot>`](EpochSnapshot). A snapshot is self-contained
//! (module + assembled analysis + all-pairs matrices, `Arc`-shared
//! with the session via [`AnalysisSession::freeze`]) and answers
//! queries without ever touching the live session, so:
//!
//! * **readers never block on edits** — [`AliasService::snapshot`]
//!   briefly takes a lock that writers hold only for the O(1) pointer
//!   swap of a publish, *never* during the (possibly long) re-analysis
//!   of an edit. A reader that grabbed a snapshot holds plain
//!   immutable data;
//! * **readers never see a half-applied epoch** — a snapshot is frozen
//!   *after* the session's rebuild completes, and publication replaces
//!   the whole `Arc` atomically under the lock; there is no state in
//!   between two epochs to observe;
//! * **epochs are monotone per tenant** — the writer mutex serializes
//!   edits, and each publish carries the next counter value, so any
//!   single reader observes non-decreasing epochs;
//! * **a slow reader never starves writers** — a reader holds only its
//!   own `Arc` clone of a snapshot; writers publish later epochs
//!   regardless, and the superseded snapshot's memory (matrices,
//!   arenas) is freed when its last reader drops it.
//!
//! # Examples
//!
//! ```
//! use sra_core::service::AliasService;
//! use sra_core::AliasResult;
//! use sra_ir::{FunctionBuilder, Module};
//!
//! let mut b = FunctionBuilder::new("f", &[], None);
//! let ten = b.const_int(10);
//! let p = b.malloc(ten);
//! let q = b.malloc(ten);
//! b.ret(None);
//! let mut m = Module::new();
//! let fid = m.add_function(b.finish());
//!
//! let service = AliasService::new();
//! service.add_tenant("app", m).unwrap();
//! let snap = service.snapshot("app").unwrap();
//! assert_eq!(snap.epoch(), 0);
//! assert_eq!(snap.alias_with_test(fid, p, q).0, AliasResult::NoAlias);
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, RwLock};

use sra_ir::{FuncId, Function, Module, ValueId};
use sra_lang::{CompileError, SourceProgram};

use crate::config::AnalysisConfig;
use crate::driver::DriverConfig;
use crate::persist::{self, corrupt, PersistError};
use crate::query::{AliasResult, QueryMode, WhichTest};
use crate::session::{AnalysisSession, FrozenAnalysis, SessionEdit, SessionError, SessionStats};

/// Why a service call failed. Edit rejections wrap the session's
/// structured error and leave the tenant (and its published snapshot)
/// exactly as they were.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// No tenant is registered under this name.
    NoSuchTenant(String),
    /// [`AliasService::add_tenant`] found the name already taken.
    TenantExists(String),
    /// The tenant's session rejected the edit (or the initial module
    /// failed verification).
    Session(SessionError),
    /// The edited source failed to compile (lex, parse or lowering);
    /// the tenant keeps serving its previous text unchanged.
    Compile(CompileError),
    /// A source edit targeted a tenant that was registered from a
    /// pre-built module ([`AliasService::add_tenant`]) rather than from
    /// text ([`AliasService::add_tenant_source`]).
    NotSourceBacked(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::NoSuchTenant(n) => write!(f, "no tenant named {n:?}"),
            ServiceError::TenantExists(n) => write!(f, "tenant {n:?} already exists"),
            ServiceError::Session(e) => write!(f, "{e}"),
            ServiceError::Compile(e) => write!(f, "{e}"),
            ServiceError::NotSourceBacked(n) => {
                write!(f, "tenant {n:?} is not source-backed")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<SessionError> for ServiceError {
    fn from(e: SessionError) -> Self {
        ServiceError::Session(e)
    }
}

impl From<CompileError> for ServiceError {
    fn from(e: CompileError) -> Self {
        ServiceError::Compile(e)
    }
}

/// One published epoch of one tenant: an epoch number plus the frozen
/// analysis ([`FrozenAnalysis`]) of the module after exactly that many
/// applied edits. Immutable; readers clone the `Arc` and query at
/// leisure while the writer moves on.
#[derive(Debug)]
pub struct EpochSnapshot {
    epoch: u64,
    frozen: FrozenAnalysis,
}

impl EpochSnapshot {
    /// How many edits this tenant had applied when the snapshot was
    /// published (epoch 0 = the initial module).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The tenant's module at this epoch.
    pub fn module(&self) -> &Module {
        self.frozen.module()
    }

    /// The frozen analysis backing this epoch.
    pub fn frozen(&self) -> &FrozenAnalysis {
        &self.frozen
    }

    /// Answers one alias query against this epoch — `O(1)` from the
    /// cached matrix, byte-identical to a scratch analysis of
    /// [`EpochSnapshot::module`].
    pub fn alias_with_test(
        &self,
        f: FuncId,
        p: ValueId,
        q: ValueId,
    ) -> (AliasResult, Option<WhichTest>) {
        self.frozen.alias_with_test(f, p, q)
    }
}

/// One tenant: the writer side (session + epoch counter) behind a
/// mutex that serializes edits, and the published snapshot behind a
/// lock held only for O(1) clone/swap operations.
struct Tenant {
    name: String,
    writer: Mutex<WriterSide>,
    published: RwLock<Arc<EpochSnapshot>>,
}

struct WriterSide {
    session: AnalysisSession,
    epoch: u64,
    /// The current source text + diff state of a source-backed tenant
    /// ([`AliasService::add_tenant_source`]); `None` for tenants
    /// registered from a pre-built module. Kept in lockstep with the
    /// session: an edit commits to both or to neither.
    source: Option<SourceProgram>,
}

impl Tenant {
    fn publish(&self, snap: Arc<EpochSnapshot>) {
        *self.published.write().expect("published lock") = snap;
    }
}

/// The exclusive writer handle of one tenant, obtained through
/// [`AliasService::with_writer`]. Holding it serializes edits to the
/// tenant; each successful edit re-analyzes incrementally, bumps the
/// epoch and publishes a fresh snapshot — readers keep being served
/// from the last published epoch the whole time.
pub struct TenantWriter<'a> {
    tenant: &'a Tenant,
    side: &'a mut WriterSide,
}

impl TenantWriter<'_> {
    /// The epoch of the most recently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.side.epoch
    }

    /// The live session under this writer (read-only; edits go through
    /// the publishing methods so every applied edit is also published).
    pub fn session(&self) -> &AnalysisSession {
        &self.side.session
    }

    /// The session's accumulated reuse/recompute counters.
    pub fn stats(&self) -> &SessionStats {
        self.side.session.stats()
    }

    /// Replaces the body of `f`, publishing the next epoch.
    ///
    /// # Errors
    ///
    /// Propagates the session's rejection; nothing is published and
    /// the epoch does not advance.
    pub fn replace_function(&mut self, f: FuncId, body: Function) -> Result<u64, SessionError> {
        self.side.session.replace_function(f, body)?;
        Ok(self.publish_next())
    }

    /// Adds a function, publishing the next epoch.
    ///
    /// # Errors
    ///
    /// Propagates the session's rejection; nothing is published.
    pub fn add_function(&mut self, body: Function) -> Result<(FuncId, u64), SessionError> {
        let f = self.side.session.add_function(body)?;
        Ok((f, self.publish_next()))
    }

    /// Removes function `f`, publishing the next epoch.
    ///
    /// # Errors
    ///
    /// Propagates the session's rejection (e.g. the function is still
    /// called); nothing is published.
    pub fn remove_function(&mut self, f: FuncId) -> Result<(Function, u64), SessionError> {
        let removed = self.side.session.remove_function(f)?;
        Ok((removed, self.publish_next()))
    }

    /// Applies a batch of edits atomically
    /// ([`AnalysisSession::apply_edits`]), publishing **one** epoch for
    /// the whole batch — readers never observe a partially applied
    /// group. Returns the added functions' ids and the published epoch.
    ///
    /// # Errors
    ///
    /// Propagates the session's rejection; nothing is published and
    /// the epoch does not advance.
    pub fn apply_edits(
        &mut self,
        edits: Vec<SessionEdit>,
    ) -> Result<(Vec<FuncId>, u64), SessionError> {
        let added = self.side.session.apply_edits(edits)?;
        Ok((added, self.publish_next()))
    }

    /// The tenant's current source text; `None` for tenants registered
    /// from a pre-built module.
    pub fn source_text(&self) -> Option<&str> {
        self.side.source.as_ref().map(SourceProgram::text)
    }

    /// Replaces the tenant's entire source text: the frontend diffs it
    /// against the current text at function granularity, re-lowers only
    /// changed units, and the session applies the diff incrementally
    /// — one published epoch per edit, however many functions it
    /// touched. The edit is atomic across text and analysis: on any
    /// error the tenant keeps serving its previous text and snapshot.
    ///
    /// # Errors
    ///
    /// [`ServiceError::NotSourceBacked`] when the tenant was registered
    /// from a pre-built module; [`ServiceError::Compile`] when the new
    /// text does not compile; [`ServiceError::Session`] when the
    /// session rejects the diff.
    pub fn edit_source(&mut self, new_text: &str) -> Result<u64, ServiceError> {
        let Some(program) = self.side.source.as_ref() else {
            return Err(ServiceError::NotSourceBacked(self.tenant.name.clone()));
        };
        // Diff on a scratch clone: a rejected edit (either stage) must
        // leave the registry's unit table untouched too.
        let mut next = program.clone();
        let diff = next.apply_edit(new_text)?;
        self.side.session.apply_source_edit(diff)?;
        self.side.source = Some(next);
        Ok(self.publish_next())
    }

    fn publish_next(&mut self) -> u64 {
        self.side.epoch += 1;
        let snap = Arc::new(EpochSnapshot {
            epoch: self.side.epoch,
            frozen: self.side.session.freeze(),
        });
        self.tenant.publish(snap);
        self.side.epoch
    }
}

/// The long-lived, thread-safe alias-query service; see the module
/// docs for the snapshot/epoch contract. `&AliasService` is `Sync`:
/// share it across reader and writer threads freely (e.g. via
/// [`std::thread::scope`] or an `Arc`).
#[derive(Default)]
pub struct AliasService {
    tenants: RwLock<HashMap<String, Arc<Tenant>>>,
    config: AnalysisConfig,
}

impl AliasService {
    /// An empty service analyzing with the default configuration.
    pub fn new() -> Self {
        Self::with_config(AnalysisConfig::default())
    }

    /// An empty service; every tenant's session analyzes (and answers
    /// queries) per `config` — the unified [`AnalysisConfig`] or a
    /// legacy [`DriverConfig`]. [`QueryMode::Matrix`] snapshots are
    /// matrix-backed (lock-free `O(1)` lookups); [`QueryMode::Demand`]
    /// snapshots skip every matrix build and memoise single queries on
    /// demand.
    pub fn with_config(config: impl Into<AnalysisConfig>) -> Self {
        AliasService {
            tenants: RwLock::new(HashMap::new()),
            config: config.into(),
        }
    }

    /// An empty service with an explicit driver configuration and
    /// query mode.
    #[deprecated(
        note = "use `AliasService::with_config` with `AnalysisConfig::builder().query_mode(…)`"
    )]
    pub fn with_mode(config: DriverConfig, mode: QueryMode) -> Self {
        Self::with_config(AnalysisConfig {
            query_mode: mode,
            ..config.into()
        })
    }

    /// The configuration every tenant analyzes with.
    pub fn config(&self) -> AnalysisConfig {
        self.config
    }

    /// The query mode every tenant answers with.
    pub fn query_mode(&self) -> QueryMode {
        self.config.query_mode
    }

    /// Registers a tenant, analyzes its module and publishes epoch 0.
    ///
    /// # Errors
    ///
    /// [`ServiceError::TenantExists`] when the name is taken;
    /// [`ServiceError::Session`] when the module fails verification.
    pub fn add_tenant(&self, name: &str, module: Module) -> Result<(), ServiceError> {
        self.register(name, module, None)
    }

    /// Registers a **source-backed** tenant: compiles `text` with the
    /// full mini-C pipeline, analyzes it and publishes epoch 0. The
    /// tenant then accepts whole-text updates through
    /// [`AliasService::edit_tenant_source`] /
    /// [`TenantWriter::edit_source`], which re-analyze incrementally at
    /// function granularity.
    ///
    /// # Errors
    ///
    /// [`ServiceError::TenantExists`] when the name is taken;
    /// [`ServiceError::Compile`] when the text does not compile;
    /// [`ServiceError::Session`] when the module fails verification.
    pub fn add_tenant_source(&self, name: &str, text: &str) -> Result<(), ServiceError> {
        let program = SourceProgram::new(text)?;
        let module = program.module().clone();
        self.register(name, module, Some(program))
    }

    fn register(
        &self,
        name: &str,
        module: Module,
        source: Option<SourceProgram>,
    ) -> Result<(), ServiceError> {
        // Build outside the map lock: adding a large tenant must not
        // stall lookups (or other adds) for the duration of a full
        // analysis. The name is re-checked under the lock.
        if self.tenants.read().expect("tenant map").contains_key(name) {
            return Err(ServiceError::TenantExists(name.to_owned()));
        }
        let session = AnalysisSession::with_config(module, self.config)?;
        let snap = Arc::new(EpochSnapshot {
            epoch: 0,
            frozen: session.freeze(),
        });
        let tenant = Arc::new(Tenant {
            name: name.to_owned(),
            writer: Mutex::new(WriterSide {
                session,
                epoch: 0,
                source,
            }),
            published: RwLock::new(snap),
        });
        let mut map = self.tenants.write().expect("tenant map");
        if map.contains_key(name) {
            return Err(ServiceError::TenantExists(name.to_owned()));
        }
        map.insert(name.to_owned(), tenant);
        Ok(())
    }

    /// Unregisters a tenant. Readers holding its snapshots keep them
    /// (a snapshot is self-contained); subsequent lookups fail with
    /// [`ServiceError::NoSuchTenant`]. A writer currently inside
    /// [`AliasService::with_writer`] on this tenant finishes
    /// unaffected — its final publishes simply go to a tenant no
    /// longer reachable by name.
    ///
    /// # Errors
    ///
    /// [`ServiceError::NoSuchTenant`] when the name is unknown.
    pub fn remove_tenant(&self, name: &str) -> Result<(), ServiceError> {
        self.tenants
            .write()
            .expect("tenant map")
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| ServiceError::NoSuchTenant(name.to_owned()))
    }

    /// The registered tenant names, sorted.
    pub fn tenant_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .tenants
            .read()
            .expect("tenant map")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// How many tenants are registered.
    pub fn num_tenants(&self) -> usize {
        self.tenants.read().expect("tenant map").len()
    }

    fn tenant(&self, name: &str) -> Result<Arc<Tenant>, ServiceError> {
        self.tenants
            .read()
            .expect("tenant map")
            .get(name)
            .cloned()
            .ok_or_else(|| ServiceError::NoSuchTenant(name.to_owned()))
    }

    /// The reader entry point: the tenant's most recently published
    /// snapshot. O(1) — two briefly-held locks (map lookup, `Arc`
    /// clone); never blocks on an in-flight edit, because writers take
    /// the publish lock only for the pointer swap after their
    /// re-analysis already finished.
    ///
    /// # Errors
    ///
    /// [`ServiceError::NoSuchTenant`] when the name is unknown.
    pub fn snapshot(&self, name: &str) -> Result<Arc<EpochSnapshot>, ServiceError> {
        let tenant = self.tenant(name)?;
        let snap = tenant.published.read().expect("published lock").clone();
        Ok(snap)
    }

    /// Convenience one-shot query: grabs the tenant's current snapshot
    /// and answers from it, returning the answering epoch alongside
    /// the verdict.
    ///
    /// # Errors
    ///
    /// [`ServiceError::NoSuchTenant`] when the name is unknown.
    #[allow(clippy::type_complexity)]
    pub fn query(
        &self,
        name: &str,
        f: FuncId,
        p: ValueId,
        q: ValueId,
    ) -> Result<(u64, (AliasResult, Option<WhichTest>)), ServiceError> {
        let snap = self.snapshot(name)?;
        Ok((snap.epoch(), snap.alias_with_test(f, p, q)))
    }

    /// Runs `body` with the tenant's exclusive [`TenantWriter`].
    /// Writers to the *same* tenant serialize here; writers to other
    /// tenants and all readers proceed concurrently. Each edit applied
    /// through the writer publishes its own epoch, so readers see
    /// every intermediate state exactly once — there is no "commit at
    /// the end" batching that could make a long closure hide epochs.
    ///
    /// # Errors
    ///
    /// [`ServiceError::NoSuchTenant`] when the name is unknown (the
    /// closure is not run).
    pub fn with_writer<R>(
        &self,
        name: &str,
        body: impl FnOnce(&mut TenantWriter<'_>) -> R,
    ) -> Result<R, ServiceError> {
        let tenant = self.tenant(name)?;
        let mut side = tenant.writer.lock().expect("writer lock");
        let mut writer = TenantWriter {
            tenant: &tenant,
            side: &mut side,
        };
        Ok(body(&mut writer))
    }

    /// Single-edit convenience wrappers over
    /// [`AliasService::with_writer`], returning the published epoch.
    ///
    /// # Errors
    ///
    /// Tenant lookup and session rejections, as
    /// [`ServiceError`].
    pub fn replace_function(
        &self,
        name: &str,
        f: FuncId,
        body: Function,
    ) -> Result<u64, ServiceError> {
        self.with_writer(name, |w| w.replace_function(f, body))?
            .map_err(Into::into)
    }

    /// See [`AliasService::replace_function`].
    ///
    /// # Errors
    ///
    /// Tenant lookup and session rejections, as [`ServiceError`].
    pub fn add_function(&self, name: &str, body: Function) -> Result<(FuncId, u64), ServiceError> {
        self.with_writer(name, |w| w.add_function(body))?
            .map_err(Into::into)
    }

    /// See [`AliasService::replace_function`].
    ///
    /// # Errors
    ///
    /// Tenant lookup and session rejections, as [`ServiceError`].
    pub fn remove_function(&self, name: &str, f: FuncId) -> Result<(Function, u64), ServiceError> {
        self.with_writer(name, |w| w.remove_function(f))?
            .map_err(Into::into)
    }

    /// Atomic batch convenience over [`TenantWriter::apply_edits`]:
    /// one published epoch for the whole group.
    ///
    /// # Errors
    ///
    /// Tenant lookup and session rejections, as [`ServiceError`].
    #[allow(clippy::type_complexity)]
    pub fn apply_edits(
        &self,
        name: &str,
        edits: Vec<SessionEdit>,
    ) -> Result<(Vec<FuncId>, u64), ServiceError> {
        self.with_writer(name, |w| w.apply_edits(edits))?
            .map_err(Into::into)
    }

    /// Whole-text source update convenience over
    /// [`TenantWriter::edit_source`], returning the published epoch.
    ///
    /// # Errors
    ///
    /// Tenant lookup, compile and session rejections, as
    /// [`ServiceError`].
    pub fn edit_tenant_source(&self, name: &str, new_text: &str) -> Result<u64, ServiceError> {
        self.with_writer(name, |w| w.edit_source(new_text))?
    }

    /// Serializes the whole service — its [`AnalysisConfig`] plus, for
    /// every tenant (sorted by name), the tenant's epoch, its source
    /// text and registry order when source-backed, and the full warm
    /// [`AnalysisSession`] snapshot. [`AliasService::restore`]
    /// republishes every tenant's current epoch from such a stream
    /// without re-analyzing anything.
    ///
    /// Each tenant's writer lock is held only while that tenant is
    /// written, so the stream is a consistent per-tenant (not global)
    /// cut: a concurrent edit to a not-yet-saved tenant lands in the
    /// snapshot, one to an already-saved tenant does not.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] when the writer fails.
    pub fn save<W: std::io::Write>(&self, w: &mut W) -> Result<(), PersistError> {
        persist::write_header(w, &persist::SERVICE_MAGIC)?;
        let mut enc = persist::Enc::new();
        persist::encode_config(&mut enc, &self.config);
        enc.finish_section(w, persist::tag::CONFIG)?;
        // Clone the tenant list out of the map lock: holding the map
        // lock across a (possibly busy) writer lock would stall every
        // lookup for the duration of an in-flight edit.
        let mut tenants: Vec<Arc<Tenant>> = self
            .tenants
            .read()
            .expect("tenant map")
            .values()
            .cloned()
            .collect();
        tenants.sort_by(|a, b| a.name.cmp(&b.name));
        for tenant in tenants {
            let side = tenant.writer.lock().expect("writer lock");
            let mut enc = persist::Enc::new();
            enc.str(&tenant.name);
            enc.u64(side.epoch);
            match &side.source {
                None => enc.bool(false),
                Some(program) => {
                    enc.bool(true);
                    enc.str(program.text());
                    let names = program.unit_names();
                    enc.usize(names.len());
                    for n in &names {
                        enc.str(n);
                    }
                }
            }
            enc.finish_section(w, persist::tag::TENANT)?;
            side.session.save(w)?;
        }
        persist::write_end(w)
    }

    /// Reconstructs a service from a stream written by
    /// [`AliasService::save`]: every tenant comes back at its saved
    /// epoch with its warm session (loaded and validated by
    /// [`AnalysisSession::load`], including the scratch-reanalysis
    /// cross-check when the saved config has
    /// [`AnalysisConfig::load_verify`] set) and its snapshot
    /// republished — a restarted service serves queries without
    /// re-analyzing any module.
    ///
    /// # Errors
    ///
    /// Any [`PersistError`]: damaged framing, a tenant session failing
    /// its own validation, a source-backed tenant whose recompiled
    /// text does not reproduce the saved module, or a tenant whose
    /// embedded config disagrees with the service's.
    pub fn restore<R: std::io::Read>(r: &mut R) -> Result<Self, PersistError> {
        persist::read_header(r, &persist::SERVICE_MAGIC)?;
        let payload = persist::expect_section(r, persist::tag::CONFIG)?;
        let mut dec = persist::Dec::new(&payload);
        let config = persist::decode_config(&mut dec)?;
        dec.finish()?;
        let mut map = HashMap::new();
        loop {
            let (tag, payload) = persist::read_section(r)?;
            if tag == persist::tag::END {
                persist::Dec::new(&payload).finish()?;
                break;
            }
            if tag != persist::tag::TENANT {
                return Err(corrupt(format!(
                    "unexpected section {tag:#x} in service stream"
                )));
            }
            let mut dec = persist::Dec::new(&payload);
            let name = dec.str()?;
            let epoch = dec.u64()?;
            let saved_source = if dec.bool()? {
                let text = dec.str()?;
                let n = dec.len(1)?;
                let mut names = Vec::with_capacity(n);
                for _ in 0..n {
                    names.push(dec.str()?);
                }
                Some((text, names))
            } else {
                None
            };
            dec.finish()?;
            if map.contains_key(&name) {
                return Err(corrupt(format!("duplicate tenant {name:?}")));
            }
            let session = AnalysisSession::load(r)?;
            if session.config() != config {
                return Err(corrupt(format!(
                    "tenant {name:?} was saved under a different configuration"
                )));
            }
            let source = match saved_source {
                None => None,
                Some((text, names)) => {
                    let program = SourceProgram::with_unit_order(&text, &names)
                        .map_err(|e| corrupt(format!("tenant {name:?} source: {e}")))?;
                    if program.module() != session.module() {
                        return Err(corrupt(format!(
                            "tenant {name:?}: recompiled source does not reproduce the saved module"
                        )));
                    }
                    Some(program)
                }
            };
            let snap = Arc::new(EpochSnapshot {
                epoch,
                frozen: session.freeze(),
            });
            let tenant = Arc::new(Tenant {
                name: name.clone(),
                writer: Mutex::new(WriterSide {
                    session,
                    epoch,
                    source,
                }),
                published: RwLock::new(snap),
            });
            map.insert(name, tenant);
        }
        Ok(AliasService {
            tenants: RwLock::new(map),
            config,
        })
    }
}

impl fmt::Debug for AliasService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AliasService")
            .field("tenants", &self.tenant_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sra_ir::{FunctionBuilder, Ty};

    fn two_mallocs() -> (Module, FuncId, ValueId, ValueId) {
        let mut b = FunctionBuilder::new("f", &[], None);
        let ten = b.const_int(10);
        let p = b.malloc(ten);
        let q = b.malloc(ten);
        b.ret(None);
        let mut m = Module::new();
        let fid = m.add_function(b.finish());
        (m, fid, p, q)
    }

    #[test]
    fn tenants_epochs_and_queries() {
        let (m, fid, p, q) = two_mallocs();
        let service = AliasService::new();
        service.add_tenant("a", m.clone()).expect("fresh name");
        assert_eq!(
            service.add_tenant("a", m.clone()),
            Err(ServiceError::TenantExists("a".into()))
        );
        service.add_tenant("b", m).expect("second tenant");
        assert_eq!(service.tenant_names(), ["a", "b"]);

        let snap = service.snapshot("a").expect("registered");
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.alias_with_test(fid, p, q).0, AliasResult::NoAlias);
        let (epoch, verdict) = service.query("a", fid, p, q).expect("registered");
        assert_eq!(epoch, 0);
        assert_eq!(verdict.0, AliasResult::NoAlias);

        // An edit publishes epoch 1; the old snapshot is untouched.
        let mut b = FunctionBuilder::new("g", &[Ty::Ptr], None);
        b.ret(None);
        let (g, epoch) = service.add_function("a", b.finish()).expect("valid add");
        assert_eq!(epoch, 1);
        assert_eq!(snap.epoch(), 0, "published snapshots are immutable");
        assert_eq!(snap.module().num_functions(), 1);
        let newer = service.snapshot("a").expect("registered");
        assert_eq!(newer.epoch(), 1);
        assert_eq!(newer.module().num_functions(), 2);
        // The sibling tenant's epoch is independent.
        assert_eq!(service.snapshot("b").expect("registered").epoch(), 0);

        let (_, epoch) = service.remove_function("a", g).expect("uncalled");
        assert_eq!(epoch, 2);

        service.remove_tenant("b").expect("registered");
        assert_eq!(
            service.snapshot("b").unwrap_err(),
            ServiceError::NoSuchTenant("b".into())
        );
        assert_eq!(service.num_tenants(), 1);
    }

    /// A demand-mode service answers byte-identically to a matrix-mode
    /// one across epochs, without its snapshots carrying matrices.
    #[test]
    fn demand_mode_service_matches_matrix_mode() {
        let (m, fid, p, q) = two_mallocs();
        let matrix = AliasService::new();
        let demand = AliasService::with_config(
            AnalysisConfig::builder()
                .query_mode(QueryMode::Demand)
                .build(),
        );
        assert_eq!(demand.query_mode(), QueryMode::Demand);
        matrix.add_tenant("a", m.clone()).expect("fresh name");
        demand.add_tenant("a", m.clone()).expect("fresh name");

        let check = |want_epoch: u64| {
            let ms = matrix.snapshot("a").expect("registered");
            let ds = demand.snapshot("a").expect("registered");
            assert_eq!(ms.epoch(), want_epoch);
            assert_eq!(ds.epoch(), want_epoch);
            assert_eq!(ds.frozen().query_mode(), QueryMode::Demand);
            let module = ds.module();
            for f in module.func_ids() {
                let ptrs = crate::query::pointer_values(module, f);
                for &a in &ptrs {
                    for &b in &ptrs {
                        assert_eq!(ds.alias_with_test(f, a, b), ms.alias_with_test(f, a, b));
                    }
                }
            }
        };
        check(0);
        assert_eq!(demand.query("a", fid, p, q).expect("registered").0, 0);

        // Edits publish demand-backed epochs just the same.
        let mut b = FunctionBuilder::new("g", &[], None);
        let eight = b.const_int(8);
        let r = b.malloc(eight);
        let _ = b.ptr_add(r, eight);
        b.ret(None);
        let body = b.finish();
        matrix.add_function("a", body.clone()).expect("valid add");
        let (g, epoch) = demand.add_function("a", body).expect("valid add");
        assert_eq!(epoch, 1);
        check(1);
        matrix.remove_function("a", g).expect("uncalled");
        demand.remove_function("a", g).expect("uncalled");
        check(2);
        // The live sessions really never built matrices.
        demand
            .with_writer("a", |w| {
                assert_eq!(w.session().query_mode(), QueryMode::Demand);
                assert_eq!(w.stats().matrices_rebuilt, 0, "{:?}", w.stats());
            })
            .expect("registered");
    }

    #[test]
    fn rejected_edits_do_not_publish() {
        let (m, _, _, _) = two_mallocs();
        let service = AliasService::new();
        service.add_tenant("a", m).expect("fresh name");
        let err = service
            .remove_function("a", FuncId::new(7))
            .expect_err("no such function");
        assert!(matches!(err, ServiceError::Session(_)), "{err}");
        assert_eq!(service.snapshot("a").expect("registered").epoch(), 0);
    }

    /// Source-backed tenants: whole-text edits re-analyze
    /// incrementally, failed edits (compile errors) publish nothing,
    /// and module-backed tenants reject source edits.
    #[test]
    fn source_backed_tenants_edit_by_text() {
        let base = "int helper(ptr p, int n) { int i; i = 0; while (i < n) { p[i] = 7; i = i + 1; } return i; }\n\
             export int main() { ptr a; a = malloc(16); int k; k = helper(a, 16); return k; }\n";
        let service = AliasService::new();
        service.add_tenant_source("app", base).expect("compiles");
        assert_eq!(
            service.add_tenant_source("app", base),
            Err(ServiceError::TenantExists("app".into()))
        );
        let snap = service.snapshot("app").expect("registered");
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.module().num_functions(), 2);

        // A body tweak: one epoch, one function re-analyzed.
        let tweaked = base.replace("p[i] = 7;", "p[i] = 9;");
        let epoch = service
            .edit_tenant_source("app", &tweaked)
            .expect("compiles");
        assert_eq!(epoch, 1);
        service
            .with_writer("app", |w| {
                assert_eq!(w.source_text(), Some(tweaked.as_str()));
                assert_eq!(w.stats().parts_reanalyzed, 1, "{:?}", w.stats());
            })
            .expect("registered");

        // A comment-only edit is a published no-op epoch.
        let commented = format!("// v2\n{tweaked}");
        let epoch = service
            .edit_tenant_source("app", &commented)
            .expect("compiles");
        assert_eq!(epoch, 2);
        service
            .with_writer("app", |w| {
                assert_eq!(w.stats().noop_edits, 1, "{:?}", w.stats());
            })
            .expect("registered");

        // A broken edit publishes nothing and keeps text + snapshot.
        let broken = commented.replace("return k;", "return q;");
        let err = service.edit_tenant_source("app", &broken).unwrap_err();
        assert!(matches!(err, ServiceError::Compile(_)), "{err}");
        assert_eq!(service.snapshot("app").expect("registered").epoch(), 2);
        service
            .with_writer("app", |w| {
                assert_eq!(w.source_text(), Some(commented.as_str()));
            })
            .expect("registered");

        // Module-backed tenants have no text to edit.
        let (m, _, _, _) = two_mallocs();
        service.add_tenant("bin", m).expect("fresh name");
        assert_eq!(
            service.edit_tenant_source("bin", base),
            Err(ServiceError::NotSourceBacked("bin".into()))
        );
        assert_eq!(
            service.edit_tenant_source("ghost", base),
            Err(ServiceError::NoSuchTenant("ghost".into()))
        );
    }

    /// Writer-side batches publish exactly one epoch per group.
    #[test]
    fn batched_edits_publish_one_epoch() {
        let (m, fid, _, _) = two_mallocs();
        let service = AliasService::new();
        service.add_tenant("a", m.clone()).expect("fresh name");
        let mut b = FunctionBuilder::new("g", &[], None);
        b.ret(None);
        let leaf = b.finish();
        let body = m.function(fid).clone();
        let (added, epoch) = service
            .apply_edits(
                "a",
                vec![
                    crate::SessionEdit::Replace { func: fid, body },
                    crate::SessionEdit::Add { body: leaf },
                ],
            )
            .expect("valid batch");
        assert_eq!(epoch, 1);
        assert_eq!(added, vec![FuncId::new(1)]);
        assert_eq!(service.snapshot("a").expect("registered").epoch(), 1);
        assert_eq!(
            service
                .snapshot("a")
                .expect("registered")
                .module()
                .num_functions(),
            2
        );
    }

    #[test]
    fn writer_batches_publish_every_epoch() {
        let (m, fid, _, _) = two_mallocs();
        let service = AliasService::new();
        service.add_tenant("a", m.clone()).expect("fresh name");
        let body = m.function(fid).clone();
        let last = service
            .with_writer("a", |w| {
                let e1 = w.replace_function(fid, body.clone()).expect("no-op ok");
                assert_eq!(e1, 1);
                assert_eq!(w.stats().noop_edits, 1);
                let e2 = w.replace_function(fid, body).expect("no-op ok");
                assert_eq!(e2, 2);
                w.epoch()
            })
            .expect("registered");
        assert_eq!(last, 2);
        assert_eq!(service.snapshot("a").expect("registered").epoch(), 2);
    }

    /// A saved service restores every tenant at its epoch with a warm
    /// session — module-backed and source-backed (whose registry order
    /// has drifted from text order through edits) — answers
    /// identically, stays editable, and re-saves byte-identically.
    #[test]
    fn service_save_restore_roundtrip() {
        let config = AnalysisConfig::builder()
            .threads(1)
            .load_verify(true)
            .build();
        let service = AliasService::with_config(config);

        // Module-backed tenant, edited once (epoch 1).
        let (m, fid, p, q) = two_mallocs();
        service.add_tenant("bin", m).expect("fresh name");
        let mut b = FunctionBuilder::new("g", &[Ty::Ptr], None);
        b.ret(None);
        service.add_function("bin", b.finish()).expect("valid add");

        // Source-backed tenant: inserting `extra` *before* `main` in
        // the text appends it at the highest id, so registry order no
        // longer matches text order — the part restore must preserve.
        let base = "int helper(ptr p, int n) { p[0] = n; return n; }\n\
             export int main() { ptr a; a = malloc(16); int k; k = helper(a, 16); return k; }\n";
        service.add_tenant_source("app", base).expect("compiles");
        let extended = base.replace(
            "export int main",
            "int extra(int x) { return x + 1; }\nexport int main",
        );
        let epoch = service
            .edit_tenant_source("app", &extended)
            .expect("compiles");
        assert_eq!(epoch, 1);

        let mut bytes = Vec::new();
        service.save(&mut bytes).expect("save");
        let restored = AliasService::restore(&mut bytes.as_slice()).expect("restore");

        assert_eq!(restored.config(), config);
        assert_eq!(restored.tenant_names(), ["app", "bin"]);
        assert_eq!(restored.snapshot("bin").expect("restored").epoch(), 1);
        assert_eq!(restored.snapshot("app").expect("restored").epoch(), 1);
        assert_eq!(
            restored.query("bin", fid, p, q).expect("restored"),
            service.query("bin", fid, p, q).expect("registered"),
        );
        restored
            .with_writer("app", |w| {
                assert_eq!(w.source_text(), Some(extended.as_str()));
                // `extra` kept its appended (non-text-order) id.
                assert_eq!(
                    w.session().module().function(FuncId::new(2)).name(),
                    "extra"
                );
            })
            .expect("restored");

        let mut again = Vec::new();
        restored.save(&mut again).expect("save");
        assert_eq!(again, bytes, "restored service re-saves byte-identically");

        // The restored source tenant still accepts incremental edits.
        let tweaked = extended.replace("p[0] = n;", "p[0] = n + 1;");
        let epoch = restored
            .edit_tenant_source("app", &tweaked)
            .expect("still source-backed");
        assert_eq!(epoch, 2);

        // Damage is rejected, never mis-restored: truncation at every
        // framing-sensitive prefix and a flipped tenant byte.
        for cut in [0, 4, bytes.len() / 2, bytes.len() - 1] {
            assert!(AliasService::restore(&mut &bytes[..cut]).is_err());
        }
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x10;
        assert!(AliasService::restore(&mut bad.as_slice()).is_err());
    }
}
