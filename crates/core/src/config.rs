//! The unified analysis configuration: one [`AnalysisConfig`] value
//! carries every knob of the pipeline — worker threads, the bootstrap
//! integer-range pass, the interprocedural GR solver and its schedule,
//! the query-answering mode, and snapshot-loading behaviour — so
//! sessions, services and the batch driver are all configured the same
//! way, and a saved snapshot can round-trip the exact configuration it
//! was analyzed under.
//!
//! Construct configs with the builder:
//!
//! ```
//! use sra_core::{AnalysisConfig, GrSchedule, QueryMode};
//!
//! let config = AnalysisConfig::builder()
//!     .threads(8)
//!     .query_mode(QueryMode::Demand)
//!     .gr_schedule(GrSchedule::Waves)
//!     .build();
//! assert_eq!(config.threads, 8);
//! assert_eq!(config.gr.threads, 8); // one knob governs every phase
//! ```
//!
//! The legacy [`DriverConfig`](crate::DriverConfig) converts losslessly
//! ([`From`]), so older call sites keep compiling: every entry point
//! that takes a configuration accepts `impl Into<AnalysisConfig>`.

use sra_range::RangeConfig;

use crate::driver::DriverConfig;
use crate::gr::{GrConfig, GrSchedule};
use crate::pool;
use crate::query::QueryMode;

/// Every tuning knob of the analysis pipeline in one value. The
/// fields are public for inspection and
/// struct-update syntax, but the [`AnalysisConfig::builder`] is the
/// intended construction path (it keeps coupled knobs — the two thread
/// counts — consistent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisConfig {
    /// Worker threads for every parallel phase. `1` runs everything
    /// inline (the deterministic reference schedule — results are
    /// identical either way).
    pub threads: usize,
    /// Bootstrap integer-range configuration.
    pub range: RangeConfig,
    /// Global-analysis configuration. Its `threads` knob is overridden
    /// with [`AnalysisConfig::threads`] wherever the pipeline runs, so
    /// one setting governs every phase.
    pub gr: GrConfig,
    /// How sessions and snapshots answer alias queries: eager
    /// per-function matrices or a lazily grown demand cache.
    pub query_mode: QueryMode,
    /// When `true`, [`AnalysisSession::load`](crate::AnalysisSession::load)
    /// re-analyzes the restored module from scratch and verifies the
    /// loaded state byte-identical (states, symbols, sweeps) before
    /// returning — the warm start costs a cold analysis but proves the
    /// snapshot. Off by default.
    pub load_verify: bool,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            threads: pool::default_threads(),
            range: RangeConfig::default(),
            gr: GrConfig::default(),
            query_mode: QueryMode::default(),
            load_verify: false,
        }
    }
}

impl AnalysisConfig {
    /// Starts a builder from the default configuration.
    pub fn builder() -> AnalysisConfigBuilder {
        AnalysisConfigBuilder {
            config: AnalysisConfig::default(),
        }
    }

    /// The batch-driver view of this config (threads + analysis knobs;
    /// the query mode and persistence options do not apply there).
    pub(crate) fn driver(&self) -> DriverConfig {
        DriverConfig {
            threads: self.threads,
            range: self.range,
            gr: self.gr,
        }
    }
}

/// Builder for [`AnalysisConfig`].
#[derive(Debug, Clone)]
pub struct AnalysisConfigBuilder {
    config: AnalysisConfig,
}

impl AnalysisConfigBuilder {
    /// Worker threads for every parallel phase (also updates the GR
    /// solver's own thread knob, keeping the two in lockstep).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self.config.gr.threads = threads;
        self
    }

    /// The query-answering mode.
    pub fn query_mode(mut self, mode: QueryMode) -> Self {
        self.config.query_mode = mode;
        self
    }

    /// The GR solver's schedule (serial reference order or the
    /// wave-parallel condensation schedule — byte-identical results).
    pub fn gr_schedule(mut self, schedule: GrSchedule) -> Self {
        self.config.gr.schedule = schedule;
        self
    }

    /// The bootstrap integer-range configuration.
    pub fn range(mut self, range: RangeConfig) -> Self {
        self.config.range = range;
        self
    }

    /// The full GR configuration (its `threads` knob is subsequently
    /// kept in lockstep by [`AnalysisConfigBuilder::threads`]).
    pub fn gr(mut self, gr: GrConfig) -> Self {
        self.config.gr = gr;
        self
    }

    /// Whether snapshot loads verify against a scratch re-analysis.
    pub fn load_verify(mut self, verify: bool) -> Self {
        self.config.load_verify = verify;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> AnalysisConfig {
        self.config
    }
}

impl From<DriverConfig> for AnalysisConfig {
    fn from(d: DriverConfig) -> Self {
        AnalysisConfig {
            threads: d.threads,
            range: d.range,
            gr: d.gr,
            ..AnalysisConfig::default()
        }
    }
}

impl From<AnalysisConfig> for DriverConfig {
    fn from(c: AnalysisConfig) -> Self {
        c.driver()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_keeps_thread_knobs_in_lockstep() {
        let c = AnalysisConfig::builder()
            .gr(GrConfig {
                widening: false,
                ..GrConfig::default()
            })
            .threads(3)
            .query_mode(QueryMode::Demand)
            .gr_schedule(GrSchedule::Serial)
            .load_verify(true)
            .build();
        assert_eq!(c.threads, 3);
        assert_eq!(c.gr.threads, 3);
        assert!(!c.gr.widening);
        assert_eq!(c.query_mode, QueryMode::Demand);
        assert_eq!(c.gr.schedule, GrSchedule::Serial);
        assert!(c.load_verify);
    }

    #[test]
    fn driver_config_converts_losslessly() {
        let d = DriverConfig::with_threads(5);
        let a: AnalysisConfig = d.into();
        assert_eq!(a.threads, 5);
        assert_eq!(a.query_mode, QueryMode::Matrix);
        assert!(!a.load_verify);
        let back: DriverConfig = a.into();
        assert_eq!(back, d);
    }
}
