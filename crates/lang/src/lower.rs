//! AST → SSA lowering with on-the-fly SSA construction.
//!
//! Implements Braun et al.'s simple-and-efficient SSA construction:
//! variables are read through a per-block definition table; blocks whose
//! predecessors are not all known yet (loop headers) receive *incomplete*
//! φs that are filled in when the block is sealed; trivial φs (all
//! arguments equal) are eliminated by a final fixpoint pass so the local
//! pointer analysis is not polluted by φs a production compiler would
//! not emit.

use std::collections::{HashMap, HashSet};
use std::fmt;

use sra_ir::{BinOp, BlockId, Callee, FunctionBuilder, GlobalId, Module, Ty, ValueId};

use crate::ast::{BinKind, Expr, FuncDecl, Program, Stmt};

/// A semantic error found during lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    /// What went wrong, mentioning the names involved.
    pub message: String,
    /// The function being lowered, when known.
    pub func: Option<String>,
}

impl LowerError {
    fn in_func(mut self, name: &str) -> Self {
        if self.func.is_none() {
            self.func = Some(name.to_owned());
        }
        self
    }
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)?;
        if let Some(func) = &self.func {
            write!(f, " in function `{func}`")?;
        }
        Ok(())
    }
}

impl std::error::Error for LowerError {}

/// External library functions known to return pointers; everything else
/// unknown returns an integer.
const PTR_EXTERNALS: &[&str] = &["getenv", "strdup"];

/// Lowers a parsed program into an SSA module (no σ-nodes yet; run
/// [`sra_ir::essa::run`] afterwards for e-SSA).
///
/// # Errors
///
/// Returns a [`LowerError`] for unknown names, type mismatches, arity
/// errors and reads of possibly-uninitialized pointers.
pub fn lower(p: &Program) -> Result<Module, LowerError> {
    let mut module = Module::new();
    let mut globals = HashMap::new();
    for (name, size) in &p.globals {
        if globals.contains_key(name) {
            return Err(err(format!("duplicate global `{name}`")));
        }
        globals.insert(name.clone(), module.add_global(name, *size));
    }
    // Pre-declare signatures so calls can be resolved in any order.
    let mut sigs: SigMap = HashMap::new();
    for (i, f) in p.funcs.iter().enumerate() {
        if sigs.contains_key(&f.name) {
            return Err(err(format!("duplicate function `{}`", f.name)).in_func(&f.name));
        }
        let tys = f.params.iter().map(|(_, t)| *t).collect();
        sigs.insert(f.name.clone(), (i, tys, f.ret));
    }
    for f in &p.funcs {
        let func = lower_function(f, &sigs, &globals)?;
        module.add_function(func);
    }
    Ok(module)
}

/// Name → (function id index, parameter types, return type) binding
/// used to resolve calls while lowering. [`lower`] numbers functions
/// in program order; the incremental frontend
/// (`source::SourceProgram`) supplies registry ids instead so a
/// re-lowered function lands on its existing [`sra_ir::FuncId`].
pub(crate) type SigMap = HashMap<String, (usize, Vec<Ty>, Option<Ty>)>;

/// Lowers a single function against an explicit signature binding.
/// σ-nodes are **not** inserted; run [`sra_ir::essa::run`] afterwards.
pub(crate) fn lower_function(
    decl: &FuncDecl,
    sigs: &SigMap,
    globals: &HashMap<String, GlobalId>,
) -> Result<sra_ir::Function, LowerError> {
    FnLower::new(decl, sigs, globals)
        .run()
        .map_err(|e| e.in_func(&decl.name))
}

fn err(message: String) -> LowerError {
    LowerError {
        message,
        func: None,
    }
}

type VarId = usize;

struct FnLower<'a> {
    decl: &'a FuncDecl,
    sigs: &'a SigMap,
    globals: &'a HashMap<String, GlobalId>,
    b: FunctionBuilder,
    vars: HashMap<String, (VarId, Ty)>,
    var_tys: Vec<Ty>,
    current_def: HashMap<(VarId, BlockId), ValueId>,
    sealed: HashSet<BlockId>,
    incomplete: HashMap<BlockId, Vec<(VarId, ValueId)>>,
    preds: HashMap<BlockId, Vec<BlockId>>,
    phis: Vec<ValueId>,
    replacements: HashMap<ValueId, ValueId>,
    terminated: bool,
}

impl<'a> FnLower<'a> {
    fn new(decl: &'a FuncDecl, sigs: &'a SigMap, globals: &'a HashMap<String, GlobalId>) -> Self {
        let param_tys: Vec<Ty> = decl.params.iter().map(|(_, t)| *t).collect();
        let b = FunctionBuilder::new(&decl.name, &param_tys, decl.ret);
        FnLower {
            decl,
            sigs,
            globals,
            b,
            vars: HashMap::new(),
            var_tys: Vec::new(),
            current_def: HashMap::new(),
            sealed: HashSet::new(),
            incomplete: HashMap::new(),
            preds: HashMap::new(),
            phis: Vec::new(),
            replacements: HashMap::new(),
            terminated: false,
        }
    }

    fn run(mut self) -> Result<sra_ir::Function, LowerError> {
        let entry = self.b.entry_block();
        self.sealed.insert(entry);
        for (i, (name, ty)) in self.decl.params.iter().enumerate() {
            let var = self.declare(name, *ty)?;
            let pv = self.b.param(i);
            self.b.set_name(pv, name);
            self.write_var(var, entry, pv);
        }
        let body = self.decl.body.clone();
        self.stmts(&body)?;
        if !self.terminated {
            match self.decl.ret {
                None => self.b.ret(None),
                Some(Ty::Int) => {
                    let z = self.b.const_int(0);
                    self.b.ret(Some(z));
                }
                Some(Ty::Ptr) => {
                    return Err(err(
                        "may fall off the end without returning a pointer".into()
                    ))
                }
            }
        }
        self.remove_trivial_phis();
        let map = std::mem::take(&mut self.replacements);
        self.b.replace_values(&map);
        let mut f = self.b.finish();
        f.set_exported(self.decl.exported);
        Ok(f)
    }

    // ----- Braun SSA construction -------------------------------------

    fn declare(&mut self, name: &str, ty: Ty) -> Result<VarId, LowerError> {
        if self.vars.contains_key(name) {
            return Err(err(format!("duplicate variable `{name}`")));
        }
        if self.globals.contains_key(name) {
            return Err(err(format!("variable `{name}` shadows a global")));
        }
        let id = self.var_tys.len();
        self.var_tys.push(ty);
        self.vars.insert(name.to_owned(), (id, ty));
        Ok(id)
    }

    fn resolve(&self, mut v: ValueId) -> ValueId {
        while let Some(&n) = self.replacements.get(&v) {
            v = n;
        }
        v
    }

    fn write_var(&mut self, var: VarId, block: BlockId, value: ValueId) {
        self.current_def.insert((var, block), value);
    }

    fn read_var(&mut self, var: VarId, block: BlockId) -> Result<ValueId, LowerError> {
        if let Some(&v) = self.current_def.get(&(var, block)) {
            return Ok(self.resolve(v));
        }
        let ty = self.var_tys[var];
        let v = if !self.sealed.contains(&block) {
            let phi = self.b.prepend_phi(block, ty);
            self.phis.push(phi);
            self.incomplete.entry(block).or_default().push((var, phi));
            phi
        } else {
            let preds = self.preds.get(&block).cloned().unwrap_or_default();
            match preds.len() {
                0 => {
                    // Entry block read of an unwritten variable.
                    match ty {
                        Ty::Int => self.b.const_int(0),
                        Ty::Ptr => {
                            return Err(err("pointer variable read before initialization".into()))
                        }
                    }
                }
                1 => self.read_var(var, preds[0])?,
                _ => {
                    let phi = self.b.prepend_phi(block, ty);
                    self.phis.push(phi);
                    self.write_var(var, block, phi);
                    self.add_phi_operands(var, phi, &preds)?;
                    phi
                }
            }
        };
        self.write_var(var, block, v);
        Ok(v)
    }

    fn add_phi_operands(
        &mut self,
        var: VarId,
        phi: ValueId,
        preds: &[BlockId],
    ) -> Result<(), LowerError> {
        for &p in preds {
            let arg = self.read_var(var, p)?;
            self.b.add_phi_arg(phi, p, arg);
        }
        Ok(())
    }

    fn seal(&mut self, block: BlockId) -> Result<(), LowerError> {
        if !self.sealed.insert(block) {
            return Ok(());
        }
        if let Some(pending) = self.incomplete.remove(&block) {
            let preds = self.preds.get(&block).cloned().unwrap_or_default();
            for (var, phi) in pending {
                self.add_phi_operands(var, phi, &preds)?;
            }
        }
        Ok(())
    }

    /// Fixpoint elimination of φs whose arguments (after substitution)
    /// are all the same value or the φ itself.
    fn remove_trivial_phis(&mut self) {
        loop {
            let mut changed = false;
            for i in 0..self.phis.len() {
                let phi = self.phis[i];
                if self.replacements.contains_key(&phi) {
                    continue;
                }
                let args: Vec<ValueId> = self.b.phi_args(phi).iter().map(|(_, a)| *a).collect();
                let mut same: Option<ValueId> = None;
                let mut trivial = true;
                for a in args {
                    let a = self.resolve(a);
                    if a == phi {
                        continue;
                    }
                    match same {
                        None => same = Some(a),
                        Some(s) if s == a => {}
                        Some(_) => {
                            trivial = false;
                            break;
                        }
                    }
                }
                if trivial {
                    if let Some(s) = same {
                        self.replacements.insert(phi, s);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    // ----- control-flow helpers ---------------------------------------

    fn edge(&mut self, from: BlockId, to: BlockId) {
        self.preds.entry(to).or_default().push(from);
    }

    fn jump_to(&mut self, target: BlockId) {
        let from = self.b.current_block();
        self.b.jump(target);
        self.edge(from, target);
        self.terminated = true;
    }

    fn branch_to(&mut self, cond: ValueId, t: BlockId, e: BlockId) {
        let from = self.b.current_block();
        self.b.br(cond, t, e);
        self.edge(from, t);
        self.edge(from, e);
        self.terminated = true;
    }

    fn enter(&mut self, block: BlockId) {
        self.b.switch_to(block);
        self.terminated = false;
    }

    // ----- statements ---------------------------------------------------

    fn stmts(&mut self, list: &[Stmt]) -> Result<(), LowerError> {
        for s in list {
            if self.terminated {
                // Dead code after return: stop lowering the block.
                break;
            }
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), LowerError> {
        match s {
            Stmt::Decl(name, ty) => {
                self.declare(name, *ty)?;
                Ok(())
            }
            Stmt::Assign(name, e) => {
                let Some(&(var, vty)) = self.vars.get(name) else {
                    return Err(err(format!("assignment to unknown variable `{name}`")));
                };
                let (v, ty) = self.expr(e)?;
                if ty != vty {
                    return Err(err(format!("type mismatch assigning to `{name}`")));
                }
                let block = self.b.current_block();
                self.write_var(var, block, v);
                Ok(())
            }
            Stmt::Store(addr, val) => {
                let (a, aty) = self.expr(addr)?;
                if aty != Ty::Ptr {
                    return Err(err("store through a non-pointer".into()));
                }
                let (v, vty) = self.expr(val)?;
                if vty != Ty::Int {
                    return Err(err("`*p = e` stores integers; use store_ptr".into()));
                }
                self.b.store(a, v);
                Ok(())
            }
            Stmt::StorePtr(addr, val) => {
                let (a, aty) = self.expr(addr)?;
                let (v, vty) = self.expr(val)?;
                if aty != Ty::Ptr || vty != Ty::Ptr {
                    return Err(err("store_ptr needs pointer address and value".into()));
                }
                self.b.store(a, v);
                Ok(())
            }
            Stmt::Free(e) => {
                let (v, ty) = self.expr(e)?;
                if ty != Ty::Ptr {
                    return Err(err("free of a non-pointer".into()));
                }
                self.b.free(v);
                Ok(())
            }
            Stmt::Return(e) => {
                match (e, self.decl.ret) {
                    (None, None) => self.b.ret(None),
                    (Some(e), Some(want)) => {
                        let (v, ty) = self.expr(e)?;
                        if ty != want {
                            return Err(err("return type mismatch".into()));
                        }
                        self.b.ret(Some(v));
                    }
                    _ => return Err(err("return arity mismatch".into())),
                }
                self.terminated = true;
                Ok(())
            }
            Stmt::ExprStmt(e) => {
                // Void internal calls are only legal here.
                if let Expr::Call(name, args) = e {
                    if let Some((idx, tys, ret)) = self.sigs.get(name).cloned() {
                        if ret.is_none() {
                            let argv = self.call_args(name, args, &tys)?;
                            self.b
                                .call(Callee::Internal(sra_ir::FuncId::new(idx)), &argv, None);
                            return Ok(());
                        }
                    }
                }
                self.expr(e)?;
                Ok(())
            }
            Stmt::If(cond, then, els) => {
                let (c, cty) = self.expr(cond)?;
                if cty != Ty::Int {
                    return Err(err("condition must be an integer".into()));
                }
                let then_bb = self.b.create_block();
                let else_bb = self.b.create_block();
                let join = self.b.create_block();
                self.branch_to(c, then_bb, else_bb);
                self.seal(then_bb)?;
                self.seal(else_bb)?;

                self.enter(then_bb);
                self.stmts(then)?;
                if !self.terminated {
                    self.jump_to(join);
                }
                self.enter(else_bb);
                self.stmts(els)?;
                if !self.terminated {
                    self.jump_to(join);
                }
                self.seal(join)?;
                self.enter(join);
                // If both arms returned, the join is unreachable; emit a
                // terminator so the function is complete and move on.
                if self.preds.get(&join).is_none_or(Vec::is_empty) {
                    match self.decl.ret {
                        None => self.b.ret(None),
                        Some(Ty::Int) => {
                            let z = self.b.const_int(0);
                            self.b.ret(Some(z));
                        }
                        Some(Ty::Ptr) => {
                            // Unreachable anyway; return one of the
                            // parameters if available, else error out.
                            self.b.ret(None);
                        }
                    }
                    self.terminated = true;
                }
                Ok(())
            }
            Stmt::While(cond, body) => {
                let header = self.b.create_block();
                let body_bb = self.b.create_block();
                let exit = self.b.create_block();
                self.jump_to(header);
                self.enter(header);
                let (c, cty) = self.expr(cond)?;
                if cty != Ty::Int {
                    return Err(err("loop condition must be an integer".into()));
                }
                self.branch_to(c, body_bb, exit);
                self.seal(body_bb)?;
                self.enter(body_bb);
                self.stmts(body)?;
                if !self.terminated {
                    self.jump_to(header);
                }
                self.seal(header)?;
                self.seal(exit)?;
                self.enter(exit);
                Ok(())
            }
        }
    }

    fn call_args(
        &mut self,
        name: &str,
        args: &[Expr],
        tys: &[Ty],
    ) -> Result<Vec<ValueId>, LowerError> {
        if args.len() != tys.len() {
            return Err(err(format!(
                "call to `{name}` with {} args, expected {}",
                args.len(),
                tys.len()
            )));
        }
        let mut out = Vec::with_capacity(args.len());
        for (a, &want) in args.iter().zip(tys) {
            let (v, ty) = self.expr(a)?;
            if ty != want {
                return Err(err(format!("argument type mismatch calling `{name}`")));
            }
            out.push(v);
        }
        Ok(out)
    }

    // ----- expressions --------------------------------------------------

    fn expr(&mut self, e: &Expr) -> Result<(ValueId, Ty), LowerError> {
        match e {
            Expr::Int(c) => Ok((self.b.const_int(*c), Ty::Int)),
            Expr::Var(name) => {
                if let Some(&(var, ty)) = self.vars.get(name) {
                    let block = self.b.current_block();
                    let v = self.read_var(var, block)?;
                    return Ok((v, ty));
                }
                if let Some(&g) = self.globals.get(name) {
                    return Ok((self.b.global_addr(g, Ty::Ptr), Ty::Ptr));
                }
                Err(err(format!("unknown variable `{name}`")))
            }
            Expr::Bin(kind, l, r) => {
                let (lv, lt) = self.expr(l)?;
                let (rv, rt) = self.expr(r)?;
                match (lt, rt, kind) {
                    (Ty::Int, Ty::Int, _) => {
                        let op = match kind {
                            BinKind::Add => BinOp::Add,
                            BinKind::Sub => BinOp::Sub,
                            BinKind::Mul => BinOp::Mul,
                            BinKind::Div => BinOp::Div,
                            BinKind::Rem => BinOp::Rem,
                        };
                        Ok((self.b.binop(op, lv, rv), Ty::Int))
                    }
                    (Ty::Ptr, Ty::Int, BinKind::Add) => Ok((self.b.ptr_add(lv, rv), Ty::Ptr)),
                    (Ty::Int, Ty::Ptr, BinKind::Add) => Ok((self.b.ptr_add(rv, lv), Ty::Ptr)),
                    (Ty::Ptr, Ty::Int, BinKind::Sub) => {
                        let zero = self.b.const_int(0);
                        let neg = self.b.binop(BinOp::Sub, zero, rv);
                        Ok((self.b.ptr_add(lv, neg), Ty::Ptr))
                    }
                    _ => Err(err("invalid operand types for arithmetic".into())),
                }
            }
            Expr::Cmp(op, l, r) => {
                let (lv, lt) = self.expr(l)?;
                let (rv, rt) = self.expr(r)?;
                if lt != rt {
                    return Err(err("comparison of mismatched types".into()));
                }
                Ok((self.b.cmp(*op, lv, rv), Ty::Int))
            }
            Expr::Load(addr) => {
                let (a, ty) = self.expr(addr)?;
                if ty != Ty::Ptr {
                    return Err(err("dereference of a non-pointer".into()));
                }
                Ok((self.b.load(a, Ty::Int), Ty::Int))
            }
            Expr::LoadPtr(addr) => {
                let (a, ty) = self.expr(addr)?;
                if ty != Ty::Ptr {
                    return Err(err("load_ptr of a non-pointer".into()));
                }
                Ok((self.b.load(a, Ty::Ptr), Ty::Ptr))
            }
            Expr::Index(base, idx) => {
                let (bv, bt) = self.expr(base)?;
                let (iv, it) = self.expr(idx)?;
                if bt != Ty::Ptr || it != Ty::Int {
                    return Err(err("indexing needs ptr[int]".into()));
                }
                let addr = self.b.ptr_add(bv, iv);
                Ok((self.b.load(addr, Ty::Int), Ty::Int))
            }
            Expr::Malloc(size) => {
                let (sv, ty) = self.expr(size)?;
                if ty != Ty::Int {
                    return Err(err("malloc size must be an integer".into()));
                }
                Ok((self.b.malloc(sv), Ty::Ptr))
            }
            Expr::Alloca(size) => {
                let (sv, ty) = self.expr(size)?;
                if ty != Ty::Int {
                    return Err(err("alloca size must be an integer".into()));
                }
                Ok((self.b.alloca(sv), Ty::Ptr))
            }
            Expr::Call(name, args) => {
                if let Some((idx, tys, ret)) = self.sigs.get(name).cloned() {
                    let Some(ret) = ret else {
                        return Err(err(format!("void function `{name}` used as a value")));
                    };
                    let argv = self.call_args(name, args, &tys)?;
                    let v =
                        self.b
                            .call(Callee::Internal(sra_ir::FuncId::new(idx)), &argv, Some(ret));
                    return Ok((v, ret));
                }
                // External: arguments lower as-is, return type by name.
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.expr(a)?.0);
                }
                let ret = if PTR_EXTERNALS.contains(&name.as_str()) {
                    Ty::Ptr
                } else {
                    Ty::Int
                };
                let v = self
                    .b
                    .call(Callee::External(name.clone()), &argv, Some(ret));
                Ok((v, ret))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::compile;
    use sra_ir::print_module;

    #[test]
    fn straight_line() {
        let m = compile("export int main() { int x; x = 1 + 2; return x; }").unwrap();
        assert_eq!(m.num_functions(), 1);
    }

    #[test]
    fn loop_creates_phi_and_sigma() {
        let m = compile(
            "export void main() { ptr a; a = malloc(10); int i; i = 0; \
             while (i < 10) { a[i] = i; i = i + 1; } }",
        )
        .unwrap();
        let text = print_module(&m);
        assert!(text.contains("phi"), "loop variable needs a φ:\n{text}");
        assert!(text.contains("sigma"), "e-SSA inserts σs:\n{text}");
    }

    #[test]
    fn if_else_join_phi() {
        let m = compile(
            "export int main() { int x; if (atoi() < 0) { x = 1; } else { x = 2; } \
             return x; }",
        )
        .unwrap();
        let text = print_module(&m);
        assert!(text.contains("phi"), "{text}");
    }

    #[test]
    fn trivial_phis_are_removed() {
        // `p` is not modified in the branch: reading it afterwards must
        // not create a φ.
        let m = compile(
            "export void main() { ptr p; p = malloc(4); int x; x = 0; \
             if (atoi() < 0) { x = 1; } \
             *p = x; *(p + 1) = x; }",
        )
        .unwrap();
        let text = print_module(&m);
        // Exactly one φ (for x), none for p.
        let phi_count = text.matches(" = phi").count();
        assert_eq!(phi_count, 1, "{text}");
    }

    #[test]
    fn globals_and_calls() {
        let m = compile(
            "int tab[8];\n\
             void fill(ptr p, int n) { int i; i = 0; while (i < n) { p[i] = i; i = i + 1; } }\n\
             export int main() { fill(tab, 8); return tab[3]; }",
        )
        .unwrap();
        assert_eq!(m.num_functions(), 2);
        assert_eq!(m.num_globals(), 1);
        let text = print_module(&m);
        assert!(text.contains("call @fill"));
    }

    #[test]
    fn figure1_compiles() {
        let m = compile(
            r#"
            void prepare(ptr p, int n, ptr m) {
                ptr i; ptr e;
                i = p; e = p + n;
                while (i < e) { *i = 0; *(i + 1) = 255; i = i + 2; }
                ptr f; f = e + strlen(m);
                while (i < f) { *i = *m; m = m + 1; i = i + 1; }
            }
            export int main() {
                int z; z = atoi();
                ptr b; b = malloc(z);
                ptr s; s = malloc(strlen());
                prepare(b, z, s);
                return 0;
            }
            "#,
        )
        .unwrap();
        assert_eq!(m.num_functions(), 2);
    }

    #[test]
    fn errors_name_the_function() {
        use crate::CompileError;
        let Err(CompileError::Lower(e)) = compile("void f() { } void g(ptr p) { int x; x = p; }")
        else {
            panic!("expected a lowering error")
        };
        assert_eq!(e.func.as_deref(), Some("g"));
        assert!(e.to_string().contains("in function `g`"), "{e}");
    }

    #[test]
    fn error_cases() {
        assert!(compile("export void main() { x = 1; }").is_err());
        assert!(compile("export void main() { int x; int x; }").is_err());
        assert!(compile("export void main() { ptr p; *p = 0; }").is_err());
        assert!(compile("export void main() { int x; x = malloc(4); }").is_err());
        assert!(compile("void f(int a) {} export void main() { f(); }").is_err());
        assert!(compile("export void main() { int p; *p = 1; }").is_err());
    }

    #[test]
    fn externals_and_builtins() {
        let m = compile(
            "export void main() { ptr e; e = getenv(); int n; n = atoi(); \
             ptr s; s = alloca(n); ptr h; h = malloc(n); free(h); \
             store_ptr(s, e); ptr back; back = load_ptr(s); }",
        )
        .unwrap();
        let text = print_module(&m);
        assert!(text.contains("call @getenv!"));
        assert!(text.contains("alloca"));
        assert!(text.contains("free"));
        assert!(text.contains("load.ptr"));
    }

    #[test]
    fn for_loop_desugars() {
        let m = compile(
            "export void main() { ptr a; a = malloc(10); int i; \
             for (i = 0; i < 10; i = i + 1) { a[i] = i; } }",
        )
        .unwrap();
        let text = print_module(&m);
        assert!(text.contains("phi"));
    }

    #[test]
    fn interp_agrees_with_source() {
        // Compile and execute: sum of 0..5 through memory.
        let m = compile(
            "export int main() { ptr a; a = malloc(5); int i; i = 0; \
             while (i < 5) { a[i] = i; i = i + 1; } \
             int s; s = 0; i = 0; \
             while (i < 5) { s = s + a[i]; i = i + 1; } \
             return s; }",
        )
        .unwrap();
        let fid = m.function_by_name("main").unwrap();
        let mut interp = sra_interp::Interp::new(&m);
        let r = interp.run(fid, &[]).unwrap();
        assert_eq!(r.ret, Some(sra_interp::Value::Int(10)));
    }
}
