//! Tokenizer for the mini-C language.

use std::fmt;

/// A lexical token. `Hash` lets function-granularity diffing
/// fingerprint a token span cheaply (see `source::SourceProgram`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Token {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Punctuation and operators.
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{}", s),
            Token::Int(i) => write!(f, "{}", i),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Semi => write!(f, ";"),
            Token::Comma => write!(f, ","),
            Token::Assign => write!(f, "="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::EqEq => write!(f, "=="),
            Token::Ne => write!(f, "!="),
        }
    }
}

/// A 1-based source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// Line number, starting at 1.
    pub line: u32,
    /// Column number (in bytes), starting at 1.
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A tokenization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// The character.
    pub ch: char,
    /// Line/column of the offending character.
    pub span: Span,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unexpected character {:?} at {}", self.ch, self.span)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes mini-C source. `//` line comments and `/* */` block
/// comments are skipped.
///
/// # Errors
///
/// Returns a [`LexError`] at the first unrecognized character.
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    lex_spanned(source).map(|(tokens, _)| tokens)
}

/// Like [`lex`], but also returns the 1-based line/column of each
/// token (same length as the token vector) so later stages can report
/// positions in the original text.
///
/// # Errors
///
/// Returns a [`LexError`] at the first unrecognized character.
#[allow(clippy::too_many_lines)]
pub fn lex_spanned(source: &str) -> Result<(Vec<Token>, Vec<Span>), LexError> {
    let bytes = source.as_bytes();
    let mut out = Vec::new();
    let mut spans = Vec::new();
    let mut i = 0;
    // Current line number and the byte offset where it starts; every
    // consumed `\n` (including inside comments) advances them.
    let mut line = 1u32;
    let mut line_start = 0usize;
    macro_rules! span_at {
        ($off:expr) => {
            Span {
                line,
                col: ($off - line_start + 1) as u32,
            }
        };
    }
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                i += 1;
                line += 1;
                line_start = i;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                    if bytes[i] == b'\n' {
                        line += 1;
                        line_start = i + 1;
                    }
                    i += 1;
                }
                i = (i + 2).min(bytes.len());
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &source[start..i];
                spans.push(span_at!(start));
                out.push(Token::Int(text.parse().unwrap_or(i64::MAX)));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                spans.push(span_at!(start));
                out.push(Token::Ident(source[start..i].to_owned()));
            }
            '(' | ')' | '{' | '}' | '[' | ']' | ';' | ',' | '+' | '-' | '*' | '/' | '%' => {
                spans.push(span_at!(i));
                out.push(match c {
                    '(' => Token::LParen,
                    ')' => Token::RParen,
                    '{' => Token::LBrace,
                    '}' => Token::RBrace,
                    '[' => Token::LBracket,
                    ']' => Token::RBracket,
                    ';' => Token::Semi,
                    ',' => Token::Comma,
                    '+' => Token::Plus,
                    '-' => Token::Minus,
                    '*' => Token::Star,
                    '/' => Token::Slash,
                    _ => Token::Percent,
                });
                i += 1;
            }
            '<' => {
                spans.push(span_at!(i));
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Le);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                spans.push(span_at!(i));
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '=' => {
                spans.push(span_at!(i));
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::EqEq);
                    i += 2;
                } else {
                    out.push(Token::Assign);
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    spans.push(span_at!(i));
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(LexError {
                        offset: i,
                        ch: c,
                        span: span_at!(i),
                    });
                }
            }
            other => {
                return Err(LexError {
                    offset: i,
                    ch: other,
                    span: span_at!(i),
                })
            }
        }
    }
    Ok((out, spans))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_and_numbers() {
        let toks = lex("int x = 42;").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("int".into()),
                Token::Ident("x".into()),
                Token::Assign,
                Token::Int(42),
                Token::Semi,
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        let toks = lex("< <= > >= == !=").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::EqEq,
                Token::Ne
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex("a // comment\n b /* block\n comment */ c").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("a".into()),
                Token::Ident("b".into()),
                Token::Ident("c".into())
            ]
        );
    }

    #[test]
    fn rejects_unknown() {
        let err = lex("a $ b").unwrap_err();
        assert_eq!(err.ch, '$');
        assert_eq!(err.offset, 2);
        assert!(lex("!x").is_err());
    }

    #[test]
    fn spans_are_line_and_column() {
        let (tokens, spans) = lex_spanned("int x;\n  x = 1; /* multi\nline */ x").unwrap();
        assert_eq!(tokens.len(), spans.len());
        assert_eq!(spans[0], Span { line: 1, col: 1 }); // int
        assert_eq!(spans[1], Span { line: 1, col: 5 }); // x
        assert_eq!(spans[3], Span { line: 2, col: 3 }); // x after newline
                                                        // Block comments advance line counting.
        assert_eq!(spans.last().unwrap().line, 3);
        let err = lex_spanned("int a;\n @").unwrap_err();
        assert_eq!(err.span, Span { line: 2, col: 2 });
        assert!(err.to_string().contains("at 2:2"));
    }
}
