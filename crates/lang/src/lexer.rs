//! Tokenizer for the mini-C language.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Punctuation and operators.
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{}", s),
            Token::Int(i) => write!(f, "{}", i),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Semi => write!(f, ";"),
            Token::Comma => write!(f, ","),
            Token::Assign => write!(f, "="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::EqEq => write!(f, "=="),
            Token::Ne => write!(f, "!="),
        }
    }
}

/// A tokenization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// The character.
    pub ch: char,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unexpected character {:?} at byte {}",
            self.ch, self.offset
        )
    }
}

impl std::error::Error for LexError {}

/// Tokenizes mini-C source. `//` line comments and `/* */` block
/// comments are skipped.
///
/// # Errors
///
/// Returns a [`LexError`] at the first unrecognized character.
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    let bytes = source.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                    i += 1;
                }
                i = (i + 2).min(bytes.len());
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &source[start..i];
                out.push(Token::Int(text.parse().unwrap_or(i64::MAX)));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Token::Ident(source[start..i].to_owned()));
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '{' => {
                out.push(Token::LBrace);
                i += 1;
            }
            '}' => {
                out.push(Token::RBrace);
                i += 1;
            }
            '[' => {
                out.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                out.push(Token::RBracket);
                i += 1;
            }
            ';' => {
                out.push(Token::Semi);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '%' => {
                out.push(Token::Percent);
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Le);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::EqEq);
                    i += 2;
                } else {
                    out.push(Token::Assign);
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(LexError { offset: i, ch: c });
                }
            }
            other => {
                return Err(LexError {
                    offset: i,
                    ch: other,
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_and_numbers() {
        let toks = lex("int x = 42;").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("int".into()),
                Token::Ident("x".into()),
                Token::Assign,
                Token::Int(42),
                Token::Semi,
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        let toks = lex("< <= > >= == !=").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::EqEq,
                Token::Ne
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex("a // comment\n b /* block\n comment */ c").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("a".into()),
                Token::Ident("b".into()),
                Token::Ident("c".into())
            ]
        );
    }

    #[test]
    fn rejects_unknown() {
        let err = lex("a $ b").unwrap_err();
        assert_eq!(err.ch, '$');
        assert_eq!(err.offset, 2);
        assert!(lex("!x").is_err());
    }
}
