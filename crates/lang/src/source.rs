//! Source-level incremental frontend: function-granularity diffing.
//!
//! A [`SourceProgram`] holds the current text of a module and a
//! *registry* binding each function name to a stable [`FuncId`]. On
//! [`SourceProgram::apply_edit`] the new text is lexed and parsed
//! whole (cheap), then diffed against the previous version at
//! function granularity by hashing each function's token span:
//!
//! * **unchanged** — identical tokens and an identical *environment*
//!   (see below): the existing lowered body is kept verbatim;
//! * **changed** — tokens differ: the unit is re-lowered through the
//!   Braun-style on-the-fly SSA construction in [`crate::lower`];
//! * **added** — a new name: lowered and appended to the registry;
//! * **removed** — a vanished name: dropped, surviving ids compact.
//!
//! A unit's lowering also depends on the *signatures* of the names it
//! references: adding, removing, or re-typing a function `g` changes
//! how a token-identical caller of `g` lowers (internal ↔ external
//! call flips, argument checking). Token-unchanged units are therefore
//! re-lowered whenever any referenced identifier's signature entry
//! changed — an over-approximation that is cheap to detect and keeps
//! the incremental result byte-identical to a full relower.
//!
//! **Id-stability contract**: names that survive an edit keep their
//! id (compacted over removals, exactly like
//! [`Module::remove_functions`]); additions append in text order.
//! Re-lowered bodies in a [`SourceDiff::Incremental`] are expressed in
//! the *pre-edit* id space so applying replacements → additions →
//! removals lands every internal call edge on the post-edit registry.
//! [`SourceProgram::full_relower`] lowers the current text from
//! scratch in registry order and must produce a module equal to the
//! incrementally maintained one — the shadow validator the
//! equivalence rails pin.
//!
//! Changes to the global table re-bind ids wholesale
//! ([`SourceDiff::FullRebuild`]): global ids are positional and every
//! unit may reference them.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};

use sra_ir::{FuncId, Function, GlobalId, Module, Ty};

use crate::ast::Program;
use crate::lexer::{lex_spanned, Token};
use crate::lower::{lower_function, SigMap};
use crate::parser::parse_spanned;
use crate::{CompileError, LowerError};

/// One function unit of the registry: the token span it was built
/// from plus what its lowering depended on.
#[derive(Debug, Clone)]
struct Unit {
    name: String,
    /// Hash of `tokens` — fast-path for the diff.
    hash: u64,
    tokens: Vec<Token>,
    /// Identifiers referenced anywhere in the unit (sorted, deduped);
    /// superset of the callee names whose signatures the lowering
    /// consulted.
    refs: Vec<String>,
    params: Vec<Ty>,
    ret: Option<Ty>,
}

/// What a textual edit changed, at function granularity.
#[derive(Debug, Clone)]
pub enum SourceDiff {
    /// Token-identical (whitespace/comment-only edits, or pure
    /// reordering of functions in the text): the module is unchanged
    /// and consumers must not re-analyze anything.
    Noop,
    /// Function-granularity delta expressed in the **pre-edit** id
    /// space: apply `replaced` first, then append `added`, then drop
    /// `removed` (sorted ascending, compacting survivor ids).
    Incremental {
        /// Re-lowered bodies for surviving ids whose lowering changed.
        replaced: Vec<(FuncId, Function)>,
        /// New functions, appended in text order.
        added: Vec<Function>,
        /// Pre-edit ids to remove, ascending.
        removed: Vec<FuncId>,
        /// Units left completely untouched.
        unchanged: usize,
        /// Units actually re-lowered (changed + env-dirty + added).
        relowered: usize,
    },
    /// The global table changed, so every unit was re-lowered and the
    /// registry re-bound in text order. `module` is the new world.
    FullRebuild {
        /// The fully re-lowered module.
        module: Module,
    },
}

/// A text-backed module with a stable name ↔ [`FuncId`] registry and
/// function-granularity incremental re-lowering.
///
/// # Examples
///
/// ```
/// use sra_lang::{SourceDiff, SourceProgram};
/// let mut p = SourceProgram::new(
///     "int f(int n) { return n + 1; } export int main() { return f(41); }",
/// )
/// .unwrap();
/// let diff = p
///     .apply_edit("int f(int n) { return n + 2; } export int main() { return f(41); }")
///     .unwrap();
/// let SourceDiff::Incremental { replaced, relowered, .. } = diff else {
///     panic!("body tweak is incremental")
/// };
/// assert_eq!((replaced.len(), relowered), (1, 1));
/// assert_eq!(p.module(), &p.full_relower().unwrap());
/// ```
#[derive(Debug, Clone)]
pub struct SourceProgram {
    text: String,
    globals: Vec<(String, i64)>,
    /// Registry order — index `i` is the unit bound to `FuncId(i)`.
    units: Vec<Unit>,
    module: Module,
}

impl SourceProgram {
    /// Compiles the initial text; the registry binds names in text
    /// order (same numbering as [`crate::compile`]).
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] describing the first problem found.
    pub fn new(text: &str) -> Result<Self, CompileError> {
        let (prog, units) = parse_units(text)?;
        let order: HashMap<String, usize> = units
            .iter()
            .enumerate()
            .map(|(i, u)| (u.name.clone(), i))
            .collect();
        let module = lower_ordered(&prog, &order)?;
        Ok(SourceProgram {
            text: text.to_owned(),
            globals: prog.globals,
            units,
            module,
        })
    }

    /// The current text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The incrementally maintained module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The registry id bound to `name`, if present.
    pub fn function_id(&self, name: &str) -> Option<FuncId> {
        self.units
            .iter()
            .position(|u| u.name == name)
            .map(FuncId::new)
    }

    /// Number of function units in the registry.
    pub fn num_units(&self) -> usize {
        self.units.len()
    }

    /// Replaces the whole text, re-lowering only what the diff
    /// requires, and returns what changed. On error (`new_text` does
    /// not compile) the program is left untouched.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] describing the first problem found.
    #[allow(clippy::too_many_lines)]
    pub fn apply_edit(&mut self, new_text: &str) -> Result<SourceDiff, CompileError> {
        let (prog, new_units) = parse_units(new_text)?;
        if prog.globals != self.globals {
            // Global ids are positional and any unit may use them:
            // re-bind the registry in text order.
            let next = Self::new(new_text)?;
            let module = next.module.clone();
            *self = next;
            return Ok(SourceDiff::FullRebuild { module });
        }

        let old_idx: HashMap<&str, usize> = self
            .units
            .iter()
            .enumerate()
            .map(|(i, u)| (u.name.as_str(), i))
            .collect();
        let new_by_name: HashMap<&str, usize> = new_units
            .iter()
            .enumerate()
            .map(|(t, u)| (u.name.as_str(), t))
            .collect();
        let removed: Vec<usize> = (0..self.units.len())
            .filter(|&i| !new_by_name.contains_key(self.units[i].name.as_str()))
            .collect();
        let old_nf = self.units.len();

        // Pre-edit id for every new unit: survivors keep their
        // registry id, additions append past the old end.
        let mut pre_ids: HashMap<&str, usize> = HashMap::with_capacity(new_units.len());
        let mut num_added = 0usize;
        for u in &new_units {
            let id = match old_idx.get(u.name.as_str()) {
                Some(&i) => i,
                None => {
                    let id = old_nf + num_added;
                    num_added += 1;
                    id
                }
            };
            pre_ids.insert(u.name.as_str(), id);
        }

        // Environment = name → signature; a token-identical unit must
        // re-lower when any identifier it mentions changed entry.
        let old_env: HashMap<&str, (&[Ty], Option<Ty>)> = self
            .units
            .iter()
            .map(|u| (u.name.as_str(), (u.params.as_slice(), u.ret)))
            .collect();
        let new_env: HashMap<&str, (&[Ty], Option<Ty>)> = new_units
            .iter()
            .map(|u| (u.name.as_str(), (u.params.as_slice(), u.ret)))
            .collect();

        // Text-order indices of units that need (re-)lowering.
        let mut to_lower: Vec<usize> = Vec::new();
        for (t, u) in new_units.iter().enumerate() {
            let Some(&old_i) = old_idx.get(u.name.as_str()) else {
                to_lower.push(t);
                continue;
            };
            let old_u = &self.units[old_i];
            let token_same = old_u.hash == u.hash && old_u.tokens == u.tokens;
            let env_dirty = || {
                u.refs
                    .iter()
                    .any(|r| old_env.get(r.as_str()) != new_env.get(r.as_str()))
            };
            if !token_same || env_dirty() {
                to_lower.push(t);
            }
        }

        let sigs: SigMap = new_units
            .iter()
            .map(|u| {
                (
                    u.name.clone(),
                    (pre_ids[u.name.as_str()], u.params.clone(), u.ret),
                )
            })
            .collect();
        let gmap: HashMap<String, GlobalId> = self
            .globals
            .iter()
            .enumerate()
            .map(|(i, (name, _))| (name.clone(), GlobalId::new(i)))
            .collect();

        let mut replaced: Vec<(FuncId, Function)> = Vec::new();
        let mut added: Vec<Function> = Vec::new();
        for &t in &to_lower {
            let decl = &prog.funcs[t];
            let mut func = lower_function(decl, &sigs, &gmap).map_err(CompileError::Lower)?;
            sra_ir::essa::run(&mut func);
            let pre = pre_ids[decl.name.as_str()];
            if pre < old_nf {
                // A re-lowered survivor can come out identical (e.g. a
                // local rename): drop it so downstream reuse kicks in.
                if *self.module.function(FuncId::new(pre)) != func {
                    replaced.push((FuncId::new(pre), func));
                }
            } else {
                added.push(func);
            }
        }

        // Commit on a scratch copy so a verification failure (which
        // would be an internal bug) cannot corrupt `self`.
        let mut next_module = self.module.clone();
        for (f, func) in &replaced {
            next_module.replace_function(*f, func.clone());
        }
        for func in &added {
            next_module.add_function(func.clone());
        }
        let removed_ids: Vec<FuncId> = removed.iter().copied().map(FuncId::new).collect();
        next_module.remove_functions(&removed_ids);
        sra_ir::verify::verify_module(&next_module).map_err(CompileError::Internal)?;

        // Registry update: survivors in old order (with their new
        // token spans), then additions in text order.
        let mut next_units: Vec<Unit> = Vec::with_capacity(new_units.len());
        for (i, u) in self.units.iter().enumerate() {
            if removed.binary_search(&i).is_err() {
                next_units.push(new_units[new_by_name[u.name.as_str()]].clone());
            }
        }
        for u in &new_units {
            if !old_idx.contains_key(u.name.as_str()) {
                next_units.push(u.clone());
            }
        }

        let unchanged = new_units.len() - to_lower.len();
        let relowered = to_lower.len();
        self.module = next_module;
        self.units = next_units;
        self.globals = prog.globals;
        self.text = new_text.to_owned();

        if replaced.is_empty() && added.is_empty() && removed_ids.is_empty() {
            Ok(SourceDiff::Noop)
        } else {
            Ok(SourceDiff::Incremental {
                replaced,
                added,
                removed: removed_ids,
                unchanged,
                relowered,
            })
        }
    }

    /// Shadow validator: lowers the current text from scratch, binding
    /// names in **registry** order. Must equal [`Self::module`] — the
    /// id-stability contract the equivalence rails pin.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] if the stored text no longer
    /// compiles (impossible unless the program was built by hand).
    pub fn full_relower(&self) -> Result<Module, CompileError> {
        let (prog, _) = parse_units(&self.text)?;
        let order: HashMap<String, usize> = self
            .units
            .iter()
            .enumerate()
            .map(|(i, u)| (u.name.clone(), i))
            .collect();
        lower_ordered(&prog, &order)
    }

    /// Unit names in registry order: index `i` is the unit bound to
    /// `FuncId(i)`.
    pub fn unit_names(&self) -> Vec<String> {
        self.units.iter().map(|u| u.name.clone()).collect()
    }

    /// Compiles `text` binding names in the given registry `order`
    /// rather than text order. Incremental edits keep surviving units
    /// at their old ids and append new ones, so the registry order of
    /// an edited program drifts from text order; this constructor
    /// restores such a program (e.g. from a persisted snapshot) with
    /// its exact id assignment.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] if the text does not compile or
    /// `order` is not a permutation of the text's function names.
    pub fn with_unit_order(text: &str, order: &[String]) -> Result<Self, CompileError> {
        let (prog, mut units) = parse_units(text)?;
        let pos: HashMap<&str, usize> = order
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i))
            .collect();
        if pos.len() != order.len() || units.len() != order.len() {
            return Err(CompileError::Lower(LowerError {
                message: "unit order is not a permutation of the program's functions".to_owned(),
                func: None,
            }));
        }
        for u in &units {
            if !pos.contains_key(u.name.as_str()) {
                return Err(CompileError::Lower(LowerError {
                    message: format!("unit order is missing function `{}`", u.name),
                    func: Some(u.name.clone()),
                }));
            }
        }
        units.sort_by_key(|u| pos[u.name.as_str()]);
        let order_map: HashMap<String, usize> = order
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i))
            .collect();
        let module = lower_ordered(&prog, &order_map)?;
        Ok(SourceProgram {
            text: text.to_owned(),
            globals: prog.globals,
            units,
            module,
        })
    }
}

/// Lexes + parses `text` and splits it into per-function units.
fn parse_units(text: &str) -> Result<(Program, Vec<Unit>), CompileError> {
    let (tokens, spans) = lex_spanned(text).map_err(CompileError::Lex)?;
    let (prog, ranges) = parse_spanned(&tokens, &spans).map_err(CompileError::Parse)?;
    debug_assert_eq!(prog.funcs.len(), ranges.len());
    let mut seen_globals = HashSet::new();
    for (name, _) in &prog.globals {
        if !seen_globals.insert(name.as_str()) {
            return Err(CompileError::Lower(LowerError {
                message: format!("duplicate global `{name}`"),
                func: None,
            }));
        }
    }
    let mut units = Vec::with_capacity(ranges.len());
    let mut seen = HashSet::new();
    for (f, &(start, end)) in prog.funcs.iter().zip(&ranges) {
        if !seen.insert(f.name.as_str()) {
            return Err(CompileError::Lower(LowerError {
                message: format!("duplicate function `{}`", f.name),
                func: Some(f.name.clone()),
            }));
        }
        let toks = tokens[start..end].to_vec();
        let mut hasher = DefaultHasher::new();
        toks.hash(&mut hasher);
        let mut refs: Vec<String> = toks
            .iter()
            .filter_map(|t| match t {
                Token::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        refs.sort_unstable();
        refs.dedup();
        units.push(Unit {
            name: f.name.clone(),
            hash: hasher.finish(),
            tokens: toks,
            refs,
            params: f.params.iter().map(|(_, t)| *t).collect(),
            ret: f.ret,
        });
    }
    Ok((prog, units))
}

/// Lowers every function of `prog`, placing each at the id `order`
/// assigns to its name, then runs e-SSA and verifies.
fn lower_ordered(prog: &Program, order: &HashMap<String, usize>) -> Result<Module, CompileError> {
    let mut module = Module::new();
    let mut gmap: HashMap<String, GlobalId> = HashMap::new();
    for (name, size) in &prog.globals {
        gmap.insert(name.clone(), module.add_global(name, *size));
    }
    let sigs: SigMap = prog
        .funcs
        .iter()
        .map(|f| {
            let tys = f.params.iter().map(|(_, t)| *t).collect();
            (f.name.clone(), (order[&f.name], tys, f.ret))
        })
        .collect();
    let mut slots: Vec<Option<Function>> = (0..prog.funcs.len()).map(|_| None).collect();
    for f in &prog.funcs {
        let mut func = lower_function(f, &sigs, &gmap).map_err(CompileError::Lower)?;
        sra_ir::essa::run(&mut func);
        slots[order[&f.name]] = Some(func);
    }
    for s in slots {
        module.add_function(s.expect("order covers every function exactly once"));
    }
    sra_ir::verify::verify_module(&module).map_err(CompileError::Internal)?;
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = "\
        int helper(ptr p, int n) { int i; i = 0; while (i < n) { p[i] = i; i = i + 1; } return i; }\n\
        export int main() { ptr a; a = malloc(8); int r; r = helper(a, 8); return r; }\n";

    fn incremental(diff: &SourceDiff) -> (usize, usize, usize, usize) {
        match diff {
            SourceDiff::Incremental {
                replaced,
                added,
                removed,
                relowered,
                ..
            } => (replaced.len(), added.len(), removed.len(), *relowered),
            other => panic!("expected incremental diff, got {other:?}"),
        }
    }

    #[test]
    fn matches_batch_compile_initially() {
        let p = SourceProgram::new(BASE).unwrap();
        assert_eq!(p.module(), &crate::compile(BASE).unwrap());
        assert_eq!(p.module(), &p.full_relower().unwrap());
    }

    #[test]
    fn body_tweak_replaces_one_unit() {
        let mut p = SourceProgram::new(BASE).unwrap();
        let edited = BASE.replace("malloc(8)", "malloc(16)");
        let diff = p.apply_edit(&edited).unwrap();
        assert_eq!(incremental(&diff), (1, 0, 0, 1));
        let SourceDiff::Incremental { replaced, .. } = &diff else {
            unreachable!()
        };
        assert_eq!(replaced[0].0, p.function_id("main").unwrap());
        assert_eq!(p.module(), &p.full_relower().unwrap());
        assert_eq!(p.module(), &crate::compile(&edited).unwrap());
    }

    #[test]
    fn whitespace_comment_and_reorder_edits_are_noops() {
        let mut p = SourceProgram::new(BASE).unwrap();
        let before = p.module().clone();
        let spaced = BASE.replace(" { ", " {\n    /* noop */  ");
        assert!(matches!(p.apply_edit(&spaced).unwrap(), SourceDiff::Noop));
        // Pure reordering of functions in the text keeps registry ids.
        let mut lines: Vec<&str> = BASE.lines().collect();
        lines.reverse();
        let reordered = lines.join("\n");
        assert!(matches!(
            p.apply_edit(&reordered).unwrap(),
            SourceDiff::Noop
        ));
        assert_eq!(p.module(), &before);
        assert_eq!(p.module(), &p.full_relower().unwrap());
    }

    #[test]
    fn removal_flips_callers_to_external() {
        let mut p = SourceProgram::new(BASE).unwrap();
        let main_only =
            "export int main() { ptr a; a = malloc(8); int r; r = helper(a, 8); return r; }\n";
        let diff = p.apply_edit(main_only).unwrap();
        // helper removed; main re-lowered because `helper` flipped
        // internal → external.
        assert_eq!(incremental(&diff), (1, 0, 1, 1));
        assert_eq!(p.num_units(), 1);
        assert_eq!(p.function_id("main"), Some(FuncId::new(0)));
        let text = sra_ir::print_module(p.module());
        assert!(text.contains("call @helper!"), "external call:\n{text}");
        assert_eq!(p.module(), &p.full_relower().unwrap());

        // Re-adding helper flips main back to an internal call, with
        // helper appended after main in the registry.
        let diff = p.apply_edit(BASE).unwrap();
        assert_eq!(incremental(&diff), (1, 1, 0, 2));
        assert_eq!(p.function_id("main"), Some(FuncId::new(0)));
        assert_eq!(p.function_id("helper"), Some(FuncId::new(1)));
        assert_eq!(p.module(), &p.full_relower().unwrap());
    }

    #[test]
    fn signature_change_rewrites_callers_atomically() {
        let mut p = SourceProgram::new(BASE).unwrap();
        let edited = BASE
            .replace(
                "int helper(ptr p, int n)",
                "int helper(ptr p, int n, int step)",
            )
            .replace("helper(a, 8)", "helper(a, 8, 1)");
        let diff = p.apply_edit(&edited).unwrap();
        // Both units re-lowered in one diff: helper's tokens changed,
        // main is env-dirty.
        assert_eq!(incremental(&diff), (2, 0, 0, 2));
        assert_eq!(p.module(), &p.full_relower().unwrap());
        assert_eq!(p.module(), &crate::compile(&edited).unwrap());
    }

    #[test]
    fn global_change_is_full_rebuild() {
        let text = format!("int tab[4];\n{BASE}");
        let mut p = SourceProgram::new(&text).unwrap();
        let grown = format!("int tab[8];\n{BASE}");
        let diff = p.apply_edit(&grown).unwrap();
        assert!(matches!(diff, SourceDiff::FullRebuild { .. }));
        assert_eq!(p.module(), &crate::compile(&grown).unwrap());
    }

    #[test]
    fn failed_edit_leaves_program_untouched() {
        let mut p = SourceProgram::new(BASE).unwrap();
        let before = p.module().clone();
        let text_before = p.text().to_owned();
        assert!(p.apply_edit("export int main() { return x; }").is_err());
        assert!(p.apply_edit("int f( {").is_err());
        assert!(p.apply_edit("int f() $ {}").is_err());
        assert_eq!(p.module(), &before);
        assert_eq!(p.text(), text_before);
    }

    #[test]
    fn duplicate_names_are_structured_errors() {
        assert!(matches!(
            SourceProgram::new("int f() { return 0; } int f() { return 1; }"),
            Err(CompileError::Lower(_))
        ));
        assert!(matches!(
            SourceProgram::new("int t[1]; int t[2]; int f() { return 0; }"),
            Err(CompileError::Lower(_))
        ));
    }
}
