//! Abstract syntax of the mini-C language.

use sra_ir::{CmpOp, Ty};

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinKind {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Variable (local, parameter or global array name).
    Var(String),
    /// Arithmetic: int ⊕ int, or ptr ± int (pointer arithmetic).
    Bin(BinKind, Box<Expr>, Box<Expr>),
    /// Comparison producing 0/1.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// `*e` — load an integer cell.
    Load(Box<Expr>),
    /// `load_ptr(e)` — load a pointer cell.
    LoadPtr(Box<Expr>),
    /// `e[i]` — load the integer cell at `e + i`.
    Index(Box<Expr>, Box<Expr>),
    /// `malloc(n)` — heap allocation.
    Malloc(Box<Expr>),
    /// `alloca(n)` — stack allocation.
    Alloca(Box<Expr>),
    /// `name(args)` — internal or external call.
    Call(String, Vec<Expr>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `int x;` / `ptr p;` — declares a mutable local.
    Decl(String, Ty),
    /// `x = e;`
    Assign(String, Expr),
    /// `*addr = e;` or `p[i] = e;` (addr already includes the index).
    Store(Expr, Expr),
    /// `store_ptr(addr, e);` — store a pointer value.
    StorePtr(Expr, Expr),
    /// `free(p);`
    Free(Expr),
    /// `if (c) { … } else { … }`
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (c) { … }`
    While(Expr, Vec<Stmt>),
    /// `return e;` / `return;`
    Return(Option<Expr>),
    /// An expression evaluated for effect (calls).
    ExprStmt(Expr),
}

/// A function declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncDecl {
    /// Function name.
    pub name: String,
    /// `(name, type)` parameter list.
    pub params: Vec<(String, Ty)>,
    /// Return type; `None` for `void`.
    pub ret: Option<Ty>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Marked `export` (or named `main`).
    pub exported: bool,
}

/// A whole translation unit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// `(name, cells)` global arrays.
    pub globals: Vec<(String, i64)>,
    /// Function declarations.
    pub funcs: Vec<FuncDecl>,
}
