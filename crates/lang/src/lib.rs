//! A mini-C frontend for the pointer-analysis IR.
//!
//! The language is the C subset the paper evaluates on: integers,
//! pointers with arithmetic, arrays (one memory cell per element),
//! loops, conditionals, functions, globals and the usual library calls
//! (`malloc`, `free`, `atoi`, `strlen`, …). Source is lowered to the
//! SSA IR of [`sra_ir`] with on-the-fly SSA construction (Braun et
//! al.'s algorithm with trivial-φ elimination) and, by default, the
//! e-SSA σ-insertion pass.
//!
//! # Syntax sketch
//!
//! ```c
//! int table[16];                 // a global of 16 cells
//!
//! void prepare(ptr p, int n, ptr m) {
//!     ptr i; ptr e;
//!     i = p; e = p + n;
//!     while (i < e) { *i = 0; *(i + 1) = 255; i = i + 2; }
//!     ptr f; f = e + strlen(m);
//!     while (i < f) { *i = *m; m = m + 1; i = i + 1; }
//! }
//!
//! export int main() {
//!     int z; z = atoi();
//!     ptr b; b = malloc(z);
//!     ptr s; s = malloc(strlen());
//!     prepare(b, z, s);
//!     return 0;
//! }
//! ```
//!
//! * Types are `int` and `ptr` (a pointer to cells).
//! * `*e` loads an integer cell; `load_ptr(e)` loads a pointer cell.
//! * `p[i]` is sugar for `*(p + i)`; `p[i] = e` stores.
//! * `malloc`/`alloca`/`free` are built in; any other unknown callee is
//!   an external library function returning a kernel symbol.
//! * `export` marks a function as callable from outside the module
//!   (pointer parameters then get `Unknown` locations; `main` is always
//!   exported).
//!
//! # Examples
//!
//! ```
//! let m = sra_lang::compile(r#"
//!     export int main() {
//!         ptr a; a = malloc(10);
//!         int i; i = 0;
//!         while (i < 10) { a[i] = i; i = i + 1; }
//!         return a[5];
//!     }
//! "#).expect("compiles");
//! assert_eq!(m.num_functions(), 1);
//! sra_ir::verify::verify_module(&m).expect("well-formed");
//! ```

mod ast;
mod lexer;
mod lower;
mod parser;
mod source;

pub use ast::{BinKind, Expr, FuncDecl, Program, Stmt};
pub use lexer::{lex, lex_spanned, LexError, Span, Token};
pub use lower::LowerError;
pub use parser::{parse, parse_spanned, ParseError};
pub use source::{SourceDiff, SourceProgram};

use sra_ir::Module;

/// Everything that can go wrong between source text and IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Tokenization failure.
    Lex(LexError),
    /// Grammar failure.
    Parse(ParseError),
    /// Semantic failure (unknown names, type errors).
    Lower(LowerError),
    /// Lowering produced IR that fails verification — an internal
    /// invariant violation, never a user error.
    Internal(sra_ir::verify::VerifyError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Lex(e) => write!(f, "lex error: {}", e),
            CompileError::Parse(e) => write!(f, "parse error: {}", e),
            CompileError::Lower(e) => write!(f, "lowering error: {}", e),
            CompileError::Internal(e) => {
                write!(f, "internal error: lowering produced invalid IR: {}", e)
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Compilation options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileOptions {
    /// Run the e-SSA σ-insertion pass after lowering (default: true).
    pub essa: bool,
    /// Verify the produced module (default: true).
    pub verify: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            essa: true,
            verify: true,
        }
    }
}

/// Compiles mini-C source into an e-SSA module.
///
/// # Errors
///
/// Returns a [`CompileError`] describing the first problem found.
pub fn compile(source: &str) -> Result<Module, CompileError> {
    compile_with(source, CompileOptions::default())
}

/// Compiles with explicit options.
///
/// # Errors
///
/// Returns a [`CompileError`] describing the first problem found.
/// Verification failures surface as [`CompileError::Internal`].
pub fn compile_with(source: &str, opts: CompileOptions) -> Result<Module, CompileError> {
    let (tokens, spans) = lexer::lex_spanned(source).map_err(CompileError::Lex)?;
    let (program, _) = parser::parse_spanned(&tokens, &spans).map_err(CompileError::Parse)?;
    let mut module = lower::lower(&program).map_err(CompileError::Lower)?;
    if opts.essa {
        for f in module.func_ids().collect::<Vec<_>>() {
            sra_ir::essa::run(module.function_mut(f));
        }
    }
    if opts.verify {
        sra_ir::verify::verify_module(&module).map_err(CompileError::Internal)?;
    }
    Ok(module)
}
