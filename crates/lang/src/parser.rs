//! Recursive-descent parser for the mini-C language.

use std::fmt;

use sra_ir::{CmpOp, Ty};

use crate::ast::{BinKind, Expr, FuncDecl, Program, Stmt};
use crate::lexer::{Span, Token};

/// Maximum nesting depth (expressions + blocks) before the parser
/// bails out with a structured error instead of risking stack
/// exhaustion on adversarial input. Debug-build parser frames are
/// large, so this stays comfortably inside a 2 MiB test-thread stack
/// (recursive lowering of the resulting AST is bounded by it too).
const MAX_DEPTH: usize = 64;

/// A grammar failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Index of the offending token.
    pub at: usize,
    /// What went wrong.
    pub message: String,
    /// Line/column of the offending token when the parser was given
    /// spans (see [`parse_spanned`]); `None` otherwise.
    pub span: Option<Span>,
    /// The function being parsed when the error occurred, if known.
    pub func: Option<String>,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(span) => write!(f, "{} at {}", self.message, span)?,
            None => write!(f, "{} (at token {})", self.message, self.at)?,
        }
        if let Some(func) = &self.func {
            write!(f, " in function `{func}`")?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseError {}

/// Parses a token stream into a [`Program`].
///
/// # Errors
///
/// Returns a [`ParseError`] at the first violation of the grammar.
pub fn parse(tokens: &[Token]) -> Result<Program, ParseError> {
    parse_spanned(tokens, &[]).map(|(prog, _)| prog)
}

/// Like [`parse`], but takes the token spans from
/// [`crate::lexer::lex_spanned`] so errors carry line:col positions,
/// and additionally returns for each parsed function its half-open
/// token range `[start, end)` in the input stream (including a
/// leading `export`). The ranges drive function-granularity diffing.
///
/// `spans` may be empty (positions are then omitted from errors); if
/// non-empty it must be the same length as `tokens`.
///
/// # Errors
///
/// Returns a [`ParseError`] at the first violation of the grammar.
pub fn parse_spanned(
    tokens: &[Token],
    spans: &[Span],
) -> Result<(Program, Vec<(usize, usize)>), ParseError> {
    let mut p = Parser {
        tokens,
        spans,
        pos: 0,
        depth: 0,
        current_func: None,
        ranges: Vec::new(),
    };
    let prog = p.program()?;
    Ok((prog, p.ranges))
}

struct Parser<'a> {
    tokens: &'a [Token],
    spans: &'a [Span],
    pos: usize,
    depth: usize,
    current_func: Option<String>,
    ranges: Vec<(usize, usize)>,
}

impl Parser<'_> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        // Clamp so "unexpected end of input" errors still point at
        // the last real token's position.
        let at = self.pos.min(self.spans.len().saturating_sub(1));
        Err(ParseError {
            at: self.pos,
            message: message.into(),
            span: self.spans.get(at).copied(),
            func: self.current_func.clone(),
        })
    }

    fn descend(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return self.err("too deeply nested");
        }
        Ok(())
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, want: &Token) -> Result<(), ParseError> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected `{}`, found {:?}", want, self.peek()))
        }
    }

    fn eat_ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Token::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s == kw)
    }

    fn ty(&mut self) -> Result<Ty, ParseError> {
        if self.is_kw("int") {
            self.pos += 1;
            Ok(Ty::Int)
        } else if self.is_kw("ptr") {
            self.pos += 1;
            Ok(Ty::Ptr)
        } else {
            self.err("expected type `int` or `ptr`")
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut prog = Program::default();
        while self.peek().is_some() {
            let start = self.pos;
            let exported = if self.is_kw("export") {
                self.pos += 1;
                true
            } else {
                false
            };
            // Global: `int name [ N ] ;` — lookahead for `[` after name.
            if !exported
                && self.is_kw("int")
                && matches!(self.tokens.get(self.pos + 2), Some(Token::LBracket))
            {
                self.pos += 1;
                let name = self.eat_ident()?;
                self.eat(&Token::LBracket)?;
                let size = match self.next().cloned() {
                    Some(Token::Int(n)) => n,
                    other => return self.err(format!("expected array size, found {other:?}")),
                };
                self.eat(&Token::RBracket)?;
                self.eat(&Token::Semi)?;
                prog.globals.push((name, size));
                continue;
            }
            prog.funcs.push(self.function(exported)?);
            self.ranges.push((start, self.pos));
        }
        Ok(prog)
    }

    fn function(&mut self, exported: bool) -> Result<FuncDecl, ParseError> {
        let ret = if self.is_kw("void") {
            self.pos += 1;
            None
        } else {
            Some(self.ty()?)
        };
        let name = self.eat_ident()?;
        self.current_func = Some(name.clone());
        self.eat(&Token::LParen)?;
        let mut params = Vec::new();
        if self.peek() != Some(&Token::RParen) {
            loop {
                let ty = self.ty()?;
                let pname = self.eat_ident()?;
                params.push((pname, ty));
                if self.peek() == Some(&Token::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.eat(&Token::RParen)?;
        let body = self.block()?;
        self.current_func = None;
        let exported = exported || name == "main";
        Ok(FuncDecl {
            name,
            params,
            ret,
            body,
            exported,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.descend()?;
        let r = self.block_inner();
        self.depth -= 1;
        r
    }

    fn block_inner(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.eat(&Token::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != Some(&Token::RBrace) {
            if self.peek().is_none() {
                return self.err("unterminated block");
            }
            stmts.push(self.stmt()?);
        }
        self.eat(&Token::RBrace)?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        // Declarations.
        if (self.is_kw("int") || self.is_kw("ptr"))
            && matches!(self.tokens.get(self.pos + 1), Some(Token::Ident(_)))
        {
            let ty = self.ty()?;
            let name = self.eat_ident()?;
            self.eat(&Token::Semi)?;
            return Ok(Stmt::Decl(name, ty));
        }
        if self.is_kw("if") {
            self.pos += 1;
            self.eat(&Token::LParen)?;
            let cond = self.expr()?;
            self.eat(&Token::RParen)?;
            let then = self.block()?;
            let els = if self.is_kw("else") {
                self.pos += 1;
                self.block()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If(cond, then, els));
        }
        if self.is_kw("while") {
            self.pos += 1;
            self.eat(&Token::LParen)?;
            let cond = self.expr()?;
            self.eat(&Token::RParen)?;
            let body = self.block()?;
            return Ok(Stmt::While(cond, body));
        }
        if self.is_kw("for") {
            // for (init; cond; step) body — sugar over while.
            self.pos += 1;
            self.eat(&Token::LParen)?;
            let init = self.simple_stmt()?;
            self.eat(&Token::Semi)?;
            let cond = self.expr()?;
            self.eat(&Token::Semi)?;
            let step = self.simple_stmt()?;
            self.eat(&Token::RParen)?;
            let mut body = self.block()?;
            body.push(step);
            return Ok(Stmt::If(
                Expr::Int(1),
                vec![init, Stmt::While(cond, body)],
                Vec::new(),
            ));
        }
        if self.is_kw("return") {
            self.pos += 1;
            if self.peek() == Some(&Token::Semi) {
                self.pos += 1;
                return Ok(Stmt::Return(None));
            }
            let e = self.expr()?;
            self.eat(&Token::Semi)?;
            return Ok(Stmt::Return(Some(e)));
        }
        let s = self.simple_stmt()?;
        self.eat(&Token::Semi)?;
        Ok(s)
    }

    /// Assignment, store, free or expression statement (no semicolon).
    fn simple_stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.is_kw("free") && self.tokens.get(self.pos + 1) == Some(&Token::LParen) {
            self.pos += 2;
            let e = self.expr()?;
            self.eat(&Token::RParen)?;
            return Ok(Stmt::Free(e));
        }
        if self.is_kw("store_ptr") && self.tokens.get(self.pos + 1) == Some(&Token::LParen) {
            self.pos += 2;
            let addr = self.expr()?;
            self.eat(&Token::Comma)?;
            let val = self.expr()?;
            self.eat(&Token::RParen)?;
            return Ok(Stmt::StorePtr(addr, val));
        }
        // `*addr = e`
        if self.peek() == Some(&Token::Star) {
            self.pos += 1;
            let addr = self.unary()?;
            self.eat(&Token::Assign)?;
            let val = self.expr()?;
            return Ok(Stmt::Store(addr, val));
        }
        // `name = e` | `name[i] = e` | expression statement
        if let Some(Token::Ident(name)) = self.peek().cloned() {
            match self.tokens.get(self.pos + 1) {
                Some(Token::Assign) => {
                    self.pos += 2;
                    let e = self.expr()?;
                    return Ok(Stmt::Assign(name, e));
                }
                Some(Token::LBracket) => {
                    // Could be `a[i] = e` or an expression `a[i]`;
                    // scan for `= ` after the matching bracket.
                    let save = self.pos;
                    self.pos += 2;
                    let idx = self.expr()?;
                    self.eat(&Token::RBracket)?;
                    if self.peek() == Some(&Token::Assign) {
                        self.pos += 1;
                        let val = self.expr()?;
                        let addr =
                            Expr::Bin(BinKind::Add, Box::new(Expr::Var(name)), Box::new(idx));
                        return Ok(Stmt::Store(addr, val));
                    }
                    self.pos = save;
                }
                _ => {}
            }
        }
        let e = self.expr()?;
        Ok(Stmt::ExprStmt(e))
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.descend()?;
        let r = self.comparison();
        self.depth -= 1;
        r
    }

    fn comparison(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.additive()?;
        let op = match self.peek() {
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            Some(Token::EqEq) => CmpOp::Eq,
            Some(Token::Ne) => CmpOp::Ne,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.additive()?;
        Ok(Expr::Cmp(op, Box::new(lhs), Box::new(rhs)))
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let kind = match self.peek() {
                Some(Token::Plus) => BinKind::Add,
                Some(Token::Minus) => BinKind::Sub,
                _ => return Ok(lhs),
            };
            self.pos += 1;
            let rhs = self.multiplicative()?;
            lhs = Expr::Bin(kind, Box::new(lhs), Box::new(rhs));
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let kind = match self.peek() {
                Some(Token::Star) => BinKind::Mul,
                Some(Token::Slash) => BinKind::Div,
                Some(Token::Percent) => BinKind::Rem,
                _ => return Ok(lhs),
            };
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = Expr::Bin(kind, Box::new(lhs), Box::new(rhs));
        }
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        self.descend()?;
        let r = self.unary_inner();
        self.depth -= 1;
        r
    }

    fn unary_inner(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(Token::Star) => {
                self.pos += 1;
                let e = self.unary()?;
                Ok(Expr::Load(Box::new(e)))
            }
            Some(Token::Minus) => {
                self.pos += 1;
                let e = self.unary()?;
                Ok(Expr::Bin(BinKind::Sub, Box::new(Expr::Int(0)), Box::new(e)))
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        while self.peek() == Some(&Token::LBracket) {
            self.pos += 1;
            let idx = self.expr()?;
            self.eat(&Token::RBracket)?;
            e = Expr::Index(Box::new(e), Box::new(idx));
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Token::Int(n)) => {
                self.pos += 1;
                Ok(Expr::Int(n))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.eat(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                self.pos += 1;
                if self.peek() == Some(&Token::LParen) {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if self.peek() != Some(&Token::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.peek() == Some(&Token::Comma) {
                                self.pos += 1;
                            } else {
                                break;
                            }
                        }
                    }
                    self.eat(&Token::RParen)?;
                    return Ok(match name.as_str() {
                        "malloc" if args.len() == 1 => Expr::Malloc(Box::new(args.remove_first())),
                        "alloca" if args.len() == 1 => Expr::Alloca(Box::new(args.remove_first())),
                        "load_ptr" if args.len() == 1 => {
                            Expr::LoadPtr(Box::new(args.remove_first()))
                        }
                        _ => Expr::Call(name, args),
                    });
                }
                Ok(Expr::Var(name))
            }
            other => self.err(format!("expected expression, found {other:?}")),
        }
    }
}

trait RemoveFirst<T> {
    fn remove_first(self) -> T;
}

impl<T> RemoveFirst<T> for Vec<T> {
    fn remove_first(mut self) -> T {
        self.remove(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Program {
        parse(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_globals_and_functions() {
        let p = parse_src("int tab[8]; void f(ptr p, int n) { }");
        assert_eq!(p.globals, vec![("tab".to_owned(), 8)]);
        assert_eq!(p.funcs.len(), 1);
        assert_eq!(p.funcs[0].params.len(), 2);
        assert_eq!(p.funcs[0].ret, None);
    }

    #[test]
    fn main_is_exported() {
        let p = parse_src("int main() { return 0; }");
        assert!(p.funcs[0].exported);
        let p = parse_src("int helper() { return 0; }");
        assert!(!p.funcs[0].exported);
        let p = parse_src("export int api() { return 0; }");
        assert!(p.funcs[0].exported);
    }

    #[test]
    fn precedence() {
        let p = parse_src("int f() { return 1 + 2 * 3; }");
        let Stmt::Return(Some(e)) = &p.funcs[0].body[0] else {
            panic!()
        };
        assert_eq!(
            *e,
            Expr::Bin(
                BinKind::Add,
                Box::new(Expr::Int(1)),
                Box::new(Expr::Bin(
                    BinKind::Mul,
                    Box::new(Expr::Int(2)),
                    Box::new(Expr::Int(3))
                ))
            )
        );
    }

    #[test]
    fn stores_and_loads() {
        let p = parse_src("void f(ptr p) { *p = 1; p[2] = 3; *(p + 4) = 5; }");
        assert!(matches!(p.funcs[0].body[0], Stmt::Store(_, _)));
        assert!(matches!(p.funcs[0].body[1], Stmt::Store(_, _)));
        assert!(matches!(p.funcs[0].body[2], Stmt::Store(_, _)));
        let p = parse_src("int f(ptr p) { return *p + p[1]; }");
        let Stmt::Return(Some(Expr::Bin(_, l, r))) = &p.funcs[0].body[0] else {
            panic!()
        };
        assert!(matches!(**l, Expr::Load(_)));
        assert!(matches!(**r, Expr::Index(_, _)));
    }

    #[test]
    fn control_flow() {
        let p = parse_src(
            "void f(int n) { int i; i = 0; while (i < n) { i = i + 1; } \
             if (i == n) { i = 0; } else { i = 1; } }",
        );
        assert!(matches!(p.funcs[0].body[2], Stmt::While(_, _)));
        assert!(matches!(p.funcs[0].body[3], Stmt::If(_, _, _)));
    }

    #[test]
    fn for_sugar() {
        let p = parse_src("void f(int n) { int i; for (i = 0; i < n; i = i + 1) { } }");
        // Desugared into If(1) { init; while }
        assert!(matches!(p.funcs[0].body[1], Stmt::If(_, _, _)));
    }

    #[test]
    fn builtin_calls() {
        let p = parse_src("void f() { ptr p; p = malloc(4); free(p); int x; x = atoi(); }");
        assert!(matches!(
            p.funcs[0].body[1],
            Stmt::Assign(_, Expr::Malloc(_))
        ));
        assert!(matches!(p.funcs[0].body[2], Stmt::Free(_)));
        assert!(matches!(
            p.funcs[0].body[4],
            Stmt::Assign(_, Expr::Call(_, _))
        ));
    }

    #[test]
    fn errors_report_position() {
        let err = parse(&lex("void f( {").unwrap()).unwrap_err();
        assert!(err.message.contains("expected"));
    }

    #[test]
    fn errors_carry_line_col_and_function() {
        let (tokens, spans) = crate::lexer::lex_spanned("void f() {\n  int x\n}").unwrap();
        let err = parse_spanned(&tokens, &spans).unwrap_err();
        // Missing `;` — reported at the `}` on line 3, inside `f`.
        assert_eq!(err.func.as_deref(), Some("f"));
        let span = err.span.expect("spans were provided");
        assert_eq!((span.line, span.col), (3, 1));
        assert!(err.to_string().contains("at 3:1"));
        assert!(err.to_string().contains("in function `f`"));
    }

    #[test]
    fn function_token_ranges_cover_each_unit() {
        let (tokens, spans) =
            crate::lexer::lex_spanned("int g[4]; void a() { } export int b() { return 0; }")
                .unwrap();
        let (prog, ranges) = parse_spanned(&tokens, &spans).unwrap();
        assert_eq!(prog.funcs.len(), 2);
        assert_eq!(ranges.len(), 2);
        // `a`'s unit starts after the global, `b`'s includes `export`.
        assert_eq!(tokens[ranges[0].0], Token::Ident("void".into()));
        assert_eq!(tokens[ranges[1].0], Token::Ident("export".into()));
        assert_eq!(ranges[1].1, tokens.len());
        assert_eq!(ranges[0].1, ranges[1].0);
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        let src = format!(
            "int f() {{ return {}1{}; }}",
            "(".repeat(5000),
            ")".repeat(5000)
        );
        let err = parse(&lex(&src).unwrap()).unwrap_err();
        assert!(err.message.contains("too deeply nested"), "{err}");
        // Unary self-recursion (`****…p`) is depth-limited too.
        let src = format!("int f(ptr p) {{ return {}p; }}", "*".repeat(5000));
        let err = parse(&lex(&src).unwrap()).unwrap_err();
        assert!(err.message.contains("too deeply nested"), "{err}");
        // Block nesting likewise.
        let src = format!(
            "void f() {{ {} {} }}",
            "if (1) {".repeat(5000),
            "}".repeat(5000)
        );
        let err = parse(&lex(&src).unwrap()).unwrap_err();
        assert!(err.message.contains("too deeply nested"), "{err}");
    }
}
